// netsample -- command-line front end to the whole library.
//
//   netsample generate --minutes 10 --seed 23 --out trace.pcap [--poisson]
//   netsample inspect  trace.pcap
//   netsample sample   trace.pcap --method systematic --k 50 --out out.pcap
//   netsample score    trace.pcap --method systematic --k 50 [--reps 5]
//   netsample flows    trace.pcap [--timeout 30] [--top 10]
//   netsample design   --mu 232 --sigma 236 --accuracy 5 [--population N]
//   netsample charact  trace.pcap [--node t1|t3] [--k 50]
//
// Every subcommand is a thin veneer over the public API; see examples/ for
// annotated versions of the same flows.
#include <iostream>
#include <string>
#include <vector>

#include "charact/agent.h"
#include "core/categorical.h"
#include "core/design.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "exper/experiment.h"
#include "exper/parallel.h"
#include "exper/runner.h"
#include "net/headers.h"
#include "net/ports.h"
#include "pcap/pcap.h"
#include "synth/presets.h"
#include "trace/flows.h"
#include "trace/summary.h"
#include "util/args.h"
#include "util/format.h"

using namespace netsample;

namespace {

int usage() {
  std::cout <<
      "netsample -- packet sampling methodology toolkit\n"
      "usage: netsample <command> [args]\n\n"
      "commands:\n"
      "  generate   synthesize a calibrated SDSC-like trace to a pcap file\n"
      "  inspect    summarize a pcap capture (Tables 2/3 style)\n"
      "  sample     draw a sampled sub-trace and write it as pcap\n"
      "  score      score a sampling discipline against the capture (phi)\n"
      "  flows      assemble 5-tuple flows and print top talkers\n"
      "  design     Cochran sample-size planning\n"
      "  charact    run the NSFNET characterization objects\n"
      "run 'netsample <command> --help' for flags.\n";
  return 2;
}

StatusOr<trace::Trace> load(const std::string& path) {
  pcap::DecodeStats stats;
  auto t = pcap::read_trace(path, &stats);
  if (t) {
    std::cout << path << ": " << fmt_count(stats.decoded) << " IPv4 packets ("
              << stats.non_ipv4 << " non-IPv4, " << stats.malformed
              << " malformed skipped)\n";
  }
  return t;
}

core::Method parse_method(const std::string& name) {
  if (name == "systematic") return core::Method::kSystematicCount;
  if (name == "stratified") return core::Method::kStratifiedCount;
  if (name == "random") return core::Method::kSimpleRandom;
  if (name == "timer-systematic") return core::Method::kSystematicTimer;
  if (name == "timer-stratified") return core::Method::kStratifiedTimer;
  throw std::invalid_argument(
      "unknown method '" + name +
      "' (systematic|stratified|random|timer-systematic|timer-stratified)");
}

int cmd_generate(ArgParser& args) {
  const double minutes = args.get_double("minutes");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string out = args.get_string("out");

  auto cfg = synth::sdsc_minutes_config(minutes, seed);
  if (args.get_bool("poisson")) cfg = synth::poissonified(cfg);
  synth::TraceModel model(cfg);
  const auto t = model.generate();
  const auto status = pcap::write_trace(out, t, 128);
  if (!status.is_ok()) {
    std::cerr << "error: " << status.to_string() << "\n";
    return 1;
  }
  std::cout << "wrote " << fmt_count(t.size()) << " packets ("
            << fmt_double(t.view().duration().to_seconds(), 1) << " s) to "
            << out << "\n";
  return 0;
}

int cmd_inspect(ArgParser& args) {
  auto t = load(args.positionals().at(0));
  if (!t) {
    std::cerr << "error: " << t.status().to_string() << "\n";
    return 1;
  }
  const auto pop = trace::summarize_population(t->view());
  const auto ps = trace::summarize_per_second(t->view());
  TextTable table({"distribution", "min", "5%", "25%", "median", "75%", "95%",
                   "max", "mean", "stddev"});
  auto add = [&](const std::string& name, const stats::Summary& s, int prec) {
    table.add_row({name, fmt_double(s.min, prec), fmt_double(s.p5, prec),
                   fmt_double(s.q1, prec), fmt_double(s.median, prec),
                   fmt_double(s.q3, prec), fmt_double(s.p95, prec),
                   fmt_double(s.max, prec), fmt_double(s.mean, 1),
                   fmt_double(s.stddev, 1)});
  };
  add("packet size (B)", pop.packet_size, 0);
  add("interarrival (us)", pop.interarrival, 0);
  add("packets/s", ps.packet_rate, 0);
  add("kB/s", ps.kilobyte_rate, 1);
  add("mean pkt size (B)", ps.mean_packet_size, 0);
  table.print(std::cout);
  return 0;
}

int cmd_sample(ArgParser& args) {
  auto t = load(args.positionals().at(0));
  if (!t) {
    std::cerr << "error: " << t.status().to_string() << "\n";
    return 1;
  }
  exper::Experiment ex(std::move(*t));

  core::SamplerSpec spec;
  spec.method = parse_method(args.get_string("method"));
  spec.granularity = static_cast<std::uint64_t>(args.get_int("k"));
  spec.population = ex.population_size();
  spec.mean_interarrival_usec = ex.mean_interarrival_usec();
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  auto sampler = core::make_sampler(spec);

  const auto sample = core::draw(ex.full(), *sampler);
  trace::Trace sampled(sample.packets());
  std::cout << sampler->name() << " selected " << fmt_count(sampled.size())
            << " of " << fmt_count(ex.population_size()) << " packets ("
            << fmt_double(100.0 * sample.fraction(), 3) << "%)\n";
  if (args.has("out")) {
    const std::string out = args.get_string("out");
    const auto status = pcap::write_trace(out, sampled, 128);
    if (!status.is_ok()) {
      std::cerr << "error: " << status.to_string() << "\n";
      return 1;
    }
    std::cout << "wrote sampled trace to " << out << "\n";
  }
  return 0;
}

int cmd_score(ArgParser& args) {
  auto t = load(args.positionals().at(0));
  if (!t) {
    std::cerr << "error: " << t.status().to_string() << "\n";
    return 1;
  }
  exper::Experiment ex(std::move(*t));
  if (args.get_bool("legacy-scan")) core::force_legacy_scan(true);

  exper::CellConfig cfg;
  cfg.method = parse_method(args.get_string("method"));
  cfg.granularity = static_cast<std::uint64_t>(args.get_int("k"));
  cfg.interval = ex.full();
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.replications = static_cast<int>(args.get_int("reps"));
  cfg.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  cfg.cache = &ex.binned_cache();

  const std::string which = args.get_string("target");

  // Proportion-based (Section 8) targets score through the categorical
  // machinery; "both" / "size" / "iat" use the paper's histogram targets.
  if (which == "ports" || which == "protocols" || which == "netmatrix") {
    const auto key_fn = which == "ports"       ? core::service_port_key()
                        : which == "protocols" ? core::protocol_key()
                                               : core::network_pair_key();
    const core::CategoricalTarget target(which, key_fn, cfg.interval);
    TextTable table({"replication", "phi", "chi2 sig", "coverage %"});
    for (int r = 0; r < cfg.replications; ++r) {
      auto sampler = core::make_sampler(exper::replication_spec(cfg, r));
      const auto sample = core::draw(cfg.interval, *sampler);
      const auto counts = target.sample_counts(sample);
      const auto m =
          core::score_counts(counts, target.population_counts(),
                             1.0 / static_cast<double>(cfg.granularity));
      table.add_row({std::to_string(r), fmt_double(m.phi, 4),
                     fmt_double(m.significance, 4),
                     fmt_double(100.0 * target.coverage(counts), 1)});
    }
    std::cout << which << ": " << target.category_count()
              << " categories in the population\n";
    table.print(std::cout);
    return 0;
  }

  // The histogram targets are independent grid cells; fan them out over the
  // parallel runner. Seeds derive from cell coordinates, so the scores are
  // identical at every --jobs level.
  std::vector<exper::GridTask> tasks;
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    if (which == "size" && target != core::Target::kPacketSize) continue;
    if (which == "iat" && target != core::Target::kInterarrivalTime) continue;
    cfg.target = target;
    tasks.push_back({cfg, 0});
  }
  exper::ParallelRunner runner(static_cast<int>(args.get_int("jobs")));
  const auto cells = runner.run(tasks, cfg.base_seed);

  TextTable table({"target", "mean phi", "min", "max", "mean n",
                   "chi2 rejections @0.05"});
  for (const auto& r : cells) {
    const auto b = r.phi_boxplot();
    table.add_row({core::target_name(r.config.target),
                   fmt_double(r.phi_mean(), 4), fmt_double(b.min, 4),
                   fmt_double(b.max, 4), fmt_double(r.mean_sample_size(), 0),
                   std::to_string(r.rejections_at(0.05)) + "/" +
                       std::to_string(cfg.replications)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_flows(ArgParser& args) {
  auto t = load(args.positionals().at(0));
  if (!t) {
    std::cerr << "error: " << t.status().to_string() << "\n";
    return 1;
  }
  trace::FlowTable table(MicroDuration::from_seconds(args.get_double("timeout")));
  table.run(t->view());
  const auto s = table.stats();
  std::cout << fmt_count(s.flows) << " flows, " << fmt_count(s.packets)
            << " packets, " << fmt_count(s.bytes) << " bytes; mean "
            << fmt_double(s.mean_flow_packets, 2) << " pkts/flow\n\n";

  TextTable top({"src", "dst", "proto", "dport", "packets", "bytes", "sec"});
  for (const auto& f :
       table.top_by_packets(static_cast<std::size_t>(args.get_int("top")))) {
    top.add_row({f.key.src.to_string(), f.key.dst.to_string(),
                 net::ip_proto_name(f.key.protocol),
                 std::to_string(f.key.dst_port), fmt_count(f.packets),
                 fmt_count(f.bytes), fmt_double(f.duration().to_seconds(), 2)});
  }
  top.print(std::cout);
  return 0;
}

int cmd_design(ArgParser& args) {
  const double mu = args.get_double("mu");
  const double sigma = args.get_double("sigma");
  const double acc = args.get_double("accuracy");
  const double conf = args.get_double("confidence");
  const auto pop = static_cast<std::uint64_t>(args.get_int("population"));
  const auto p = core::plan_sample_size(mu, sigma, acc, conf, pop);
  std::cout << "to estimate a mean of " << fmt_double(mu, 1) << " (sd "
            << fmt_double(sigma, 1) << ") to +-" << fmt_double(acc, 1)
            << "% at " << fmt_double(conf * 100, 0) << "% confidence:\n"
            << "  n (infinite population) = " << fmt_count(p.n) << "\n";
  if (pop > 0) {
    std::cout << "  n (with FPC for N=" << fmt_count(pop)
              << ") = " << fmt_count(p.n_fpc) << "\n"
              << "  sampling fraction = "
              << fmt_double(100.0 * p.sampling_fraction, 3) << "%\n";
  }
  return 0;
}

int cmd_charact(ArgParser& args) {
  auto t = load(args.positionals().at(0));
  if (!t) {
    std::cerr << "error: " << t.status().to_string() << "\n";
    return 1;
  }
  const auto node = args.get_string("node") == "t1" ? charact::NodeType::kT1
                                                    : charact::NodeType::kT3;
  const auto k = static_cast<std::uint64_t>(args.get_int("k"));
  std::uint64_t counter = 0;
  charact::Selector selector;
  if (k > 1) {
    selector = [&counter, k](const trace::PacketRecord&) {
      return counter++ % k == 0;
    };
  }
  charact::CollectionAgent agent(node, selector);
  agent.run(t->view());
  std::cout << agent.reports().size() << " collection cycles\n";
  for (const auto& rep : agent.reports()) {
    std::cout << "\ncycle " << rep.cycle << ": offered "
              << fmt_count(rep.packets_offered) << ", examined "
              << fmt_count(rep.packets_examined) << "\n";
    TextTable protos({"protocol", "packets (est.)", "bytes (est.)"});
    for (const auto& [proto, vol] : rep.protocols) {
      protos.add_row({net::ip_proto_name(proto), fmt_count(vol.packets * k),
                      fmt_count(vol.bytes * k)});
    }
    protos.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  ArgParser args;
  args.add_flag("help", "", "show this help");
  // Declare the union of flags; each command reads what it needs.
  args.add_flag("minutes", "N", "trace duration in minutes", "10");
  args.add_flag("seed", "S", "RNG seed", "23");
  args.add_flag("out", "FILE", "output pcap path");
  args.add_flag("poisson", "", "disable burst structure (ablation workload)");
  args.add_flag("method", "M", "sampling method", "systematic");
  args.add_flag("k", "K", "sampling granularity (1-in-k)", "50");
  args.add_flag("reps", "R", "replications", "5");
  args.add_flag("jobs", "N",
                "worker threads for score sweeps (0 = all hardware threads, "
                "1 = serial)",
                "0");
  args.add_flag("target", "T",
                "score target: both|size|iat|ports|protocols|netmatrix",
                "both");
  args.add_flag("timeout", "SEC", "flow idle timeout seconds", "30");
  args.add_flag("top", "N", "top talkers to print", "10");
  args.add_flag("mu", "M", "population mean (design)", "232");
  args.add_flag("sigma", "S", "population stddev (design)", "236");
  args.add_flag("accuracy", "R", "accuracy percent (design)", "5");
  args.add_flag("confidence", "C", "confidence level (design)", "0.95");
  args.add_flag("population", "N", "population size, 0=infinite", "0");
  args.add_flag("node", "T", "node type: t1 or t3 (charact)", "t1");
  args.add_flag("legacy-scan", "",
                "score: force the streaming per-packet path instead of the "
                "fused bin-cache fast path (results are identical)");

  const auto status = args.parse(rest);
  if (!status.is_ok()) {
    std::cerr << "error: " << status.message() << "\n";
    return 2;
  }
  if (args.get_bool("help")) {
    std::cout << "flags for '" << cmd << "':\n" << args.help();
    return 0;
  }

  try {
    if (cmd == "generate") {
      if (!args.has("out")) {
        std::cerr << "error: generate requires --out FILE\n";
        return 2;
      }
      return cmd_generate(args);
    }
    if (cmd == "inspect" || cmd == "sample" || cmd == "score" ||
        cmd == "flows" || cmd == "charact") {
      if (args.positionals().empty()) {
        std::cerr << "error: " << cmd << " requires a pcap file argument\n";
        return 2;
      }
      if (cmd == "inspect") return cmd_inspect(args);
      if (cmd == "sample") return cmd_sample(args);
      if (cmd == "score") return cmd_score(args);
      if (cmd == "flows") return cmd_flows(args);
      return cmd_charact(args);
    }
    if (cmd == "design") return cmd_design(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
