// netsample -- command-line front end to the whole library.
//
//   netsample generate --minutes 10 --seed 23 --out trace.pcap [--poisson]
//   netsample inspect  trace.pcap
//   netsample sample   trace.pcap --method systematic --k 50 --out out.pcap
//   netsample score    trace.pcap --method systematic --k 50 [--reps 5]
//   netsample flows    trace.pcap [--timeout 30] [--top 10]
//   netsample flows    trace.pcap --sweep [--estimators rescale,em]
//                      [--grid-k 10,100,1000] [--flow-cap N] [--workers N]
//   netsample design   --mu 232 --sigma 236 --accuracy 5 [--population N]
//   netsample charact  trace.pcap [--node t1|t3] [--k 50]
//   netsample impair   trace.pcap --method systematic --k 50 [--fault all]
//   netsample watch    trace.pcap --method systematic --k 50 --window 5
//   netsample serve    [--listen 127.0.0.1:0] [--lanes N] [--max-sessions N]
//   netsample loadgen  trace.pcap --connect HOST:PORT [--sessions N]
//   netsample stats    metrics.json [--masked]
//   netsample sweep    trace.pcap [--workers N] [--resume journal.ckpt]
//   netsample worker   --store trace.nstore   (spawned by sweep, not users)
//   netsample journal  compact journal.ckpt
//
// score/impair (and the figure binaries) accept --metrics-out FILE /
// --trace-out FILE to export an observability snapshot of the run;
// `netsample stats` pretty-prints one, and with --masked emits the
// deterministic-only JSON that golden tests diff (docs/OBSERVABILITY.md).
//
// Every subcommand is a thin veneer over the public API; see examples/ for
// annotated versions of the same flows.
//
// Exit codes follow the sysexits convention (see docs/ROBUSTNESS.md):
//   0 success, 64 usage / bad input, 65 data loss (corrupt capture),
//   70 internal failure, 75 deadline exceeded or cancelled.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "netsample/netsample.h"
#include "tools/cli_args.h"

using namespace netsample;

namespace {

// sysexits-style mapping so scripts can distinguish "your fault" (64),
// "your data's fault" (65), "our fault" (70), and "ran out of time" (75).
constexpr int kExitUsage = 64;
constexpr int kExitDataLoss = 65;
constexpr int kExitInternal = 70;
constexpr int kExitDeadline = 75;

int exit_code_for(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound: return kExitUsage;
    case StatusCode::kDataLoss: return kExitDataLoss;
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal: return kExitInternal;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded: return kExitDeadline;
  }
  return kExitInternal;
}

int fail(const Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return exit_code_for(status);
}

int usage() {
  std::cout <<
      "netsample -- packet sampling methodology toolkit\n"
      "usage: netsample <command> [args]\n\n"
      "commands:\n"
      "  generate   synthesize a calibrated SDSC-like trace to a pcap file\n"
      "  inspect    summarize a pcap capture (Tables 2/3 style)\n"
      "  sample     draw a sampled sub-trace and write it as pcap\n"
      "  score      score a sampling discipline against the capture (phi)\n"
      "  flows      assemble 5-tuple flows and print top talkers; with\n"
      "             --sweep, run the sampled-flow inversion workload\n"
      "  design     Cochran sample-size planning\n"
      "  charact    run the NSFNET characterization objects\n"
      "  impair     sweep measurement impairments and report phi degradation\n"
      "  watch      stream a capture and emit windowed phi snapshots\n"
      "  serve      multi-tenant streaming scoring daemon: watch sessions\n"
      "             multiplexed over TCP with per-tenant budgets\n"
      "  loadgen    replay a capture as N concurrent serve sessions and\n"
      "             assert latency and cross-session determinism\n"
      "  stats      pretty-print a --metrics-out JSON snapshot\n"
      "  sweep      score the whole method x k grid, optionally sharded\n"
      "             over --workers N processes on a memory-mapped store\n"
      "  worker     sharded-sweep worker (spawned by sweep; speaks the\n"
      "             lease protocol on stdin/stdout)\n"
      "  journal    maintain checkpoint journals (journal compact FILE)\n"
      "run 'netsample <command> --help' for flags.\n";
  return kExitUsage;
}

/// Load a capture honoring --strict / --salvage, surfacing every counter the
/// parse and decode produced so a dirty capture is never silently "fine".
/// `out` lets machine-readable commands (impair --csv) divert the human
/// summary to stderr and keep stdout pure.
StatusOr<trace::Trace> load(const std::string& path, const ArgParser& args,
                            std::ostream& out = std::cout) {
  pcap::ParseOptions options;
  if (args.get_bool("strict")) options.on_corrupt = pcap::OnCorrupt::kFail;
  if (args.get_bool("salvage")) options.on_corrupt = pcap::OnCorrupt::kSalvage;
  pcap::ParseStats parse_stats;
  pcap::DecodeStats stats;
  auto t = pcap::read_trace(path, options, &parse_stats, &stats);
  if (t) {
    out << path << ": " << fmt_count(stats.decoded) << " IPv4 packets ("
        << stats.non_ipv4 << " non-IPv4, " << stats.malformed
        << " malformed skipped)\n";
    if (!parse_stats.clean()) {
      out << "  data loss: " << parse_stats.corrupt_records
          << " corrupt records, " << parse_stats.skipped_bytes
          << " bytes skipped resyncing, " << parse_stats.torn_tail_bytes
          << " torn tail bytes\n";
    }
  }
  return t;
}

/// Translate --on-error / --retries / --cell-timeout / --resume into sweep
/// RunOptions. The journal (when --resume is given) is owned by the caller
/// so it outlives the run.
exper::RunOptions sweep_options(const ArgParser& args,
                                exper::CheckpointJournal* journal) {
  exper::RunOptions opts;
  const std::string policy = args.get_string("on-error");
  if (policy == "abort") {
    opts.on_error = exper::FailPolicy::kAbort;
  } else if (policy == "skip") {
    opts.on_error = exper::FailPolicy::kSkip;
  } else if (policy == "retry") {
    opts.on_error = exper::FailPolicy::kRetry;
  } else {
    throw std::invalid_argument("unknown --on-error '" + policy +
                                "' (abort|skip|retry)");
  }
  opts.max_attempts = 1 + static_cast<int>(args.get_int("retries"));
  opts.cell_timeout_seconds = args.get_double("cell-timeout");
  opts.journal = journal;
  return opts;
}

core::Method parse_method(const std::string& name) {
  if (name == "systematic") return core::Method::kSystematicCount;
  if (name == "stratified") return core::Method::kStratifiedCount;
  if (name == "random") return core::Method::kSimpleRandom;
  if (name == "timer-systematic") return core::Method::kSystematicTimer;
  if (name == "timer-stratified") return core::Method::kStratifiedTimer;
  throw std::invalid_argument(
      "unknown method '" + name +
      "' (systematic|stratified|random|timer-systematic|timer-stratified)");
}

int cmd_generate(ArgParser& args) {
  const double minutes = args.get_double("minutes");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string out = args.get_string("out");

  if (args.get_bool("flow-mix") && args.get_bool("poisson")) {
    std::cerr << "error: --flow-mix and --poisson are mutually exclusive "
                 "(one adds flow-train structure, the other removes it)\n";
    return kExitUsage;
  }
  auto cfg = args.get_bool("flow-mix")
                 ? synth::flow_mix_minutes_config(minutes, seed)
                 : synth::sdsc_minutes_config(minutes, seed);
  if (args.get_bool("poisson")) cfg = synth::poissonified(cfg);
  synth::TraceModel model(cfg);
  const auto t = model.generate();
  const auto status = pcap::write_trace(out, t, 128);
  if (!status.is_ok()) return fail(status);
  std::cout << "wrote " << fmt_count(t.size()) << " packets ("
            << fmt_double(t.view().duration().to_seconds(), 1) << " s) to "
            << out << "\n";
  return 0;
}

int cmd_inspect(ArgParser& args) {
  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  const auto pop = trace::summarize_population(t->view());
  const auto ps = trace::summarize_per_second(t->view());
  TextTable table({"distribution", "min", "5%", "25%", "median", "75%", "95%",
                   "max", "mean", "stddev"});
  auto add = [&](const std::string& name, const stats::Summary& s, int prec) {
    table.add_row({name, fmt_double(s.min, prec), fmt_double(s.p5, prec),
                   fmt_double(s.q1, prec), fmt_double(s.median, prec),
                   fmt_double(s.q3, prec), fmt_double(s.p95, prec),
                   fmt_double(s.max, prec), fmt_double(s.mean, 1),
                   fmt_double(s.stddev, 1)});
  };
  add("packet size (B)", pop.packet_size, 0);
  add("interarrival (us)", pop.interarrival, 0);
  add("packets/s", ps.packet_rate, 0);
  add("kB/s", ps.kilobyte_rate, 1);
  add("mean pkt size (B)", ps.mean_packet_size, 0);
  table.print(std::cout);
  return 0;
}

int cmd_sample(ArgParser& args) {
  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  exper::Experiment ex(std::move(*t));

  core::SamplerSpec spec;
  spec.method = parse_method(args.get_string("method"));
  spec.granularity = static_cast<std::uint64_t>(args.get_int("k"));
  spec.population = ex.population_size();
  spec.mean_interarrival_usec = ex.mean_interarrival_usec();
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  auto sampler = core::make_sampler(spec);

  const auto sample = core::draw(ex.full(), *sampler);
  trace::Trace sampled(sample.packets());
  std::cout << sampler->name() << " selected " << fmt_count(sampled.size())
            << " of " << fmt_count(ex.population_size()) << " packets ("
            << fmt_double(100.0 * sample.fraction(), 3) << "%)\n";
  if (args.has("out")) {
    const std::string out = args.get_string("out");
    const auto status = pcap::write_trace(out, sampled, 128);
    if (!status.is_ok()) return fail(status);
    std::cout << "wrote sampled trace to " << out << "\n";
  }
  return 0;
}

int cmd_score(ArgParser& args, const tools::CommonOptions& common) {
  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  exper::Experiment ex(std::move(*t));

  exper::CellConfig cfg;
  cfg.method = parse_method(args.get_string("method"));
  cfg.granularity = static_cast<std::uint64_t>(args.get_int("k"));
  cfg.interval = ex.full();
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.replications = static_cast<int>(args.get_int("reps"));
  cfg.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  cfg.cache = &ex.binned_cache();

  const std::string which = args.get_string("target");

  // Proportion-based (Section 8) targets score through the categorical
  // machinery; "both" / "size" / "iat" use the paper's histogram targets.
  if (which == "ports" || which == "protocols" || which == "netmatrix") {
    const auto key_fn = which == "ports"       ? core::service_port_key()
                        : which == "protocols" ? core::protocol_key()
                                               : core::network_pair_key();
    const core::CategoricalTarget target(which, key_fn, cfg.interval);
    TextTable table({"replication", "phi", "chi2 sig", "coverage %"});
    for (int r = 0; r < cfg.replications; ++r) {
      auto sampler = core::make_sampler(exper::replication_spec(cfg, r));
      const auto sample = core::draw(cfg.interval, *sampler);
      const auto counts = target.sample_counts(sample);
      const auto m =
          core::score_counts(counts, target.population_counts(),
                             1.0 / static_cast<double>(cfg.granularity));
      table.add_row({std::to_string(r), fmt_double(m.phi, 4),
                     fmt_double(m.significance, 4),
                     fmt_double(100.0 * target.coverage(counts), 1)});
    }
    std::cout << which << ": " << target.category_count()
              << " categories in the population\n";
    table.print(std::cout);
    return 0;
  }

  // The histogram targets are independent grid cells; fan them out over the
  // parallel runner. Seeds derive from cell coordinates, so the scores are
  // identical at every --jobs level.
  std::vector<exper::GridTask> tasks;
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    if (which == "size" && target != core::Target::kPacketSize) continue;
    if (which == "iat" && target != core::Target::kInterarrivalTime) continue;
    cfg.target = target;
    tasks.push_back({cfg, 0});
  }
  exper::CheckpointJournal journal;
  exper::RunOptions ropts = sweep_options(args, nullptr);
  if (args.has("resume")) {
    auto opened = exper::CheckpointJournal::open(args.get_string("resume"));
    if (!opened) return fail(opened.status());
    journal = std::move(*opened);
    std::cout << "journal " << journal.path() << ": " << journal.size()
              << " cells already complete";
    if (journal.dropped_lines() > 0) {
      std::cout << " (" << journal.dropped_lines() << " torn lines dropped)";
    }
    std::cout << "\n";
    ropts.journal = &journal;
  }

  exper::ParallelRunner runner(common.jobs);
  // The unified presentation path: RunReport -> Result<T> -> emit. The same
  // rows render as CSV/JSON lines for any machine consumer of the facade.
  const auto result = as_result(runner.run(tasks, cfg.base_seed, ropts));
  emit(result.rows, RowFormat::kAligned, std::cout);
  for (const std::size_t i : result->quarantined()) {
    std::cerr << "quarantined: cell " << i << " ("
              << core::target_name(tasks[i].config.target) << ") after "
              << result->cells[i].attempts << " attempt(s): "
              << result->cells[i].status.to_string() << "\n";
  }
  if (!result.ok()) return fail(result.status);
  return 0;
}

int cmd_impair(ArgParser& args) {
  const bool csv = args.get_bool("csv");
  // In CSV mode stdout carries nothing but the header and data rows; the
  // human-facing summary moves to stderr.
  std::ostream& info = csv ? std::cerr : std::cout;
  auto loaded = load(args.positionals().at(0), args, info);
  if (!loaded) return fail(loaded.status());
  const trace::Trace clean = std::move(*loaded);
  const auto method = parse_method(args.get_string("method"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // Which faults to sweep.
  std::vector<faultsim::Fault> faults;
  const std::string fault_arg = args.get_string("fault");
  if (fault_arg == "all") {
    faults = faultsim::all_faults();
  } else {
    auto parsed = faultsim::parse_fault(fault_arg);
    if (!parsed) return fail(parsed.status());
    faults.push_back(*parsed);
  }

  // Intensity ladder: comma-separated per-record probabilities.
  std::vector<double> intensities;
  {
    std::string list = args.get_string("intensity");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = std::min(list.find(',', pos), list.size());
      const std::string item = list.substr(pos, comma - pos);
      if (!item.empty()) intensities.push_back(std::stod(item));
      pos = comma + 1;
    }
    if (intensities.empty()) {
      throw std::invalid_argument("--intensity needs at least one value");
    }
  }

  // Scoring harness: mean phi of `reps` replications against the packet-size
  // target. Impaired traces differ per (fault, intensity), so each gets its
  // own streaming-path cell (no shared bin cache to build and discard).
  const auto score_phi = [&](const trace::Trace& t) {
    exper::CellConfig cfg;
    cfg.method = method;
    cfg.target = core::Target::kPacketSize;
    cfg.granularity = static_cast<std::uint64_t>(args.get_int("k"));
    cfg.interval = t.view();
    cfg.mean_interarrival_usec =
        trace::summarize_population(t.view()).interarrival.mean;
    cfg.replications = static_cast<int>(args.get_int("reps"));
    cfg.base_seed = seed;
    return exper::run_cell(cfg).phi_mean();
  };
  const double baseline = score_phi(clean);
  info << "clean capture: " << fmt_count(clean.size())
       << " packets, baseline mean phi " << fmt_double(baseline, 4) << " ("
       << args.get_string("method") << ", k=" << args.get_int("k") << ")\n";
  // One Table for both presentations: aligned text for humans, CSV (same
  // columns, same cells) for machines. The loss counters that used to be
  // CSV-only are worth seeing in the human table too.
  Table table;
  table.columns = {"fault",      "intensity",       "affected",
                   "packets",    "clamped",         "quarantined",
                   "corrupt_records", "skipped_bytes", "phi", "delta_phi"};
  for (const faultsim::Fault fault : faults) {
    for (const double intensity : intensities) {
      faultsim::ImpairmentSpec spec;
      spec.fault = fault;
      spec.intensity = intensity;
      spec.seed = derive_seed({seed, static_cast<std::uint64_t>(fault)});

      trace::Trace impaired;
      faultsim::ImpairmentReport rep;
      trace::AppendStats astats;
      pcap::ParseStats pstats;
      if (fault == faultsim::Fault::kTruncateRecords ||
          fault == faultsim::Fault::kBitFlips) {
        // Byte-level: corrupt the serialized capture, then ingest it back
        // through the salvage path exactly as a tool reading a damaged file
        // would.
        auto bytes = pcap::serialize(pcap::encode(clean, 128));
        rep = faultsim::impair_pcap_bytes(bytes, spec);
        pcap::ParseOptions popts;
        popts.on_corrupt = pcap::OnCorrupt::kSalvage;
        auto parsed = pcap::parse(bytes, popts, &pstats);
        if (!parsed) return fail(parsed.status());
        impaired = pcap::decode(*parsed);
      } else {
        impaired =
            faultsim::impair_trace(clean, spec, trace::TimePolicy::kClamp,
                                   &rep, &astats);
      }
      const double phi = impaired.size() > 1
                             ? score_phi(impaired)
                             : std::numeric_limits<double>::quiet_NaN();
      table.add_row({faultsim::fault_name(fault), fmt_double(intensity, 3),
                     std::to_string(rep.affected),
                     std::to_string(impaired.size()),
                     std::to_string(astats.clamped),
                     std::to_string(astats.quarantined),
                     std::to_string(pstats.corrupt_records),
                     std::to_string(pstats.skipped_bytes),
                     fmt_double(phi, 4), fmt_double(phi - baseline, 4)});
    }
  }
  emit(table, csv ? RowFormat::kCsv : RowFormat::kAligned, std::cout);
  return 0;
}

/// Session description shared by `watch`, `serve` defaults, and `loadgen`:
/// the watch flag vocabulary maps 1:1 onto the facade's SessionSpec (API
/// v1.1), and the one validator behind watch and serve OPEN runs here — a
/// bad combination is kInvalidArgument (exit 64) before any capture opens.
SessionSpec session_spec_from_args(const ArgParser& args) {
  SessionSpec spec;
  spec.method = parse_method(args.get_string("method"));
  spec.granularity = static_cast<std::uint64_t>(args.get_int("k"));
  spec.replications = static_cast<int>(args.get_int("reps"));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  spec.targets = args.get_string("target");
  spec.window_s = args.get_double("window");
  spec.stride_s = args.get_double("stride");
  spec.population = static_cast<std::uint64_t>(args.get_int("population"));
  spec.mean_iat_usec = args.get_double("mean-iat");
  spec.chunk_packets = static_cast<std::size_t>(args.get_int("chunk"));
  spec.ring_capacity = static_cast<std::size_t>(args.get_int("ring"));
  spec.deadline_s = args.get_double("deadline");
  spec.tenant = args.get_string("tenant");
  const Status status = validate_session_spec(spec);
  if (!status.is_ok()) throw StatusError(status);
  return spec;
}

/// `netsample watch` — the streaming scorer on a capture: the pcap is
/// decoded record-at-a-time through the SPSC pipeline into a stream::Engine,
/// which emits one row per (window, lane) as snapshots tick by. Memory is
/// O(window), never O(trace); stdout carries nothing but the rows.
///
/// Since API v1.1 the engine is built entirely from a SessionSpec — the same
/// struct `serve` decodes from an OPEN line — so a serve session's ROWS
/// payloads are byte-identical to this subcommand's jsonl by construction.
int cmd_watch(ArgParser& args) {
  const std::string format = args.get_string("format");
  if (format != "jsonl" && format != "csv") {
    throw std::invalid_argument("unknown --format '" + format +
                                "' (jsonl|csv)");
  }
  const SessionSpec spec = session_spec_from_args(args);

  util::CancelToken cancel;
  cancel.set_deadline_after(spec.deadline_s);
  stream::Engine engine(session_lanes(spec),
                        session_engine_options(spec, &cancel));

  const std::vector<std::string>& columns = session_row_columns();
  if (format == "csv") std::cout << csv_line(columns) << "\n";
  const auto emit_score = [&](const stream::WindowScore& w) {
    for (const auto& cells : session_row_cells(w)) {
      std::cout << (format == "csv" ? csv_line(cells)
                                    : json_line(columns, cells))
                << "\n";
    }
  };
  engine.on_snapshot(emit_score);

  stream::PcapSource source(args.positionals().at(0));
  if (!source.ok()) return fail(source.status());

  stream::PipelineOptions popts;
  popts.chunk_packets = spec.chunk_packets;
  popts.ring_capacity = spec.ring_capacity;
  popts.cancel = &cancel;
  const auto report = stream::run_pipeline(source, engine, popts);
  if (!report.status.is_ok()) return fail(report.status);
  emit_score(engine.finish());

  // Stream health goes to stderr so the machine rows on stdout stay pure.
  const auto& ds = source.decode_stats();
  std::cerr << args.positionals().at(0) << ": " << fmt_count(report.packets)
            << " packets in " << fmt_count(report.chunks) << " chunks ("
            << ds.non_ipv4 << " non-IPv4, " << ds.malformed << " malformed, "
            << source.clamped() << " clamped timestamps); ring peak "
            << report.ring.occupancy_peak << "/" << popts.ring_capacity
            << ", blocked pushes " << report.ring.blocked_pushes << "\n";
  return 0;
}

// `serve` leaves cleanly on SIGTERM/SIGINT: the handlers only raise a flag,
// the daemon's poll loop notices it via ServeOptions::stop_check and drains
// every open session (final ROWS + CLOSED) before run() returns — the same
// discipline as the sharded worker's clean departure.
volatile std::sig_atomic_t g_serve_stop = 0;
void serve_stop_handler(int) { g_serve_stop = 1; }

/// Installs the drain-on-signal handlers for the lifetime of a serve run.
/// No SA_RESTART: poll() must wake with EINTR so the flag is seen promptly.
/// SIGPIPE is ignored for the whole process — a client that disconnects
/// mid-write must surface as EPIPE on that transport, not kill the daemon.
class ServeSignalGuard {
 public:
  ServeSignalGuard() {
    g_serve_stop = 0;
    struct sigaction sa{};
    sa.sa_handler = serve_stop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
    std::signal(SIGPIPE, SIG_IGN);
  }
  ~ServeSignalGuard() {
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
  }

 private:
  struct sigaction old_term_{};
  struct sigaction old_int_{};
};

/// `netsample serve` — the multi-tenant streaming scoring daemon
/// (docs/SERVING.md): sessions arrive over TCP as OPEN lines carrying an
/// encoded SessionSpec, each one scored by a per-session engine fed from a
/// bounded ring and drained on a shared lane pool. --max-sessions /
/// --max-ring-bytes / --max-pps set the default per-tenant budget (0 =
/// unlimited). Prints `listening HOST:PORT` to stdout (flushed) once bound
/// so scripts can parse the ephemeral port, then serves until
/// SIGTERM/SIGINT and exits 0 after the drain.
int cmd_serve(ArgParser& args) {
  serve::ServeOptions sopts;
  sopts.listen = args.get_string("listen");
  sopts.lanes = static_cast<std::size_t>(
      tools::checked_count("--lanes", args.get_string("lanes"), 4096));
  sopts.default_budget.max_sessions = static_cast<std::size_t>(
      tools::checked_count("--max-sessions", args.get_string("max-sessions"),
                           1000000000));
  sopts.default_budget.max_ring_bytes = static_cast<std::size_t>(
      tools::checked_count("--max-ring-bytes",
                           args.get_string("max-ring-bytes"), 2000000000));
  sopts.default_budget.max_pps =
      tools::checked_seconds("--max-pps", args.get_string("max-pps"), 1e12);
  sopts.stop_check = [] { return g_serve_stop != 0; };

  serve::Server server(std::move(sopts));
  server.start();  // StatusError on a bad/busy bind (exit 64)
  std::cout << "listening " << server.address() << "\n" << std::flush;

  ServeSignalGuard signals;
  server.run();

  const serve::ServeStats s = server.stats();
  std::cerr << "serve: " << s.sessions_opened << " opened, "
            << s.sessions_closed << " closed, " << s.sessions_rejected
            << " rejected, " << s.sessions_shed << " shed; "
            << fmt_count(s.packets) << " packets in, " << fmt_count(s.rows)
            << " rows out\n";
  return 0;
}

/// `netsample loadgen` — drive a running serve daemon with N concurrent
/// sessions replaying the capture and assert the serving contract: every
/// un-shed session reaches CLOSED, sessions sharing a seed group emit
/// byte-identical rows however the daemon interleaved them, and (with
/// --p99-ms) the p99 CLOSE->CLOSED latency stays under the bound. The
/// capture is read through stream::PcapSource so the packet sequence —
/// clamping rule included — is exactly what `watch` scores, which is what
/// makes --dump-rows byte-diffable against a watch run.
int cmd_loadgen(ArgParser& args) {
  if (!args.has("connect")) {
    std::cerr << "error: loadgen requires --connect HOST:PORT (a running "
                 "`netsample serve`)\n";
    return kExitUsage;
  }
  serve::LoadgenOptions lopts;
  lopts.connect = args.get_string("connect");
  auto hp = shard::parse_host_port(lopts.connect);
  if (!hp.has_value()) return fail(hp.status());
  lopts.sessions = static_cast<std::size_t>(
      tools::checked_count("--sessions", args.get_string("sessions"),
                           1000000));
  lopts.connections = static_cast<std::size_t>(
      tools::checked_count("--connections", args.get_string("connections"),
                           100000));
  lopts.seed_groups = static_cast<std::size_t>(
      tools::checked_count("--seed-groups", args.get_string("seed-groups"),
                           1000000));
  lopts.feed_packets = static_cast<std::size_t>(
      tools::checked_count("--feed-chunk", args.get_string("feed-chunk"),
                           1000000000));
  if (lopts.sessions == 0 || lopts.connections == 0 ||
      lopts.seed_groups == 0 || lopts.feed_packets == 0) {
    throw std::invalid_argument(
        "loadgen --sessions/--connections/--seed-groups/--feed-chunk must "
        "be >= 1");
  }
  lopts.p99_ms =
      tools::checked_seconds("--p99-ms", args.get_string("p99-ms"), 1e9);
  if (args.has("dump-rows")) lopts.dump_rows_path = args.get_string("dump-rows");
  lopts.close_sessions = !args.get_bool("no-close");
  lopts.spec = session_spec_from_args(args);
  // --deadline bounds the whole drill (daemons that wedge must fail it),
  // not each session: a per-session deadline would shed under load and
  // make the latency assertion vacuous.
  const double deadline = args.get_double("deadline");
  if (deadline > 0) lopts.timeout_s = deadline;
  lopts.spec.deadline_s = 0;

  std::vector<trace::PacketRecord> packets;
  {
    stream::PcapSource source(args.positionals().at(0));
    if (!source.ok()) return fail(source.status());
    std::vector<trace::PacketRecord> chunk;
    while (true) {
      chunk.clear();
      if (!source.next_chunk(4096, chunk)) break;
      packets.insert(packets.end(), chunk.begin(), chunk.end());
    }
    if (!source.status().is_ok()) return fail(source.status());
  }

  std::signal(SIGPIPE, SIG_IGN);  // daemon death -> report, not our death
  const serve::LoadgenReport report = serve::run_loadgen(lopts, packets);
  std::cerr << "loadgen: " << report.completed << "/" << report.sessions
            << " sessions closed, " << report.shed << " shed, "
            << report.rejected << " rejected, " << fmt_count(report.rows)
            << " rows; p99 " << fmt_double(report.p99_ms, 2) << " ms, max "
            << fmt_double(report.max_ms, 2) << " ms, "
            << (report.deterministic ? "deterministic" : "NONDETERMINISTIC")
            << "\n";
  if (!report.ok) {
    std::cerr << "error: loadgen: " << report.error << "\n";
    return kExitInternal;
  }
  return 0;
}

/// `netsample flows` without --sweep: assemble every flow and print the top
/// talkers (the original behavior of the subcommand).
int flow_top_talkers(ArgParser& args) {
  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  trace::FlowTable table(MicroDuration::from_seconds(args.get_double("timeout")));
  table.run(t->view());
  const auto s = table.stats();
  std::cout << fmt_count(s.flows) << " flows, " << fmt_count(s.packets)
            << " packets, " << fmt_count(s.bytes) << " bytes; mean "
            << fmt_double(s.mean_flow_packets, 2) << " pkts/flow\n\n";

  TextTable top({"src", "dst", "proto", "dport", "packets", "bytes", "sec"});
  for (const auto& f :
       table.top_by_packets(static_cast<std::size_t>(args.get_int("top")))) {
    top.add_row({f.key.src.to_string(), f.key.dst.to_string(),
                 net::ip_proto_name(f.key.protocol),
                 std::to_string(f.key.dst_port), fmt_count(f.packets),
                 fmt_count(f.bytes), fmt_double(f.duration().to_seconds(), 2)});
  }
  top.print(std::cout);
  return 0;
}

int cmd_design(ArgParser& args) {
  const double mu = args.get_double("mu");
  const double sigma = args.get_double("sigma");
  const double acc = args.get_double("accuracy");
  const double conf = args.get_double("confidence");
  const auto pop = static_cast<std::uint64_t>(args.get_int("population"));
  const auto p = core::plan_sample_size(mu, sigma, acc, conf, pop);
  std::cout << "to estimate a mean of " << fmt_double(mu, 1) << " (sd "
            << fmt_double(sigma, 1) << ") to +-" << fmt_double(acc, 1)
            << "% at " << fmt_double(conf * 100, 0) << "% confidence:\n"
            << "  n (infinite population) = " << fmt_count(p.n) << "\n";
  if (pop > 0) {
    std::cout << "  n (with FPC for N=" << fmt_count(pop)
              << ") = " << fmt_count(p.n_fpc) << "\n"
              << "  sampling fraction = "
              << fmt_double(100.0 * p.sampling_fraction, 3) << "%\n";
  }
  return 0;
}

int cmd_charact(ArgParser& args) {
  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  const auto node = args.get_string("node") == "t1" ? charact::NodeType::kT1
                                                    : charact::NodeType::kT3;
  const auto k = static_cast<std::uint64_t>(args.get_int("k"));
  std::uint64_t counter = 0;
  charact::Selector selector;
  if (k > 1) {
    selector = [&counter, k](const trace::PacketRecord&) {
      return counter++ % k == 0;
    };
  }
  charact::CollectionAgent agent(node, selector);
  agent.run(t->view());
  std::cout << agent.reports().size() << " collection cycles\n";
  for (const auto& rep : agent.reports()) {
    std::cout << "\ncycle " << rep.cycle << ": offered "
              << fmt_count(rep.packets_offered) << ", examined "
              << fmt_count(rep.packets_examined) << "\n";
    TextTable protos({"protocol", "packets (est.)", "bytes (est.)"});
    for (const auto& [proto, vol] : rep.protocols) {
      protos.add_row({net::ip_proto_name(proto), fmt_count(vol.packets * k),
                      fmt_count(vol.bytes * k)});
    }
    protos.print(std::cout);
  }
  return 0;
}

int cmd_stats(ArgParser& args) {
  const std::string path = args.positionals().at(0);
  std::ifstream in(path);
  if (!in) {
    return fail(Status(StatusCode::kNotFound,
                       "stats: cannot open '" + path + "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  if (args.get_bool("masked")) {
    // Deterministic-only JSON: what golden/cross-jobs diffs compare.
    std::cout << obs::masked_json(json);
  } else {
    std::cout << obs::pretty_metrics(json);
  }
  return 0;
}

/// Comma-separated u64 list ("2,4,8"); throws on empties and zeros.
std::vector<std::uint64_t> parse_k_list(const std::string& list) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string item = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto v = std::stoull(item);
    if (v == 0) throw std::invalid_argument("--grid-k: k must be >= 1");
    out.push_back(v);
  }
  if (out.empty()) {
    throw std::invalid_argument("--grid-k needs at least one granularity");
  }
  return out;
}

/// Apply --methods to a spec: "all" keeps the default 5, otherwise a
/// comma-separated token list replaces them. Throws on empties/unknowns.
void apply_methods_flag(const ArgParser& args, shard::SweepSpec* spec) {
  const std::string methods = args.get_string("methods");
  if (methods == "all") return;
  spec->methods.clear();
  std::size_t pos = 0;
  while (pos <= methods.size()) {
    const std::size_t comma = std::min(methods.find(',', pos), methods.size());
    const std::string item = methods.substr(pos, comma - pos);
    pos = comma + 1;
    if (!item.empty()) spec->methods.push_back(shard::parse_method_token(item));
  }
  if (spec->methods.empty()) {
    throw std::invalid_argument("--methods needs at least one method");
  }
}

/// The sweep grid requested on the command line: the full paper grid pruned
/// by --target / --methods / --grid-k.
shard::SweepSpec sweep_spec_from_args(const ArgParser& args) {
  shard::SweepSpec spec = shard::default_sweep_spec();
  spec.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  spec.replications = static_cast<int>(args.get_int("reps"));
  const std::string which = args.get_string("target");
  if (which == "size") {
    spec.targets = {core::Target::kPacketSize};
  } else if (which == "iat") {
    spec.targets = {core::Target::kInterarrivalTime};
  } else if (which != "both") {
    throw std::invalid_argument("sweep --target must be both|size|iat");
  }
  apply_methods_flag(args, &spec);
  const std::string ks = args.get_string("grid-k");
  if (ks != "ladder") spec.granularities = parse_k_list(ks);
  return spec;
}

/// The flow-workload grid of `netsample flows --sweep`: estimators x methods
/// x granularities, with the flow-table/inversion parameters attached.
shard::SweepSpec flow_spec_from_args(const ArgParser& args) {
  shard::SweepSpec spec = shard::default_sweep_spec();
  spec.workload = shard::Workload::kFlow;
  // Placeholder target: required by the spec codec, ignored by flow cells.
  spec.targets = {core::Target::kPacketSize};
  spec.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  spec.replications = static_cast<int>(args.get_int("reps"));
  apply_methods_flag(args, &spec);
  const std::string ks = args.get_string("grid-k");
  spec.granularities = ks == "ladder" ? flow::flow_ladder() : parse_k_list(ks);

  const std::string estimators = args.get_string("estimators");
  std::size_t pos = 0;
  while (pos <= estimators.size()) {
    const std::size_t comma =
        std::min(estimators.find(',', pos), estimators.size());
    const std::string item = estimators.substr(pos, comma - pos);
    pos = comma + 1;
    if (!item.empty()) {
      spec.estimators.push_back(flow::parse_estimator_token(item));
    }
  }
  if (spec.estimators.empty()) {
    throw std::invalid_argument("--estimators needs at least one of rescale|em");
  }

  const double timeout_s = args.get_double("timeout");
  if (!(timeout_s > 0.0)) {
    throw std::invalid_argument("flows --timeout must be > 0 seconds");
  }
  spec.flow.idle_timeout_usec = static_cast<std::uint64_t>(timeout_s * 1e6);
  spec.flow.capacity = static_cast<std::uint64_t>(tools::checked_count(
      "--flow-cap", args.get_string("flow-cap"), 1000000000));
  const int em_iters = tools::checked_count("--em-iters",
                                            args.get_string("em-iters"), 100000);
  if (em_iters == 0) {
    throw std::invalid_argument("--em-iters must be >= 1");
  }
  spec.flow.em_iters = em_iters;
  return spec;
}

/// Path of the running binary, for respawning ourselves as `netsample
/// worker` (argv[0] may be bare and $PATH-relative; the exec must not be).
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

/// The validated sharding vocabulary, read up front so a malformed flag is
/// a usage error (64) before any capture is parsed or store written.
struct ShardFlags {
  int workers{0};
  int chaos{0};
  int max_respawns{0};
  int depart{0};
  int connect_retries{0};
  double heartbeat{0};
  double lease_timeout{0};
  std::string transport;
  std::string listen;
  std::string netfault;
};

/// Throws std::invalid_argument / StatusError on malformed flags — both map
/// to exit 64 in main().
ShardFlags shard_flags_from_args(const ArgParser& args) {
  ShardFlags f;
  f.workers =
      tools::checked_count("--workers", args.get_string("workers"), 4096);
  f.chaos = tools::checked_count(
      "--chaos-kill-after", args.get_string("chaos-kill-after"), 1000000000);
  f.max_respawns = tools::checked_count(
      "--max-respawns", args.get_string("max-respawns"), 1000000000);
  f.depart = tools::checked_count(
      "--depart-after", args.get_string("depart-after"), 1000000000);
  f.heartbeat = tools::checked_seconds(
      "--heartbeat-interval", args.get_string("heartbeat-interval"), 3600.0);
  f.lease_timeout = tools::checked_seconds(
      "--lease-timeout", args.get_string("lease-timeout"), 3600.0);
  f.connect_retries = tools::checked_count(
      "--connect-retries", args.get_string("connect-retries"), 1000);
  f.transport = args.get_string("transport");
  if (f.transport != "pipe" && f.transport != "socket") {
    throw std::invalid_argument("--transport must be pipe or socket, got \"" +
                                f.transport + "\"");
  }
  f.listen = args.get_string("listen");
  if (f.transport == "socket") {
    auto hp = shard::parse_host_port(f.listen);
    if (!hp.has_value()) throw StatusError(hp.status());
  }
  if (args.has("netfault")) {
    f.netfault = args.get_string("netfault");
    // Validate the schedule coordinator-side so a typo is a usage error
    // here, not a kInternal after W workers die trying to parse it.
    auto nf = faultsim::parse_netfault_spec(f.netfault);
    if (!nf.has_value()) throw StatusError(nf.status());
  }
  return f;
}

/// Run `spec` sharded over f.workers processes and re-dress the shard
/// outcomes as an exper::RunReport so the table renders through the exact
/// same code path as the in-process run (byte-identical output). Throws
/// StatusError on store/coordinator failure. Scheduling facts (store reuse,
/// leases, respawns) go to stderr so stdout stays byte-diffable across
/// worker counts.
exper::RunReport run_sharded_report(const shard::SweepSpec& spec,
                                    const std::vector<exper::GridTask>& grid,
                                    exper::Experiment& ex,
                                    const ShardFlags& f, const ArgParser& args,
                                    const char* argv0,
                                    exper::CheckpointJournal* journal) {
  const std::string store_path = args.has("store")
                                     ? args.get_string("store")
                                     : args.positionals().at(0) + ".nstore";
  shard::StoreBackend& backend =
      shard::store_backend(args.get_string("store-backend"));
  // Amortization: a valid store for this population is reused as-is; the
  // trace is re-binned and re-serialized only when none exists yet.
  bool wrote_store = false;
  {
    auto existing = shard::TraceStore::open(store_path, backend);
    if (!existing.has_value() ||
        existing->packet_count() != ex.population_size()) {
      const double mean_size =
          trace::summarize_population(ex.full()).packet_size.mean;
      const Status st = shard::write_trace_store(
          store_path, ex.binned_cache(), ex.mean_interarrival_usec(),
          mean_size);
      if (!st.is_ok()) throw StatusError(st);
      wrote_store = true;
    }
  }
  std::cerr << "store: " << (wrote_store ? "wrote " : "reusing ") << store_path
            << "\n";

  shard::CoordinatorOptions copts;
  copts.workers = f.workers;
  copts.store_path = store_path;
  copts.backend = args.get_string("store-backend");
  copts.journal = journal;
  copts.worker_command = {self_exe(argv0), "worker"};
  copts.chaos_kill_after = f.chaos > 0 ? f.chaos : -1;
  copts.max_respawns = f.max_respawns;
  copts.first_worker_depart_after = f.depart > 0 ? f.depart : -1;
  if (f.transport == "socket") {
    copts.transport = shard::TransportKind::kSocket;
  }
  copts.listen = f.listen;
  copts.heartbeat_interval_s = f.heartbeat;
  copts.lease_timeout_s = f.lease_timeout;
  copts.connect_retries = f.connect_retries;
  copts.netfault = f.netfault;

  auto sharded = shard::run_sharded_sweep(spec, copts);
  if (wrote_store && !args.get_bool("keep-store")) {
    (void)std::remove(store_path.c_str());
  }
  if (!sharded.has_value()) throw StatusError(sharded.status());

  std::cerr << "workers: " << sharded->workers_spawned << " spawned, "
            << sharded->leases_granted << " leases, "
            << sharded->reassignments << " reassigned, "
            << sharded->workers_departed << " departed, "
            << sharded->leases_expired << " expired, " << sharded->reconnects
            << " reconnects, " << sharded->workers_died
            << " died; worker cache builds " << sharded->worker_cache_builds
            << ", maps " << sharded->worker_cache_maps << "\n";

  exper::RunReport rr;
  rr.cells.resize(sharded->cells.size());
  for (std::size_t i = 0; i < sharded->cells.size(); ++i) {
    auto& cell = rr.cells[i];
    auto& from = sharded->cells[i];
    cell.status = from.status;
    cell.from_journal = from.from_journal;
    cell.attempts = from.from_journal ? 0 : 1;
    cell.result.config = shard::derived_cell_config(grid[i], spec.base_seed);
    cell.result.replications = std::move(from.replications);
  }
  return rr;
}

/// `netsample sweep` — the whole method x granularity grid over one capture.
/// --workers 0 (default) runs in-process on ParallelRunner threads (--jobs);
/// --workers N shards the grid over N processes that mmap a shared
/// TraceStore. Both paths print bit-identical tables and write bit-identical
/// journals: seeds derive from grid coordinates, never from scheduling.
int cmd_sweep(ArgParser& args, const tools::CommonOptions& common,
              const char* argv0) {
  const ShardFlags flags = shard_flags_from_args(args);

  auto t = load(args.positionals().at(0), args);
  if (!t) return fail(t.status());
  exper::Experiment ex(std::move(*t));

  const shard::SweepSpec spec = sweep_spec_from_args(args);

  exper::CheckpointJournal journal;
  bool have_journal = false;
  if (args.has("resume")) {
    auto opened = exper::CheckpointJournal::open(args.get_string("resume"));
    if (!opened) return fail(opened.status());
    journal = std::move(*opened);
    std::cout << "journal " << journal.path() << ": " << journal.size()
              << " cells already complete";
    if (journal.dropped_lines() > 0) {
      std::cout << " (" << journal.dropped_lines() << " torn lines dropped)";
    }
    std::cout << "\n";
    have_journal = true;
  }

  const auto grid = shard::build_grid(spec, ex.full(),
                                      ex.mean_interarrival_usec(),
                                      &ex.binned_cache());

  exper::RunReport rr;
  if (flags.workers == 0) {
    // In-process path: ParallelRunner with kSkip matches the coordinator's
    // quarantine-and-continue semantics.
    exper::RunOptions ropts;
    ropts.on_error = exper::FailPolicy::kSkip;
    if (have_journal) ropts.journal = &journal;
    exper::ParallelRunner runner(common.jobs);
    rr = runner.run(grid, spec.base_seed, ropts);
  } else {
    rr = run_sharded_report(spec, grid, ex, flags, args, argv0,
                            have_journal ? &journal : nullptr);
  }

  const auto result = as_result(std::move(rr));
  emit(result.rows, RowFormat::kAligned, std::cout);
  for (const std::size_t i : result->quarantined()) {
    std::cerr << "quarantined: cell " << i << " ("
              << core::target_name(grid[i].config.target) << ") after "
              << result->cells[i].attempts << " attempt(s): "
              << result->cells[i].status.to_string() << "\n";
  }
  if (!result.ok()) return fail(result.status);
  return 0;
}

/// `netsample flows` — top talkers by default; with --sweep, the flow
/// workload: estimators x methods x granularities cells that sample the
/// capture, aggregate sampled flows under memory pressure (--flow-cap),
/// invert the sampled flow-size distribution, and score the estimate
/// against the interval's ground truth. Like `sweep`, --workers N shards
/// the grid over processes and stdout stays byte-diffable across
/// --jobs/--workers, and --resume replays journaled cells: flow tasks carry
/// a per-estimator journal-key suffix (docs/FLOWS.md §4), so the two
/// estimator blocks — identical CellConfigs by design — never alias.
int cmd_flows(ArgParser& args, const tools::CommonOptions& common,
              const char* argv0) {
  if (!args.get_bool("sweep")) return flow_top_talkers(args);
  const ShardFlags flags = shard_flags_from_args(args);

  exper::CheckpointJournal journal;
  bool have_journal = false;
  if (args.has("resume")) {
    auto opened = exper::CheckpointJournal::open(args.get_string("resume"));
    if (!opened) return fail(opened.status());
    journal = std::move(*opened);
    // Banner on stderr, unlike sweep's: the flows table on stdout must stay
    // byte-diffable between a resumed and an uninterrupted run.
    std::cerr << "journal " << journal.path() << ": " << journal.size()
              << " cells already complete";
    if (journal.dropped_lines() > 0) {
      std::cerr << " (" << journal.dropped_lines() << " torn lines dropped)";
    }
    std::cerr << "\n";
    have_journal = true;
  }

  auto t = load(args.positionals().at(0), args, std::cerr);
  if (!t) return fail(t.status());
  exper::Experiment ex(std::move(*t));

  const shard::SweepSpec spec = flow_spec_from_args(args);
  const auto grid = shard::build_grid(spec, ex.full(),
                                      ex.mean_interarrival_usec(),
                                      &ex.binned_cache());

  exper::RunReport rr;
  if (flags.workers == 0) {
    exper::RunOptions ropts;
    ropts.on_error = exper::FailPolicy::kSkip;
    if (have_journal) ropts.journal = &journal;
    // The workload hook: identical to what sharded workers run per cell.
    ropts.cell_runner = [&spec](const exper::CellConfig& cfg,
                                std::size_t index) {
      return flow::run_flow_cell(cfg, spec.flow,
                                 shard::grid_estimator(spec, index));
    };
    exper::ParallelRunner runner(common.jobs);
    rr = runner.run(grid, spec.base_seed, ropts);
  } else {
    rr = run_sharded_report(spec, grid, ex, flags, args, argv0,
                            have_journal ? &journal : nullptr);
  }

  const auto result = as_flow_result(std::move(rr), spec);
  emit(result.rows, RowFormat::kAligned, std::cout);
  for (const std::size_t i : result->quarantined()) {
    std::cerr << "quarantined: cell " << i << " ("
              << flow::estimator_name(shard::grid_estimator(spec, i))
              << ") after " << result->cells[i].attempts << " attempt(s): "
              << result->cells[i].status.to_string() << "\n";
  }
  if (!result.ok()) return fail(result.status);
  return 0;
}

/// `netsample worker` — one sharded-sweep worker, speaking the lease
/// protocol on stdin/stdout, or dialing a socket coordinator when --connect
/// is given. Not meant for interactive use; `sweep --workers N` execs these.
int cmd_worker(ArgParser& args) {
  if (!args.has("store")) {
    std::cerr << "error: worker requires --store FILE\n";
    return kExitUsage;
  }
  shard::WorkerOptions wopts;
  wopts.store_path = args.get_string("store");
  wopts.backend = args.get_string("store-backend");
  const int die = tools::checked_count("--die-after",
                                       args.get_string("die-after"), 1000000000);
  wopts.die_after_cells = die > 0 ? die : -1;
  const int depart = tools::checked_count(
      "--depart-after", args.get_string("depart-after"), 1000000000);
  wopts.depart_after_cells = depart > 0 ? depart : -1;
  wopts.connect_retries = tools::checked_count(
      "--connect-retries", args.get_string("connect-retries"), 1000);
  if (args.has("netfault")) {
    wopts.netfault = args.get_string("netfault");
    auto nf = faultsim::parse_netfault_spec(wopts.netfault);
    if (!nf.has_value()) return fail(nf.status());
  }
  if (args.has("connect")) {
    wopts.connect = args.get_string("connect");
    auto hp = shard::parse_host_port(wopts.connect);
    if (!hp.has_value()) return fail(hp.status());
    const Status status = shard::run_socket_worker(wopts);
    if (!status.is_ok()) return fail(status);
    return 0;
  }
  const Status status = shard::run_worker(wopts, stdin, stdout);
  if (!status.is_ok()) return fail(status);
  return 0;
}

int cmd_journal(ArgParser& args) {
  const auto& pos = args.positionals();
  if (pos.size() != 2 || pos[0] != "compact") {
    std::cerr << "error: usage: netsample journal compact FILE\n";
    return kExitUsage;
  }
  auto stats = exper::CheckpointJournal::compact_file(pos[1]);
  if (!stats) return fail(stats.status());
  std::cout << "journal " << pos[1] << ": " << stats->lines_before
            << " lines -> " << stats->lines_after << " ("
            << stats->duplicate_keys << " superseded, " << stats->dropped_lines
            << " torn/malformed dropped)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  ArgParser args;
  args.add_flag("help", "", "show this help");
  // Declare the union of flags; each command reads what it needs.
  args.add_flag("minutes", "N", "trace duration in minutes", "10");
  args.add_flag("seed", "S", "RNG seed", "23");
  args.add_flag("out", "FILE", "output pcap path");
  args.add_flag("poisson", "", "disable burst structure (ablation workload)");
  args.add_flag("method", "M", "sampling method", "systematic");
  args.add_flag("k", "K", "sampling granularity (1-in-k)", "50");
  args.add_flag("reps", "R", "replications", "5");
  args.add_flag("target", "T",
                "score target: both|size|iat|ports|protocols|netmatrix",
                "both");
  args.add_flag("timeout", "SEC", "flow idle timeout seconds", "30");
  args.add_flag("top", "N", "top talkers to print", "10");
  args.add_flag("sweep", "",
                "flows: run the flow-workload sweep (sampled-flow "
                "aggregation + size-distribution inversion) instead of "
                "printing top talkers");
  args.add_flag("estimators", "LIST",
                "flows --sweep: comma-separated inversion estimators "
                "(rescale|em)", "rescale,em");
  args.add_flag("flow-cap", "N",
                "flows --sweep: sampled-flow table capacity, 0 = unbounded",
                "0");
  args.add_flag("em-iters", "N", "flows --sweep: EM iteration budget", "60");
  args.add_flag("flow-mix", "",
                "generate: heavy-tailed flow-train mix (Pareto train "
                "lengths) for the flow workload");
  args.add_flag("mu", "M", "population mean (design)", "232");
  args.add_flag("sigma", "S", "population stddev (design)", "236");
  args.add_flag("accuracy", "R", "accuracy percent (design)", "5");
  args.add_flag("confidence", "C", "confidence level (design)", "0.95");
  args.add_flag("population", "N", "population size, 0=infinite", "0");
  args.add_flag("node", "T", "node type: t1 or t3 (charact)", "t1");
  args.add_flag("strict", "",
                "reject corrupt captures outright (exit 65) instead of "
                "keeping the clean prefix");
  args.add_flag("salvage", "",
                "skip corrupt records and resync instead of stopping at the "
                "first bad header");
  args.add_flag("on-error", "P",
                "score: cell failure policy abort|skip|retry", "abort");
  args.add_flag("retries", "N",
                "score: extra attempts per failed cell under --on-error retry",
                "2");
  args.add_flag("cell-timeout", "SEC",
                "score: per-cell watchdog deadline, 0 = none", "0");
  args.add_flag("resume", "FILE",
                "score/sweep/flows --sweep: checkpoint journal; completed "
                "cells are replayed from it and new ones appended");
  args.add_flag("fault", "F",
                "impair: truncate|bitflip|clock-back|clock-forward|duplicate|"
                "drop-burst, or 'all'", "all");
  args.add_flag("intensity", "LIST",
                "impair: comma-separated per-record probabilities",
                "0.001,0.01,0.05,0.1");
  args.add_flag("csv", "", "impair: machine-readable CSV output");
  args.add_flag("window", "SEC",
                "watch: rolling window length in seconds, 0 = whole stream",
                "0");
  args.add_flag("stride", "SEC",
                "watch: snapshot period in seconds, 0 = one per window", "0");
  args.add_flag("format", "F", "watch: output rows as jsonl or csv", "jsonl");
  args.add_flag("chunk", "N", "watch: packets per pipeline chunk", "4096");
  args.add_flag("ring", "N", "watch: pipeline ring capacity in chunks", "16");
  args.add_flag("deadline", "SEC",
                "watch: wall-clock budget, 0 = none (exit 75 when exceeded)",
                "0");
  args.add_flag("mean-iat", "USEC",
                "watch: population mean interarrival for timer methods", "0");
  args.add_flag("tenant", "NAME",
                "watch/loadgen: budget bucket the session bills to",
                "default");
  args.add_flag("lanes", "N",
                "serve: scoring threads shared by all sessions, 0 = one per "
                "hardware thread", "0");
  args.add_flag("max-sessions", "N",
                "serve: per-tenant concurrent-session budget, 0 = unlimited",
                "0");
  args.add_flag("max-ring-bytes", "N",
                "serve: per-tenant queued-packet-bytes budget before "
                "shedding, 0 = unlimited", "0");
  args.add_flag("max-pps", "RATE",
                "serve: per-tenant sustained packets/sec budget (1 s burst), "
                "0 = unlimited", "0");
  args.add_flag("sessions", "N", "loadgen: concurrent sessions to replay",
                "64");
  args.add_flag("connections", "N",
                "loadgen: transports the sessions multiplex over", "8");
  args.add_flag("seed-groups", "N",
                "loadgen: distinct seeds; sessions within a group must emit "
                "byte-identical rows", "1");
  args.add_flag("feed-chunk", "N", "loadgen: packets per FEED line", "512");
  args.add_flag("p99-ms", "MS",
                "loadgen: assert p99 CLOSE->CLOSED latency <= MS, 0 = "
                "report only", "0");
  args.add_flag("dump-rows", "FILE",
                "loadgen: write session s0's ROWS payloads here (byte-diff "
                "vs watch)");
  args.add_flag("no-close", "",
                "loadgen: never send CLOSE; wait for the daemon's drain "
                "(SIGTERM drill)");
  args.add_flag("masked", "",
                "stats: print the deterministic-only JSON instead of the "
                "human table");
  // --jobs / --metrics-out / --trace-out / --legacy-scan come from the
  // shared vocabulary (tools/cli_args.h) so the CLI and the figure binaries
  // cannot drift; the capture stays positional here, hence no --pcap.
  tools::add_common_flags(args, /*with_pcap=*/false);
  // --workers / --store / --store-backend / ... likewise (sweep + worker).
  tools::add_sweep_flags(args);

  const auto status = args.parse(rest);
  if (!status.is_ok()) {
    std::cerr << "error: " << status.message() << "\n";
    return kExitUsage;
  }
  if (args.get_bool("help")) {
    std::cout << "flags for '" << cmd << "':\n" << args.help();
    return 0;
  }

  // Observability plumbing: read_common_options() validates the shared
  // flags and flips the obs switches; the snapshot is written on every exit
  // path out of the command — a quarantined sweep's metrics are exactly the
  // interesting ones.
  struct ObsOutputs {
    std::string metrics_path;
    std::string trace_path;
    ~ObsOutputs() {
      (void)obs::write_metrics_file(metrics_path);
      (void)obs::write_trace_file(trace_path);
    }
  } obs_outputs;

  try {
    const tools::CommonOptions common = tools::read_common_options(args);
    obs_outputs.metrics_path = common.metrics_out;
    obs_outputs.trace_path = common.trace_out;
    if (cmd == "generate") {
      if (!args.has("out")) {
        std::cerr << "error: generate requires --out FILE\n";
        return kExitUsage;
      }
      return cmd_generate(args);
    }
    if (cmd == "inspect" || cmd == "sample" || cmd == "score" ||
        cmd == "flows" || cmd == "charact" || cmd == "impair" ||
        cmd == "watch" || cmd == "sweep" || cmd == "loadgen") {
      if (args.positionals().empty()) {
        std::cerr << "error: " << cmd << " requires a pcap file argument\n";
        return kExitUsage;
      }
      if (cmd == "inspect") return cmd_inspect(args);
      if (cmd == "sample") return cmd_sample(args);
      if (cmd == "score") return cmd_score(args, common);
      if (cmd == "flows") return cmd_flows(args, common, argv[0]);
      if (cmd == "impair") return cmd_impair(args);
      if (cmd == "watch") return cmd_watch(args);
      if (cmd == "sweep") return cmd_sweep(args, common, argv[0]);
      if (cmd == "loadgen") return cmd_loadgen(args);
      return cmd_charact(args);
    }
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "journal") return cmd_journal(args);
    if (cmd == "design") return cmd_design(args);
    if (cmd == "stats") {
      if (args.positionals().empty()) {
        std::cerr << "error: stats requires a metrics JSON file argument\n";
        return kExitUsage;
      }
      return cmd_stats(args);
    }
  } catch (const StatusError& e) {
    return fail(e.status());
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitInternal;
  }
  return usage();
}
