#include "tools/cli_args.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

namespace netsample::tools {

namespace {

int checked_jobs(const std::string& source, const std::string& text) {
  return checked_count(source, text, 4096);
}

}  // namespace

int checked_count(const std::string& source, const std::string& text,
                  int max_value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < 0 ||
      v > max_value) {
    throw std::invalid_argument(source + ": expected a worker count in [0, " +
                                std::to_string(max_value) +
                                "] (0 = one per hardware thread), got \"" +
                                text + "\"");
  }
  return static_cast<int>(v);
}

double checked_seconds(const std::string& source, const std::string& text,
                       double max_value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v) || v < 0.0 || v > max_value) {
    throw std::invalid_argument(source + ": expected seconds in [0, " +
                                std::to_string(max_value) +
                                "] (0 = disabled), got \"" + text + "\"");
  }
  return v;
}

void add_common_flags(ArgParser& args, bool with_pcap) {
  args.add_flag("jobs", "N",
                "worker threads (0 = one per hardware thread)", "0");
  if (with_pcap) {
    args.add_flag("pcap", "FILE",
                  "regenerate from a real capture instead of the synthetic "
                  "hour (salvage mode)");
  }
  args.add_flag("metrics-out", "FILE", "write obs metrics JSON here");
  args.add_flag("trace-out", "FILE", "write obs span trace JSON here");
  args.add_flag("legacy-scan", "",
                "force the streaming per-packet path (no cache fast path)");
  args.add_flag("simd", "VARIANT",
                "force the SIMD kernel variant: scalar, avx2, or neon "
                "(results are bit-identical; default autodetects)");
}

void add_sweep_flags(ArgParser& args) {
  args.add_flag("workers", "N",
                "sweep: worker processes (0 = in-process threads via --jobs)",
                "0");
  args.add_flag("store", "FILE",
                "sweep/worker: trace store path (sweep default: <pcap>.nstore)");
  args.add_flag("store-backend", "B",
                "trace store byte source: mmap (zero-copy) or read", "mmap");
  args.add_flag("keep-store", "",
                "sweep: keep an auto-written store file after the run");
  args.add_flag("methods", "LIST",
                "sweep: comma-separated sampling methods, or 'all'", "all");
  args.add_flag("grid-k", "LIST",
                "sweep: comma-separated granularities, or 'ladder' "
                "(2,4,...,32768)", "ladder");
  args.add_flag("chaos-kill-after", "N",
                "sweep: SIGKILL one busy worker after N accepted results "
                "(fault drill; 0 = off)", "0");
  args.add_flag("max-respawns", "N",
                "sweep: replacement workers allowed after unexpected deaths",
                "8");
  args.add_flag("die-after", "N",
                "worker: _exit(137) after N completed cells (fault drill; "
                "0 = off)", "0");
  args.add_flag("depart-after", "N",
                "sweep: first worker sends BYE and exits cleanly after N "
                "cells (fault drill; 0 = off)", "0");
  args.add_flag("transport", "KIND",
                "sweep: how lease lines travel to workers: pipe or socket",
                "pipe");
  args.add_flag("listen", "HOST:PORT",
                "sweep --transport socket: bind address (port 0 = ephemeral)",
                "127.0.0.1:0");
  args.add_flag("connect", "HOST:PORT",
                "worker: dial a socket coordinator instead of stdin/stdout");
  args.add_flag("connect-retries", "N",
                "socket: worker redial attempts per lost connection", "5");
  args.add_flag("heartbeat-interval", "SECONDS",
                "sweep --transport socket: PING cadence; idle workers silent "
                "for 4 periods are disconnected (0 = off)", "0");
  args.add_flag("lease-timeout", "SECONDS",
                "sweep: reclaim leases older than this from stalled-but-"
                "connected workers (0 = off)", "0");
  args.add_flag("netfault", "SPEC",
                "fault drill: worker-side wire impairment schedule, e.g. "
                "\"seed=7,drop=0.1,delay=0.2,delay-ms=2\"");
}

CommonOptions read_common_options(const ArgParser& args) {
  CommonOptions out;
  out.jobs = checked_jobs("--jobs", args.get_string("jobs"));
  if (args.has("pcap")) out.pcap = args.get_string("pcap");
  if (args.has("metrics-out")) out.metrics_out = args.get_string("metrics-out");
  if (args.has("trace-out")) out.trace_out = args.get_string("trace-out");
  out.legacy_scan = args.get_bool("legacy-scan");
  if (args.has("simd")) out.simd = args.get_string("simd");

  if (!out.simd.empty()) {
    const auto variant = core::simd::parse_variant(out.simd);
    if (!variant.has_value()) {
      throw std::invalid_argument("--simd: expected scalar, avx2, or neon, "
                                  "got \"" +
                                  out.simd + "\"");
    }
    core::simd::force_variant(*variant);
  }
  if (out.legacy_scan) core::force_legacy_scan(true);
  if (!out.metrics_out.empty() || !out.trace_out.empty()) {
    obs::set_enabled(true);
  }
  if (!out.trace_out.empty()) obs::Tracer::global().set_enabled(true);
  return out;
}

CommonOptions parse_figure_args(int argc, char** argv,
                                const std::string& extra_help) {
  ArgParser args;
  add_common_flags(args);
  args.add_flag("help", "", "print this help");

  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);

  const Status parsed = args.parse(tokens);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "error: %s\nusage: %s\n%s", parsed.to_string().c_str(),
                 extra_help.c_str(), args.help().c_str());
    std::exit(64);  // EX_USAGE
  }
  if (args.get_bool("help")) {
    std::printf("usage: %s\n%s", extra_help.c_str(), args.help().c_str());
    std::exit(0);
  }
  if (!args.positionals().empty()) {
    std::fprintf(stderr, "error: unexpected argument \"%s\"\nusage: %s\n%s",
                 args.positionals().front().c_str(), extra_help.c_str(),
                 args.help().c_str());
    std::exit(64);
  }

  bool jobs_explicit = false;
  for (const auto& t : tokens) jobs_explicit = jobs_explicit || t.rfind("--jobs", 0) == 0;

  try {
    CommonOptions out = read_common_options(args);
    // Environment fallbacks keep the historical bench contract: an explicit
    // --jobs (even "--jobs 0" = auto) beats NETSAMPLE_JOBS beats auto.
    if (!jobs_explicit) {
      if (const char* env = std::getenv("NETSAMPLE_JOBS")) {
        out.jobs = checked_jobs("NETSAMPLE_JOBS", env);
      }
    }
    if (out.pcap.empty()) {
      if (const char* env = std::getenv("NETSAMPLE_PCAP")) out.pcap = env;
    }
    if (!out.legacy_scan && std::getenv("NETSAMPLE_LEGACY_SCAN") != nullptr) {
      out.legacy_scan = true;
      core::force_legacy_scan(true);
    }
    return out;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(64);
  }
}

exper::Experiment figure_experiment(const CommonOptions& options,
                                    std::uint64_t seed, double minutes) {
  if (options.pcap.empty()) return exper::Experiment(seed, minutes);

  pcap::ParseOptions parse_options;
  parse_options.on_corrupt = pcap::OnCorrupt::kSalvage;
  pcap::ParseStats parse_stats;
  pcap::DecodeStats decode_stats;
  auto t = pcap::read_trace(options.pcap, parse_options, &parse_stats,
                            &decode_stats);
  if (!t) {
    std::fprintf(stderr, "error: %s\n", t.status().to_string().c_str());
    std::exit(65);  // EX_DATAERR
  }
  std::printf("  parent population: %s (%s IPv4 packets)\n",
              options.pcap.c_str(), fmt_count(decode_stats.decoded).c_str());
  if (!parse_stats.clean() || decode_stats.malformed > 0) {
    std::printf("  data loss: %zu corrupt records, %zu bytes skipped "
                "resyncing, %zu torn tail bytes, %zu malformed packets\n",
                parse_stats.corrupt_records, parse_stats.skipped_bytes,
                parse_stats.torn_tail_bytes, decode_stats.malformed);
  }
  return exper::Experiment(std::move(*t));
}

void write_obs_outputs(const CommonOptions& options) {
  if (!obs::write_metrics_file(options.metrics_out) ||
      !obs::write_trace_file(options.trace_out)) {
    std::exit(70);  // EX_SOFTWARE
  }
}

}  // namespace netsample::tools
