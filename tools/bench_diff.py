#!/usr/bin/env python3
"""Compare two BENCH_sweep.json reports and gate on regressions.

CI usage (the bench-smoke perf gate):

    tools/bench_diff.py bench/baselines/BENCH_sweep.<machine-class>.json \
        BENCH_sweep.json --tolerance 25 --emit-headline headline.txt

The headline metric is pkts_per_sec_best (offered packets scanned per
wall-clock second on the best path over the k >= 1024 cells); the total and
SIMD speedup ratios are gated with the same band. Per-cell timings are much
noisier than the aggregate, so cells get a wider band (--cell-tolerance,
default 2x the headline tolerance) and only warn unless --strict-cells.

Reports from different machine classes (arch + SIMD variant), build types,
or sweep configurations are NOT comparable — a scalar container diffed
against an AVX2 baseline would "regress" by the whole SIMD speedup — so any
such mismatch refuses with exit 3 instead of reporting a bogus delta.

Exit codes: 0 ok, 1 regression beyond tolerance, 2 usage/IO/malformed
input, 3 reports not comparable.

Baseline update workflow: see docs/PERFORMANCE.md ("Updating the committed
baselines").
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("machine", "headline", "cells"):
        if key not in report:
            print(f"error: {path}: missing '{key}' "
                  "(legacy-only or pre-SIMD report?)", file=sys.stderr)
            sys.exit(2)
    return report


def refuse_if_incomparable(baseline, current):
    """Exit 3 unless the two reports measure the same thing."""
    problems = []
    for key in ("machine_class", "build_type"):
        a = baseline["machine"].get(key, "?")
        b = current["machine"].get(key, "?")
        if a != b:
            problems.append(f"machine.{key}: baseline={a!r} current={b!r}")
    for key in ("trace_minutes", "replications"):
        a, b = baseline.get(key), current.get(key)
        if a != b:
            problems.append(f"{key}: baseline={a!r} current={b!r}")
    if problems:
        print("error: reports are not comparable:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print("regenerate the baseline for this machine class/config "
              "(docs/PERFORMANCE.md) or pass the matching baseline file",
              file=sys.stderr)
        sys.exit(3)


def pct(new, old):
    return 100.0 * (new - old) / old if old else float("inf")


def main():
    ap = argparse.ArgumentParser(
        description="Gate a BENCH_sweep.json report against a baseline.")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument("current", help="freshly measured report")
    ap.add_argument("--tolerance", type=float, default=25.0, metavar="PCT",
                    help="allowed headline regression (default %(default)s%%)")
    ap.add_argument("--cell-tolerance", type=float, default=None,
                    metavar="PCT",
                    help="allowed per-cell speedup regression "
                         "(default 2x --tolerance)")
    ap.add_argument("--strict-cells", action="store_true",
                    help="fail (not just warn) on per-cell regressions")
    ap.add_argument("--emit-headline", metavar="FILE",
                    help="append a one-line human-readable headline here "
                         "(the CI artifact trail)")
    args = ap.parse_args()
    cell_tol = (args.cell_tolerance if args.cell_tolerance is not None
                else 2.0 * args.tolerance)

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    refuse_if_incomparable(baseline, current)

    if not current.get("phi_all_match", False):
        print("error: current report has phi_all_match=false — correctness "
              "before performance", file=sys.stderr)
        sys.exit(2)

    bh, ch = baseline["headline"], current["headline"]
    failures = []
    print(f"machine class: {current['machine']['machine_class']} "
          f"({current['machine'].get('compiler', '?')}, "
          f"{current['machine'].get('build_type', '?')})")
    print(f"{'metric':<22}{'baseline':>14}{'current':>14}{'delta':>9}")
    # pkts_per_sec_multiproc (the sharded --workers leg) is gated only when
    # both reports carry it, so pre-sharding baselines stay comparable.
    for key, higher_is_better in (("pkts_per_sec_best", True),
                                  ("pkts_per_sec_multiproc", True),
                                  ("speedup", True),
                                  ("simd_speedup", True)):
        old, new = bh.get(key), ch.get(key)
        if old is None or new is None:
            continue
        delta = pct(new, old)
        marker = ""
        if higher_is_better and delta < -args.tolerance:
            marker = "  << REGRESSION"
            failures.append(f"headline {key}: {old:.4g} -> {new:.4g} "
                            f"({delta:+.1f}% < -{args.tolerance:g}%)")
        print(f"{key:<22}{old:>14.4g}{new:>14.4g}{delta:>+8.1f}%{marker}")

    # Per-cell speedups: noisy, so wider band; worst offenders reported.
    base_cells = {(c["method"], c["granularity"]): c
                  for c in baseline["cells"]}
    cell_warnings = []
    for c in current["cells"]:
        b = base_cells.get((c["method"], c["granularity"]))
        if b is None or "speedup" not in b or "speedup" not in c:
            continue
        delta = pct(c["speedup"], b["speedup"])
        if delta < -cell_tol:
            cell_warnings.append(
                f"{c['method']} 1/{c['granularity']}: speedup "
                f"{b['speedup']:.1f} -> {c['speedup']:.1f} ({delta:+.0f}%)")
    if cell_warnings:
        label = "error" if args.strict_cells else "warning"
        print(f"{label}: {len(cell_warnings)} cell(s) beyond the "
              f"{cell_tol:g}% cell band (worst 5):")
        for w in sorted(cell_warnings)[:5]:
            print(f"  {w}")
        if args.strict_cells:
            failures.append(f"{len(cell_warnings)} per-cell regressions")

    headline = (f"{current['machine']['machine_class']}: "
                f"{ch['pkts_per_sec_best'] / 1e6:.0f} Mpkt/s best path, "
                f"{ch['speedup']:.1f}x over legacy, "
                f"{ch['simd_speedup']:.2f}x from simd "
                f"({pct(ch['pkts_per_sec_best'], bh['pkts_per_sec_best']):+.1f}% vs baseline)")
    print(headline)
    if args.emit_headline:
        try:
            with open(args.emit_headline, "a") as f:
                f.write(headline + "\n")
        except OSError as e:
            print(f"error: --emit-headline: {e}", file=sys.stderr)
            sys.exit(2)

    if failures:
        print("\nFAIL: performance regression beyond tolerance:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("OK: within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
