// Shared command-line flag handling for the netsample CLI and the six
// figure binaries (fig06–fig11).
//
// Before PR 5, --jobs/--pcap/--metrics-out parsing was duplicated between
// util::ArgParser declarations in netsample_cli.cpp and the argv-scanning
// helpers in bench/bench_common.h — with different validation and different
// unknown-flag behavior (the CLI rejected, the figures ignored). This
// helper is the single truth: one flag vocabulary, one validator, and one
// contract — *unknown flags exit with sysexits EX_USAGE (64) everywhere*,
// asserted by the cli_unknown_flag ctest entries.
//
// The microbenchmarks keep bench_common.h's permissive scanners on purpose:
// they must pass --benchmark_* flags through to google-benchmark.
#pragma once

#include <cstdint>
#include <string>

#include "netsample/netsample.h"

namespace netsample::tools {

/// The flag set shared by the CLI and the figure binaries.
struct CommonOptions {
  int jobs{0};                // 0 = one worker per hardware thread
  std::string pcap;           // parent capture ("" = synthetic hour)
  std::string metrics_out;    // obs metrics JSON path ("" = off)
  std::string trace_out;      // obs trace JSON path ("" = off)
  bool legacy_scan{false};    // force the streaming oracle path
  std::string simd;           // forced SIMD variant ("" = autodetect)
};

/// Declare the shared flags on an ArgParser (the CLI merges these into each
/// subcommand's vocabulary). `with_pcap` is off for subcommands that take
/// the capture as a positional instead.
void add_common_flags(ArgParser& args, bool with_pcap = true);

/// The sharded-sweep flag vocabulary (netsample sweep / netsample worker):
/// --workers, --store, --store-backend, --keep-store, --methods, --grid-k,
/// --transport, --listen, --connect, --connect-retries,
/// --heartbeat-interval, --lease-timeout, --netfault, --chaos-kill-after,
/// --max-respawns, --die-after, --depart-after. One declaration site so the
/// coordinator and worker subcommands cannot drift.
void add_sweep_flags(ArgParser& args);

/// The single parser behind every process/thread count flag (--jobs,
/// --workers, NETSAMPLE_JOBS): accepts a base-10 integer in [0, max_value],
/// rejects non-numeric text, trailing garbage, negatives, and overflow with
/// one uniform message. Throws std::invalid_argument (exit 64 at the CLI).
[[nodiscard]] int checked_count(const std::string& source,
                                const std::string& text, int max_value);

/// Parser behind the duration flags (--heartbeat-interval,
/// --lease-timeout): a finite base-10 seconds value in [0, max_value]
/// (0 = disabled), rejecting non-numeric text, trailing garbage, negatives,
/// NaN/inf, and overflow. Throws std::invalid_argument (exit 64 at the CLI).
[[nodiscard]] double checked_seconds(const std::string& source,
                                     const std::string& text,
                                     double max_value);

/// Read the shared flags back after a successful parse(), validating ranges
/// (--jobs in [0, 4096]) and applying side effects: --legacy-scan forces
/// the legacy path, --metrics-out/--trace-out enable obs collection.
/// Throws std::invalid_argument with a user-facing message on bad values.
[[nodiscard]] CommonOptions read_common_options(const ArgParser& args);

/// One-call front end for the figure binaries: parse argv strictly (any
/// unknown flag prints the vocabulary and exits 64), honor NETSAMPLE_JOBS /
/// NETSAMPLE_PCAP / NETSAMPLE_LEGACY_SCAN as fallbacks, apply side effects,
/// and hand back the options. `extra_help` names the binary in --help.
[[nodiscard]] CommonOptions parse_figure_args(int argc, char** argv,
                                              const std::string& extra_help);

/// Parent population for a figure run: the --pcap capture (salvage mode,
/// loss counters printed, exit 65 when unreadable) or the calibrated
/// synthetic hour.
[[nodiscard]] exper::Experiment figure_experiment(
    const CommonOptions& options, std::uint64_t seed, double minutes = 60.0);

/// Export the requested obs snapshots; exits 70 (EX_SOFTWARE) on a write
/// failure so CI cannot silently lose metrics.
void write_obs_outputs(const CommonOptions& options);

}  // namespace netsample::tools
