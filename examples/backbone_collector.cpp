// Backbone collection walkthrough (Section 2): a T3 node's statistics
// pipeline with 1-in-50 systematic selection in the forwarding path, a
// 15-minute NOC poll cycle, and population-scale estimates recovered from
// the sampled objects.
#include <iostream>

#include "charact/agent.h"
#include "net/headers.h"
#include "net/ipv4.h"
#include "net/ports.h"
#include "synth/presets.h"
#include "util/format.h"

using namespace netsample;

int main() {
  std::cout << "T3 backbone node statistics collection (Section 2)\n"
            << "---------------------------------------------------\n";

  // 35 minutes of traffic -> three poll cycles (15 + 15 + 5).
  synth::TraceModel model(synth::sdsc_minutes_config(35.0, 11));
  const auto trace = model.generate();

  // The subsystem firmware forwards every fiftieth header to the RS/6000.
  constexpr std::uint64_t kGranularity = 50;
  std::uint64_t counter = 0;
  charact::CollectionAgent agent(
      charact::NodeType::kT3,
      [&counter](const trace::PacketRecord&) {
        return counter++ % kGranularity == 0;
      });
  agent.run(trace.view());

  std::cout << "offered " << fmt_count(trace.size()) << " packets; "
            << agent.reports().size() << " collection cycles\n\n";

  // Ground truth for comparison.
  charact::ProtocolDistributionObject truth;
  for (const auto& p : trace.packets()) truth.observe(p);
  std::uint64_t true_total = 0;
  for (const auto& [proto, vol] : truth.cells()) true_total += vol.packets;

  TextTable cycles({"cycle", "offered", "examined", "est. total",
                    "true-total err %"});
  std::uint64_t est_sum = 0;
  for (const auto& rep : agent.reports()) {
    const std::uint64_t est = rep.packets_examined * kGranularity;
    est_sum += est;
    const double err = 100.0 *
                       (static_cast<double>(est) -
                        static_cast<double>(rep.packets_offered)) /
                       static_cast<double>(rep.packets_offered);
    cycles.add_row({std::to_string(rep.cycle), fmt_count(rep.packets_offered),
                    fmt_count(rep.packets_examined), fmt_count(est),
                    fmt_double(err, 2)});
  }
  cycles.print(std::cout);

  std::cout << "\nprotocol mix, estimated from samples vs truth:\n";
  TextTable protos({"protocol", "true pkts", "est. pkts", "err %"});
  std::map<std::uint8_t, std::uint64_t> sampled_protos;
  for (const auto& rep : agent.reports()) {
    for (const auto& [proto, vol] : rep.protocols) {
      sampled_protos[proto] += vol.packets;
    }
  }
  for (const auto& [proto, vol] : truth.cells()) {
    const std::uint64_t est = sampled_protos[proto] * kGranularity;
    const double err = 100.0 *
                       (static_cast<double>(est) -
                        static_cast<double>(vol.packets)) /
                       static_cast<double>(vol.packets);
    protos.add_row({net::ip_proto_name(proto), fmt_count(vol.packets),
                    fmt_count(est), fmt_double(err, 2)});
  }
  protos.print(std::cout);

  std::cout << "\ntop sampled services across the run:\n";
  charact::PortDistributionObject ports;
  counter = 0;
  for (const auto& p : trace.packets()) {
    if (counter++ % kGranularity == 0) ports.observe(p);
  }
  TextTable top({"proto", "service", "est. pkts"});
  for (const auto& [key, vol] : ports.top(6)) {
    const auto name =
        key.port == 0 ? std::string("(other)")
                      : std::string(net::well_known_port_name(key.port)
                                        .value_or("?"));
    top.add_row({net::ip_proto_name(key.protocol), name,
                 fmt_count(vol.packets * kGranularity)});
  }
  top.print(std::cout);

  std::cout << "\nTotal estimate " << fmt_count(est_sum) << " vs true "
            << fmt_count(true_total) << " packets ("
            << fmt_double(100.0 * (static_cast<double>(est_sum) / true_total - 1.0),
                          2)
            << "% error): sampling preserves the aggregate signatures while\n"
               "examining 2% of headers -- the trade the NSFNET made in 1991.\n";
  return 0;
}
