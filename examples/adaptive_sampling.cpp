// Adaptive sampling-rate control under load growth.
//
// Replays the NSFNET story (Section 2 / Figure 1) in closed loop: a
// statistics processor with a fixed per-cycle header budget watches its
// offered load grow, and the AdaptiveRateController walks the sampling
// granularity up the power-of-two ladder just fast enough to keep the
// examined count inside budget -- no silent data loss, no hand-tuned 1/50.
#include <cmath>
#include <iostream>

#include "core/adaptive.h"
#include "core/design.h"
#include "util/format.h"
#include "util/rng.h"

using namespace netsample;

int main() {
  std::cout << "Adaptive sampling-rate control (closed-loop Section 2)\n"
            << "-------------------------------------------------------\n";

  // A collection cycle is 15 minutes; the processor can examine 1.5M
  // headers per cycle (~1667 headers/s).
  core::AdaptiveControllerConfig cfg;
  cfg.examined_budget_per_cycle = 1'500'000;
  cfg.headroom = 0.8;
  cfg.min_granularity = 1;
  cfg.max_granularity = 1024;
  core::AdaptiveRateController controller(cfg);

  std::cout << "budget: " << fmt_count(cfg.examined_budget_per_cycle)
            << " examined headers/cycle, headroom "
            << fmt_double(cfg.headroom * 100, 0) << "%\n\n";

  // Offered load: starts at 0.9M packets/cycle and grows 6%/cycle with
  // 10% log-normal noise (compressed months, same dynamics as Figure 1).
  Rng rng(1991);
  double offered = 0.9e6;

  TextTable t({"cycle", "offered", "k", "examined", "budget used %",
               "accuracy at 95% (mean size)"});
  for (int cycle = 0; cycle < 36; ++cycle) {
    const double noisy = offered * std::exp(rng.normal(-0.005, 0.1));
    const auto offered_pkts = static_cast<std::uint64_t>(noisy);
    const std::uint64_t k = controller.observe_cycle(offered_pkts);
    const double examined = noisy / static_cast<double>(k);
    const double used =
        100.0 * examined / static_cast<double>(cfg.examined_budget_per_cycle);
    // What the sample size buys, via Cochran backwards (paper's mu/sigma).
    const double acc = core::achievable_accuracy_pct(
        232.0, 236.0, static_cast<std::uint64_t>(examined), 0.95);
    if (cycle % 2 == 0) {
      t.add_row({std::to_string(cycle), fmt_count(offered_pkts),
                 "1/" + std::to_string(k),
                 fmt_count(static_cast<std::uint64_t>(examined)),
                 fmt_double(used, 1), "+-" + fmt_double(acc, 2) + "%"});
    }
    offered *= 1.06;
  }
  t.print(std::cout);

  std::cout
      << "\nReading: as offered load grows ~8x, the controller doubles k\n"
         "three times (1/1 -> 1/8); examined headers never exceed the budget,\n"
         "so no cycle suffers the silent losses of Figure 1, and the accuracy\n"
         "cost of each step is known in advance from Cochran's formula.\n";
  return 0;
}
