// Quickstart: the library in ~60 lines.
//
//   1. obtain a parent population (here: the calibrated synthetic SDSC hour;
//      load your own capture with pcap::read_trace instead),
//   2. sample it with an operational discipline (systematic 1-in-50, the
//      NSFNET setting),
//   3. compare the sampled packet-size distribution to the truth with the
//      paper's phi metric,
//   4. decide whether the sample would pass a chi-squared goodness-of-fit
//      test at the 0.05 level.
#include <iostream>

#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "synth/presets.h"
#include "util/format.h"

using namespace netsample;

int main() {
  // 1. Parent population: one synthetic hour of SDSC -> NSFNET traffic.
  //    (Real captures: auto trace = pcap::read_trace("capture.pcap").value();)
  synth::TraceModel model(synth::sdsc_minutes_config(10.0, /*seed=*/42));
  const trace::Trace population_trace = model.generate();
  const auto view = population_trace.view();
  std::cout << "population: " << fmt_count(view.size()) << " packets over "
            << fmt_double(view.duration().to_seconds(), 1) << " s\n";

  // 2. Sample every 50th packet, exactly as the T3 NSFNET backbone did.
  core::SystematicCountSampler sampler(/*k=*/50);
  const core::Sample sample = core::draw(view, sampler);
  std::cout << "sample:     " << fmt_count(sample.size()) << " packets ("
            << fmt_double(100.0 * sample.fraction(), 2) << "% of traffic)\n\n";

  // 3. Score the sampled packet-size distribution against the population.
  const auto target = core::Target::kPacketSize;
  const auto population_hist = core::bin_population(view, target);
  const auto sample_hist = core::bin_sample(sample, target);
  const auto metrics =
      core::score_sample(sample_hist, population_hist, 1.0 / 50.0);

  std::cout << "packet-size distribution (proportions per paper bin):\n";
  const auto pp = population_hist.proportions();
  const auto sp = sample_hist.proportions();
  for (std::size_t b = 0; b < population_hist.bin_count(); ++b) {
    std::cout << "  " << population_hist.bin_label(b)
              << "  population=" << fmt_double(pp[b], 4)
              << "  sample=" << fmt_double(sp[b], 4) << "\n";
  }

  std::cout << "\nphi            = " << fmt_double(metrics.phi, 5)
            << "   (0 = perfect reflection of the population)\n"
            << "chi2           = " << fmt_double(metrics.chi2, 3) << " with "
            << fmt_double(metrics.dof, 0) << " dof\n"
            << "significance   = " << fmt_double(metrics.significance, 4) << "\n"
            << "cost (l1 pkts) = " << fmt_double(metrics.cost, 0) << "\n";

  // 4. The operational question.
  if (metrics.significance >= 0.05) {
    std::cout << "\nPASS: a chi-squared test at the 0.05 level accepts this "
                 "sample\nas drawn from the population -- consistent with the "
                 "paper's\nfinding for the NSFNET's 1/50 systematic sampling.\n";
    return 0;
  }
  std::cout << "\nNote: this replication would be rejected at the 0.05 level "
               "(expected for ~5% of replications).\n";
  return 0;
}
