// trace_inspector: a small pcap tool on top of the library.
//
//   trace_inspector                     -> generate a demo hour-slice, write
//                                          demo.pcap, and inspect it
//   trace_inspector <capture.pcap>      -> inspect an existing capture
//   trace_inspector <capture.pcap> <k>  -> also report what a 1-in-k
//                                          systematic sample would preserve
//
// Demonstrates the pcap reader/writer, the population summaries, and the
// phi scoring on real files.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "pcap/pcap.h"
#include "synth/presets.h"
#include "trace/summary.h"
#include "util/format.h"

using namespace netsample;

namespace {

void print_summary(const trace::Trace& t) {
  const auto view = t.view();
  const auto pop = trace::summarize_population(view);
  const auto ps = trace::summarize_per_second(view);

  std::cout << "packets: " << fmt_count(view.size()) << ", bytes: "
            << fmt_count(view.total_bytes()) << ", duration: "
            << fmt_double(view.duration().to_seconds(), 1) << " s\n\n";

  TextTable t1({"distribution", "min", "25%", "median", "75%", "max", "mean",
                "stddev"});
  auto add = [&](const std::string& name, const stats::Summary& s) {
    t1.add_row({name, fmt_double(s.min, 0), fmt_double(s.q1, 0),
                fmt_double(s.median, 0), fmt_double(s.q3, 0),
                fmt_double(s.max, 0), fmt_double(s.mean, 1),
                fmt_double(s.stddev, 1)});
  };
  add("packet size (B)", pop.packet_size);
  add("interarrival (us)", pop.interarrival);
  add("packets/s", ps.packet_rate);
  add("kB/s", ps.kilobyte_rate);
  t1.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::uint64_t k = 50;

  if (argc < 2) {
    // No capture given: synthesize a demo slice and write it out.
    path = "demo.pcap";
    std::cout << "no capture given; generating 2 minutes of synthetic SDSC\n"
              << "traffic and writing " << path << "\n\n";
    synth::TraceModel model(synth::sdsc_minutes_config(2.0, 1234));
    const auto t = model.generate();
    const auto status = pcap::write_trace(path, t, 128);
    if (!status.is_ok()) {
      std::cerr << "error: " << status.to_string() << "\n";
      return 1;
    }
  } else {
    path = argv[1];
    if (argc > 2) k = std::strtoull(argv[2], nullptr, 10);
  }

  pcap::DecodeStats dstats;
  auto loaded = pcap::read_trace(path, &dstats);
  if (!loaded) {
    std::cerr << "error reading " << path << ": "
              << loaded.status().to_string() << "\n";
    return 1;
  }
  std::cout << path << ": decoded " << fmt_count(dstats.decoded)
            << " IPv4 packets (" << dstats.non_ipv4 << " non-IPv4, "
            << dstats.malformed << " malformed)\n\n";
  print_summary(*loaded);

  // What would a 1-in-k systematic sample preserve?
  if (loaded->size() < 2 * k) {
    std::cout << "\n(trace too small for a 1/" << k << " sampling report)\n";
    return 0;
  }
  std::cout << "\nsystematic 1/" << k << " sampling fidelity:\n";
  const auto view = loaded->view();
  TextTable t2({"target", "sample n", "phi", "chi2 sig", "verdict @0.05"});
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(view, sampler);
    const auto poph = core::bin_population(view, target);
    const auto obsh = core::bin_sample(sample, target);
    const auto m =
        core::score_sample(obsh, poph, 1.0 / static_cast<double>(k));
    t2.add_row({core::target_name(target), fmt_count(m.sample_n),
                fmt_double(m.phi, 4), fmt_double(m.significance, 4),
                m.significance >= 0.05 ? "compatible" : "rejected"});
  }
  t2.print(std::cout);
  return 0;
}
