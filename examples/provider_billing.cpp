// Provider billing scenario (Section 5.2's motivation for the cost metric).
//
// A service provider charges customers by traffic volume but only *samples*
// packets. For each customer (here: destination network), the provider's
// estimate is (sampled packets) * k. The l1 distance between estimated and
// true per-customer volumes is the money at stake: overcharges annoy
// customers, undercharges lose revenue. We quantify both across sampling
// granularities and disciplines.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/samplers.h"
#include "core/targets.h"
#include "net/ipv4.h"
#include "synth/presets.h"
#include "util/format.h"

using namespace netsample;

namespace {

using CustomerVolumes = std::map<net::NetworkNumber, double>;

CustomerVolumes count_by_customer(std::span<const trace::PacketRecord> packets,
                                  double scale) {
  CustomerVolumes v;
  for (const auto& p : packets) {
    v[net::NetworkNumber::of(p.dst)] += scale;
  }
  return v;
}

struct BillingOutcome {
  double overcharge{0};   // packets billed but never sent
  double undercharge{0};  // packets sent but not billed
  double l1() const { return overcharge + undercharge; }
};

BillingOutcome settle(const CustomerVolumes& truth, const CustomerVolumes& est) {
  BillingOutcome out;
  for (const auto& [net, actual] : truth) {
    const auto it = est.find(net);
    const double billed = it == est.end() ? 0.0 : it->second;
    if (billed > actual) {
      out.overcharge += billed - actual;
    } else {
      out.undercharge += actual - billed;
    }
  }
  for (const auto& [net, billed] : est) {
    if (truth.find(net) == truth.end()) out.overcharge += billed;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Provider billing under sampling (Section 5.2 cost metric)\n"
            << "----------------------------------------------------------\n";

  synth::TraceModel model(synth::sdsc_minutes_config(10.0, 7));
  const auto trace = model.generate();
  const auto view = trace.view();
  const auto truth = count_by_customer(view.packets(), 1.0);
  std::cout << "billing period: " << fmt_count(view.size()) << " packets to "
            << truth.size() << " customer networks\n\n";

  TextTable t({"discipline", "1/k", "billed total", "overcharge",
               "undercharge", "l1 (pkts)", "l1 % of traffic"});
  for (std::uint64_t k : {10ULL, 50ULL, 500ULL, 5000ULL}) {
    for (auto method :
         {core::Method::kSystematicCount, core::Method::kStratifiedCount}) {
      core::SamplerSpec spec;
      spec.method = method;
      spec.granularity = k;
      spec.population = view.size();
      spec.seed = 13;
      auto sampler = core::make_sampler(spec);
      const auto sample = core::draw(view, *sampler);
      const auto billed = count_by_customer(sample.packets(),
                                            static_cast<double>(k));
      const auto outcome = settle(truth, billed);
      double billed_total = 0;
      for (const auto& [n, v] : billed) billed_total += v;
      t.add_row({core::method_name(method), std::to_string(k),
                 fmt_count(static_cast<std::uint64_t>(billed_total)),
                 fmt_double(outcome.overcharge, 0),
                 fmt_double(outcome.undercharge, 0),
                 fmt_double(outcome.l1(), 0),
                 fmt_double(100.0 * outcome.l1() /
                                static_cast<double>(view.size()),
                            2)});
    }
  }
  t.print(std::cout);

  std::cout
      << "\nReading: the l1 distance is the paper's `cost` metric at\n"
         "population scale. A provider picks the cheapest sampling rate whose\n"
         "l1 stays below the revenue it is willing to put at risk; note how\n"
         "error grows as the sampling fraction falls, and how the two packet-\n"
         "triggered disciplines are interchangeable (the paper's result 2).\n";
  return 0;
}
