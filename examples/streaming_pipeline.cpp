// A complete sampled-monitor pipeline in bounded memory.
//
// Reads a capture record-by-record (never loading it whole), samples with a
// Bernoulli geometric-skip sampler (the sFlow discipline), feeds the
// selected headers to bounded-memory analytics -- a Misra-Gries heavy-
// hitter summary and two P^2 quantile estimators -- and writes the sampled
// sub-capture to disk as it goes. Peak memory is O(counters), independent
// of the capture size: this is the shape of a production monitor built on
// the library.
#include <cstdio>
#include <iostream>

#include "core/samplers.h"
#include "net/headers.h"
#include "net/ipv4.h"
#include "pcap/stream.h"
#include "stats/heavy_hitters.h"
#include "stats/psquare.h"
#include "synth/presets.h"
#include "util/format.h"

using namespace netsample;

int main(int argc, char** argv) {
  std::string in_path;
  if (argc > 1) {
    in_path = argv[1];
  } else {
    in_path = "pipeline_demo.pcap";
    std::cout << "no capture given; generating 5 minutes into " << in_path
              << "\n";
    synth::TraceModel model(synth::sdsc_minutes_config(5.0, 77));
    const auto status = pcap::write_trace(in_path, model.generate(), 96);
    if (!status.is_ok()) {
      std::cerr << "error: " << status.to_string() << "\n";
      return 1;
    }
  }

  pcap::StreamReader reader(in_path);
  if (!reader.ok()) {
    std::cerr << "error: " << reader.status().to_string() << "\n";
    return 1;
  }
  pcap::StreamWriter writer("pipeline_sampled.pcap", pcap::kLinkTypeRaw, 96);

  // The bounded-memory analytics.
  constexpr double kProbability = 0.02;  // ~1-in-50
  core::BernoulliSampler sampler(kProbability, Rng(7));
  stats::MisraGries<std::uint32_t> top_destinations(24);
  stats::P2Quantile median_size(0.5);
  stats::P2Quantile p95_size(0.95);

  sampler.begin(MicroTime{0});
  std::uint64_t offered = 0, selected = 0;
  while (auto raw = reader.next()) {
    ++offered;
    // Decode just enough of the header for the analytics.
    const auto ip = net::parse_ipv4(raw->data);
    if (!ip) continue;
    trace::PacketRecord rec;
    rec.timestamp = raw->timestamp;
    rec.size = ip->total_length;
    rec.dst = ip->dst;
    if (!sampler.offer(rec)) continue;
    ++selected;

    top_destinations.add(net::NetworkNumber::of(ip->dst).prefix());
    median_size.add(static_cast<double>(ip->total_length));
    p95_size.add(static_cast<double>(ip->total_length));
    writer.write(*raw);
  }
  writer.flush();

  std::cout << "\nstreamed " << fmt_count(offered) << " packets, selected "
            << fmt_count(selected) << " ("
            << fmt_double(100.0 * selected / std::max<std::uint64_t>(1, offered), 2)
            << "%), wrote pipeline_sampled.pcap\n\n";

  std::cout << "estimated size quantiles (P^2, O(1) memory): median="
            << fmt_double(median_size.value(), 0)
            << " B, p95=" << fmt_double(p95_size.value(), 0) << " B\n\n";

  std::cout << "top destination networks (Misra-Gries, 24 counters, "
               "estimates x"
            << static_cast<int>(1.0 / kProbability) << "):\n";
  TextTable t({"network", "est. packets"});
  for (const auto& [prefix, count] : top_destinations.top(8)) {
    t.add_row({net::Ipv4Address(prefix).to_string(),
               fmt_count(count * static_cast<std::uint64_t>(1.0 / kProbability))});
  }
  t.print(std::cout);

  std::remove("pipeline_sampled.pcap");
  if (argc <= 1) std::remove(in_path.c_str());
  return 0;
}
