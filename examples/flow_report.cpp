// Flow-level reporting, and what packet sampling does to it.
//
// Assembles 5-tuple flows from the full stream and from a 1-in-k sampled
// stream, then compares: sampled flow *counts* cannot be recovered by
// multiplying by k (short flows are missed entirely -- the flow-sampling
// bias NetFlow operators later had to correct for), while per-flow byte
// volumes of the heavy hitters remain well estimated. This is the
// flow-level face of the paper's Section 8 closing remark about sampled
// matrices and small cells.
#include <iostream>

#include "core/samplers.h"
#include "core/targets.h"
#include "net/headers.h"
#include "synth/presets.h"
#include "trace/flows.h"
#include "util/format.h"

using namespace netsample;

namespace {

trace::Trace packets_to_trace(std::vector<trace::PacketRecord> packets) {
  return trace::Trace(std::move(packets));
}

}  // namespace

int main() {
  std::cout << "Flow assembly under packet sampling\n"
            << "------------------------------------\n";

  synth::TraceModel model(synth::sdsc_minutes_config(5.0, 31));
  const auto t = model.generate();

  trace::FlowTable full_table(MicroDuration::from_seconds(30));
  full_table.run(t.view());
  const auto full = full_table.stats();

  std::cout << "full stream: " << fmt_count(full.packets) << " packets in "
            << fmt_count(full.flows) << " flows (mean "
            << fmt_double(full.mean_flow_packets, 2) << " pkts/flow, mean "
            << fmt_double(full.mean_flow_duration_sec, 2) << " s)\n\n";

  TextTable table({"1/k", "sampled flows", "naive kx flows", "true flows",
                   "flows seen %", "top-5 byte err %"});
  for (std::uint64_t k : {10ULL, 50ULL, 250ULL}) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(t.view(), sampler);
    trace::FlowTable sampled_table(MicroDuration::from_seconds(30));
    sampled_table.run(
        packets_to_trace(sample.packets()).view());
    const auto sampled = sampled_table.stats();

    // Heavy-hitter byte fidelity: match the full top-5 flows in the sampled
    // table (scaled by k).
    const auto top_full = full_table.top_by_packets(5);
    double err_sum = 0.0;
    int matched = 0;
    for (const auto& f : top_full) {
      for (const auto& g : sampled_table.expired()) {
        if (g.key == f.key) {
          const double est =
              static_cast<double>(g.bytes) * static_cast<double>(k);
          err_sum +=
              std::abs(est - static_cast<double>(f.bytes)) / f.bytes * 100.0;
          ++matched;
          break;
        }
      }
    }
    const double top_err = matched > 0 ? err_sum / matched : -1.0;

    table.add_row(
        {"1/" + std::to_string(k), fmt_count(sampled.flows),
         fmt_count(sampled.flows * k), fmt_count(full.flows),
         fmt_double(100.0 * static_cast<double>(sampled.flows) /
                        static_cast<double>(full.flows),
                    1),
         matched > 0 ? fmt_double(top_err, 1) : "(none matched)"});
  }
  table.print(std::cout);

  std::cout << "\ntop-5 flows of the full stream:\n";
  TextTable top({"src", "dst", "proto", "dport", "packets", "bytes",
                 "duration s"});
  for (const auto& f : full_table.top_by_packets(5)) {
    top.add_row({f.key.src.to_string(), f.key.dst.to_string(),
                 net::ip_proto_name(f.key.protocol),
                 std::to_string(f.key.dst_port), fmt_count(f.packets),
                 fmt_count(f.bytes), fmt_double(f.duration().to_seconds(), 1)});
  }
  top.print(std::cout);

  std::cout
      << "\nReading: sampled flow counts are NOT 1/k of true flow counts --\n"
         "flows shorter than ~k packets are usually missed entirely, so the\n"
         "naive kx expansion over-counts nothing and under-counts flows.\n"
         "Heavy hitters, in contrast, are byte-estimated within a few percent\n"
         "-- the same 'big cells are fine, small cells vanish' picture as the\n"
         "paper's sampled source-destination matrix.\n";
  return 0;
}
