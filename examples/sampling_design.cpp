// Designing a sampling plan (Section 5.1): how many packets must a monitor
// examine, and at what fraction, to estimate traffic parameters to a target
// accuracy? Walks Cochran's formula forward and backward and cross-checks
// the design against an actual sampling run.
#include <iostream>

#include "core/design.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "stats/descriptive.h"
#include "synth/presets.h"
#include "util/format.h"

using namespace netsample;

int main() {
  std::cout << "Sampling plan design (Cochran, Section 5.1)\n"
            << "--------------------------------------------\n";

  synth::TraceModel model(synth::sdsc_minutes_config(15.0, 99));
  const auto trace = model.generate();
  const auto view = trace.view();

  // Population parameters of the estimand (mean packet size).
  stats::MomentAccumulator acc;
  for (const auto& p : view) acc.add(static_cast<double>(p.size));
  const double mu = acc.mean();
  const double sigma = acc.population_stddev();
  std::cout << "population: " << fmt_count(view.size())
            << " packets, mean size " << fmt_double(mu, 1) << " B, sd "
            << fmt_double(sigma, 1) << "\n\n";

  // Forward: required sample sizes for a grid of accuracy/confidence goals.
  TextTable plans({"accuracy", "confidence", "z", "n (infinite)", "n (FPC)",
                   "fraction"});
  for (double r : {10.0, 5.0, 2.0, 1.0}) {
    for (double conf : {0.90, 0.95, 0.99}) {
      const auto p = core::plan_sample_size(mu, sigma, r, conf, view.size());
      plans.add_row({"+-" + fmt_double(r, 0) + "%", fmt_double(conf * 100, 0) + "%",
                     fmt_double(p.z, 3), fmt_count(p.n), fmt_count(p.n_fpc),
                     fmt_double(100.0 * p.sampling_fraction, 3) + "%"});
    }
  }
  plans.print(std::cout);

  // Backward: what accuracy does the operational 1/50 deliver?
  const std::uint64_t n50 = view.size() / 50;
  const double r50 = core::achievable_accuracy_pct(mu, sigma, n50, 0.95);
  std::cout << "\noperational 1/50 sampling -> n = " << fmt_count(n50)
            << " -> +-" << fmt_double(r50, 2)
            << "% on the mean at 95% confidence\n";

  // Empirical check: draw many 1/50 stratified samples and count how often
  // the sample mean lands within the predicted interval.
  int within = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    core::StratifiedCountSampler sampler(50, Rng(1000 + t));
    const auto sample = core::draw(view, sampler);
    stats::MomentAccumulator s;
    for (auto i : sample.indices) s.add(static_cast<double>(view[i].size));
    const double err = 100.0 * std::abs(s.mean() - mu) / mu;
    if (err <= r50) ++within;
  }
  std::cout << "empirical: " << within << "/" << trials
            << " sample means within +-" << fmt_double(r50, 2)
            << "% (theory: ~95%)\n";
  return 0;
}
