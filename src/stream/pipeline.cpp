#include "stream/pipeline.h"

#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace netsample::stream {

namespace {

struct RingMetrics {
  obs::Gauge& occupancy_peak;
  obs::Counter& blocked_pushes;
  obs::Counter& blocked_pops;
  obs::Counter& dropped;
};

RingMetrics& ring_metrics() {
  auto& reg = obs::registry();
  static RingMetrics m{
      reg.gauge("netsample_stream_ring_occupancy_peak",
                obs::Determinism::kNondeterministic),
      reg.counter("netsample_stream_ring_blocked_push_total",
                  obs::Determinism::kNondeterministic),
      reg.counter("netsample_stream_ring_blocked_pop_total",
                  obs::Determinism::kNondeterministic),
      reg.counter("netsample_stream_ring_dropped_total",
                  obs::Determinism::kNondeterministic),
  };
  return m;
}

}  // namespace

PipelineReport run_pipeline(PacketSource& source, Engine& engine,
                            const PipelineOptions& options) {
  PipelineReport report;
  if (options.chunk_packets == 0) {
    report.status = Status(StatusCode::kInvalidArgument,
                           "stream: chunk_packets must be >= 1");
    return report;
  }

  SpscRing<std::vector<trace::PacketRecord>> ring(options.ring_capacity);
  Status producer_status = Status::ok();

  std::thread producer([&] {
    try {
      std::vector<trace::PacketRecord> chunk;
      for (;;) {
        util::throw_if_stopped(options.cancel);
        chunk.clear();
        chunk.reserve(options.chunk_packets);
        if (!source.next_chunk(options.chunk_packets, chunk)) break;
        ring.push(std::move(chunk), options.cancel);
        chunk = {};
      }
      producer_status = source.status();
    } catch (const StatusError& e) {
      producer_status = e.status();
    } catch (const std::exception& e) {
      producer_status = Status(StatusCode::kInternal,
                               std::string("stream producer: ") + e.what());
    }
    ring.close();
  });

  Status consumer_status = Status::ok();
  try {
    while (auto chunk = ring.pop(options.cancel)) {
      engine.feed(*chunk);
      report.packets += chunk->size();
      ++report.chunks;
    }
  } catch (const StatusError& e) {
    consumer_status = e.status();
    // Unblock a producer waiting on a full ring; push-after-close surfaces
    // as a logic_error there and is folded into producer_status.
    ring.close();
  }
  producer.join();

  report.ring = ring.stats();
  if (obs::enabled()) {
    auto& m = ring_metrics();
    m.occupancy_peak.max(static_cast<double>(report.ring.occupancy_peak));
    m.blocked_pushes.add(report.ring.blocked_pushes);
    m.blocked_pops.add(report.ring.blocked_pops);
    m.dropped.add(report.ring.rejected_pushes);
  }

  if (!consumer_status.is_ok()) {
    report.status = consumer_status;
  } else {
    report.status = producer_status;
  }
  return report;
}

}  // namespace netsample::stream
