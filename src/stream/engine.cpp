#include "stream/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace netsample::stream {

namespace {

struct StreamMetrics {
  obs::Counter& packets;
  obs::Counter& chunks;
  obs::Counter& snapshots;
  obs::Gauge& window_peak;
  obs::HistogramMetric& score_seconds;
};

StreamMetrics& stream_metrics() {
  auto& reg = obs::registry();
  static StreamMetrics m{
      reg.counter("netsample_stream_packets_total"),
      reg.counter("netsample_stream_chunks_total"),
      reg.counter("netsample_stream_snapshots_total"),
      reg.gauge("netsample_stream_window_packets_peak"),
      reg.histogram("netsample_stream_score_seconds", obs::duration_bin_edges(),
                    obs::Determinism::kNondeterministic),
  };
  return m;
}

}  // namespace

std::vector<LaneSpec> lanes_for_cell(const exper::CellConfig& config,
                                     std::uint64_t population_override) {
  std::vector<LaneSpec> lanes;
  lanes.reserve(static_cast<std::size_t>(config.replications));
  for (int r = 0; r < config.replications; ++r) {
    LaneSpec lane;
    lane.spec = exper::replication_spec(config, r);
    if (population_override != 0) lane.spec.population = population_override;
    lane.target = config.target;
    lane.label = "r" + std::to_string(r);
    lanes.push_back(std::move(lane));
  }
  return lanes;
}

Engine::Engine(std::vector<LaneSpec> lanes, EngineOptions options)
    : options_(options),
      size_layout_(core::make_target_histogram(core::Target::kPacketSize)),
      gap_layout_(core::make_target_histogram(core::Target::kInterarrivalTime)),
      pop_size_counts_(size_layout_.bin_count(), 0),
      pop_gap_counts_(gap_layout_.bin_count(), 0) {
  if (lanes.size() > kMaxLanes) {
    throw std::invalid_argument("stream::Engine: more than 64 lanes");
  }
  if (options_.window.usec < 0 || options_.stride.usec < 0) {
    throw std::invalid_argument("stream::Engine: negative window or stride");
  }
  lanes_.reserve(lanes.size());
  for (auto& spec : lanes) {
    Lane lane;
    lane.sampler = core::make_sampler(spec.spec);  // throws on bad specs
    const auto& layout = spec.target == core::Target::kPacketSize
                             ? size_layout_
                             : gap_layout_;
    lane.counts.assign(layout.bin_count(), 0);
    lane.spec = std::move(spec);
    lanes_.push_back(std::move(lane));
  }
  if (options_.collect_indices) indices_.resize(lanes_.size());
}

void Engine::feed(std::span<const trace::PacketRecord> chunk) {
  if (finished_) throw std::logic_error("stream::Engine: feed after finish");
  for (const auto& p : chunk) {
    if (packets_ % util::kCancelPollStride == 0) {
      util::throw_if_stopped(options_.cancel);
    }
    if (!started_) {
      started_ = true;
      first_ts_ = p.timestamp;
      prev_ts_ = p.timestamp;
      for (auto& lane : lanes_) lane.sampler->begin(p.timestamp);
      if (options_.stride.usec > 0) next_tick_ = first_ts_ + options_.stride;
    } else if (p.timestamp < prev_ts_) {
      throw std::invalid_argument(
          "stream::Engine: packets must arrive in time order");
    }
    if (options_.stride.usec > 0) emit_ticks(p.timestamp);
    ingest(p);
  }
  if (obs::enabled() && !chunk.empty()) {
    auto& m = stream_metrics();
    m.chunks.increment();
    m.packets.add(chunk.size());
    m.window_peak.max(static_cast<double>(window_peak_));
  }
}

void Engine::ingest(const trace::PacketRecord& p) {
  const bool windowed = options_.window.usec > 0;
  // A packet's interarrival gap references its stream predecessor; it is
  // in scope unless the packet opens the stream (drain mode) or the
  // current window (rolling mode).
  const bool gap_in_hist = windowed ? !window_.empty() : packets_ > 0;
  const std::size_t sbin =
      size_layout_.bin_index(static_cast<double>(p.size));
  std::size_t gbin = 0;
  if (gap_in_hist) {
    gbin = gap_layout_.bin_index(
        static_cast<double>((p.timestamp - prev_ts_).usec));
  }

  std::uint64_t selected = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (!lane.sampler->offer(p)) continue;
    selected |= std::uint64_t{1} << i;
    if (lane.spec.target == core::Target::kPacketSize) {
      ++lane.counts[sbin];
    } else if (gap_in_hist) {
      ++lane.counts[gbin];
    }
    if (options_.collect_indices) indices_[i].push_back(packets_);
  }

  ++pop_size_counts_[sbin];
  if (gap_in_hist) ++pop_gap_counts_[gbin];

  if (windowed) {
    // Without periodic ticks nobody else trims the deque; keep the memory
    // bound per-packet instead.
    if (options_.stride.usec <= 0 &&
        p.timestamp.usec > static_cast<std::uint64_t>(options_.window.usec)) {
      evict_to(p.timestamp.usec -
               static_cast<std::uint64_t>(options_.window.usec));
    }
    window_.push_back(Entry{p.timestamp.usec, static_cast<std::uint32_t>(sbin),
                            static_cast<std::uint32_t>(gbin), gap_in_hist,
                            selected});
    window_peak_ = std::max<std::uint64_t>(window_peak_, window_.size());
  }

  prev_ts_ = p.timestamp;
  ++packets_;
}

void Engine::emit_ticks(MicroTime now) {
  while (now >= next_tick_) {
    const MicroTime tick = next_tick_;
    if (options_.window.usec > 0) {
      const auto w = static_cast<std::uint64_t>(options_.window.usec);
      evict_to(tick.usec > w ? tick.usec - w : 0);
    }
    const std::uint64_t w = options_.window.usec > 0
                                ? static_cast<std::uint64_t>(options_.window.usec)
                                : tick.usec;
    const MicroTime start{std::max(first_ts_.usec,
                                   tick.usec > w ? tick.usec - w : 0)};
    ++tick_index_;
    const WindowScore ws = score(tick_index_, /*is_final=*/false, start, tick);
    if (obs::enabled()) stream_metrics().snapshots.increment();
    if (snapshot_fn_) snapshot_fn_(ws);
    next_tick_ = next_tick_ + options_.stride;
  }
}

void Engine::evict_to(std::uint64_t cutoff_usec) {
  while (!window_.empty() && window_.front().ts < cutoff_usec) {
    const Entry e = window_.front();
    window_.pop_front();
    --pop_size_counts_[e.size_bin];
    if (e.gap_in_hist) --pop_gap_counts_[e.gap_bin];
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if ((e.selected & (std::uint64_t{1} << i)) == 0) continue;
      Lane& lane = lanes_[i];
      if (lane.spec.target == core::Target::kPacketSize) {
        --lane.counts[e.size_bin];
      } else if (e.gap_in_hist) {
        --lane.counts[e.gap_bin];
      }
    }
    // The surviving front just lost its predecessor; its gap leaves scope.
    if (!window_.empty() && window_.front().gap_in_hist) {
      Entry& f = window_.front();
      --pop_gap_counts_[f.gap_bin];
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if ((f.selected & (std::uint64_t{1} << i)) == 0) continue;
        Lane& lane = lanes_[i];
        if (lane.spec.target == core::Target::kInterarrivalTime) {
          --lane.counts[f.gap_bin];
        }
      }
      f.gap_in_hist = false;
    }
  }
}

WindowScore Engine::score(std::uint64_t tick, bool is_final, MicroTime start,
                          MicroTime end) const {
  const auto t0 = std::chrono::steady_clock::now();
  WindowScore ws;
  ws.tick = tick;
  ws.is_final = is_final;
  ws.window_start = start;
  ws.window_end = end;
  ws.packets_seen = packets_;
  ws.lanes.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    LaneScore ls;
    ls.label = lane.spec.label;
    ls.target = lane.spec.target;
    ls.granularity = lane.spec.spec.granularity;
    const bool size_target = lane.spec.target == core::Target::kPacketSize;
    const auto& layout = size_target ? size_layout_ : gap_layout_;
    const auto& pop_counts = size_target ? pop_size_counts_ : pop_gap_counts_;
    std::uint64_t pop_total = 0;
    for (const auto c : pop_counts) pop_total += c;
    if (pop_total > 0) {
      std::vector<double> edges(layout.edges().begin(), layout.edges().end());
      const auto population = stats::Histogram::with_counts(edges, pop_counts);
      const auto observed =
          stats::Histogram::with_counts(std::move(edges), lane.counts);
      ls.metrics = core::score_sample(
          observed, population,
          1.0 / static_cast<double>(lane.spec.spec.granularity));
    }
    ws.lanes.push_back(std::move(ls));
  }
  if (obs::enabled()) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    stream_metrics().score_seconds.observe(dt.count());
  }
  return ws;
}

WindowScore Engine::finish() {
  if (finished_) throw std::logic_error("stream::Engine: finish called twice");
  finished_ = true;
  util::throw_if_stopped(options_.cancel);
  if (!started_) return WindowScore{0, true, {}, {}, 0, {}};
  MicroTime start = first_ts_;
  if (options_.window.usec > 0) {
    const auto w = static_cast<std::uint64_t>(options_.window.usec);
    evict_to(prev_ts_.usec > w ? prev_ts_.usec - w : 0);
    start = MicroTime{std::max(first_ts_.usec,
                               prev_ts_.usec > w ? prev_ts_.usec - w : 0)};
  }
  if (obs::enabled()) {
    stream_metrics().window_peak.max(static_cast<double>(window_peak_));
  }
  return score(/*tick=*/0, /*is_final=*/true, start, prev_ts_);
}

WindowScore Engine::current() const {
  if (!started_) return WindowScore{0, false, {}, {}, 0, {}};
  const MicroTime start =
      options_.window.usec > 0 && !window_.empty()
          ? MicroTime{window_.front().ts}
          : first_ts_;
  return score(/*tick=*/0, /*is_final=*/false, start, prev_ts_);
}

}  // namespace netsample::stream
