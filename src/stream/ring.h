// Bounded single-producer/single-consumer ring buffer with backpressure.
//
// The streaming scorer decouples capture I/O from scoring with one of
// these: a reader thread pushes packet chunks, the engine thread pops them.
// The ring is *lossless by default* — when full, push() blocks until the
// consumer catches up — because dropping chunks under backpressure would
// make results depend on scheduling and break the determinism contract
// (docs/STREAMING.md). Callers that prefer load-shedding over blocking can
// use try_push() and count the drops themselves.
//
// Both blocking calls poll an optional util::CancelToken while waiting and
// unwind with util::StatusError (kCancelled / kDeadlineExceeded), so a
// watchdog can always unwedge a stalled pipeline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/cancel.h"
#include "util/status.h"

namespace netsample::stream {

/// Point-in-time counters of one ring's life, for obs export.
struct RingStats {
  std::uint64_t pushes{0};
  std::uint64_t pops{0};
  std::uint64_t blocked_pushes{0};  // push() calls that had to wait
  std::uint64_t blocked_pops{0};    // pop() calls that had to wait
  std::uint64_t rejected_pushes{0};  // try_push() calls refused (ring full)
  std::size_t occupancy_peak{0};     // high-water item count
};

template <typename T>
class SpscRing {
 public:
  /// Throws std::invalid_argument on zero capacity.
  explicit SpscRing(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be >= 1");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocking push. Waits while the ring is full; throws util::StatusError
  /// when `cancel` fires mid-wait and std::logic_error if the ring was
  /// already closed (the producer owns close()).
  void push(T item, const util::CancelToken* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) throw std::logic_error("SpscRing: push after close");
    if (items_.size() >= capacity_) {
      ++stats_.blocked_pushes;
      while (items_.size() >= capacity_ && !closed_) {
        util::throw_if_stopped(cancel);
        producer_cv_.wait_for(lock, kWaitSlice);
      }
      if (closed_) throw std::logic_error("SpscRing: push after close");
    }
    items_.push_back(std::move(item));
    ++stats_.pushes;
    if (items_.size() > stats_.occupancy_peak) {
      stats_.occupancy_peak = items_.size();
    }
    lock.unlock();
    consumer_cv_.notify_one();
  }

  /// Non-blocking push; returns false (counting a rejection) when full.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) throw std::logic_error("SpscRing: push after close");
      if (items_.size() >= capacity_) {
        ++stats_.rejected_pushes;
        return false;
      }
      items_.push_back(std::move(item));
      ++stats_.pushes;
      if (items_.size() > stats_.occupancy_peak) {
        stats_.occupancy_peak = items_.size();
      }
    }
    consumer_cv_.notify_one();
    return true;
  }

  /// Blocking pop. Waits for an item; returns std::nullopt once the ring is
  /// closed *and* drained. Throws util::StatusError when `cancel` fires.
  [[nodiscard]] std::optional<T> pop(const util::CancelToken* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      ++stats_.blocked_pops;
      while (items_.empty() && !closed_) {
        util::throw_if_stopped(cancel);
        consumer_cv_.wait_for(lock, kWaitSlice);
      }
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    lock.unlock();
    producer_cv_.notify_one();
    return item;
  }

  /// Producer is done; pending items stay poppable, further pushes throw.
  /// Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] RingStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  // Condvar waits are sliced so an external cancel()/deadline is noticed
  // within one slice even though nobody notifies these condvars for it.
  static constexpr std::chrono::milliseconds kWaitSlice{10};

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable consumer_cv_;  // signalled on push/close
  std::condition_variable producer_cv_;  // signalled on pop/close
  std::deque<T> items_;
  bool closed_{false};
  RingStats stats_;
};

}  // namespace netsample::stream
