// The bounded-memory online scoring engine (docs/STREAMING.md).
//
// An Engine owns a set of *lanes* — one streaming sampler each, built from
// the same core::SamplerSpec machinery as the batch runner — plus rolling
// population and per-lane sample histograms over the paper's size /
// interarrival bins. Packets are fed chunk-by-chunk in arrival order; at
// any instant the windowed φ disparity of every lane against the rolling
// population is available without a full-trace cache.
//
// Two operating shapes:
//
//   drain mode (window == 0): histograms accumulate over the whole stream;
//     finish() scores exactly what exper::run_cell scores on the same
//     interval — bit-identical at any chunk size, pinned by
//     tests/test_stream_engine.cpp against the BinnedTraceCache fast path.
//     With a stride armed, periodic snapshots score the growing prefix,
//     which is the one-pass form of the fig10/fig11 interval sweeps.
//
//   rolling window (window > 0): a deque of per-packet bin ids (not
//     packets) keeps the histograms scoped to the trailing window; memory
//     is O(window + stride), never O(trace). `netsample watch` runs this.
//
// Determinism contract: for a fixed lane configuration and input stream the
// outputs (φ values, selected indices, snapshot rows) are byte-identical
// regardless of how the stream is chunked. Chunk boundaries carry no state;
// every decision is per-packet.
//
// Interarrival semantics follow core/targets.h: a packet contributes the
// gap to its immediate predecessor in the arrival stream; the first packet
// of the stream — and, in windowed mode, the first packet of the current
// window — has no in-scope predecessor and contributes nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/sampler.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "exper/runner.h"
#include "stats/histogram.h"
#include "trace/packet_record.h"
#include "util/cancel.h"
#include "util/timeval.h"

namespace netsample::stream {

/// One online scoring lane: a sampler discipline plus the target its sample
/// histogram is scored on.
struct LaneSpec {
  core::SamplerSpec spec;
  core::Target target{core::Target::kPacketSize};
  std::string label;
};

/// The batch runner's replication ladder as lanes: replication_spec(config, r)
/// for r in [0, config.replications), labelled "r0", "r1", ... Feeding the
/// engine the cell's interval and score()-ing in drain mode reproduces
/// run_cell bit-for-bit. `population_override` (when nonzero) substitutes
/// for config.interval.size() in the spec — the operational knob for simple
/// random sampling on a live stream, where N comes from the previous
/// collection cycle rather than a materialized trace.
[[nodiscard]] std::vector<LaneSpec> lanes_for_cell(
    const exper::CellConfig& config, std::uint64_t population_override = 0);

struct EngineOptions {
  /// Rolling-window length; 0 = drain mode (score the whole stream so far).
  MicroDuration window{0};
  /// Snapshot period; 0 = no periodic snapshots (score only at finish()).
  MicroDuration stride{0};
  /// Record every lane's selected packet indices (stream positions). Costs
  /// O(sample) memory — for tests and small runs, not production watches.
  bool collect_indices{false};
  /// Polled every util::kCancelPollStride packets inside feed(); unwinds
  /// with util::StatusError. Not owned.
  const util::CancelToken* cancel{nullptr};
};

/// One lane's disparity against the rolling population.
struct LaneScore {
  std::string label;
  core::Target target{core::Target::kPacketSize};
  std::uint64_t granularity{0};
  core::DisparityMetrics metrics;
};

/// A scored window. Periodic snapshots cover the half-open [start, end);
/// the finish() score covers [start, end] including the last packet.
struct WindowScore {
  /// 1-based snapshot index; 0 for the finish() score.
  std::uint64_t tick{0};
  bool is_final{false};
  MicroTime window_start{};
  MicroTime window_end{};
  /// Stream packets ingested up to this score (not just in-window).
  std::uint64_t packets_seen{0};
  std::vector<LaneScore> lanes;
};

class Engine {
 public:
  using SnapshotFn = std::function<void(const WindowScore&)>;

  /// Builds every lane's sampler up front; throws std::invalid_argument on
  /// an inconsistent spec, more than kMaxLanes lanes, or negative
  /// window/stride.
  explicit Engine(std::vector<LaneSpec> lanes, EngineOptions options = {});

  /// Called with each periodic snapshot, from inside feed(), in tick order.
  void on_snapshot(SnapshotFn fn) { snapshot_fn_ = std::move(fn); }

  /// Ingest the next packets of the stream, in arrival order. Chunk size is
  /// arbitrary and does not affect any output. Emits pending snapshots as
  /// ticks are crossed. Throws util::StatusError when the cancel token
  /// fires and std::invalid_argument on a time-ordering violation.
  void feed(std::span<const trace::PacketRecord> chunk);

  /// Score the final (partial) window — the whole stream in drain mode —
  /// and return it. feed() must not be called afterwards.
  [[nodiscard]] WindowScore finish();

  /// Score the current rolling window without consuming anything ("windowed
  /// φ at any instant").
  [[nodiscard]] WindowScore current() const;

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  /// High-water count of packets held for the rolling window (0 in drain
  /// mode, which holds none). The O(window) memory assertion reads this.
  [[nodiscard]] std::uint64_t window_packets_peak() const { return window_peak_; }
  /// Selected stream positions per lane (collect_indices mode only).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& lane_indices() const {
    return indices_;
  }
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }

  /// Lane-selection bitmasks cap the lane count (one bit per lane).
  static constexpr std::size_t kMaxLanes = 64;

 private:
  struct Lane {
    LaneSpec spec;
    std::unique_ptr<core::Sampler> sampler;
    std::vector<std::uint64_t> counts;  // sample histogram for spec.target
  };

  // Rolling-window bookkeeping: per-packet bin ids, not packets.
  struct Entry {
    std::uint64_t ts{0};
    std::uint32_t size_bin{0};
    std::uint32_t gap_bin{0};
    bool gap_in_hist{false};  // its gap is currently counted
    std::uint64_t selected{0};  // lane bitmask
  };

  void ingest(const trace::PacketRecord& p);
  void emit_ticks(MicroTime now);
  void evict_to(std::uint64_t cutoff_usec);
  [[nodiscard]] WindowScore score(std::uint64_t tick, bool is_final,
                                  MicroTime start, MicroTime end) const;

  EngineOptions options_;
  std::vector<Lane> lanes_;
  std::vector<std::vector<std::size_t>> indices_;

  stats::Histogram size_layout_;
  stats::Histogram gap_layout_;
  std::vector<std::uint64_t> pop_size_counts_;
  std::vector<std::uint64_t> pop_gap_counts_;

  std::deque<Entry> window_;
  bool started_{false};
  bool finished_{false};
  MicroTime first_ts_{};
  MicroTime prev_ts_{};
  MicroTime next_tick_{};
  std::uint64_t tick_index_{0};
  std::uint64_t packets_{0};
  std::uint64_t window_peak_{0};
  SnapshotFn snapshot_fn_;
};

}  // namespace netsample::stream
