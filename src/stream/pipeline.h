// One-pass scoring pipeline: PacketSource → SpscRing → Engine.
//
// run_pipeline spawns a producer thread that reads fixed-size chunks from
// the source into a bounded ring and drains the ring into the engine on
// the calling thread. The ring is lossless (push blocks when full), so the
// packet sequence the engine sees — and therefore every score — is
// independent of scheduling; backpressure shows up in the obs counters,
// never in the results. Cancellation unwinds both threads cooperatively.
#pragma once

#include <cstddef>
#include <cstdint>

#include "stream/engine.h"
#include "stream/ring.h"
#include "stream/source.h"
#include "util/cancel.h"
#include "util/status.h"

namespace netsample::stream {

struct PipelineOptions {
  /// Packets per ring item. Determinism does not depend on this; memory
  /// (chunk_packets * ring_capacity records) and sync overhead do.
  std::size_t chunk_packets{4096};
  std::size_t ring_capacity{16};
  /// Honored by both sides: the producer stops reading, the consumer stops
  /// feeding, and the pipeline returns kCancelled / kDeadlineExceeded.
  const util::CancelToken* cancel{nullptr};
};

struct PipelineReport {
  Status status{};            // first failure: cancellation or source error
  std::uint64_t packets{0};   // records the engine ingested
  std::uint64_t chunks{0};
  RingStats ring;
  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Drain `source` into `engine` (which is left un-finished so the caller
/// can score or keep feeding). Never throws for cancellation or source
/// errors — they come back in the report — but engine configuration errors
/// (std::logic_error and friends) propagate.
[[nodiscard]] PipelineReport run_pipeline(PacketSource& source, Engine& engine,
                                          const PipelineOptions& options = {});

}  // namespace netsample::stream
