#include "stream/source.h"

#include <algorithm>

namespace netsample::stream {

bool TraceSource::next_chunk(std::size_t max,
                             std::vector<trace::PacketRecord>& out) {
  if (pos_ >= view_.size() || max == 0) return false;
  const std::size_t take = std::min(max, view_.size() - pos_);
  const auto packets = view_.packets();
  out.insert(out.end(), packets.begin() + static_cast<std::ptrdiff_t>(pos_),
             packets.begin() + static_cast<std::ptrdiff_t>(pos_ + take));
  pos_ += take;
  return true;
}

PcapSource::PcapSource(const std::string& path) : reader_(path) {}

bool PcapSource::next_chunk(std::size_t max,
                            std::vector<trace::PacketRecord>& out) {
  const std::size_t before = out.size();
  while (out.size() - before < max) {
    auto raw = reader_.next();
    if (!raw) break;
    auto rec = pcap::decode_record(*raw, reader_.link_type(), &stats_);
    if (!rec) continue;
    // One-pass streams cannot stable-sort reorderings the way decode()
    // does; clamp clock-backward records to the running maximum instead
    // (trace::TimePolicy::kClamp semantics) so downstream gap arithmetic
    // never sees negative interarrivals.
    if (any_ && rec->timestamp < last_ts_) {
      rec->timestamp = last_ts_;
      ++clamped_;
    }
    last_ts_ = rec->timestamp;
    any_ = true;
    out.push_back(*rec);
  }
  return out.size() > before;
}

}  // namespace netsample::stream
