// Chunked packet sources for the streaming scorer.
//
// A PacketSource yields time-ordered PacketRecords in caller-sized chunks
// with O(chunk) memory. Two implementations:
//
//   TraceSource — chunks an in-memory TraceView (synthetic traces, tests,
//     and the bit-identity suite that pins streaming against the batch
//     fast path).
//   PcapSource  — record-at-a-time decode off pcap::StreamReader, sharing
//     pcap::decode_record with the whole-file path. The whole-file decoder
//     stable-sorts small capture-stack reorderings; a single pass cannot,
//     so out-of-order timestamps are clamped to the running maximum (the
//     same salvage rule as trace::TimePolicy::kClamp) and counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pcap/pcap.h"
#include "pcap/stream.h"
#include "trace/trace.h"
#include "util/status.h"

namespace netsample::stream {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Append up to `max` records to `out` (which the caller has cleared).
  /// Returns false when the stream is exhausted and no records were added.
  [[nodiscard]] virtual bool next_chunk(std::size_t max,
                                        std::vector<trace::PacketRecord>& out) = 0;

  /// OK, or why the stream ended early (e.g. kDataLoss on a corrupt tail).
  [[nodiscard]] virtual Status status() const { return Status::ok(); }
};

/// Streams an in-memory view in chunks.
class TraceSource final : public PacketSource {
 public:
  explicit TraceSource(trace::TraceView view) : view_(view) {}

  [[nodiscard]] bool next_chunk(std::size_t max,
                                std::vector<trace::PacketRecord>& out) override;

 private:
  trace::TraceView view_;
  std::size_t pos_{0};
};

/// Streams IPv4 records decoded from a pcap file, one record at a time.
class PcapSource final : public PacketSource {
 public:
  /// Opens the capture; check ok() before streaming.
  explicit PcapSource(const std::string& path);

  [[nodiscard]] bool ok() const { return reader_.ok(); }
  [[nodiscard]] Status status() const override { return reader_.status(); }

  [[nodiscard]] bool next_chunk(std::size_t max,
                                std::vector<trace::PacketRecord>& out) override;

  [[nodiscard]] const pcap::DecodeStats& decode_stats() const { return stats_; }
  /// Records whose timestamp ran backwards and were clamped forward.
  [[nodiscard]] std::uint64_t clamped() const { return clamped_; }

 private:
  pcap::StreamReader reader_;
  pcap::DecodeStats stats_;
  std::uint64_t clamped_{0};
  MicroTime last_ts_{};
  bool any_{false};
};

}  // namespace netsample::stream
