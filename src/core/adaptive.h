// Adaptive sampling-rate control.
//
// Section 2's operational problem in closed-loop form: the T1 NNStat
// processor silently lost data when offered headers exceeded its capacity,
// and the fix (a fixed 1-in-50) was chosen by hand. This controller picks
// the granularity automatically, cycle by cycle: after each collection
// cycle it observes the offered packet count and adjusts k so that the
// *next* cycle's expected examined-header count stays inside a budget while
// never sampling coarser than needed (coarser k costs accuracy -- Figures
// 6-9). Granularities are restricted to a ladder (default powers of two) so
// that the discipline stays a clean 1-in-k systematic sampler.
#pragma once

#include <cstdint>
#include <vector>

namespace netsample::core {

struct AdaptiveControllerConfig {
  /// Maximum headers the statistics processor can examine per cycle.
  std::uint64_t examined_budget_per_cycle{100000};
  /// Use at most this fraction of the budget (headroom for bursts).
  double headroom{0.8};
  /// Granularity bounds; k is always a power of two within [min, max].
  std::uint64_t min_granularity{1};
  std::uint64_t max_granularity{65536};
  /// Exponential smoothing of the offered-load observations (0 < alpha <= 1;
  /// 1 = trust the last cycle completely).
  double smoothing_alpha{0.5};
};

class AdaptiveRateController {
 public:
  /// Throws std::invalid_argument for empty budgets, non-power-of-two or
  /// inverted bounds, or alpha outside (0, 1].
  explicit AdaptiveRateController(AdaptiveControllerConfig config);

  /// Current granularity k: examine every k-th packet this cycle.
  [[nodiscard]] std::uint64_t granularity() const { return k_; }

  /// Report a finished cycle's offered packet count; returns the
  /// granularity to use for the next cycle.
  std::uint64_t observe_cycle(std::uint64_t offered_packets);

  /// The smoothed offered-load estimate driving decisions.
  [[nodiscard]] double load_estimate() const { return load_estimate_; }

  /// Expected examined count next cycle at the current granularity.
  [[nodiscard]] double expected_examined() const {
    return load_estimate_ / static_cast<double>(k_);
  }

 private:
  AdaptiveControllerConfig config_;
  std::uint64_t k_;
  double load_estimate_{0.0};
  bool have_estimate_{false};
};

}  // namespace netsample::core
