// The sampler abstraction (Section 4 of the paper).
//
// A Sampler is a streaming, one-pass packet-selection discipline: the
// forwarding path offers it every packet and it answers "include this one in
// the sample?". This is exactly the shape of the mechanism the paper
// describes being pushed into the T3 subsystems' firmware (and the shape
// sFlow/NetFlow sampled exports later standardized): selection must be
// decidable online, per packet, with O(1) state.
//
// The five disciplines of the paper are concrete Samplers (samplers.h);
// experiments drive them over TraceViews with draw_sample().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/cancel.h"
#include "util/timeval.h"

namespace netsample::core {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Start a pass over an observation interval beginning at `interval_start`.
  /// Count-triggered samplers ignore the time; timer-triggered samplers arm
  /// their first deadline relative to it. Must be called before offer().
  virtual void begin(MicroTime interval_start) = 0;

  /// Offer the next packet in arrival order; returns true to include it.
  [[nodiscard]] virtual bool offer(const trace::PacketRecord& p) = 0;

  /// Human-readable discipline name ("systematic/count", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Drive `sampler` over every packet of `view` (calling begin() with the
/// view's start time) and collect the selected packets. When `cancel` is
/// non-null the per-packet loop polls it every util::kCancelPollStride
/// packets and unwinds with util::StatusError on cancellation or deadline
/// expiry (the watchdog hook for wedged streaming passes).
[[nodiscard]] std::vector<trace::PacketRecord> draw_sample(
    trace::TraceView view, Sampler& sampler,
    const util::CancelToken* cancel = nullptr);

/// As draw_sample, but returns the *indices* of selected packets within the
/// view — used by tests that check selection patterns.
[[nodiscard]] std::vector<std::size_t> draw_sample_indices(
    trace::TraceView view, Sampler& sampler,
    const util::CancelToken* cancel = nullptr);

}  // namespace netsample::core
