#include "core/trace_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/simd/simd.h"
#include "obs/metrics.h"

namespace netsample::core {

BinnedTraceCache::BinnedTraceCache(trace::TraceView base)
    : base_(base),
      size_edges_own_(paper_bin_edges(Target::kPacketSize)),
      gap_edges_own_(paper_bin_edges(Target::kInterarrivalTime)) {
  const std::size_t n = base.size();
  // Bin ids come from the same Histogram::bin_index the streaming path
  // uses, so fast and legacy binning cannot drift apart.
  const stats::Histogram size_layout{std::vector<double>(size_edges_own_)};
  const stats::Histogram gap_layout{std::vector<double>(gap_edges_own_)};
  const std::size_t size_bins = size_layout.bin_count();
  const std::size_t gap_bins = gap_layout.bin_count();

  ts_own_.resize(n);
  size_bin_own_.resize(n);
  gap_bin_own_.resize(n);
  bool vectorized = false;
  if (const auto& kt = simd::kernels();
      n > 0 && kt.classify_u32 != nullptr && kt.classify_gaps_u64 != nullptr) {
    // The SIMD compare ladders work on integer thresholds equivalent to
    // bin_index on integer inputs (see simd.h); paper edges always qualify,
    // exotic custom edges fall back to the scalar reference below.
    const auto size_thr = simd::integer_thresholds_u32(size_edges_own_);
    const auto gap_thr = simd::integer_thresholds(gap_edges_own_);
    if (size_thr.has_value() && gap_thr.has_value() &&
        size_thr->size() <= simd::kMaxThresholds &&
        gap_thr->size() <= simd::kMaxThresholds) {
      std::vector<std::uint32_t> sizes(n);
      for (std::size_t i = 0; i < n; ++i) {
        ts_own_[i] = base[i].timestamp.usec;
        sizes[i] = base[i].size;
      }
      kt.classify_u32(sizes.data(), n, size_thr->data(), size_thr->size(),
                      size_bin_own_.data());
      kt.classify_gaps_u64(ts_own_.data(), n, gap_thr->data(), gap_thr->size(),
                           gap_bin_own_.data());
      vectorized = true;
    }
  }
  if (!vectorized) {
    for (std::size_t i = 0; i < n; ++i) {
      ts_own_[i] = base[i].timestamp.usec;
      size_bin_own_[i] = static_cast<std::uint8_t>(
          size_layout.bin_index(static_cast<double>(base[i].size)));
      gap_bin_own_[i] =
          i == 0 ? 0
                 : static_cast<std::uint8_t>(gap_layout.bin_index(
                       static_cast<double>(ts_own_[i] - ts_own_[i - 1])));
    }
  }

  size_prefix_own_.assign(size_bins * (n + 1), 0);
  for (std::size_t b = 0; b < size_bins; ++b) {
    std::uint32_t* col = size_prefix_own_.data() + b * (n + 1);
    std::uint32_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (size_bin_own_[i] == b) ++run;
      col[i + 1] = run;
    }
  }
  gap_prefix_own_.assign(gap_bins * (n + 1), 0);
  for (std::size_t b = 0; b < gap_bins; ++b) {
    std::uint32_t* col = gap_prefix_own_.data() + b * (n + 1);
    std::uint32_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && gap_bin_own_[i] == b) ++run;
      col[i + 1] = run;
    }
  }

  size_edges_ = size_edges_own_;
  gap_edges_ = gap_edges_own_;
  ts_ = ts_own_;
  size_bin_ = size_bin_own_;
  gap_bin_ = gap_bin_own_;
  size_prefix_ = size_prefix_own_;
  gap_prefix_ = gap_prefix_own_;

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& builds =
        reg.counter("netsample_trace_cache_builds_total");
    static obs::Counter& packets =
        reg.counter("netsample_trace_cache_packets_binned_total");
    builds.increment();
    packets.add(n);
  }
}

BinnedTraceCache::BinnedTraceCache(trace::TraceView base,
                                   const BinnedTables& tables)
    : base_(base),
      mapped_(true),
      size_edges_(tables.size_edges),
      gap_edges_(tables.gap_edges),
      ts_(tables.timestamps),
      size_bin_(tables.size_bins),
      gap_bin_(tables.gap_bins),
      size_prefix_(tables.size_prefix),
      gap_prefix_(tables.gap_prefix) {
  const std::size_t n = base.size();
  const std::size_t size_bins = size_edges_.size() + 1;
  const std::size_t gap_bins = gap_edges_.size() + 1;
  if (ts_.size() != n || size_bin_.size() != n || gap_bin_.size() != n ||
      size_prefix_.size() != size_bins * (n + 1) ||
      gap_prefix_.size() != gap_bins * (n + 1)) {
    throw std::invalid_argument(
        "BinnedTraceCache: external table lengths inconsistent with base");
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& maps =
        reg.counter("netsample_trace_cache_maps_total");
    static obs::Counter& packets =
        reg.counter("netsample_trace_cache_packets_mapped_total");
    maps.increment();
    packets.add(n);
  }
}

std::size_t BinnedTraceCache::lower_bound_time(std::uint64_t t, std::size_t lo,
                                               std::size_t hi) const {
  const auto first = ts_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = ts_.begin() + static_cast<std::ptrdiff_t>(hi);
  return static_cast<std::size_t>(std::lower_bound(first, last, t) -
                                  ts_.begin());
}

stats::Histogram BinnedTraceCache::population_histogram(Target t,
                                                        std::size_t begin,
                                                        std::size_t end) const {
  if (begin > end || end > size()) {
    throw std::out_of_range("population_histogram: bad range");
  }
  {
    static obs::Counter& calls = obs::registry().counter(
        "netsample_trace_cache_population_histograms_total");
    calls.increment();
  }
  const std::size_t n1 = size() + 1;
  if (t == Target::kPacketSize) {
    const std::size_t bins = size_edges_.size() + 1;
    std::vector<std::uint64_t> counts(bins, 0);
    for (std::size_t b = 0; b < bins; ++b) {
      const std::uint32_t* col = size_prefix_.data() + b * n1;
      counts[b] = col[end] - col[begin];
    }
    return stats::Histogram::with_counts(
        std::vector<double>(size_edges_.begin(), size_edges_.end()),
        std::move(counts));
  }
  const std::size_t bins = gap_edges_.size() + 1;
  std::vector<std::uint64_t> counts(bins, 0);
  // Gaps live at indices [begin+1, end): the range's first packet has no
  // in-range predecessor.
  if (end > begin + 1) {
    for (std::size_t b = 0; b < bins; ++b) {
      const std::uint32_t* col = gap_prefix_.data() + b * n1;
      counts[b] = col[end] - col[begin + 1];
    }
  }
  return stats::Histogram::with_counts(
      std::vector<double>(gap_edges_.begin(), gap_edges_.end()),
      std::move(counts));
}

stats::Histogram BinnedTraceCache::sample_histogram(
    Target t, std::span<const std::size_t> view_indices,
    std::size_t view_begin) const {
  {
    static obs::Counter& calls = obs::registry().counter(
        "netsample_trace_cache_sample_histograms_total");
    calls.increment();
  }
  const auto& kt = simd::kernels();
  if (t == Target::kPacketSize) {
    std::vector<std::uint64_t> counts(size_edges_.size() + 1, 0);
    if (kt.accumulate_u8 != nullptr) {
      kt.accumulate_u8(size_bin_.data() + view_begin, view_indices.data(),
                       view_indices.size(), /*skip_rel0=*/false, counts.data(),
                       counts.size());
    } else {
      for (const std::size_t rel : view_indices) {
        ++counts[size_bin_[view_begin + rel]];
      }
    }
    return stats::Histogram::with_counts(
        std::vector<double>(size_edges_.begin(), size_edges_.end()),
        std::move(counts));
  }
  std::vector<std::uint64_t> counts(gap_edges_.size() + 1, 0);
  if (kt.accumulate_u8 != nullptr) {
    kt.accumulate_u8(gap_bin_.data() + view_begin, view_indices.data(),
                     view_indices.size(), /*skip_rel0=*/true, counts.data(),
                     counts.size());
  } else {
    for (const std::size_t rel : view_indices) {
      if (rel == 0) continue;  // first packet of the view: no predecessor
      ++counts[gap_bin_[view_begin + rel]];
    }
  }
  return stats::Histogram::with_counts(
      std::vector<double>(gap_edges_.begin(), gap_edges_.end()),
      std::move(counts));
}

// ---------------------------------------------------------------------------
// Legacy-scan switch

namespace {

bool legacy_env_default() {
  static const bool value = [] {
    const char* e = std::getenv("NETSAMPLE_LEGACY_SCAN");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
  }();
  return value;
}

// -1 = no override (follow the environment), 0 = fast path, 1 = legacy.
std::atomic<int> g_legacy_override{-1};

}  // namespace

bool legacy_scan_forced() {
  const int o = g_legacy_override.load(std::memory_order_relaxed);
  return o < 0 ? legacy_env_default() : o != 0;
}

void force_legacy_scan(bool on) {
  g_legacy_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void clear_legacy_scan_override() {
  g_legacy_override.store(-1, std::memory_order_relaxed);
}

}  // namespace netsample::core
