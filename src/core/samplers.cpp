#include "core/samplers.h"

#include <cmath>
#include <stdexcept>

namespace netsample::core {

const char* method_name(Method m) {
  switch (m) {
    case Method::kSystematicCount: return "systematic/count";
    case Method::kStratifiedCount: return "stratified/count";
    case Method::kSimpleRandom: return "simple-random";
    case Method::kSystematicTimer: return "systematic/timer";
    case Method::kStratifiedTimer: return "stratified/timer";
  }
  return "unknown";
}

bool method_is_timer_driven(Method m) {
  return m == Method::kSystematicTimer || m == Method::kStratifiedTimer;
}

std::uint64_t method_seed_tag(Method m) {
  switch (m) {
    case Method::kSystematicCount: return 0x5359434eULL;   // "SYCN"
    case Method::kStratifiedCount: return 0x5354434eULL;   // "STCN"
    case Method::kSimpleRandom: return 0x53524e44ULL;      // "SRND"
    case Method::kSystematicTimer: return 0x5359544dULL;   // "SYTM"
    case Method::kStratifiedTimer: return 0x5354544dULL;   // "STTM"
  }
  return 0;
}

std::vector<trace::PacketRecord> draw_sample(trace::TraceView view,
                                             Sampler& sampler,
                                             const util::CancelToken* cancel) {
  std::vector<trace::PacketRecord> out;
  if (view.empty()) return out;
  sampler.begin(view.start_time());
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (cancel != nullptr && i % util::kCancelPollStride == 0) {
      cancel->throw_if_stopped();
    }
    if (sampler.offer(view[i])) out.push_back(view[i]);
  }
  return out;
}

std::vector<std::size_t> draw_sample_indices(trace::TraceView view,
                                             Sampler& sampler,
                                             const util::CancelToken* cancel) {
  std::vector<std::size_t> out;
  if (view.empty()) return out;
  sampler.begin(view.start_time());
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (cancel != nullptr && i % util::kCancelPollStride == 0) {
      cancel->throw_if_stopped();
    }
    if (sampler.offer(view[i])) out.push_back(i);
  }
  return out;
}

// --------------------------------------------------------------------------
// SystematicCountSampler

SystematicCountSampler::SystematicCountSampler(std::uint64_t k,
                                               std::uint64_t offset)
    : k_(k), offset_(offset) {
  if (k_ == 0) throw std::invalid_argument("systematic: k must be >= 1");
  if (offset_ >= k_) throw std::invalid_argument("systematic: offset must be < k");
}

void SystematicCountSampler::begin(MicroTime /*interval_start*/) {
  position_ = 0;
}

bool SystematicCountSampler::offer(const trace::PacketRecord& /*p*/) {
  const bool take = (position_ % k_) == offset_;
  ++position_;
  return take;
}

std::string SystematicCountSampler::name() const {
  return "systematic/count(1/" + std::to_string(k_) + ")";
}

// --------------------------------------------------------------------------
// StratifiedCountSampler

StratifiedCountSampler::StratifiedCountSampler(std::uint64_t k, Rng rng)
    : k_(k), rng_(rng) {
  if (k_ == 0) throw std::invalid_argument("stratified: k must be >= 1");
}

void StratifiedCountSampler::begin(MicroTime /*interval_start*/) {
  pass_rng_ = rng_;  // identical passes replay the identical choice sequence
  position_in_bucket_ = 0;
  chosen_ = pass_rng_.uniform_below(k_);
}

bool StratifiedCountSampler::offer(const trace::PacketRecord& /*p*/) {
  const bool take = position_in_bucket_ == chosen_;
  ++position_in_bucket_;
  if (position_in_bucket_ == k_) {
    position_in_bucket_ = 0;
    chosen_ = pass_rng_.uniform_below(k_);
  }
  return take;
}

std::string StratifiedCountSampler::name() const {
  return "stratified/count(1/" + std::to_string(k_) + ")";
}

// --------------------------------------------------------------------------
// SimpleRandomSampler

SimpleRandomSampler::SimpleRandomSampler(std::uint64_t n, std::uint64_t population,
                                         Rng rng)
    : n_(n), population_(population), rng_(rng) {
  if (n_ > population_) {
    throw std::invalid_argument("simple random: n exceeds population");
  }
}

void SimpleRandomSampler::begin(MicroTime /*interval_start*/) {
  pass_rng_ = rng_;
  seen_ = 0;
  selected_ = 0;
}

bool SimpleRandomSampler::offer(const trace::PacketRecord& /*p*/) {
  if (seen_ >= population_) {
    // Packets beyond the declared population (operational N was an estimate):
    // never selected, keeping the sample size exact.
    ++seen_;
    return false;
  }
  const std::uint64_t remaining_to_see = population_ - seen_;
  const std::uint64_t remaining_to_pick = n_ - selected_;
  ++seen_;
  if (remaining_to_pick == 0) return false;
  // Select with probability remaining_to_pick / remaining_to_see: yields a
  // uniform n-subset of the N positions (Knuth TAOCP vol 2, Algorithm S).
  const bool take =
      pass_rng_.uniform_below(remaining_to_see) < remaining_to_pick;
  if (take) ++selected_;
  return take;
}

std::string SimpleRandomSampler::name() const {
  return "simple-random(" + std::to_string(n_) + "/" + std::to_string(population_) +
         ")";
}

// --------------------------------------------------------------------------
// ScheduledStratifiedSampler

ScheduledStratifiedSampler::ScheduledStratifiedSampler(
    std::vector<std::uint64_t> schedule, Rng rng)
    : schedule_(std::move(schedule)), rng_(rng) {
  if (schedule_.empty()) {
    throw std::invalid_argument("scheduled stratified: empty schedule");
  }
  for (auto s : schedule_) {
    if (s == 0) {
      throw std::invalid_argument("scheduled stratified: zero bucket size");
    }
  }
}

void ScheduledStratifiedSampler::begin(MicroTime /*interval_start*/) {
  pass_rng_ = rng_;
  schedule_pos_ = 0;
  arm_bucket();
}

void ScheduledStratifiedSampler::arm_bucket() {
  bucket_size_ = schedule_[schedule_pos_];
  schedule_pos_ = (schedule_pos_ + 1) % schedule_.size();
  position_in_bucket_ = 0;
  chosen_ = pass_rng_.uniform_below(bucket_size_);
}

bool ScheduledStratifiedSampler::offer(const trace::PacketRecord& /*p*/) {
  const bool take = position_in_bucket_ == chosen_;
  ++position_in_bucket_;
  if (position_in_bucket_ == bucket_size_) arm_bucket();
  return take;
}

std::string ScheduledStratifiedSampler::name() const {
  return "stratified/scheduled(" + std::to_string(schedule_.size()) +
         " bucket sizes)";
}

double ScheduledStratifiedSampler::mean_fraction() const {
  std::uint64_t total = 0;
  for (auto s : schedule_) total += s;
  return static_cast<double>(schedule_.size()) / static_cast<double>(total);
}

// --------------------------------------------------------------------------
// BernoulliSampler

BernoulliSampler::BernoulliSampler(double probability, Rng rng)
    : probability_(probability), rng_(rng) {
  if (!(probability_ > 0.0 && probability_ <= 1.0)) {
    throw std::invalid_argument("bernoulli: probability must be in (0,1]");
  }
}

void BernoulliSampler::begin(MicroTime /*interval_start*/) {
  pass_rng_ = rng_;
  skip_remaining_ =
      probability_ >= 1.0 ? 0 : pass_rng_.geometric(probability_);
}

bool BernoulliSampler::offer(const trace::PacketRecord& /*p*/) {
  if (skip_remaining_ > 0) {
    --skip_remaining_;
    return false;
  }
  skip_remaining_ =
      probability_ >= 1.0 ? 0 : pass_rng_.geometric(probability_);
  return true;
}

std::string BernoulliSampler::name() const {
  return "bernoulli(p=" + std::to_string(probability_) + ")";
}

// --------------------------------------------------------------------------
// SystematicTimerSampler

SystematicTimerSampler::SystematicTimerSampler(MicroDuration period,
                                               ExpiryPolicy policy,
                                               MicroDuration phase)
    : period_(period), policy_(policy), phase_(phase) {
  if (period_.usec <= 0) {
    throw std::invalid_argument("timer: period must be positive");
  }
  if (phase_.usec < 0 || phase_.usec >= period_.usec) {
    throw std::invalid_argument("timer: phase must be in [0, period)");
  }
}

void SystematicTimerSampler::begin(MicroTime interval_start) {
  interval_start_ = interval_start + phase_;
  expiries_consumed_ = 0;
}

bool SystematicTimerSampler::offer(const trace::PacketRecord& p) {
  if (p.timestamp < interval_start_) return false;  // before the phased grid
  // Number of deadlines (start + i*T, i >= 1) that have passed by p's arrival.
  const std::uint64_t elapsed = p.timestamp.usec - interval_start_.usec;
  const std::uint64_t expired = elapsed / static_cast<std::uint64_t>(period_.usec);
  if (expired <= expiries_consumed_) return false;
  if (policy_ == ExpiryPolicy::kCoalesce) {
    // All pending expiries collapse into this one selection.
    expiries_consumed_ = expired;
  } else {
    // Queue semantics: drain one expiry per packet.
    ++expiries_consumed_;
  }
  return true;
}

std::string SystematicTimerSampler::name() const {
  return "systematic/timer(T=" + std::to_string(period_.usec) + "us)";
}

// --------------------------------------------------------------------------
// StratifiedTimerSampler

StratifiedTimerSampler::StratifiedTimerSampler(MicroDuration period, Rng rng)
    : period_(period), rng_(rng) {
  if (period_.usec <= 0) {
    throw std::invalid_argument("timer: period must be positive");
  }
}

void StratifiedTimerSampler::begin(MicroTime interval_start) {
  interval_start_ = interval_start;
  pass_rng_ = rng_;
  window_ = 0;
  arm_window(0);
}

void StratifiedTimerSampler::arm_window(std::uint64_t window_index) {
  window_ = window_index;
  const std::uint64_t t = static_cast<std::uint64_t>(period_.usec);
  trigger_ = MicroTime{interval_start_.usec + window_index * t +
                       pass_rng_.uniform_below(t)};
  trigger_armed_ = true;
}

bool StratifiedTimerSampler::offer(const trace::PacketRecord& p) {
  if (!trigger_armed_) return false;
  if (p.timestamp < trigger_) return false;
  // Trigger fired at or before this packet: select it, then arm the first
  // window that begins after this packet (windows that already elapsed
  // during the wait coalesce, mirroring the systematic timer's policy).
  const std::uint64_t t = static_cast<std::uint64_t>(period_.usec);
  const std::uint64_t current_window =
      (p.timestamp.usec - interval_start_.usec) / t;
  arm_window(std::max(window_ + 1, current_window + 1));
  return true;
}

std::string StratifiedTimerSampler::name() const {
  return "stratified/timer(T=" + std::to_string(period_.usec) + "us)";
}

// --------------------------------------------------------------------------
// Factory

MicroDuration spec_timer_period(const SamplerSpec& spec) {
  if (spec.mean_interarrival_usec <= 0.0) {
    throw std::invalid_argument(
        "timer methods require the population mean interarrival time");
  }
  const auto period = MicroDuration{static_cast<std::int64_t>(
      std::llround(spec.mean_interarrival_usec *
                   static_cast<double>(spec.granularity)))};
  if (period.usec <= 0) {
    throw std::invalid_argument("timer: period must be positive");
  }
  return period;
}

std::uint64_t spec_timer_phase_usec(const SamplerSpec& spec) {
  const auto period = spec_timer_period(spec);
  return spec.timer_phase_usec % static_cast<std::uint64_t>(period.usec);
}

std::uint64_t spec_simple_random_n(const SamplerSpec& spec) {
  if (spec.population == 0) {
    throw std::invalid_argument("simple random requires a population size");
  }
  return std::max<std::uint64_t>(
      1, (spec.population + spec.granularity / 2) / spec.granularity);
}

std::unique_ptr<Sampler> make_sampler(const SamplerSpec& spec) {
  if (spec.granularity == 0) {
    throw std::invalid_argument("sampler spec: granularity must be >= 1");
  }
  switch (spec.method) {
    case Method::kSystematicCount:
      return std::make_unique<SystematicCountSampler>(spec.granularity,
                                                      spec.offset);
    case Method::kStratifiedCount:
      return std::make_unique<StratifiedCountSampler>(spec.granularity,
                                                      Rng(spec.seed));
    case Method::kSimpleRandom:
      return std::make_unique<SimpleRandomSampler>(
          spec_simple_random_n(spec), spec.population, Rng(spec.seed));
    case Method::kSystematicTimer:
    case Method::kStratifiedTimer: {
      const auto period = spec_timer_period(spec);
      if (spec.method == Method::kSystematicTimer) {
        const auto phase = MicroDuration{
            static_cast<std::int64_t>(spec_timer_phase_usec(spec))};
        return std::make_unique<SystematicTimerSampler>(period,
                                                        spec.expiry_policy, phase);
      }
      return std::make_unique<StratifiedTimerSampler>(period, Rng(spec.seed));
    }
  }
  throw std::invalid_argument("sampler spec: unknown method");
}

}  // namespace netsample::core
