// Statistical design of sampling plans (Section 5.1 of the paper).
//
// Cochran's formula for the simple-random sample size needed to estimate a
// population mean to within +-r% at a given confidence:
//
//     n0 = (100 * z * sigma / (r * mu))^2
//
// assuming an infinite population; the finite-population correction
// n = n0 / (1 + n0/N) applies when n0 is a non-trivial fraction of N.
// The paper evaluates this for its two targets at r = 5% and 1%.
#pragma once

#include <cstdint>

namespace netsample::core {

struct SampleSizePlan {
  double accuracy_pct{5.0};     // r: half-width of the CI as a % of the mean
  double confidence{0.95};      // 1 - alpha
  double z{0};                  // two-sided z value for the confidence
  double n_infinite{0};         // n0, infinite-population size (real-valued)
  std::uint64_t n{0};           // ceil(n0), the paper's reported figure
  std::uint64_t n_fpc{0};       // with finite-population correction (0 if N unknown)
  double sampling_fraction{0};  // n / N (0 if N unknown)
};

/// Compute the plan. mu and sigma are the *population* mean and standard
/// deviation of the estimand; population = 0 means "treat as infinite".
/// Throws std::invalid_argument for non-positive mu/sigma/accuracy or
/// confidence outside (0,1).
[[nodiscard]] SampleSizePlan plan_sample_size(double mu, double sigma,
                                              double accuracy_pct,
                                              double confidence,
                                              std::uint64_t population = 0);

/// Inverse question: the accuracy (r%, at the given confidence) achievable
/// with a sample of size n from a population with the given mu/sigma.
[[nodiscard]] double achievable_accuracy_pct(double mu, double sigma,
                                             std::uint64_t n, double confidence);

}  // namespace netsample::core
