#include "core/select_indices.h"

#include <algorithm>
#include <stdexcept>

#include "core/simd/simd.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace netsample::core {

namespace {

// Every kernel below replays the corresponding streaming sampler's sequence
// of uniform_below() calls (same bounds, same order) over the range
// [begin, end) of the cache, so the emitted index sets are bit-identical to
// driving the Sampler with draw_sample_indices(). Divergences that cannot
// affect the output — e.g. trailing RNG draws a streaming pass makes after
// the last packet — are noted inline.

std::vector<std::size_t> systematic_count(const SamplerSpec& spec,
                                          std::size_t n) {
  // Mirrors the SystematicCountSampler constructor checks.
  if (spec.offset >= spec.granularity) {
    throw std::invalid_argument("systematic: offset must be < k");
  }
  std::vector<std::size_t> out;
  if (n > spec.offset) out.reserve((n - spec.offset - 1) / spec.granularity + 1);
  for (std::size_t i = spec.offset; i < n; i += spec.granularity) {
    out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> stratified_count(const SamplerSpec& spec,
                                          std::size_t n) {
  const std::uint64_t k = spec.granularity;
  Rng rng(spec.seed);
  std::vector<std::size_t> out;
  out.reserve(n / k + 1);
  // Bucket b's winner is the (b+1)-th uniform_below(k) draw, exactly as the
  // streaming sampler draws one at begin() and one after each completed
  // bucket. (When n is a multiple of k the streaming pass makes one extra
  // trailing draw whose bucket never starts; it selects nothing.)
  for (std::size_t start = 0; start < n; start += k) {
    const std::uint64_t chosen = rng.uniform_below(k);
    if (start + chosen < n) out.push_back(start + static_cast<std::size_t>(chosen));
  }
  return out;
}

std::vector<std::size_t> simple_random(const SamplerSpec& spec, std::size_t n) {
  const std::uint64_t pick = spec_simple_random_n(spec);
  if (pick > spec.population) {
    throw std::invalid_argument("simple random: n exceeds population");
  }
  Rng rng(spec.seed);
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(pick));
  // Algorithm S over the SoA range: packets past the declared population are
  // never offered a draw, and once the sample is full the streaming sampler
  // stops drawing — so we stop scanning.
  const std::uint64_t limit =
      std::min<std::uint64_t>(n, spec.population);
  std::uint64_t selected = 0;
  for (std::uint64_t i = 0; i < limit && selected < pick; ++i) {
    if (rng.uniform_below(spec.population - i) < pick - selected) {
      out.push_back(static_cast<std::size_t>(i));
      ++selected;
    }
  }
  return out;
}

std::vector<std::size_t> systematic_timer(const SamplerSpec& spec,
                                          const BinnedTraceCache& cache,
                                          std::size_t begin, std::size_t end) {
  const std::uint64_t period =
      static_cast<std::uint64_t>(spec_timer_period(spec).usec);
  const std::uint64_t t0 =
      cache.timestamps()[begin] + spec_timer_phase_usec(spec);
  std::vector<std::size_t> out;
  // A packet at time ts is selected iff floor((ts - t0) / T) exceeds the
  // expiries already consumed, i.e. iff ts >= t0 + (consumed+1)*T — so each
  // selection is one binary search for that deadline. Under kCoalesce all
  // deadlines that elapsed by the selected packet collapse; under kQueue
  // exactly one is consumed per selection (and the search must resume past
  // the selected packet, which a streaming pass cannot re-offer).
  std::uint64_t consumed = 0;
  std::size_t pos = begin;
  for (;;) {
    const std::uint64_t deadline = t0 + (consumed + 1) * period;
    const std::size_t j = cache.lower_bound_time(deadline, pos, end);
    if (j >= end) break;
    out.push_back(j - begin);
    consumed = spec.expiry_policy == ExpiryPolicy::kCoalesce
                   ? (cache.timestamps()[j] - t0) / period
                   : consumed + 1;
    pos = j + 1;
  }
  return out;
}

std::vector<std::size_t> stratified_timer(const SamplerSpec& spec,
                                          const BinnedTraceCache& cache,
                                          std::size_t begin, std::size_t end) {
  const std::uint64_t period =
      static_cast<std::uint64_t>(spec_timer_period(spec).usec);
  const std::uint64_t start = cache.timestamps()[begin];
  Rng rng(spec.seed);
  std::vector<std::size_t> out;
  // Window w's trigger is start + w*T + uniform_below(T); the first packet
  // at or after it is selected, then the next armed window is the first one
  // beginning after the selected packet (elapsed windows coalesce). The
  // new trigger always lies strictly beyond the selected packet's window,
  // hence beyond the packet itself, so searches resume at j + 1.
  std::uint64_t w = 0;
  std::uint64_t trigger = start + rng.uniform_below(period);
  std::size_t pos = begin;
  for (;;) {
    const std::size_t j = cache.lower_bound_time(trigger, pos, end);
    if (j >= end) break;
    out.push_back(j - begin);
    const std::uint64_t current_window =
        (cache.timestamps()[j] - start) / period;
    w = std::max(w + 1, current_window + 1);
    trigger = start + w * period + rng.uniform_below(period);
    pos = j + 1;
  }
  return out;
}

}  // namespace

std::vector<std::size_t> select_indices(const SamplerSpec& spec,
                                        const BinnedTraceCache& cache,
                                        std::size_t begin, std::size_t end) {
  if (begin > end || end > cache.size()) {
    throw std::out_of_range("select_indices: bad range");
  }
  if (spec.granularity == 0) {
    throw std::invalid_argument("sampler spec: granularity must be >= 1");
  }
  const std::size_t n = end - begin;
  obs::Span kernel_span("kernel");
  std::vector<std::size_t> out;
  // Batched SIMD kernels replay the same raw RNG word sequence as the
  // scalar kernels (which in turn replay the streaming samplers), so any
  // variant yields the identical index set; a kernel may also decline
  // (return false) and drop to the scalar reference.
  const simd::KernelTable& simd_kernels = simd::kernels();
  switch (spec.method) {
    case Method::kSystematicCount:
      out = systematic_count(spec, n);
      break;
    case Method::kStratifiedCount:
      if (simd_kernels.stratified_count == nullptr ||
          !simd_kernels.stratified_count(spec.granularity, spec.seed, n,
                                         &out)) {
        out = stratified_count(spec, n);
      }
      break;
    case Method::kSimpleRandom: {
      const std::uint64_t pick = spec_simple_random_n(spec);
      if (pick > spec.population) {
        throw std::invalid_argument("simple random: n exceeds population");
      }
      const std::uint64_t limit = std::min<std::uint64_t>(n, spec.population);
      if (simd_kernels.simple_random == nullptr ||
          !simd_kernels.simple_random(pick, spec.population, limit, spec.seed,
                                      &out)) {
        out = simple_random(spec, n);
      }
      break;
    }
    case Method::kSystematicTimer:
    case Method::kStratifiedTimer:
      // Validate even when the range is empty, matching make_sampler.
      (void)spec_timer_period(spec);
      if (n == 0) break;
      out = spec.method == Method::kSystematicTimer
                ? systematic_timer(spec, cache, begin, end)
                : stratified_timer(spec, cache, begin, end);
      break;
    default:
      throw std::invalid_argument("sampler spec: unknown method");
  }
  if (obs::enabled()) {
    // Every kernel's RNG consumption is a closed-form function of its
    // output (that's what makes the streaming replay auditable), so the
    // draw count is computed here instead of threading a counter through
    // the kernels:
    //   systematic count/timer  — deterministic, 0 draws
    //   stratified count        — one uniform per bucket, ceil(n/k)
    //   simple random (Alg. S)  — one uniform per scanned packet; the scan
    //                             stops at the packet completing the sample
    //   stratified timer        — initial trigger + one re-arm per selection
    std::uint64_t draws = 0;
    switch (spec.method) {
      case Method::kStratifiedCount:
        draws = (static_cast<std::uint64_t>(n) + spec.granularity - 1) /
                spec.granularity;
        break;
      case Method::kSimpleRandom: {
        const std::uint64_t limit =
            std::min<std::uint64_t>(n, spec.population);
        draws = (!out.empty() && out.size() == spec_simple_random_n(spec))
                    ? static_cast<std::uint64_t>(out.back()) + 1
                    : limit;
        break;
      }
      case Method::kStratifiedTimer:
        draws = static_cast<std::uint64_t>(out.size()) + (n != 0 ? 1 : 0);
        break;
      default:
        break;
    }
    auto& reg = obs::registry();
    static obs::Counter& calls = reg.counter("netsample_select_calls_total");
    static obs::Counter& offered =
        reg.counter("netsample_select_offered_total");
    static obs::Counter& emitted =
        reg.counter("netsample_select_indices_total");
    static obs::Counter& rng_draws =
        reg.counter("netsample_select_rng_draws_total");
    calls.increment();
    offered.add(n);
    emitted.add(out.size());
    rng_draws.add(draws);
  }
  return out;
}

}  // namespace netsample::core
