#include "core/estimators.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace netsample::core {

Estimate estimate_total(double sampled_total, double sampling_fraction,
                        double confidence) {
  if (!(sampling_fraction > 0.0 && sampling_fraction <= 1.0)) {
    throw std::invalid_argument("estimate_total: fraction must be in (0,1]");
  }
  if (sampled_total < 0.0) {
    throw std::invalid_argument("estimate_total: negative sampled total");
  }
  const double z = stats::z_for_confidence(confidence);
  Estimate e;
  e.confidence = confidence;
  e.value = sampled_total / sampling_fraction;
  // Binomial thinning: Var(T_hat) ~ T * (1-f) / f; with T unknown, plug in
  // the estimate. Reduces to zero at f == 1.
  const double var = e.value * (1.0 - sampling_fraction) / sampling_fraction;
  const double half = z * std::sqrt(std::max(0.0, var));
  e.ci_low = std::max(0.0, e.value - half);
  e.ci_high = e.value + half;
  return e;
}

Estimate estimate_weighted_total(std::span<const double> sampled_weights,
                                 double sampling_fraction, double confidence) {
  if (!(sampling_fraction > 0.0 && sampling_fraction <= 1.0)) {
    throw std::invalid_argument(
        "estimate_weighted_total: fraction must be in (0,1]");
  }
  double sum = 0.0, sum2 = 0.0;
  for (double w : sampled_weights) {
    sum += w;
    sum2 += w * w;
  }
  const double z = stats::z_for_confidence(confidence);
  Estimate e;
  e.confidence = confidence;
  e.value = sum / sampling_fraction;
  const double var = (1.0 - sampling_fraction) * sum2 /
                     (sampling_fraction * sampling_fraction);
  const double half = z * std::sqrt(std::max(0.0, var));
  e.ci_low = std::max(0.0, e.value - half);
  e.ci_high = e.value + half;
  return e;
}

Estimate estimate_mean(std::span<const double> sample_values,
                       std::uint64_t population_size, double confidence) {
  if (sample_values.empty()) {
    throw std::invalid_argument("estimate_mean: empty sample");
  }
  const double n = static_cast<double>(sample_values.size());
  double sum = 0.0;
  for (double x : sample_values) sum += x;
  const double mean = sum / n;
  double ss = 0.0;
  for (double x : sample_values) ss += (x - mean) * (x - mean);
  const double s2 = sample_values.size() > 1 ? ss / (n - 1.0) : 0.0;

  double se2 = s2 / n;
  if (population_size > 0) {
    const double fpc =
        1.0 - n / static_cast<double>(population_size);  // finite pop. corr.
    se2 *= std::max(0.0, fpc);
  }
  const double z = stats::z_for_confidence(confidence);
  const double half = z * std::sqrt(se2);

  Estimate e;
  e.confidence = confidence;
  e.value = mean;
  e.ci_low = mean - half;
  e.ci_high = mean + half;
  return e;
}

Estimate estimate_proportion(std::uint64_t successes, std::uint64_t trials,
                             double confidence) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_proportion: zero trials");
  }
  if (successes > trials) {
    throw std::invalid_argument("estimate_proportion: successes > trials");
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = stats::z_for_confidence(confidence);
  const double z2 = z * z;

  // Wilson score interval.
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;

  Estimate e;
  e.confidence = confidence;
  e.value = p;
  e.ci_low = std::max(0.0, center - half);
  e.ci_high = std::min(1.0, center + half);
  return e;
}

std::vector<Estimate> estimate_category_totals(
    std::span<const double> sampled_counts, double sampling_fraction,
    double confidence) {
  std::vector<Estimate> out;
  out.reserve(sampled_counts.size());
  for (double c : sampled_counts) {
    out.push_back(estimate_total(c, sampling_fraction, confidence));
  }
  return out;
}

}  // namespace netsample::core
