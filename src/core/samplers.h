// The five sampling disciplines studied by the paper, plus a factory.
//
//   packet-count triggered:  systematic, stratified random, simple random
//   timer triggered:         systematic, stratified random
//
// All are streaming (O(1) state per pass) so they model an operational
// firmware implementation, not just an offline simulation.
#pragma once

#include <cstdint>
#include <memory>

#include "core/sampler.h"
#include "util/rng.h"

namespace netsample::core {

/// The method taxonomy of the paper's Section 4.
enum class Method {
  kSystematicCount,   // every k-th packet (deterministic)
  kStratifiedCount,   // one uniform-random packet per k-packet bucket
  kSimpleRandom,      // n uniform-random packets out of N
  kSystematicTimer,   // first packet after each T-usec timer expiry
  kStratifiedTimer,   // first packet after a uniform instant in each T window
};

[[nodiscard]] const char* method_name(Method m);
[[nodiscard]] bool method_is_timer_driven(Method m);

/// Stable 64-bit tag for seed derivation. Unlike the raw enum value it
/// survives reorderings of Method, so per-task RNG streams (and therefore
/// archived experiment outputs) stay reproducible across refactors.
[[nodiscard]] std::uint64_t method_seed_tag(Method m);

// ---------------------------------------------------------------------------
// Packet-count triggered disciplines
// ---------------------------------------------------------------------------

/// Deterministic 1-in-k: selects packets at positions offset, offset+k, ...
/// (offset in [0,k)). This is the NSFNET operational discipline with k=50.
class SystematicCountSampler final : public Sampler {
 public:
  /// Throws std::invalid_argument unless k >= 1 and offset < k.
  explicit SystematicCountSampler(std::uint64_t k, std::uint64_t offset = 0);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint64_t granularity() const { return k_; }

 private:
  std::uint64_t k_;
  std::uint64_t offset_;
  std::uint64_t position_{0};
};

/// Stratified random 1-in-k: each consecutive bucket of k packets
/// contributes one packet, chosen uniformly at random within the bucket.
class StratifiedCountSampler final : public Sampler {
 public:
  StratifiedCountSampler(std::uint64_t k, Rng rng);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::uint64_t k_;
  Rng rng_;
  Rng pass_rng_{0};     // re-seeded copy used within the current pass
  std::uint64_t position_in_bucket_{0};
  std::uint64_t chosen_{0};
};

/// Simple random sampling of exactly n out of a population of known size N,
/// via Fan/Muller/Rezucha selection sampling (Knuth's Algorithm S): packet i
/// is selected with probability (remaining to select)/(remaining to see).
/// Streaming, but requires N up front — in the operational setting N comes
/// from the previous collection cycle's packet count.
class SimpleRandomSampler final : public Sampler {
 public:
  /// Throws std::invalid_argument if n > population.
  SimpleRandomSampler(std::uint64_t n, std::uint64_t population, Rng rng);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::uint64_t n_;
  std::uint64_t population_;
  Rng rng_;
  Rng pass_rng_{0};
  std::uint64_t seen_{0};
  std::uint64_t selected_{0};
};

/// Stratified random sampling with a *schedule* of bucket sizes (the paper:
/// "for both systematic and stratified random sampling the bucket sizes do
/// not necessarily have to be constant"). The schedule is cycled: buckets
/// of sizes schedule[0], schedule[1], ..., schedule[0], ... One uniform-
/// random packet is selected within each bucket. A single-entry schedule
/// reduces to StratifiedCountSampler.
class ScheduledStratifiedSampler final : public Sampler {
 public:
  /// Throws std::invalid_argument on an empty schedule or any zero bucket.
  ScheduledStratifiedSampler(std::vector<std::uint64_t> schedule, Rng rng);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

  /// Mean sampling fraction implied by the schedule: (#buckets)/(sum sizes).
  [[nodiscard]] double mean_fraction() const;

 private:
  void arm_bucket();

  std::vector<std::uint64_t> schedule_;
  Rng rng_;
  Rng pass_rng_{0};
  std::size_t schedule_pos_{0};
  std::uint64_t bucket_size_{1};
  std::uint64_t position_in_bucket_{0};
  std::uint64_t chosen_{0};
};

/// Bernoulli sampling: each packet is selected independently with
/// probability 1/k. Implemented with geometric skip counts (draw how many
/// packets to pass over, then select), the trick sFlow standardized --
/// selection costs one RNG draw per *selected* packet, not per packet.
/// Sample size is random (binomial), unlike SimpleRandomSampler's exact n.
class BernoulliSampler final : public Sampler {
 public:
  /// Throws std::invalid_argument unless probability is in (0, 1].
  BernoulliSampler(double probability, Rng rng);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

 private:
  double probability_;
  Rng rng_;
  Rng pass_rng_{0};
  std::uint64_t skip_remaining_{0};
};

// ---------------------------------------------------------------------------
// Timer triggered disciplines
// ---------------------------------------------------------------------------

/// What a timer sampler does when several expiries pass with no packet in
/// between (an idle gap longer than the period).
enum class ExpiryPolicy {
  /// Missed expiries coalesce: at most one selection is pending at a time.
  /// This is what a real interrupt-driven implementation does and the
  /// default everywhere.
  kCoalesce,
  /// Every expiry queues a selection; after an idle gap the next packets are
  /// selected back-to-back until the queue drains. Kept for the ablation on
  /// the paper's "necessary approximation" remark.
  kQueue,
};

/// Periodic timer: deadlines at start+phase+T, start+phase+2T, ...; when a
/// deadline has passed, the next arriving packet is selected. `phase`
/// shifts the deadline grid and is how replications of this deterministic
/// method are built (the analogue of the systematic/count start offset).
class SystematicTimerSampler final : public Sampler {
 public:
  /// Throws std::invalid_argument unless period > 0 and 0 <= phase < period.
  explicit SystematicTimerSampler(MicroDuration period,
                                  ExpiryPolicy policy = ExpiryPolicy::kCoalesce,
                                  MicroDuration phase = MicroDuration{0});

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

 private:
  MicroDuration period_;
  ExpiryPolicy policy_;
  MicroDuration phase_;
  MicroTime interval_start_;
  std::uint64_t expiries_consumed_{0};  // deadlines already acted upon
};

/// Stratified-random timer: within each window [start+iT, start+(i+1)T) an
/// instant is drawn uniformly; the first packet at or after that instant is
/// selected (windows whose trigger fires during an idle gap select the next
/// packet to arrive, once).
class StratifiedTimerSampler final : public Sampler {
 public:
  StratifiedTimerSampler(MicroDuration period, Rng rng);

  void begin(MicroTime interval_start) override;
  [[nodiscard]] bool offer(const trace::PacketRecord& p) override;
  [[nodiscard]] std::string name() const override;

 private:
  void arm_window(std::uint64_t window_index);

  MicroDuration period_;
  Rng rng_;
  Rng pass_rng_{0};
  MicroTime interval_start_;
  std::uint64_t window_{0};      // index of the window the trigger lives in
  MicroTime trigger_;            // pending trigger instant
  bool trigger_armed_{false};
};

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

/// Everything needed to instantiate any of the five disciplines at a target
/// sampling granularity k (fraction 1/k).
struct SamplerSpec {
  Method method{Method::kSystematicCount};
  std::uint64_t granularity{50};   // k: the reciprocal of the sampling fraction
  /// Start offset for systematic/count (varied to build replications).
  std::uint64_t offset{0};
  /// Population size; required by simple random (n = round(N/k)).
  std::uint64_t population{0};
  /// Mean interarrival time of the parent, used to convert a granularity
  /// into the timer period T = k * mean_iat so that timer methods yield a
  /// comparable sampling fraction (the paper's "comparable cost").
  double mean_interarrival_usec{0.0};
  /// RNG seed for the random disciplines.
  std::uint64_t seed{1};
  ExpiryPolicy expiry_policy{ExpiryPolicy::kCoalesce};
  /// Deadline-grid phase for systematic/timer replications, in microseconds
  /// (must be < the derived period).
  std::uint64_t timer_phase_usec{0};
};

/// Build a sampler; throws std::invalid_argument on inconsistent specs
/// (e.g. simple random without a population, timer without mean interarrival).
[[nodiscard]] std::unique_ptr<Sampler> make_sampler(const SamplerSpec& spec);

// Derived quantities of a spec, shared by make_sampler and the
// index-emitting kernels (core/select_indices.h) so the two paths cannot
// diverge in how they interpret a spec.

/// Timer period T = round(mean_iat * k); throws std::invalid_argument when
/// the spec lacks a positive mean interarrival or the period rounds to 0.
[[nodiscard]] MicroDuration spec_timer_period(const SamplerSpec& spec);

/// Systematic/timer deadline phase, reduced modulo the derived period.
[[nodiscard]] std::uint64_t spec_timer_phase_usec(const SamplerSpec& spec);

/// Simple-random sample size n = max(1, round(N/k)); throws
/// std::invalid_argument when the spec lacks a population.
[[nodiscard]] std::uint64_t spec_simple_random_n(const SamplerSpec& spec);

}  // namespace netsample::core
