#include "core/categorical.h"

#include <algorithm>
#include <stdexcept>

#include "net/ports.h"

namespace netsample::core {

CategoricalTarget::CategoricalTarget(std::string name, CategoryKeyFn key_fn,
                                     trace::TraceView population)
    : name_(std::move(name)), key_fn_(std::move(key_fn)) {
  if (population.empty()) {
    throw std::invalid_argument("categorical target: empty population");
  }
  std::map<std::uint64_t, double> counts;
  for (const auto& p : population) counts[key_fn_(p)] += 1.0;

  // Order categories by descending population count so reports and top-N
  // truncations are natural.
  std::vector<std::pair<std::uint64_t, double>> ordered(counts.begin(),
                                                        counts.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  population_counts_.reserve(ordered.size() + 1);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    index_.emplace(ordered[i].first, i);
    population_counts_.push_back(ordered[i].second);
  }
  population_counts_.push_back(0.0);  // overflow slot
}

std::vector<double> CategoricalTarget::count_packets(
    std::span<const trace::PacketRecord> packets) const {
  std::vector<double> out(population_counts_.size(), 0.0);
  for (const auto& p : packets) {
    const auto it = index_.find(key_fn_(p));
    if (it == index_.end()) {
      out.back() += 1.0;  // overflow: category absent from the population
    } else {
      out[it->second] += 1.0;
    }
  }
  return out;
}

std::vector<double> CategoricalTarget::sample_counts(const Sample& s) const {
  std::vector<double> out(population_counts_.size(), 0.0);
  for (std::size_t i : s.indices) {
    const auto it = index_.find(key_fn_(s.parent[i]));
    if (it == index_.end()) {
      out.back() += 1.0;
    } else {
      out[it->second] += 1.0;
    }
  }
  return out;
}

double CategoricalTarget::coverage(std::span<const double> counts) const {
  if (index_.empty()) return 0.0;
  std::size_t covered = 0;
  const std::size_t n = std::min(counts.size(), index_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] > 0.0) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(index_.size());
}

CategoryKeyFn protocol_key() {
  return [](const trace::PacketRecord& p) {
    return static_cast<std::uint64_t>(p.protocol);
  };
}

CategoryKeyFn service_port_key() {
  return [](const trace::PacketRecord& p) -> std::uint64_t {
    if (p.protocol != 6 && p.protocol != 17) return 0xFFFFFFFFull;  // non-transport
    const auto svc = net::service_port(p.src_port, p.dst_port);
    return (std::uint64_t{p.protocol} << 16) | svc.value_or(0);
  };
}

CategoryKeyFn network_pair_key() {
  return [](const trace::PacketRecord& p) {
    const auto src = net::NetworkNumber::of(p.src);
    const auto dst = net::NetworkNumber::of(p.dst);
    return (std::uint64_t{src.prefix()} << 32) | dst.prefix();
  };
}

}  // namespace netsample::core
