// Index-emitting sampler kernels — layer 2 of the fused sweep engine.
//
// select_indices() answers the same question as driving a streaming Sampler
// over a view with draw_sample_indices() — "which packet positions does
// this spec select?" — but with cost proportional to the *selected* packets
// (the sFlow/RFC 3176 lesson), not the offered ones:
//
//   method             streaming offer() loop     index kernel
//   systematic/count   O(n)                       O(n/k)   strided arithmetic
//   stratified/count   O(n)                       O(n/k)   one RNG draw/bucket
//   simple random      O(n)                       O(n)     Algorithm S, branch-
//                                                          light, early exit
//   systematic/timer   O(n)                       O(s log n)  binary search
//   stratified/timer   O(n)                       O(s log n)  per deadline
//
// The kernels replay the streaming samplers' RNG call sequences exactly, so
// for every valid SamplerSpec the returned (view-relative, ascending) index
// set is BIT-IDENTICAL to the streaming one — asserted per-method by the
// randomized equivalence suite in tests/test_select_indices.cpp and over
// the full figure grid in tests/test_fastpath.cpp. The streaming hierarchy
// stays as the operational/firmware model and the correctness oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "core/samplers.h"
#include "core/trace_cache.h"

namespace netsample::core {

/// Selected positions, relative to `begin`, for `spec` run over the range
/// [begin, end) of the cache's base view — exactly the index set
/// draw_sample_indices(view, *make_sampler(spec)) yields for that view.
/// Throws std::invalid_argument on inconsistent specs (same contract as
/// make_sampler) and std::out_of_range for a range outside the cache.
[[nodiscard]] std::vector<std::size_t> select_indices(
    const SamplerSpec& spec, const BinnedTraceCache& cache, std::size_t begin,
    std::size_t end);

}  // namespace netsample::core
