#include "core/adaptive.h"

#include <bit>
#include <stdexcept>

namespace netsample::core {

namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

AdaptiveRateController::AdaptiveRateController(AdaptiveControllerConfig config)
    : config_(config), k_(config.min_granularity) {
  if (config_.examined_budget_per_cycle == 0) {
    throw std::invalid_argument("adaptive: zero examined budget");
  }
  if (!is_power_of_two(config_.min_granularity) ||
      !is_power_of_two(config_.max_granularity) ||
      config_.min_granularity > config_.max_granularity) {
    throw std::invalid_argument(
        "adaptive: granularity bounds must be powers of two, min <= max");
  }
  if (!(config_.headroom > 0.0 && config_.headroom <= 1.0)) {
    throw std::invalid_argument("adaptive: headroom must be in (0,1]");
  }
  if (!(config_.smoothing_alpha > 0.0 && config_.smoothing_alpha <= 1.0)) {
    throw std::invalid_argument("adaptive: alpha must be in (0,1]");
  }
}

std::uint64_t AdaptiveRateController::observe_cycle(
    std::uint64_t offered_packets) {
  const double offered = static_cast<double>(offered_packets);
  if (!have_estimate_) {
    load_estimate_ = offered;
    have_estimate_ = true;
  } else {
    load_estimate_ = config_.smoothing_alpha * offered +
                     (1.0 - config_.smoothing_alpha) * load_estimate_;
  }

  // Smallest power-of-two k within bounds whose expected examined count
  // fits the effective budget. Always picks the finest acceptable k, so
  // accuracy is never sacrificed beyond what capacity demands.
  const double effective_budget =
      config_.headroom * static_cast<double>(config_.examined_budget_per_cycle);
  std::uint64_t k = config_.min_granularity;
  while (k < config_.max_granularity &&
         load_estimate_ / static_cast<double>(k) > effective_budget) {
    k <<= 1;
  }
  k_ = k;
  return k_;
}

}  // namespace netsample::core
