#include "core/targets.h"

#include <atomic>

namespace netsample::core {

const char* target_name(Target t) {
  switch (t) {
    case Target::kPacketSize: return "packet size";
    case Target::kInterarrivalTime: return "interarrival time";
  }
  return "unknown";
}

std::vector<trace::PacketRecord> Sample::packets() const {
  std::vector<trace::PacketRecord> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(parent[i]);
  return out;
}

double Sample::fraction() const {
  if (parent.empty()) return 0.0;
  return static_cast<double>(indices.size()) / static_cast<double>(parent.size());
}

Sample draw(trace::TraceView view, Sampler& sampler,
            const util::CancelToken* cancel) {
  return Sample{view, draw_sample_indices(view, sampler, cancel)};
}

std::vector<double> paper_bin_edges(Target t) {
  switch (t) {
    case Target::kPacketSize:
      // bins: <41, [41,181), >=181  == the paper's <41 / 41..180 / >180
      return {41.0, 181.0};
    case Target::kInterarrivalTime:
      // bins: <800, [800,1200), [1200,2400), [2400,3600), >=3600
      return {800.0, 1200.0, 2400.0, 3600.0};
  }
  return {};
}

stats::Histogram make_target_histogram(Target t) {
  return stats::Histogram(paper_bin_edges(t));
}

namespace {
std::atomic<std::uint64_t> g_population_values_calls{0};
}  // namespace

std::uint64_t population_values_call_count() {
  return g_population_values_calls.load(std::memory_order_relaxed);
}

std::vector<double> population_values(trace::TraceView view, Target t) {
  g_population_values_calls.fetch_add(1, std::memory_order_relaxed);
  switch (t) {
    case Target::kPacketSize:
      return view.sizes();
    case Target::kInterarrivalTime:
      return view.interarrivals();
  }
  return {};
}

std::vector<double> sample_values(const Sample& s, Target t) {
  std::vector<double> out;
  out.reserve(s.indices.size());
  switch (t) {
    case Target::kPacketSize:
      for (std::size_t i : s.indices) {
        out.push_back(static_cast<double>(s.parent[i].size));
      }
      break;
    case Target::kInterarrivalTime:
      for (std::size_t i : s.indices) {
        if (i == 0) continue;  // no predecessor in the stream
        out.push_back(static_cast<double>(
            (s.parent[i].timestamp - s.parent[i - 1].timestamp).usec));
      }
      break;
  }
  return out;
}

stats::Histogram bin_values(std::span<const double> values,
                            const stats::Histogram& layout) {
  stats::Histogram h(
      std::vector<double>(layout.edges().begin(), layout.edges().end()));
  for (double v : values) h.add(v);
  return h;
}

stats::Histogram bin_population(trace::TraceView view, Target t) {
  auto h = make_target_histogram(t);
  for (double v : population_values(view, t)) h.add(v);
  return h;
}

stats::Histogram bin_sample(const Sample& s, Target t) {
  auto h = make_target_histogram(t);
  for (double v : sample_values(s, t)) h.add(v);
  return h;
}

}  // namespace netsample::core
