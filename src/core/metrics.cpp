#include "core/metrics.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace netsample::core {

DisparityMetrics score_counts(std::span<const double> observed,
                              std::span<const double> population,
                              double sampling_fraction) {
  if (observed.size() != population.size()) {
    throw std::invalid_argument("score: bin layout mismatch");
  }
  double pop_total = 0.0, obs_total = 0.0;
  for (double v : population) pop_total += v;
  for (double v : observed) obs_total += v;
  if (pop_total <= 0.0) {
    throw std::invalid_argument("score: empty population");
  }

  DisparityMetrics m;
  m.sample_n = static_cast<std::uint64_t>(std::llround(obs_total));
  m.population_n = static_cast<std::uint64_t>(std::llround(pop_total));

  double f = sampling_fraction;
  if (f <= 0.0) f = obs_total / pop_total;
  if (f <= 0.0) f = 1.0;  // degenerate empty sample; cost = population mass

  // Scale population counts to the sample size through one shared ratio:
  // expected_i = population_i * (obs_total / pop_total). Under null sampling
  // (sample == parent) the ratio is exactly 1.0, so expected_i == O_i in
  // floating point and χ²/φ are *exactly* zero — the per-bin formulation
  // (population_i / pop_total) * obs_total loses that identity to rounding.
  // tests/test_statistical_conformance.cpp pins the exact zero.
  const double scale = obs_total / pop_total;
  double phi_n = 0.0;
  std::size_t bins_used = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = population[i] * scale;
    const double oi = observed[i];

    // Population-scale l1: the sample's estimate of this bin's population
    // count is O_i / f.
    m.cost += std::fabs(oi / f - population[i]);

    if (expected > 0.0) {
      const double diff = oi - expected;
      m.chi2 += diff * diff / expected;
      m.x2 += diff * diff / (expected * expected);
      ++bins_used;
    } else if (oi > 0.0) {
      // Observations in a bin the population says is impossible.
      m.chi2 += oi * 1e12;
      m.x2 += oi * 1e12;
    }
    phi_n += expected + oi;
  }
  m.rcost = m.cost * f;

  const std::size_t b = observed.size();
  m.avg_norm_dev = b > 0 ? std::sqrt(m.x2 / static_cast<double>(b)) : 0.0;
  m.phi = phi_n > 0.0 ? std::sqrt(m.chi2 / phi_n) : 0.0;

  m.dof = bins_used > 1 ? static_cast<double>(bins_used - 1) : 1.0;
  m.significance =
      obs_total > 0.0 ? stats::chi_squared_sf(m.chi2, m.dof) : 1.0;
  return m;
}

DisparityMetrics score_sample(const stats::Histogram& sample,
                              const stats::Histogram& population,
                              double sampling_fraction) {
  if (sample.bin_count() != population.bin_count()) {
    throw std::invalid_argument("score: bin layout mismatch");
  }
  std::vector<double> obs(sample.bin_count());
  std::vector<double> pop(population.bin_count());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    obs[i] = static_cast<double>(sample.count(i));
    pop[i] = static_cast<double>(population.count(i));
  }
  return score_counts(obs, pop, sampling_fraction);
}

}  // namespace netsample::core
