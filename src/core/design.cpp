#include "core/design.h"

#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace netsample::core {

SampleSizePlan plan_sample_size(double mu, double sigma, double accuracy_pct,
                                double confidence, std::uint64_t population) {
  if (mu <= 0.0 || sigma <= 0.0) {
    throw std::invalid_argument("sample size plan requires mu > 0, sigma > 0");
  }
  if (accuracy_pct <= 0.0) {
    throw std::invalid_argument("accuracy must be positive");
  }
  SampleSizePlan p;
  p.accuracy_pct = accuracy_pct;
  p.confidence = confidence;
  p.z = stats::z_for_confidence(confidence);  // validates confidence range

  const double ratio = 100.0 * p.z * sigma / (accuracy_pct * mu);
  p.n_infinite = ratio * ratio;
  // Nearest integer, matching how the paper (and Cochran's worked examples)
  // report n; the fractional packet is statistically meaningless.
  p.n = static_cast<std::uint64_t>(std::llround(p.n_infinite));

  if (population > 0) {
    const double n0 = p.n_infinite;
    const double n_corr = n0 / (1.0 + n0 / static_cast<double>(population));
    p.n_fpc = static_cast<std::uint64_t>(std::llround(n_corr));
    p.sampling_fraction =
        static_cast<double>(p.n) / static_cast<double>(population);
  }
  return p;
}

double achievable_accuracy_pct(double mu, double sigma, std::uint64_t n,
                               double confidence) {
  if (mu <= 0.0 || sigma <= 0.0) {
    throw std::invalid_argument("accuracy requires mu > 0, sigma > 0");
  }
  if (n == 0) throw std::invalid_argument("accuracy requires n > 0");
  const double z = stats::z_for_confidence(confidence);
  return 100.0 * z * sigma / (std::sqrt(static_cast<double>(n)) * mu);
}

}  // namespace netsample::core
