// Analysis targets and their bin specifications (Section 7.1 of the paper).
//
// A target maps a sample to a binned distribution that is then compared
// against the parent population's distribution. The paper studies two
// targets with hand-chosen, protocol-aware bins:
//
//   packet size (bytes):        < 41  |  41..180  |  > 180
//   interarrival time (usec):   < 800 | 800..1199 | 1200..2399 | 2400..3599 | >= 3600
//
// Our Histogram uses half-open lower-bound edges, so those are expressed as
// edge lists {41, 181} and {800, 1200, 2400, 3600}.
//
// Interarrival semantics. A sampled packet contributes the gap between
// itself and its immediate predecessor *in the full arrival stream* (the
// monitor timestamps every arrival; only selected packets export their
// delta). This is what makes the paper's timer-sampling result possible:
// timer methods preferentially select packets that follow long idle gaps
// (the waiting-time paradox), skewing the estimated distribution toward
// large values, while count-triggered methods select positions unbiasedly.
// Measuring gaps *between* selected packets instead would inflate every
// method's values by ~k and make the comparison meaningless.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "stats/histogram.h"
#include "trace/trace.h"

namespace netsample::core {

enum class Target {
  kPacketSize,
  kInterarrivalTime,
};

[[nodiscard]] const char* target_name(Target t);

/// A drawn sample: the selected positions within a parent view. Keeping the
/// parent reference lets targets be evaluated with full-stream context.
struct Sample {
  trace::TraceView parent;
  std::vector<std::size_t> indices;  // ascending positions within parent

  [[nodiscard]] std::size_t size() const { return indices.size(); }
  [[nodiscard]] bool empty() const { return indices.empty(); }

  /// The selected packets themselves.
  [[nodiscard]] std::vector<trace::PacketRecord> packets() const;

  /// Achieved sampling fraction |sample| / |parent| (0 for empty parent).
  [[nodiscard]] double fraction() const;
};

/// Run `sampler` over `view` and collect the selected positions. `cancel`
/// is forwarded to the streaming loop (see draw_sample_indices).
[[nodiscard]] Sample draw(trace::TraceView view, Sampler& sampler,
                          const util::CancelToken* cancel = nullptr);

/// The paper's bin edges for a target (see header comment).
[[nodiscard]] std::vector<double> paper_bin_edges(Target t);

/// An empty histogram laid out with the paper's bins for `t`.
[[nodiscard]] stats::Histogram make_target_histogram(Target t);

/// Target observable for the *whole population* of a view: packet sizes, or
/// the N-1 consecutive interarrival gaps.
[[nodiscard]] std::vector<double> population_values(trace::TraceView view,
                                                    Target t);

/// Process-wide count of population_values() calls. Instrumentation for the
/// hoisting regression tests: sweeping a granularity ladder must materialize
/// the population exactly once per (interval, target) on the legacy path and
/// never on the cache fast path.
[[nodiscard]] std::uint64_t population_values_call_count();

/// Target observable for a sample: sizes of selected packets, or the
/// predecessor gap of each selected packet (first-of-stream packets, which
/// have no predecessor, contribute nothing).
[[nodiscard]] std::vector<double> sample_values(const Sample& s, Target t);

/// Bin population / sample observables with the given histogram layout
/// (pass make_target_histogram(t) for the paper's bins, or custom edges for
/// the bin-sensitivity ablation).
[[nodiscard]] stats::Histogram bin_values(std::span<const double> values,
                                          const stats::Histogram& layout);

/// One-call conveniences using the paper's bins.
[[nodiscard]] stats::Histogram bin_population(trace::TraceView view, Target t);
[[nodiscard]] stats::Histogram bin_sample(const Sample& s, Target t);

}  // namespace netsample::core
