#include "core/theory.h"

#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace netsample::core {

namespace {

void check_args(std::size_t bins, std::uint64_t n) {
  if (bins < 2) throw std::invalid_argument("phi theory requires >= 2 bins");
  if (n == 0) throw std::invalid_argument("phi theory requires n > 0");
}

}  // namespace

double expected_chi2(std::size_t bins) {
  if (bins < 2) throw std::invalid_argument("phi theory requires >= 2 bins");
  return static_cast<double>(bins - 1);
}

double expected_phi(std::size_t bins, std::uint64_t sample_size) {
  check_args(bins, sample_size);
  const double nu = static_cast<double>(bins - 1);
  // E[sqrt(X)] for X ~ chi2(nu) is sqrt(2) Gamma((nu+1)/2) / Gamma(nu/2);
  // dividing by sqrt(n_phi) = sqrt(2n) cancels the sqrt(2).
  const double mean_root_chi2 =
      std::exp(stats::log_gamma((nu + 1.0) / 2.0) - stats::log_gamma(nu / 2.0));
  return mean_root_chi2 / std::sqrt(static_cast<double>(sample_size));
}

double phi_quantile(std::size_t bins, std::uint64_t sample_size, double q) {
  check_args(bins, sample_size);
  const double nu = static_cast<double>(bins - 1);
  const double x = stats::chi_squared_quantile(q, nu);
  return std::sqrt(x / (2.0 * static_cast<double>(sample_size)));
}

}  // namespace netsample::core
