#include "core/simd/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace netsample::core::simd {

// Defined in kernels_avx2.cpp / kernels_neon.cpp; each returns an all-null
// table when its ISA is not compiled in.
const KernelTable& avx2_kernel_table();
const KernelTable& neon_kernel_table();
bool avx2_compiled();
bool neon_compiled();

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  return true;
#else
  return false;
#endif
}

/// NETSAMPLE_SIMD, read once (same caching contract as
/// NETSAMPLE_LEGACY_SCAN). Empty or unset means "no preference"; an unknown
/// value warns once and is ignored rather than silently changing results.
std::optional<Variant> env_variant() {
  static const std::optional<Variant> value = [] {
    const char* e = std::getenv("NETSAMPLE_SIMD");
    if (e == nullptr || *e == '\0') return std::optional<Variant>{};
    const auto parsed = parse_variant(e);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "netsample: NETSAMPLE_SIMD=\"%s\" is not one of "
                   "scalar|avx2|neon; using the best available variant\n",
                   e);
    }
    return parsed;
  }();
  return value;
}

// -1 = no override (follow the environment / autodetect).
std::atomic<int> g_variant_override{-1};

Variant resolve(Variant requested) {
  return variant_available(requested) ? requested : Variant::kScalar;
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kAvx2:
      return "avx2";
    case Variant::kNeon:
      return "neon";
    case Variant::kScalar:
    default:
      return "scalar";
  }
}

std::optional<Variant> parse_variant(std::string_view name) {
  if (name == "scalar") return Variant::kScalar;
  if (name == "avx2") return Variant::kAvx2;
  if (name == "neon") return Variant::kNeon;
  return std::nullopt;
}

bool variant_compiled(Variant v) {
  switch (v) {
    case Variant::kAvx2:
      return avx2_compiled();
    case Variant::kNeon:
      return neon_compiled();
    case Variant::kScalar:
    default:
      return true;
  }
}

bool variant_available(Variant v) {
  switch (v) {
    case Variant::kAvx2:
      return avx2_compiled() && cpu_has_avx2();
    case Variant::kNeon:
      return neon_compiled() && cpu_has_neon();
    case Variant::kScalar:
    default:
      return true;
  }
}

Variant best_variant() {
  static const Variant value = [] {
    if (variant_available(Variant::kAvx2)) return Variant::kAvx2;
    if (variant_available(Variant::kNeon)) return Variant::kNeon;
    return Variant::kScalar;
  }();
  return value;
}

Variant active_variant() {
  const int o = g_variant_override.load(std::memory_order_relaxed);
  if (o >= 0) return resolve(static_cast<Variant>(o));
  if (const auto env = env_variant(); env.has_value()) return resolve(*env);
  return best_variant();
}

void force_variant(Variant v) {
  g_variant_override.store(static_cast<int>(v), std::memory_order_relaxed);
}

void clear_variant_override() {
  g_variant_override.store(-1, std::memory_order_relaxed);
}

std::string cpu_feature_string() { return variant_name(best_variant()); }

const KernelTable& kernels_for(Variant v) {
  static const KernelTable scalar{};  // all null: scalar code lives at call sites
  switch (v) {
    case Variant::kAvx2:
      if (variant_available(Variant::kAvx2)) return avx2_kernel_table();
      return scalar;
    case Variant::kNeon:
      if (variant_available(Variant::kNeon)) return neon_kernel_table();
      return scalar;
    case Variant::kScalar:
    default:
      return scalar;
  }
}

const KernelTable& kernels() { return kernels_for(active_variant()); }

std::optional<std::vector<std::uint64_t>> integer_thresholds(
    std::span<const double> edges) {
  std::vector<std::uint64_t> out;
  out.reserve(edges.size());
  std::uint64_t prev = 0;
  for (const double e : edges) {
    // For integer v: v >= e  <=>  v >= ceil(e). Anything not exactly
    // representable as a u64 threshold below 2^63 disqualifies the ladder.
    if (!std::isfinite(e) || e < 0.0 || e >= 9.2233720368547758e18) {
      return std::nullopt;
    }
    const double c = std::ceil(e);
    const auto t = static_cast<std::uint64_t>(c);
    if (static_cast<double>(t) != c) return std::nullopt;
    if (!out.empty() && t < prev) return std::nullopt;
    out.push_back(t);
    prev = t;
  }
  return out;
}

std::optional<std::vector<std::uint32_t>> integer_thresholds_u32(
    std::span<const double> edges) {
  const auto wide = integer_thresholds(edges);
  if (!wide.has_value()) return std::nullopt;
  std::vector<std::uint32_t> out;
  out.reserve(wide->size());
  for (const std::uint64_t t : *wide) {
    if (t > 0xFFFFFFFFull) return std::nullopt;
    out.push_back(static_cast<std::uint32_t>(t));
  }
  return out;
}

}  // namespace netsample::core::simd
