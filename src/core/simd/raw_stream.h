// Buffered raw xoshiro256** output words for the batched sampler kernels.
//
// The streaming samplers consume RNG *raw words* in a strict sequence: one
// per uniform_below() call, plus extras on (astronomically rare) Lemire
// rejections. The SIMD kernels vectorize the post-draw arithmetic, so they
// need the raw words in bulk while preserving exactly that consumption
// order. RawStream prefetches words from a private Rng into a small
// buffer; peek() exposes the next few without consuming them, so a chunk
// that turns out to need scalar handling (a rejection, an acceptance that
// changes later lanes' bounds) can be replayed word-for-word through
// uniform_below() below — which is a line-for-line copy of
// Rng::uniform_below() reading from the same buffered sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/rng.h"

namespace netsample::core::simd {

class RawStream {
 public:
  explicit RawStream(std::uint64_t seed) : rng_(seed) {}

  /// Pointer to the next `n` unconsumed raw words (n <= kCapacity).
  const std::uint64_t* peek(std::size_t n) {
    if (pos_ + n > len_) refill();
    return buf_ + pos_;
  }

  void consume(std::size_t n) { pos_ += n; }

  std::uint64_t next() {
    if (pos_ >= len_) refill();
    return buf_[pos_++];
  }

  /// Bit-exact replay of Rng::uniform_below() over the buffered sequence.
  std::uint64_t uniform_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      const auto m = static_cast<unsigned __int128>(r) *
                     static_cast<unsigned __int128>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  static constexpr std::size_t kCapacity = 64;

 private:
  void refill() {
    const std::size_t keep = len_ - pos_;
    std::memmove(buf_, buf_ + pos_, keep * sizeof(std::uint64_t));
    pos_ = 0;
    len_ = keep;
    while (len_ < kCapacity) buf_[len_++] = rng_();
  }

  netsample::Rng rng_;
  std::uint64_t buf_[kCapacity];
  std::size_t pos_{0};
  std::size_t len_{0};
};

}  // namespace netsample::core::simd
