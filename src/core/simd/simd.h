// Runtime-dispatched SIMD kernels for the fused sweep hot path.
//
// The paper's two targets have <= 5 fixed bin boundaries, so the per-packet
// work of the sweep engine — classify a value into a bin, bump a counter,
// draw one bounded uniform per stratum — is a textbook compare-mask ladder.
// This header is the dispatch seam: a small table of kernel entry points,
// selected at runtime from the CPU (cpuid AVX2 on x86-64, NEON on aarch64)
// and overridable for tests, benches, and CI:
//
//   NETSAMPLE_SIMD=scalar|avx2|neon   environment override
//   --simd VARIANT                    CLI/bench flag (tools/cli_args)
//   force_variant()                   programmatic override (wins over env)
//
// Contract: every variant is BIT-IDENTICAL to the scalar reference — same
// selected indices (the kernels replay the streaming samplers' RNG draw
// sequences raw-word-for-raw-word), same integer histogram counts, hence
// the same phi/chi-squared to the last bit. "Close" is a bug; the
// differential suite in tests/test_simd_kernels.cpp and the full-grid
// identity tests enforce exactness. The scalar path (the pre-SIMD code in
// trace_cache.cpp / select_indices.cpp) remains the reference, and the
// streaming samplers remain the oracle underneath both.
//
// A requested variant that is not compiled in or not supported by the CPU
// falls back to scalar (never to a different vector ISA), so forcing
// "neon" on x86 is safe and deterministic.
//
// This header and the simd/*.cpp translation units are deliberately
// self-contained (util/rng.h is their only project include) so the CI
// NEON leg can cross-compile them standalone with just -Isrc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace netsample::core::simd {

enum class Variant {
  kScalar,  // reference implementation, always available
  kAvx2,    // x86-64 AVX2 compare-mask / gather kernels
  kNeon,    // aarch64 NEON compare-mask kernels
};

/// "scalar" / "avx2" / "neon" — the vocabulary of NETSAMPLE_SIMD and --simd.
[[nodiscard]] const char* variant_name(Variant v);

/// Parse a variant name; std::nullopt for anything else (including "").
[[nodiscard]] std::optional<Variant> parse_variant(std::string_view name);

/// Was this variant's kernel set compiled into the binary?
[[nodiscard]] bool variant_compiled(Variant v);

/// Compiled in AND supported by the running CPU.
[[nodiscard]] bool variant_available(Variant v);

/// The best available variant on this machine (scalar when nothing better).
[[nodiscard]] Variant best_variant();

/// The variant the dispatch table serves right now:
/// force_variant() override > NETSAMPLE_SIMD env (read once) > best_variant().
/// A requested-but-unavailable variant resolves to kScalar.
[[nodiscard]] Variant active_variant();

/// Programmatic override (the --simd flag and the A/B bench harness).
void force_variant(Variant v);

/// Drop the programmatic override, restoring the environment default.
void clear_variant_override();

/// Best variant's name for machine-class reporting ("avx2"/"neon"/"scalar").
[[nodiscard]] std::string cpu_feature_string();

/// Maximum compare-ladder depth the classify kernels support. The paper
/// targets need 2 (size) and 4 (interarrival); callers with more thresholds
/// must stay on the scalar path.
inline constexpr std::size_t kMaxThresholds = 8;

/// Kernel entry points for one variant. Null entries mean "no vectorized
/// implementation — use the scalar caller path". The scalar table is
/// all-null by design: scalar code lives at the call sites, untouched, as
/// the bit-exact reference.
struct KernelTable {
  /// out[i] = #{ t < n_thresholds : values[i] >= thresholds[t] } — the bin
  /// index under stats::Histogram's lower-bound-edge semantics, given the
  /// integer thresholds from integer_thresholds_u32(). Thresholds ascending,
  /// n_thresholds <= kMaxThresholds.
  void (*classify_u32)(const std::uint32_t* values, std::size_t n,
                       const std::uint32_t* thresholds,
                       std::size_t n_thresholds, std::uint8_t* out){nullptr};

  /// Fused gap-compute + classify over a timestamp array: out[0] = 0 (no
  /// predecessor), out[i] = ladder(ts[i] - ts[i-1]) for i >= 1. Timestamps
  /// must be non-decreasing and < 2^63.
  void (*classify_gaps_u64)(const std::uint64_t* ts, std::size_t n,
                            const std::uint64_t* thresholds,
                            std::size_t n_thresholds,
                            std::uint8_t* out){nullptr};

  /// counts[bins[indices[j]]]++ for j in [0, n_indices) — the sample-
  /// histogram gather/accumulate. `bins` is pre-offset to the view start;
  /// when skip_rel0 is set, entries with indices[j] == 0 contribute nothing
  /// (the view's first packet has no predecessor gap). Requires
  /// n_bins < 255 and every bin id < n_bins.
  void (*accumulate_u8)(const std::uint8_t* bins, const std::size_t* indices,
                        std::size_t n_indices, bool skip_rel0,
                        std::uint64_t* counts, std::size_t n_bins){nullptr};

  /// Batched stratified/count kernel: one uniform_below(k) winner per
  /// k-packet bucket over n offered packets, replaying Rng(seed) exactly.
  /// Returns false to decline (e.g. k >= 2^32); caller falls back to
  /// scalar. On true, *out holds exactly the scalar kernel's indices.
  bool (*stratified_count)(std::uint64_t k, std::uint64_t seed,
                           std::uint64_t n,
                           std::vector<std::size_t>* out){nullptr};

  /// Batched Algorithm S: select `pick` of `population`, scanning at most
  /// `limit` packets, replaying Rng(seed) exactly. Returns false to
  /// decline (population >= 2^32).
  bool (*simple_random)(std::uint64_t pick, std::uint64_t population,
                        std::uint64_t limit, std::uint64_t seed,
                        std::vector<std::size_t>* out){nullptr};
};

/// The table for a specific variant (empty/all-null when unavailable).
[[nodiscard]] const KernelTable& kernels_for(Variant v);

/// The table for active_variant(). Call sites test entries for null and
/// fall back to their scalar code.
[[nodiscard]] const KernelTable& kernels();

/// Convert histogram edges (doubles, lower bounds of the bin to their
/// right) into integer thresholds such that, for any integer value v,
///   #{ t : v >= threshold[t] }  ==  Histogram(edges).bin_index(v).
/// Returns std::nullopt when an edge cannot be represented exactly
/// (negative, non-finite, or >= 2^63) — callers must then stay scalar.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> integer_thresholds(
    std::span<const double> edges);

/// Same, narrowed to u32 for the packet-size ladder; std::nullopt when any
/// threshold exceeds 2^32 - 1.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> integer_thresholds_u32(
    std::span<const double> edges);

}  // namespace netsample::core::simd
