// AVX2 kernels for the fused sweep hot path. Compiled on x86-64 only; the
// functions carry target("avx2") attributes so the TU itself needs no
// -mavx2 flag, and the dispatch layer never calls them unless cpuid says
// the CPU supports AVX2.
//
// Bit-exactness notes, per kernel:
//
//   classify ladders   integer compare against integer_thresholds(), which
//                      is provably equivalent to Histogram::bin_index on
//                      integer inputs (see simd.h). Unsigned compares are
//                      done as signed compares after biasing both sides by
//                      the sign bit.
//   accumulate         per-bin cmpeq + popcount over 32-byte chunks; pure
//                      integer counting, order-independent.
//   batched samplers   vectorize Lemire's multiply (bounds < 2^32, so the
//                      128-bit product decomposes into two 32x32 halves)
//                      and fall back to a scalar replay of the *buffered*
//                      raw words whenever a chunk contains a possible
//                      rejection (low64 < bound) or an acceptance that
//                      changes later lanes' accept bound. The common chunk
//                      — no rejection, no acceptance — is fully branchless.
#include "core/simd/simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cassert>

#include "core/simd/raw_stream.h"

#define NETSAMPLE_TARGET_AVX2 __attribute__((target("avx2")))

namespace netsample::core::simd {

namespace {

NETSAMPLE_TARGET_AVX2
void classify_u32_avx2(const std::uint32_t* values, std::size_t n,
                       const std::uint32_t* thresholds,
                       std::size_t n_thresholds, std::uint8_t* out) {
  assert(n_thresholds <= kMaxThresholds);
  // v >= t  <=>  v > t - 1 (strict cmpgt is all AVX2 has); t == 0 passes
  // every value, folded into a constant.
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  __m256i ladder[kMaxThresholds];
  int always = 0;
  std::size_t lanes = 0;
  for (std::size_t t = 0; t < n_thresholds; ++t) {
    if (thresholds[t] == 0) {
      ++always;
    } else {
      ladder[lanes++] = _mm256_xor_si256(
          _mm256_set1_epi32(static_cast<int>(thresholds[t] - 1)), bias);
    }
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    __m256i acc = _mm256_set1_epi32(always);
    for (std::size_t t = 0; t < lanes; ++t) {
      acc = _mm256_sub_epi32(acc, _mm256_cmpgt_epi32(x, ladder[t]));
    }
    alignas(32) std::uint32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    for (int j = 0; j < 8; ++j) {
      out[i + static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(tmp[j]);
    }
  }
  for (; i < n; ++i) {
    unsigned b = 0;
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      b += values[i] >= thresholds[t] ? 1u : 0u;
    }
    out[i] = static_cast<std::uint8_t>(b);
  }
}

NETSAMPLE_TARGET_AVX2
void classify_gaps_u64_avx2(const std::uint64_t* ts, std::size_t n,
                            const std::uint64_t* thresholds,
                            std::size_t n_thresholds, std::uint8_t* out) {
  assert(n_thresholds <= kMaxThresholds);
  if (n == 0) return;
  out[0] = 0;  // the first packet has no predecessor gap
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  __m256i ladder[kMaxThresholds];
  long long always = 0;
  std::size_t lanes = 0;
  for (std::size_t t = 0; t < n_thresholds; ++t) {
    if (thresholds[t] == 0) {
      ++always;
    } else {
      ladder[lanes++] = _mm256_xor_si256(
          _mm256_set1_epi64x(static_cast<long long>(thresholds[t] - 1)), bias);
    }
  }
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i - 1));
    const __m256i x =
        _mm256_xor_si256(_mm256_sub_epi64(cur, prev), bias);
    __m256i acc = _mm256_set1_epi64x(always);
    for (std::size_t t = 0; t < lanes; ++t) {
      acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(x, ladder[t]));
    }
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    for (int j = 0; j < 4; ++j) {
      out[i + static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(tmp[j]);
    }
  }
  for (; i < n; ++i) {
    const std::uint64_t gap = ts[i] - ts[i - 1];
    unsigned b = 0;
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      b += gap >= thresholds[t] ? 1u : 0u;
    }
    out[i] = static_cast<std::uint8_t>(b);
  }
}

NETSAMPLE_TARGET_AVX2
void accumulate_u8_avx2(const std::uint8_t* bins, const std::size_t* indices,
                        std::size_t n_indices, bool skip_rel0,
                        std::uint64_t* counts, std::size_t n_bins) {
  assert(n_bins < 255);
  std::size_t i = 0;
  alignas(32) std::uint8_t gathered[32];
  for (; i + 32 <= n_indices; i += 32) {
    // Byte gather (scalar loads — AVX2 has no byte gather, and a 32-bit
    // gather would read past the end of the bin array at the last indices),
    // then branch-free per-bin population counts. 0xFF is the "contributes
    // nothing" sentinel; it can never equal a bin id since n_bins < 255.
    for (int j = 0; j < 32; ++j) {
      const std::size_t rel = indices[i + static_cast<std::size_t>(j)];
      gathered[j] =
          (skip_rel0 && rel == 0) ? std::uint8_t{0xFF} : bins[rel];
    }
    const __m256i g =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(gathered));
    for (std::size_t b = 0; b < n_bins; ++b) {
      const __m256i eq =
          _mm256_cmpeq_epi8(g, _mm256_set1_epi8(static_cast<char>(b)));
      counts[b] += static_cast<unsigned>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_epi8(eq))));
    }
  }
  for (; i < n_indices; ++i) {
    const std::size_t rel = indices[i];
    if (skip_rel0 && rel == 0) continue;
    ++counts[bins[rel]];
  }
}

/// 64x64 multiply with a bound < 2^32, decomposed into 32x32 halves:
/// full = (r_hi*b + ((r_lo*b) >> 32)) * 2^32 + low32(r_lo*b).
/// Emits the high 64 bits (Lemire's sample) and the low 64 bits (the
/// rejection check word) of r * b per lane.
NETSAMPLE_TARGET_AVX2
inline void mul64_by_u32(__m256i r, __m256i b, __m256i* hi, __m256i* lo) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i p1 = _mm256_mul_epu32(r, b);  // low32(r) * b
  const __m256i p2 =
      _mm256_mul_epu32(_mm256_srli_epi64(r, 32), b);  // high32(r) * b
  const __m256i sum = _mm256_add_epi64(p2, _mm256_srli_epi64(p1, 32));
  *hi = _mm256_srli_epi64(sum, 32);
  *lo = _mm256_or_si256(_mm256_slli_epi64(sum, 32),
                        _mm256_and_si256(p1, mask32));
}

NETSAMPLE_TARGET_AVX2
bool stratified_count_avx2(std::uint64_t k, std::uint64_t seed,
                           std::uint64_t n, std::vector<std::size_t>* out) {
  if (k == 0 || k > 0xFFFFFFFFull) return false;
  out->clear();
  out->reserve(static_cast<std::size_t>(n / k + 1));
  RawStream raw(seed);
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k));
  // threshold = 2^64 mod k < k, so "low64 < k" is a conservative, cheap
  // rejection pre-check; the exact test runs only in the scalar replay.
  const __m256i vkb = _mm256_xor_si256(vk, sign);
  const std::uint64_t buckets = (n + k - 1) / k;  // == scalar draw count
  const std::uint64_t full = n / k;  // full buckets always emit their winner
  std::uint64_t b = 0;
  while (b + 4 <= full) {
    const std::uint64_t* words = raw.peek(4);
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
    __m256i hi, lo;
    mul64_by_u32(r, vk, &hi, &lo);
    const __m256i reject_possible =
        _mm256_cmpgt_epi64(vkb, _mm256_xor_si256(lo, sign));
    if (_mm256_movemask_epi8(reject_possible) != 0) {
      // A lane might reject and consume an extra word, shifting every
      // later lane — replay these buckets through the buffered sequence.
      for (int j = 0; j < 4; ++j, ++b) {
        out->push_back(static_cast<std::size_t>(b * k + raw.uniform_below(k)));
      }
      continue;
    }
    raw.consume(4);
    alignas(32) std::uint64_t chosen[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(chosen), hi);
    for (int j = 0; j < 4; ++j, ++b) {
      out->push_back(static_cast<std::size_t>(b * k + chosen[j]));
    }
  }
  for (; b < buckets; ++b) {
    const std::uint64_t chosen = raw.uniform_below(k);
    if (b * k + chosen < n) {
      out->push_back(static_cast<std::size_t>(b * k + chosen));
    }
  }
  return true;
}

NETSAMPLE_TARGET_AVX2
bool simple_random_avx2(std::uint64_t pick, std::uint64_t population,
                        std::uint64_t limit, std::uint64_t seed,
                        std::vector<std::size_t>* out) {
  if (population == 0 || population > 0xFFFFFFFFull) return false;
  out->clear();
  out->reserve(static_cast<std::size_t>(pick));
  RawStream raw(seed);
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  std::uint64_t selected = 0;
  std::uint64_t i = 0;
  while (i < limit && selected < pick) {
    if (i + 4 > limit) {
      const std::uint64_t bound = population - i;
      if (raw.uniform_below(bound) < pick - selected) {
        out->push_back(static_cast<std::size_t>(i));
        ++selected;
      }
      ++i;
      continue;
    }
    const std::uint64_t* words = raw.peek(4);
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
    // Lane j's bound is population - (i + j); set_epi64x takes lanes
    // high-to-low, so lane 0 gets the last argument.
    const std::uint64_t b0 = population - i;
    const __m256i vb = _mm256_set_epi64x(
        static_cast<long long>(b0 - 3), static_cast<long long>(b0 - 2),
        static_cast<long long>(b0 - 1), static_cast<long long>(b0));
    __m256i hi, lo;
    mul64_by_u32(r, vb, &hi, &lo);
    const __m256i reject_possible = _mm256_cmpgt_epi64(
        _mm256_xor_si256(vb, sign), _mm256_xor_si256(lo, sign));
    // Accept test against the loosest bound in the chunk (t only shrinks on
    // acceptance): if nothing accepts at t, nothing would accept mid-chunk
    // either. hi < b0 < 2^32 and t <= pick < 2^32, so plain signed compares.
    const __m256i vt =
        _mm256_set1_epi64x(static_cast<long long>(pick - selected));
    const __m256i accept = _mm256_cmpgt_epi64(vt, hi);
    if ((_mm256_movemask_epi8(reject_possible) |
         _mm256_movemask_epi8(accept)) == 0) {
      raw.consume(4);
      i += 4;
      continue;
    }
    // Rare: an acceptance (changes t for later lanes) or a possible
    // rejection (consumes an extra word). Replay the chunk scalar from the
    // buffered sequence — bit-for-bit the streaming sampler's walk.
    for (int j = 0; j < 4 && selected < pick; ++j, ++i) {
      const std::uint64_t bound = population - i;
      if (raw.uniform_below(bound) < pick - selected) {
        out->push_back(static_cast<std::size_t>(i));
        ++selected;
      }
    }
  }
  return true;
}

}  // namespace

bool avx2_compiled() { return true; }

const KernelTable& avx2_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.classify_u32 = &classify_u32_avx2;
    t.classify_gaps_u64 = &classify_gaps_u64_avx2;
    t.accumulate_u8 = &accumulate_u8_avx2;
    t.stratified_count = &stratified_count_avx2;
    t.simple_random = &simple_random_avx2;
    return t;
  }();
  return table;
}

}  // namespace netsample::core::simd

#else  // !x86-64

namespace netsample::core::simd {

bool avx2_compiled() { return false; }

const KernelTable& avx2_kernel_table() {
  static const KernelTable table{};
  return table;
}

}  // namespace netsample::core::simd

#endif
