// NEON (AArch64 Advanced SIMD) kernels for the fused sweep hot path.
// Compiled on aarch64 only; elsewhere this TU provides the empty table.
// The CI simd leg cross-compiles this file with -march=armv8-a so the NEON
// body cannot silently rot on x86-only development machines.
//
// NEON covers the compare-ladder classify kernels and the histogram
// accumulate kernel. The batched sampler kernels are left null for now —
// select_indices falls back to the scalar reference, which is always
// bit-identical; they can be ported once aarch64 hardware is in the bench
// fleet and a neon baseline is committed.
#include "core/simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cassert>

namespace netsample::core::simd {

namespace {

void classify_u32_neon(const std::uint32_t* values, std::size_t n,
                       const std::uint32_t* thresholds,
                       std::size_t n_thresholds, std::uint8_t* out) {
  assert(n_thresholds <= kMaxThresholds);
  uint32x4_t ladder[kMaxThresholds];
  for (std::size_t t = 0; t < n_thresholds; ++t) {
    ladder[t] = vdupq_n_u32(thresholds[t]);
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t x = vld1q_u32(values + i);
    uint32x4_t acc = vdupq_n_u32(0);
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      // vcgeq yields all-ones lanes; subtracting adds 1 per passed rung.
      acc = vsubq_u32(acc, vcgeq_u32(x, ladder[t]));
    }
    out[i + 0] = static_cast<std::uint8_t>(vgetq_lane_u32(acc, 0));
    out[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u32(acc, 1));
    out[i + 2] = static_cast<std::uint8_t>(vgetq_lane_u32(acc, 2));
    out[i + 3] = static_cast<std::uint8_t>(vgetq_lane_u32(acc, 3));
  }
  for (; i < n; ++i) {
    unsigned b = 0;
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      b += values[i] >= thresholds[t] ? 1u : 0u;
    }
    out[i] = static_cast<std::uint8_t>(b);
  }
}

void classify_gaps_u64_neon(const std::uint64_t* ts, std::size_t n,
                            const std::uint64_t* thresholds,
                            std::size_t n_thresholds, std::uint8_t* out) {
  assert(n_thresholds <= kMaxThresholds);
  if (n == 0) return;
  out[0] = 0;  // the first packet has no predecessor gap
  uint64x2_t ladder[kMaxThresholds];
  for (std::size_t t = 0; t < n_thresholds; ++t) {
    ladder[t] = vdupq_n_u64(thresholds[t]);
  }
  std::size_t i = 1;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t cur = vld1q_u64(ts + i);
    const uint64x2_t prev = vld1q_u64(ts + i - 1);
    const uint64x2_t gap = vsubq_u64(cur, prev);
    uint64x2_t acc = vdupq_n_u64(0);
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      acc = vsubq_u64(acc, vcgeq_u64(gap, ladder[t]));
    }
    out[i + 0] = static_cast<std::uint8_t>(vgetq_lane_u64(acc, 0));
    out[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(acc, 1));
  }
  for (; i < n; ++i) {
    const std::uint64_t gap = ts[i] - ts[i - 1];
    unsigned b = 0;
    for (std::size_t t = 0; t < n_thresholds; ++t) {
      b += gap >= thresholds[t] ? 1u : 0u;
    }
    out[i] = static_cast<std::uint8_t>(b);
  }
}

void accumulate_u8_neon(const std::uint8_t* bins, const std::size_t* indices,
                        std::size_t n_indices, bool skip_rel0,
                        std::uint64_t* counts, std::size_t n_bins) {
  assert(n_bins < 255);
  std::size_t i = 0;
  alignas(16) std::uint8_t gathered[16];
  for (; i + 16 <= n_indices; i += 16) {
    for (int j = 0; j < 16; ++j) {
      const std::size_t rel = indices[i + static_cast<std::size_t>(j)];
      gathered[j] =
          (skip_rel0 && rel == 0) ? std::uint8_t{0xFF} : bins[rel];
    }
    const uint8x16_t g = vld1q_u8(gathered);
    for (std::size_t b = 0; b < n_bins; ++b) {
      const uint8x16_t eq = vceqq_u8(g, vdupq_n_u8(static_cast<std::uint8_t>(b)));
      // All-ones lanes sum to 255 each; shift the horizontal add down.
      counts[b] += vaddvq_u8(vshrq_n_u8(eq, 7));
    }
  }
  for (; i < n_indices; ++i) {
    const std::size_t rel = indices[i];
    if (skip_rel0 && rel == 0) continue;
    ++counts[bins[rel]];
  }
}

}  // namespace

bool neon_compiled() { return true; }

const KernelTable& neon_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.classify_u32 = &classify_u32_neon;
    t.classify_gaps_u64 = &classify_gaps_u64_neon;
    t.accumulate_u8 = &accumulate_u8_neon;
    return t;
  }();
  return table;
}

}  // namespace netsample::core::simd

#else  // !aarch64

namespace netsample::core::simd {

bool neon_compiled() { return false; }

const KernelTable& neon_kernel_table() {
  static const KernelTable table{};
  return table;
}

}  // namespace netsample::core::simd

#endif
