// Categorical analysis targets (the paper's Section 8 extension).
//
// "Our methodology can be extended and applied to characterizations of
// network traffic that are based on proportions, e.g., TCP/UDP port
// distribution. More difficult would be to characterize the goodness of fit
// of the sampled source-destination traffic matrix, mainly because of its
// large size and because many traffic pairs generate small amounts of
// traffic during typical sampling intervals."
//
// A CategoricalTarget maps each packet to a category id; the category space
// is fixed by the *population* (categories seen in the full interval), and
// sampled packets falling in unseen categories land in a reserved overflow
// slot (impossible for subsets of the population, but kept for samples of
// other traffic). The resulting count vectors feed score_counts() exactly
// like the histogram targets, so phi/chi2/cost apply unchanged.
//
// Provided targets:
//   * protocol-over-IP distribution
//   * TCP/UDP well-known service distribution (port "other" included)
//   * source-destination network-number matrix (the "more difficult" case)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/targets.h"
#include "trace/trace.h"

namespace netsample::core {

/// A keying function from packet to an opaque 64-bit category key.
using CategoryKeyFn = std::function<std::uint64_t(const trace::PacketRecord&)>;

class CategoricalTarget {
 public:
  /// Build the category space from the population view: every key observed
  /// becomes a category, ordered by descending population count.
  /// Throws std::invalid_argument on an empty view.
  CategoricalTarget(std::string name, CategoryKeyFn key_fn,
                    trace::TraceView population);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of categories (excluding the overflow slot).
  [[nodiscard]] std::size_t category_count() const { return index_.size(); }

  /// Population counts, one per category, plus a trailing overflow slot
  /// (always 0 for the population itself).
  [[nodiscard]] const std::vector<double>& population_counts() const {
    return population_counts_;
  }

  /// Count a sample's packets into the population's category space.
  [[nodiscard]] std::vector<double> sample_counts(const Sample& s) const;

  /// Count any packet sequence into the category space.
  [[nodiscard]] std::vector<double> count_packets(
      std::span<const trace::PacketRecord> packets) const;

  /// Fraction of categories that received at least one sampled packet --
  /// the paper's small-cell concern, directly measured.
  [[nodiscard]] double coverage(std::span<const double> counts) const;

 private:
  std::string name_;
  CategoryKeyFn key_fn_;
  std::map<std::uint64_t, std::size_t> index_;  // key -> category position
  std::vector<double> population_counts_;
};

/// Ready-made keying functions for the paper's objects.
[[nodiscard]] CategoryKeyFn protocol_key();
[[nodiscard]] CategoryKeyFn service_port_key();   // well-known port or 0
[[nodiscard]] CategoryKeyFn network_pair_key();   // classful src/dst nets

}  // namespace netsample::core
