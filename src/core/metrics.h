// Metrics of disparity between a sampled distribution and its parent
// population (Section 5.2 of the paper).
//
// Given bin counts O (sample) and the parent's bin proportions, we compute:
//
//   chi2      = sum (O_i - E_i)^2 / E_i,  E_i = p_i * n_sample
//   sig       = P(Chi2_dof >= chi2)       (the chi-squared significance level)
//   cost      = sum | O_i / f - Pop_i |   (l1 at population scale: the
//               provider's over/under-charge in packets; f = sampling fraction)
//   rcost     = cost * f                  (relative cost; equals the l1
//               distance at sample scale)
//   X2        = sum (O_i - E_i)^2 / E_i^2 (Paxson's size-invariant variant)
//   k         = sqrt(X2 / B)              ("average normalized deviation")
//   phi       = sqrt(chi2 / n),  n = sum_i (E_i + O_i)   (Fleiss)
//
// phi is the paper's metric of choice: ~0 for a perfect sample, growing as
// the sample diverges, and insensitive to sample size.
#pragma once

#include <cstdint>
#include <span>

#include "stats/gof.h"
#include "stats/histogram.h"

namespace netsample::core {

struct DisparityMetrics {
  double chi2{0};
  double dof{0};
  double significance{1.0};
  double cost{0};
  double rcost{0};
  double x2{0};
  double avg_norm_dev{0};  // k = sqrt(X2/B)
  double phi{0};
  std::uint64_t sample_n{0};
  std::uint64_t population_n{0};
};

/// Score a sample histogram against its parent population histogram. The
/// two must share bin layout. `sampling_fraction` is the *intended* fraction
/// 1/k used for the cost scaling; pass 0 to use the achieved fraction
/// sample_n / population_n.
/// Throws std::invalid_argument on layout mismatch or empty population.
[[nodiscard]] DisparityMetrics score_sample(const stats::Histogram& sample,
                                            const stats::Histogram& population,
                                            double sampling_fraction = 0.0);

/// Lower-level entry point on raw counts (used by the characterization
/// layer, whose objects aren't stats::Histogram).
[[nodiscard]] DisparityMetrics score_counts(std::span<const double> observed,
                                            std::span<const double> population,
                                            double sampling_fraction = 0.0);

}  // namespace netsample::core
