// Population estimation from samples, with confidence intervals.
//
// The operational counterpart of the paper's evaluation: once a sampling
// discipline is deployed, the collector must *estimate* population
// quantities from the sampled packets and know how much to trust them.
// Estimators here cover what the NSFNET objects needed:
//
//   * totals (packets/bytes): expansion estimator  T_hat = t_sample / f
//   * means: sample mean with a normal-approximation CI, with the finite
//     population correction when the population size is known
//   * proportions: Wilson score interval (robust at small counts, unlike
//     the Wald interval)
//
// All estimators treat the sample as (approximately) a simple random
// sample; the paper's result that packet-triggered disciplines behave
// interchangeably is what justifies applying them to systematic and
// stratified samples too.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netsample::core {

/// An estimate with a symmetric (or interval) confidence range.
struct Estimate {
  double value{0};
  double ci_low{0};
  double ci_high{0};
  double confidence{0.95};
};

/// Expansion estimate of a population total from a sampled total.
/// `sampling_fraction` must be in (0, 1]. The CI treats the sampled total
/// as a Poisson-binomial count (normal approximation).
/// Throws std::invalid_argument on a bad fraction.
[[nodiscard]] Estimate estimate_total(double sampled_total,
                                      double sampling_fraction,
                                      double confidence = 0.95);

/// Horvitz-Thompson expansion estimate of a *weighted* population total
/// (e.g. bytes: each sampled packet contributes its size). The per-unit
/// weights matter for the variance -- byte totals are much noisier than
/// packet counts because byte mass concentrates in large packets:
///   T_hat = sum(w_i) / f,   Var_hat = (1-f)/f^2 * sum(w_i^2).
/// Throws std::invalid_argument on a bad fraction.
[[nodiscard]] Estimate estimate_weighted_total(
    std::span<const double> sampled_weights, double sampling_fraction,
    double confidence = 0.95);

/// Mean of `sample_values` as an estimate of the population mean.
/// `population_size` = 0 means "effectively infinite" (no FPC).
/// Throws std::invalid_argument on an empty sample.
[[nodiscard]] Estimate estimate_mean(std::span<const double> sample_values,
                                     std::uint64_t population_size = 0,
                                     double confidence = 0.95);

/// Proportion estimate from `successes` out of `trials`, Wilson score CI.
/// Throws std::invalid_argument if trials == 0 or successes > trials.
[[nodiscard]] Estimate estimate_proportion(std::uint64_t successes,
                                           std::uint64_t trials,
                                           double confidence = 0.95);

/// Per-category population-count estimates from sampled category counts:
/// each count is expanded by 1/f. Returns one Estimate per input count.
[[nodiscard]] std::vector<Estimate> estimate_category_totals(
    std::span<const double> sampled_counts, double sampling_fraction,
    double confidence = 0.95);

}  // namespace netsample::core
