// Closed-form sampling theory for the phi metric.
//
// For an *unbiased* sampling discipline, the binned sample counts are
// approximately multinomial around the population proportions, so the
// chi-squared statistic over B bins follows a chi-squared distribution with
// nu = B - 1 degrees of freedom regardless of the sample size. Since
// phi = sqrt(chi2 / n_phi) with n_phi = sum(E_i + O_i) ~ 2n, the whole
// phi-vs-fraction curve of Figures 6/7 has a closed form:
//
//   E[phi]       ~ Gamma(nu/2 + 1/2) / Gamma(nu/2) / sqrt(n)
//   quantile_q   ~ sqrt( chi2_quantile(q, nu) / (2 n) )
//
// Timer-driven disciplines violate the unbiasedness assumption, which is
// exactly why their curves sit on a floor above these predictions -- the
// gap between measurement and this theory isolates the selection bias.
#pragma once

#include <cstdint>

namespace netsample::core {

/// Expected chi-squared statistic for an unbiased sample: B - 1.
[[nodiscard]] double expected_chi2(std::size_t bins);

/// Expected phi for an unbiased sample of size n binned into `bins` bins.
/// Throws std::invalid_argument for bins < 2 or n == 0.
[[nodiscard]] double expected_phi(std::size_t bins, std::uint64_t sample_size);

/// The q-quantile of phi under the unbiased model (q in (0,1)).
[[nodiscard]] double phi_quantile(std::size_t bins, std::uint64_t sample_size,
                                  double q);

}  // namespace netsample::core
