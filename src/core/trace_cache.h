// Shared, immutable per-trace bin cache — layer 1 of the fused sweep engine.
//
// The paper's experiment grid (5 methods x 2 targets x granularities
// 2..32768 x growing intervals x R replications) re-reads the *same* parent
// population in every cell. A BinnedTraceCache hoists everything that is
// invariant across the grid into structure-of-arrays form, computed once:
//
//   timestamps[i]   arrival time of packet i (raw uint64 microseconds)
//   size_bin[i]     paper packet-size bin id of packet i        (uint8)
//   gap_bin[i]      paper interarrival bin id of the gap between
//                   packet i and its predecessor i-1 (i >= 1)   (uint8)
//
// plus per-bin prefix-sum count tables over both id arrays. With those,
//
//   * the population histogram of ANY contiguous range [begin, end) of the
//     base view costs O(bins) subtractions instead of an O(N) re-bin and a
//     vector<double> materialization, and
//   * a sampled histogram accumulates as counts[bin_id[i]]++ over the
//     selected indices, with no per-value bin search.
//
// The cache is read-only after construction and is shared by all workers of
// a parallel sweep (see docs/PARALLELISM.md). Layer 2, the index-emitting
// sampler kernels that consume it, lives in core/select_indices.h. The
// streaming Sampler hierarchy remains the operational model and the
// correctness oracle; set NETSAMPLE_LEGACY_SCAN=1 (or --legacy-scan on the
// bench binaries) to force the original per-packet path everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/targets.h"
#include "stats/histogram.h"
#include "trace/trace.h"

namespace netsample::core {

/// Borrowed views over a cache's internal tables, in the exact layout the
/// build constructor produces. Two uses: serializing a built cache into a
/// shard::TraceStore, and adopting tables that already live in read-only
/// shared memory (an mmap'd store) without copying or re-binning.
struct BinnedTables {
  std::span<const double> size_edges, gap_edges;
  std::span<const std::uint64_t> timestamps;
  std::span<const std::uint8_t> size_bins, gap_bins;
  // Bin-major cumulative tables of length bins*(N+1); see the private
  // members below for the exact semantics.
  std::span<const std::uint32_t> size_prefix, gap_prefix;
};

class BinnedTraceCache {
 public:
  /// Builds all arrays in one O(N) pass over `base` (typically a full
  /// trace; every experiment interval is then a sub-range of it).
  explicit BinnedTraceCache(trace::TraceView base);

  /// Adopts prebuilt tables (typically mmap'd from a shard::TraceStore)
  /// without copying or re-binning: the cache only keeps the spans, so
  /// `tables` memory must outlive it. Throws std::invalid_argument when the
  /// table lengths are inconsistent with base.size(). Increments
  /// netsample_trace_cache_maps_total instead of ..._builds_total — worker
  /// processes assert builds == 0 through exactly this distinction.
  BinnedTraceCache(trace::TraceView base, const BinnedTables& tables);

  // The span members may reference the owned vectors, which copying would
  // silently invalidate; moving preserves heap buffers and stays valid.
  BinnedTraceCache(const BinnedTraceCache&) = delete;
  BinnedTraceCache& operator=(const BinnedTraceCache&) = delete;
  BinnedTraceCache(BinnedTraceCache&&) = default;
  BinnedTraceCache& operator=(BinnedTraceCache&&) = default;

  [[nodiscard]] trace::TraceView base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return ts_.size(); }

  /// True when this cache adopted external tables instead of building them.
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Borrowed views over every internal table — the serialization surface
  /// consumed by shard::write_trace_store. Valid while the cache lives.
  [[nodiscard]] BinnedTables tables() const {
    return BinnedTables{size_edges_, gap_edges_,   ts_,
                        size_bin_,   gap_bin_,     size_prefix_,
                        gap_prefix_};
  }

  /// SoA arrays, indexed by position within base().
  [[nodiscard]] std::span<const std::uint64_t> timestamps() const { return ts_; }
  [[nodiscard]] std::span<const std::uint8_t> size_bins() const { return size_bin_; }
  /// gap_bins()[0] is a placeholder (the first packet has no predecessor).
  [[nodiscard]] std::span<const std::uint8_t> gap_bins() const { return gap_bin_; }

  /// Can `view` be served from this cache? (Same underlying storage.)
  [[nodiscard]] bool contains(trace::TraceView view) const {
    return base_.contains(view);
  }
  /// Offset of `view` within base(); throws std::out_of_range otherwise.
  [[nodiscard]] std::size_t offset_of(trace::TraceView view) const {
    return base_.offset_of(view);
  }

  /// First index in [lo, hi) whose timestamp is >= t, or hi if none — the
  /// O(log n) primitive behind the timer kernels.
  [[nodiscard]] std::size_t lower_bound_time(std::uint64_t t, std::size_t lo,
                                             std::size_t hi) const;

  /// Population histogram of the range [begin, end) for `t`, computed from
  /// the prefix-sum tables in O(bins). Bit-identical counts to
  /// bin_values(population_values(view, t), make_target_histogram(t)).
  /// For the interarrival target the range's first packet contributes no
  /// gap, exactly as TraceView::interarrivals() omits it.
  [[nodiscard]] stats::Histogram population_histogram(Target t,
                                                      std::size_t begin,
                                                      std::size_t end) const;

  /// Histogram of a drawn sample given its *view-relative* selected indices
  /// (as returned by select_indices / draw_sample_indices) and the view's
  /// offset within base(). O(sample). For the interarrival target the
  /// view's first packet (relative index 0) contributes nothing, mirroring
  /// sample_values().
  [[nodiscard]] stats::Histogram sample_histogram(
      Target t, std::span<const std::size_t> view_indices,
      std::size_t view_begin) const;

 private:
  trace::TraceView base_;
  bool mapped_{false};
  // Owned storage, populated only by the building constructor; the mapped
  // constructor leaves these empty and points the spans below at caller
  // memory instead. All method bodies go through the spans.
  std::vector<double> size_edges_own_, gap_edges_own_;
  std::vector<std::uint64_t> ts_own_;
  std::vector<std::uint8_t> size_bin_own_, gap_bin_own_;
  std::vector<std::uint32_t> size_prefix_own_, gap_prefix_own_;
  std::span<const double> size_edges_, gap_edges_;
  std::span<const std::uint64_t> ts_;
  std::span<const std::uint8_t> size_bin_, gap_bin_;
  // Bin-major cumulative tables of length bins*(N+1):
  //   size_prefix_[b*(N+1) + i] = #{ j < i : size_bin_[j] == b }
  //   gap_prefix_ [b*(N+1) + i] = #{ 1 <= j < i : gap_bin_[j] == b }
  std::span<const std::uint32_t> size_prefix_, gap_prefix_;
};

/// True when the legacy streaming scan is forced — either programmatically
/// via force_legacy_scan() or by the NETSAMPLE_LEGACY_SCAN environment
/// variable (any value other than empty or "0"). The experiment runner
/// consults this before taking the cache fast path.
[[nodiscard]] bool legacy_scan_forced();

/// Programmatic override (wins over the environment variable). The bench
/// binaries' --legacy-scan flag and the A/B perf harness use this.
void force_legacy_scan(bool on);

/// Drop the programmatic override, restoring the environment default.
void clear_legacy_scan_override();

}  // namespace netsample::core
