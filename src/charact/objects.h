// NSFNET traffic-characterization objects (Table 1 of the paper).
//
// These are the "statistical objects" NNStat (T1) and ARTS (T3) built from
// examined packet headers:
//
//   relative to the exterior nodal interface
//     * source-destination traffic matrix by network number (pkts/bytes)
//     * TCP/UDP port distribution, well-known subset (pkts/bytes)
//     * distribution of protocol over IP (pkts/bytes)
//     * packet-length histogram at 50-byte granularity          (T1 only)
//     * packet volume going out of the backbone node            (T1 only)
//   NSS-centric
//     * per-second histogram of packet arrival rates (20 pps)   (T1 only)
//     * NSS transit traffic volume                              (T1 only)
//
// Every object implements CharactObject so a collection agent can feed it
// sampled packets uniformly, report it, and reset it each collection cycle.
// When fed from a 1-in-k sample, multiply reported volumes by k to estimate
// population quantities (see core/estimators.h for interval estimates).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "stats/histogram.h"
#include "trace/packet_record.h"

namespace netsample::charact {

/// Packet+byte tally, the value type of every NSFNET object.
struct Volume {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};

  void add(const trace::PacketRecord& p) {
    packets += 1;
    bytes += p.size;
  }
  Volume& operator+=(const Volume& o) {
    packets += o.packets;
    bytes += o.bytes;
    return *this;
  }
  friend bool operator==(const Volume&, const Volume&) = default;
};

class CharactObject {
 public:
  virtual ~CharactObject() = default;

  /// Feed one (possibly sampled) packet header.
  virtual void observe(const trace::PacketRecord& p) = 0;

  /// Reset all counters (the 15-minute collection cycle does this).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Source-destination traffic volume matrix keyed by classful network
/// number pair.
class NetMatrixObject final : public CharactObject {
 public:
  using Key = std::pair<net::NetworkNumber, net::NetworkNumber>;

  void observe(const trace::PacketRecord& p) override;
  void reset() override { cells_.clear(); }
  [[nodiscard]] std::string name() const override { return "net-matrix"; }

  [[nodiscard]] const std::map<Key, Volume>& cells() const { return cells_; }
  [[nodiscard]] std::size_t pair_count() const { return cells_.size(); }

  /// Rows sorted by descending packet volume (for top-N reports).
  [[nodiscard]] std::vector<std::pair<Key, Volume>> top(std::size_t n) const;

  /// Per-cell packet counts as a vector aligned with `reference` ordering;
  /// pairs absent here contribute zero. Used to score sampled matrices
  /// against the full-trace matrix with the paper's metrics.
  [[nodiscard]] std::vector<double> counts_aligned_with(
      const NetMatrixObject& reference) const;

 private:
  std::map<Key, Volume> cells_;
};

/// TCP/UDP port distribution over the well-known subset (plus an "other"
/// bucket), pkts/bytes, per protocol.
class PortDistributionObject final : public CharactObject {
 public:
  struct Key {
    std::uint8_t protocol;  // 6 or 17
    std::uint16_t port;     // 0 == the "other" bucket
    auto operator<=>(const Key&) const = default;
  };

  void observe(const trace::PacketRecord& p) override;
  void reset() override { cells_.clear(); }
  [[nodiscard]] std::string name() const override { return "port-distribution"; }

  [[nodiscard]] const std::map<Key, Volume>& cells() const { return cells_; }
  [[nodiscard]] std::vector<std::pair<Key, Volume>> top(std::size_t n) const;
  [[nodiscard]] std::vector<double> counts_aligned_with(
      const PortDistributionObject& reference) const;

 private:
  std::map<Key, Volume> cells_;
};

/// Distribution of protocol over IP (TCP, UDP, ICMP, ...), pkts/bytes.
class ProtocolDistributionObject final : public CharactObject {
 public:
  void observe(const trace::PacketRecord& p) override;
  void reset() override { cells_.clear(); }
  [[nodiscard]] std::string name() const override {
    return "protocol-distribution";
  }

  [[nodiscard]] const std::map<std::uint8_t, Volume>& cells() const {
    return cells_;
  }

 private:
  std::map<std::uint8_t, Volume> cells_;
};

/// Packet-length histogram at 50-byte granularity (T1 only).
class PacketLengthHistogramObject final : public CharactObject {
 public:
  PacketLengthHistogramObject();

  void observe(const trace::PacketRecord& p) override;
  void reset() override { hist_.reset(); }
  [[nodiscard]] std::string name() const override {
    return "packet-length-histogram";
  }

  [[nodiscard]] const stats::Histogram& histogram() const { return hist_; }

 private:
  stats::Histogram hist_;
};

/// Per-second histogram of packet arrival rates at 20 pps granularity
/// (T1 only). Buffers the current second's count, then bins it.
class ArrivalRateHistogramObject final : public CharactObject {
 public:
  ArrivalRateHistogramObject();

  void observe(const trace::PacketRecord& p) override;
  void reset() override;
  [[nodiscard]] std::string name() const override {
    return "arrival-rate-histogram";
  }

  /// Flush the in-progress second into the histogram (call at cycle end).
  void flush();

  [[nodiscard]] const stats::Histogram& histogram() const { return hist_; }

 private:
  stats::Histogram hist_;
  bool have_second_{false};
  std::uint64_t current_second_{0};
  std::uint64_t count_in_second_{0};
};

/// Total packet/byte volume (the T1 "packet volume going out of backbone
/// node" and "transit traffic volume" objects are both plain volumes with
/// different feeds).
class VolumeObject final : public CharactObject {
 public:
  explicit VolumeObject(std::string label) : label_(std::move(label)) {}

  void observe(const trace::PacketRecord& p) override { volume_.add(p); }
  void reset() override { volume_ = Volume{}; }
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] const Volume& volume() const { return volume_; }

 private:
  std::string label_;
  Volume volume_;
};

}  // namespace netsample::charact
