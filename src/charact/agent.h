// Node-side collection agent with the NSFNET 15-minute poll cycle.
//
// Models the operational pipeline of Section 2: packets stream past the
// node; a selector (every packet, or a 1-in-k sampler) decides which headers
// reach the characterization software; the NOC polls every 15 minutes, at
// which point the node reports its objects and resets the counters.
//
// T1 nodes (NNStat on a dedicated RT/PC) supported all seven objects of
// Table 1; T3 nodes (ARTS on the RS/6000) supported only the first three.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "charact/objects.h"
#include "trace/trace.h"

namespace netsample::charact {

enum class NodeType { kT1, kT3 };

/// Identifiers for Table 1's objects.
enum class ObjectKind {
  kNetMatrix,
  kPortDistribution,
  kProtocolDistribution,
  kPacketLengthHistogram,
  kOutboundVolume,
  kArrivalRateHistogram,
  kTransitVolume,
};

[[nodiscard]] const char* object_kind_name(ObjectKind k);

/// Which objects a node type collects (Table 1's Y / N/A column).
[[nodiscard]] bool node_supports(NodeType node, ObjectKind kind);

/// Snapshot of all supported objects at a poll.
struct CollectionReport {
  std::uint64_t cycle{0};
  std::uint64_t packets_examined{0};   // selected packets this cycle
  std::uint64_t packets_offered{0};    // all packets that passed the node
  std::map<NetMatrixObject::Key, Volume> net_matrix;
  std::map<PortDistributionObject::Key, Volume> ports;
  std::map<std::uint8_t, Volume> protocols;
  std::vector<std::uint64_t> length_histogram;        // empty on T3
  std::vector<std::uint64_t> arrival_rate_histogram;  // empty on T3
  Volume outbound;                                    // zero on T3
};

/// Packet selector: returns true if the packet header is examined. The
/// default examines everything (the pre-September-1991 T1 configuration).
using Selector = std::function<bool(const trace::PacketRecord&)>;

class CollectionAgent {
 public:
  /// `poll_period` defaults to the operational 15 minutes.
  explicit CollectionAgent(
      NodeType node, Selector selector = nullptr,
      MicroDuration poll_period = MicroDuration::from_seconds(900));

  /// Offer one packet in arrival order. If the packet's timestamp crosses a
  /// poll boundary, the pending cycle is reported into `reports()` first.
  void offer(const trace::PacketRecord& p);

  /// Drive a whole view through the agent, then flush the final cycle.
  void run(trace::TraceView view);

  /// Flush the in-progress cycle into reports().
  void flush();

  [[nodiscard]] NodeType node() const { return node_; }
  [[nodiscard]] const std::vector<CollectionReport>& reports() const {
    return reports_;
  }

  /// Aggregate volumes across all completed cycles.
  [[nodiscard]] Volume total_examined() const;

 private:
  void snapshot();

  NodeType node_;
  Selector selector_;
  MicroDuration poll_period_;
  bool cycle_open_{false};
  std::uint64_t cycle_index_{0};
  std::uint64_t cycle_end_usec_{0};
  std::uint64_t packets_examined_{0};
  std::uint64_t packets_offered_{0};

  NetMatrixObject net_matrix_;
  PortDistributionObject ports_;
  ProtocolDistributionObject protocols_;
  PacketLengthHistogramObject lengths_;
  ArrivalRateHistogramObject rates_;
  VolumeObject outbound_{"outbound-volume"};

  std::vector<CollectionReport> reports_;
};

}  // namespace netsample::charact
