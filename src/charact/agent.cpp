#include "charact/agent.h"

#include <stdexcept>

namespace netsample::charact {

const char* object_kind_name(ObjectKind k) {
  switch (k) {
    case ObjectKind::kNetMatrix: return "src-dst net matrix (pkts/bytes)";
    case ObjectKind::kPortDistribution:
      return "TCP/UDP port distribution, well-known subset (pkts/bytes)";
    case ObjectKind::kProtocolDistribution:
      return "protocol over IP distribution (pkts/bytes)";
    case ObjectKind::kPacketLengthHistogram:
      return "packet-length histogram, 50-byte granularity";
    case ObjectKind::kOutboundVolume: return "packet volume out of node";
    case ObjectKind::kArrivalRateHistogram:
      return "per-second arrival rate histogram, 20 pps granularity";
    case ObjectKind::kTransitVolume: return "NSS transit traffic volume";
  }
  return "unknown";
}

bool node_supports(NodeType node, ObjectKind kind) {
  if (node == NodeType::kT1) return true;
  switch (kind) {
    case ObjectKind::kNetMatrix:
    case ObjectKind::kPortDistribution:
    case ObjectKind::kProtocolDistribution:
      return true;
    default:
      return false;
  }
}

CollectionAgent::CollectionAgent(NodeType node, Selector selector,
                                 MicroDuration poll_period)
    : node_(node), selector_(std::move(selector)), poll_period_(poll_period) {
  if (poll_period_.usec <= 0) {
    throw std::invalid_argument("collection agent: poll period must be positive");
  }
}

void CollectionAgent::offer(const trace::PacketRecord& p) {
  if (!cycle_open_) {
    cycle_open_ = true;
    cycle_end_usec_ =
        p.timestamp.usec + static_cast<std::uint64_t>(poll_period_.usec);
  }
  while (p.timestamp.usec >= cycle_end_usec_) {
    snapshot();
    cycle_end_usec_ += static_cast<std::uint64_t>(poll_period_.usec);
  }

  ++packets_offered_;
  if (selector_ && !selector_(p)) return;
  ++packets_examined_;

  net_matrix_.observe(p);
  ports_.observe(p);
  protocols_.observe(p);
  if (node_ == NodeType::kT1) {
    lengths_.observe(p);
    rates_.observe(p);
    outbound_.observe(p);
  }
}

void CollectionAgent::run(trace::TraceView view) {
  for (const auto& p : view) offer(p);
  flush();
}

void CollectionAgent::flush() {
  if (cycle_open_) snapshot();
  cycle_open_ = false;
}

void CollectionAgent::snapshot() {
  rates_.flush();
  CollectionReport r;
  r.cycle = cycle_index_++;
  r.packets_examined = packets_examined_;
  r.packets_offered = packets_offered_;
  r.net_matrix = net_matrix_.cells();
  r.ports = ports_.cells();
  r.protocols = protocols_.cells();
  if (node_ == NodeType::kT1) {
    const auto& lh = lengths_.histogram().counts();
    r.length_histogram.assign(lh.begin(), lh.end());
    const auto& rh = rates_.histogram().counts();
    r.arrival_rate_histogram.assign(rh.begin(), rh.end());
    r.outbound = outbound_.volume();
  }
  reports_.push_back(std::move(r));

  packets_examined_ = 0;
  packets_offered_ = 0;
  net_matrix_.reset();
  ports_.reset();
  protocols_.reset();
  lengths_.reset();
  rates_.reset();
  outbound_.reset();
}

Volume CollectionAgent::total_examined() const {
  Volume v;
  for (const auto& r : reports_) {
    v.packets += r.packets_examined;
    Volume cycle_bytes;
    for (const auto& [proto, vol] : r.protocols) {
      (void)proto;
      cycle_bytes.bytes += vol.bytes;
    }
    v.bytes += cycle_bytes.bytes;
  }
  return v;
}

}  // namespace netsample::charact
