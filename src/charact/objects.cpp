#include "charact/objects.h"

#include <algorithm>

#include "net/ports.h"

namespace netsample::charact {

namespace {

template <typename Map>
std::vector<std::pair<typename Map::key_type, Volume>> top_by_packets(
    const Map& cells, std::size_t n) {
  std::vector<std::pair<typename Map::key_type, Volume>> rows(cells.begin(),
                                                              cells.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.packets > b.second.packets;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

template <typename Map>
std::vector<double> aligned_counts(const Map& mine, const Map& reference) {
  std::vector<double> out;
  out.reserve(reference.size());
  for (const auto& [key, unused] : reference) {
    (void)unused;
    const auto it = mine.find(key);
    out.push_back(it == mine.end() ? 0.0
                                   : static_cast<double>(it->second.packets));
  }
  return out;
}

}  // namespace

void NetMatrixObject::observe(const trace::PacketRecord& p) {
  const Key key{net::NetworkNumber::of(p.src), net::NetworkNumber::of(p.dst)};
  cells_[key].add(p);
}

std::vector<std::pair<NetMatrixObject::Key, Volume>> NetMatrixObject::top(
    std::size_t n) const {
  return top_by_packets(cells_, n);
}

std::vector<double> NetMatrixObject::counts_aligned_with(
    const NetMatrixObject& reference) const {
  return aligned_counts(cells_, reference.cells_);
}

void PortDistributionObject::observe(const trace::PacketRecord& p) {
  if (p.protocol != 6 && p.protocol != 17) return;
  const auto service = net::service_port(p.src_port, p.dst_port);
  const Key key{p.protocol, service.value_or(0)};
  cells_[key].add(p);
}

std::vector<std::pair<PortDistributionObject::Key, Volume>>
PortDistributionObject::top(std::size_t n) const {
  return top_by_packets(cells_, n);
}

std::vector<double> PortDistributionObject::counts_aligned_with(
    const PortDistributionObject& reference) const {
  return aligned_counts(cells_, reference.cells_);
}

void ProtocolDistributionObject::observe(const trace::PacketRecord& p) {
  cells_[p.protocol].add(p);
}

PacketLengthHistogramObject::PacketLengthHistogramObject()
    : hist_(stats::Histogram::equal_width(50.0, 31)) {}  // covers 0..1500+

void PacketLengthHistogramObject::observe(const trace::PacketRecord& p) {
  hist_.add(static_cast<double>(p.size));
}

ArrivalRateHistogramObject::ArrivalRateHistogramObject()
    : hist_(stats::Histogram::equal_width(20.0, 60)) {}  // 0..1200+ pps

void ArrivalRateHistogramObject::observe(const trace::PacketRecord& p) {
  const std::uint64_t second = p.timestamp.seconds();
  if (!have_second_) {
    have_second_ = true;
    current_second_ = second;
    count_in_second_ = 0;
  }
  if (second != current_second_) {
    hist_.add(static_cast<double>(count_in_second_));
    // Seconds with no packets at all still happened; bin them as zero.
    for (std::uint64_t s = current_second_ + 1; s < second; ++s) {
      hist_.add(0.0);
    }
    current_second_ = second;
    count_in_second_ = 0;
  }
  ++count_in_second_;
}

void ArrivalRateHistogramObject::flush() {
  if (have_second_) {
    hist_.add(static_cast<double>(count_in_second_));
    have_second_ = false;
    count_in_second_ = 0;
  }
}

void ArrivalRateHistogramObject::reset() {
  hist_.reset();
  have_second_ = false;
  count_in_second_ = 0;
}

}  // namespace netsample::charact
