// The coordinator half of a sharded sweep.
//
// One coordinator process owns the grid, the checkpoint journal, and N
// worker processes. Work is handed out as LEASEs (grid indices) over pipes;
// results stream back and are committed to the journal BY THE COORDINATOR
// ONLY, in task order — workers are stateless, so the exactly-once contract
// reduces to "a cell is journaled exactly when its RESULT was accepted",
// and a worker SIGKILL'd mid-cell just gets its outstanding leases handed
// to someone else (reassigned, counted, never double-committed).
//
// Determinism: a cell's seed derives from its grid coordinates
// (derived_cell_config), never from which worker ran it or in what order
// results arrived, so a W-worker sweep is bit-identical to the --jobs J
// threaded sweep for any W and J — tables, journal contents, and
// selected-index sets. docs/SHARDING.md spells out the protocol and the
// failure matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "exper/journal.h"
#include "shard/grid.h"
#include "util/status.h"

namespace netsample::shard {

struct CoordinatorOptions {
  /// Worker processes to spawn (>= 1).
  int workers{2};
  /// Prebuilt TraceStore every worker opens (see write_trace_store).
  std::string store_path;
  /// StoreBackend name the workers (and the coordinator itself) use.
  std::string backend{"mmap"};
  /// Optional commit log. Journaled cells are served without leasing;
  /// completed cells are recorded in task order, matching what
  /// ParallelRunner::run would have written for the same grid.
  exper::CheckpointJournal* journal{nullptr};
  /// argv for exec'd workers (argv[0] is the binary; "--store"/"--store-
  /// backend" are appended). Empty selects fork-only mode: the child calls
  /// run_worker directly with no exec — what the bench harness uses.
  std::vector<std::string> worker_command;
  /// Deterministic chaos: after accepting this many RESULTs, SIGKILL one
  /// worker that still has outstanding leases (< 0 disables). The kill is
  /// a real SIGKILL; the victim's leases are reassigned and the sweep must
  /// still finish bit-identically — CI's multiproc ASan leg runs this.
  int chaos_kill_after{-1};
  /// Replacement spawns allowed after unexpected worker deaths before the
  /// remaining cells are failed with kInternal.
  int max_respawns{8};
  /// Per-worker die-after-N-cells chaos forwarded to fork-only workers
  /// (WorkerOptions::die_after_cells) — applied to the FIRST spawned worker
  /// only, initial spawn only, so tests can script exactly one mid-sweep
  /// death without signals. < 0 disables.
  int first_worker_die_after{-1};
};

/// Outcome of one grid cell, in task order.
struct ShardCellOutcome {
  Status status;
  std::vector<core::DisparityMetrics> replications;
  bool from_journal{false};
};

struct ShardReport {
  std::vector<ShardCellOutcome> cells;

  // Scheduling facts (nondeterministic under failures; reported for
  // observability, never for results).
  std::uint64_t leases_granted{0};
  std::uint64_t reassignments{0};
  std::uint64_t workers_spawned{0};
  std::uint64_t workers_killed{0};  // chaos kills we initiated
  std::uint64_t workers_died{0};    // unexpected deaths observed
  /// Summed from worker HELLOs: re-bins performed by workers (the
  /// zero-re-binning acceptance: stays 0) and store mappings.
  std::uint64_t worker_cache_builds{0};
  std::uint64_t worker_cache_maps{0};

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t from_journal_count() const;
  [[nodiscard]] bool all_ok() const;
  /// Status of the lowest-index failed cell (OK when none failed).
  [[nodiscard]] Status first_failure() const;
};

/// Run `spec` over the store with `opts.workers` processes. Returns a
/// non-OK status only for coordinator-level failures (store invalid, spawn
/// impossible); per-cell failures and worker deaths are quarantined inside
/// the report instead.
[[nodiscard]] StatusOr<ShardReport> run_sharded_sweep(
    const SweepSpec& spec, const CoordinatorOptions& opts);

}  // namespace netsample::shard
