// The coordinator half of a sharded sweep.
//
// One coordinator process owns the grid, the checkpoint journal, and N
// worker processes. Work is handed out as LEASEs (grid indices) over a
// Transport — the PR 7 pipe pair, or a TCP socket so workers can live on
// other machines — and results stream back and are committed to the
// journal BY THE COORDINATOR ONLY, in task order. Workers are stateless,
// so the exactly-once contract reduces to "a cell is journaled exactly
// when its RESULT was first accepted", and every failure mode collapses
// into reassignment:
//
//   worker killed            EOF / reaped        leases requeued at front
//   wire lost (socket)       EOF                 leases requeued; worker may
//                                                redial within the reconnect
//                                                window and re-HELLO
//   worker stalls, wire up   lease timeout       leases reclaimed; worker is
//                                                suspended, then treated
//                                                dead if still silent
//   half-open connection     heartbeat deadline  connection closed; socket
//                            (idle workers only) workers redial
//   worker departs (SIGTERM) BYE                 logged as departure, not
//                                                death; leases requeued
//
// Duplicate RESULTs (a reconnect replay, a reclaimed lease completing
// twice) are discarded by cell state — recomputed cells are bit-identical
// by construction, so acceptance order cannot change any byte of output.
//
// Determinism: a cell's seed derives from its grid coordinates
// (derived_cell_config), never from which worker ran it or in what order
// results arrived, so a W-worker sweep is bit-identical to the --jobs J
// threaded sweep for any W and J — tables, journal contents, and
// selected-index sets — on either transport, under any injected fault
// schedule. docs/SHARDING.md spells out the protocol and the failure
// matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "exper/journal.h"
#include "shard/grid.h"
#include "util/status.h"

namespace netsample::shard {

enum class TransportKind {
  kPipe,    // fork/exec children over pipe pairs (PR 7 semantics)
  kSocket,  // TCP: coordinator listens, workers dial (and redial)
};

struct CoordinatorOptions {
  /// Worker processes to spawn (>= 1).
  int workers{2};
  /// Prebuilt TraceStore every worker opens (see write_trace_store).
  std::string store_path;
  /// StoreBackend name the workers (and the coordinator itself) use.
  std::string backend{"mmap"};
  /// Optional commit log. Journaled cells are served without leasing;
  /// completed cells are recorded in task order, matching what
  /// ParallelRunner::run would have written for the same grid.
  exper::CheckpointJournal* journal{nullptr};
  /// argv for exec'd workers (argv[0] is the binary; "--store"/"--store-
  /// backend" — plus "--connect"/"--connect-retries"/"--netfault" in socket
  /// mode — are appended). Empty selects fork-only mode: the child calls
  /// run_worker / run_socket_worker directly with no exec.
  std::vector<std::string> worker_command;
  /// Deterministic chaos: after accepting this many RESULTs, SIGKILL one
  /// worker that still has outstanding leases (< 0 disables). The kill is
  /// a real SIGKILL; the victim's leases are reassigned and the sweep must
  /// still finish bit-identically — CI's multiproc ASan leg runs this.
  int chaos_kill_after{-1};
  /// Replacement spawns allowed after unexpected worker deaths before the
  /// remaining cells are failed with kInternal.
  int max_respawns{8};
  /// Per-worker die-after-N-cells chaos (WorkerOptions::die_after_cells,
  /// or "--die-after" appended in exec mode) — applied to the FIRST spawned
  /// worker only, initial spawn only, so tests can script exactly one
  /// mid-sweep death without signals. < 0 disables.
  int first_worker_die_after{-1};
  /// Like first_worker_die_after but a clean departure: the worker sends
  /// BYE and exits 0 after N cells (WorkerOptions::depart_after_cells).
  int first_worker_depart_after{-1};

  /// How lease-protocol lines travel (see TransportKind).
  TransportKind transport{TransportKind::kPipe};
  /// Socket transport bind address; port 0 picks an ephemeral port that
  /// spawned workers are pointed at automatically.
  std::string listen{"127.0.0.1:0"};
  /// Heartbeat period in seconds (0 = off). The coordinator PINGs every
  /// connected worker on this cadence; a worker with NO outstanding leases
  /// that stays silent for 4 heartbeat periods is treated as a half-open
  /// connection and disconnected. Busy workers are exempt — a
  /// single-threaded worker cannot PONG mid-cell; the lease timeout
  /// governs those.
  double heartbeat_interval_s{0.0};
  /// Lease expiry in seconds (0 = off): a lease older than this is
  /// reclaimed and reassigned even though the worker's wire is up
  /// (stalled-but-connected). The worker is suspended from new grants
  /// until it speaks again; silent through one more timeout, it is
  /// disconnected. A late duplicate RESULT is discarded harmlessly.
  double lease_timeout_s{0.0};
  /// Socket only: how long a vanished worker may redial (and a spawned
  /// worker may take to first connect) before it is declared dead.
  double reconnect_window_s{10.0};
  /// Worker-side redial budget per lost connection, forwarded to workers.
  int connect_retries{5};
  /// Worker-side wire-impairment schedule (faultsim netfault codec),
  /// forwarded to workers; empty = clean wire.
  std::string netfault;
};

/// Outcome of one grid cell, in task order.
struct ShardCellOutcome {
  Status status;
  std::vector<core::DisparityMetrics> replications;
  bool from_journal{false};
};

struct ShardReport {
  std::vector<ShardCellOutcome> cells;

  // Scheduling facts (nondeterministic under failures; reported for
  // observability, never for results).
  std::uint64_t leases_granted{0};
  std::uint64_t reassignments{0};
  std::uint64_t workers_spawned{0};
  std::uint64_t workers_killed{0};    // chaos kills we initiated
  std::uint64_t workers_died{0};      // unexpected deaths observed
  std::uint64_t workers_departed{0};  // clean BYE departures (not deaths)
  std::uint64_t leases_expired{0};    // reclaimed from stalled workers
  std::uint64_t reconnects{0};        // re-HELLOs bound to a known worker
  std::uint64_t pings_sent{0};
  /// Summed from worker HELLOs: re-bins performed by workers (the
  /// zero-re-binning acceptance: stays 0) and store mappings.
  std::uint64_t worker_cache_builds{0};
  std::uint64_t worker_cache_maps{0};

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t from_journal_count() const;
  [[nodiscard]] bool all_ok() const;
  /// Status of the lowest-index failed cell (OK when none failed).
  [[nodiscard]] Status first_failure() const;
};

/// Run `spec` over the store with `opts.workers` processes. Returns a
/// non-OK status only for coordinator-level failures (store invalid, spawn
/// impossible, listen address unusable); per-cell failures and worker
/// deaths are quarantined inside the report instead.
[[nodiscard]] StatusOr<ShardReport> run_sharded_sweep(
    const SweepSpec& spec, const CoordinatorOptions& opts);

}  // namespace netsample::shard
