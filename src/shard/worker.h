// The worker half of a sharded sweep: a stateless lease executor.
//
// A worker opens the shared TraceStore read-only through a StoreBackend
// (mmap by default — zero re-binning, zero private copies of the
// population), rebuilds the deterministic cell grid from the SPEC message,
// and then runs whatever grid indices the coordinator leases to it,
// answering each with the cell's replication metrics in the journal's
// bit-exact hexfloat codec. It keeps NO durable state: the coordinator owns
// the journal, so a worker can be SIGKILL'd at any instant and the sweep
// still completes exactly-once.
//
// Three entry points share one loop:
//   - run_worker(opts, in, out): pipes/stdio — the body of a fork-only
//     child and of `netsample worker` without --connect;
//   - run_worker(opts, transport): any Transport (tests, custom wires);
//   - run_socket_worker(opts): dial --connect HOST:PORT, with automatic
//     reconnection — capped exponential backoff + jitter, an idempotent
//     re-HELLO, and a bounded replay of the most recent RESULT lines so a
//     reply that died with the connection still reaches the coordinator
//     (which dedupes; a replayed cell is never committed twice).
//
// Failure behavior on the worker side of the model:
//   - SIGTERM: finish or abandon the in-flight read, send BYE, exit clean
//     (the coordinator logs a departure, not a death);
//   - wire lost in socket mode: redial within the retry budget, re-HELLO,
//     replay unacknowledged results, continue; budget exhausted is
//     kInternal (exit 70);
//   - wire lost in pipe mode: there is nothing to redial — orderly EOF
//     shutdown exactly as before.
#pragma once

#include <cstdio>
#include <string>

#include "util/status.h"

namespace netsample::shard {

class Transport;

struct WorkerOptions {
  std::string store_path;
  std::string backend{"mmap"};
  /// Deterministic chaos hook: after sending this many RESULTs, die with
  /// _exit(137) — no flush, no unwind, indistinguishable from SIGKILL to
  /// the coordinator. < 0 disables. Resume/reassignment tests script kills
  /// at exact points with this.
  int die_after_cells{-1};
  /// Clean-departure chaos hook: after this many RESULTs, behave exactly
  /// like a SIGTERM — send BYE and return OK. < 0 disables.
  int depart_after_cells{-1};
  /// Socket mode (run_socket_worker): coordinator address to dial.
  std::string connect;
  /// Redial attempts after a lost connection (socket mode).
  int connect_retries{5};
  /// Optional wire-impairment schedule (faultsim netfault codec, e.g.
  /// "seed=7,drop=0.1"); empty = clean wire. Applied on the worker side of
  /// every connection, including redials (the schedule persists).
  std::string netfault;
};

/// Speak the worker protocol over `in`/`out` until STOP or EOF. Returns OK
/// on a clean shutdown; a store that fails validation returns its open()
/// status (kDataLoss for corrupt/truncated/mismatched stores, kNotFound for
/// a missing file) before any message is exchanged. Throws
/// std::invalid_argument for an unknown backend name.
[[nodiscard]] Status run_worker(const WorkerOptions& opts, std::FILE* in,
                                std::FILE* out);

/// Same loop over an arbitrary transport (no reconnection).
[[nodiscard]] Status run_worker(const WorkerOptions& opts,
                                Transport& transport);

/// Dial opts.connect and run the loop with reconnection (see above).
[[nodiscard]] Status run_socket_worker(const WorkerOptions& opts);

}  // namespace netsample::shard
