// The worker half of a sharded sweep: a stateless lease executor.
//
// A worker opens the shared TraceStore read-only through a StoreBackend
// (mmap by default — zero re-binning, zero private copies of the
// population), rebuilds the deterministic cell grid from the SPEC message,
// and then runs whatever grid indices the coordinator leases to it,
// answering each with the cell's replication metrics in the journal's
// bit-exact hexfloat codec. It keeps NO durable state: the coordinator owns
// the journal, so a worker can be SIGKILL'd at any instant and the sweep
// still completes exactly-once.
//
// run_worker is both the body of `netsample worker` (exec'd workers, pipes
// on stdin/stdout) and directly callable after a bare fork() — the bench
// harness uses the latter to measure multi-process throughput without
// paying exec + dynamic-loader cost per worker.
#pragma once

#include <cstdio>
#include <string>

#include "util/status.h"

namespace netsample::shard {

struct WorkerOptions {
  std::string store_path;
  std::string backend{"mmap"};
  /// Deterministic chaos hook: after sending this many RESULTs, die with
  /// _exit(137) — no flush, no unwind, indistinguishable from SIGKILL to
  /// the coordinator. < 0 disables. Resume/reassignment tests script kills
  /// at exact points with this.
  int die_after_cells{-1};
};

/// Speak the worker protocol over `in`/`out` until STOP or EOF. Returns OK
/// on a clean shutdown; a store that fails validation returns its open()
/// status (kDataLoss for corrupt/truncated/mismatched stores, kNotFound for
/// a missing file) before any message is exchanged. Throws
/// std::invalid_argument for an unknown backend name.
[[nodiscard]] Status run_worker(const WorkerOptions& opts, std::FILE* in,
                                std::FILE* out);

}  // namespace netsample::shard
