// TraceStore — the serialized, versioned on-disk form of a binned trace.
//
// A sharded sweep bins the trace exactly once: the coordinator builds a
// core::BinnedTraceCache, writes it (packets + SoA arrays + prefix-sum
// tables + paper bin edges) into a TraceStore file, and every worker
// process opens that file read-only through a StoreBackend. The default
// backend mmaps the file, so N workers share ONE physical copy of the
// population zero-copy — the page cache holds the bytes once and each
// worker's BinnedTraceCache is just spans into the mapping (the cache's
// "mapped" constructor; netsample_trace_cache_builds_total stays 0 in
// workers, which the multiproc smoke test asserts).
//
// Format (docs/SHARDING.md has the normative description):
//
//   page 0        StoreHeader — magic "NSTORE1\n", format version,
//                 endianness tag, record ABI size, packet count, exact
//                 file size, population means, section table, FNV-1a
//                 header checksum
//   sections      each page-aligned (4096): PacketRecord[n], timestamps
//                 u64[n], size_bin u8[n], gap_bin u8[n], size_prefix
//                 u32[size_bins*(n+1)], gap_prefix u32[gap_bins*(n+1)],
//                 size_edges f64[], gap_edges f64[]
//
// Everything is written in host byte order; open() rejects (kDataLoss →
// exit 65 at the CLI) any store whose endianness tag, format version,
// record size, checksum, section table, or total size does not match —
// a truncated or foreign store never gets half-used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/trace_cache.h"
#include "trace/trace.h"
#include "util/status.h"

namespace netsample::shard {

inline constexpr char kStoreMagic[8] = {'N', 'S', 'T', 'O', 'R', 'E', '1', '\n'};
inline constexpr std::uint32_t kStoreFormatVersion = 1;
// Written as a native u32; a store produced on the other endianness reads
// back as 0x04030201 and is rejected instead of silently misparsed.
inline constexpr std::uint32_t kStoreEndianTag = 0x01020304;
inline constexpr std::uint64_t kStorePageBytes = 4096;

/// One contiguous region of the file; offset is from the file start and is
/// always a multiple of kStorePageBytes (so every element type is aligned).
struct StoreSection {
  std::uint64_t offset{0};
  std::uint64_t bytes{0};
};

enum StoreSectionId : std::uint32_t {
  kSecRecords = 0,   // trace::PacketRecord[packet_count]
  kSecTimestamps,    // std::uint64_t[packet_count]
  kSecSizeBins,      // std::uint8_t[packet_count]
  kSecGapBins,       // std::uint8_t[packet_count]
  kSecSizePrefix,    // std::uint32_t[size_bins * (packet_count + 1)]
  kSecGapPrefix,     // std::uint32_t[gap_bins * (packet_count + 1)]
  kSecSizeEdges,     // double[size_bins - 1]
  kSecGapEdges,      // double[gap_bins - 1]
  kStoreSectionCount
};

struct StoreHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t endian_tag;
  std::uint32_t header_bytes;  // sizeof(StoreHeader) at write time
  std::uint32_t record_bytes;  // sizeof(trace::PacketRecord) ABI check
  std::uint64_t packet_count;
  std::uint64_t total_bytes;   // exact file size; truncation check
  double mean_interarrival_usec;  // population mean, for timer designs
  double mean_packet_size;
  StoreSection sections[kStoreSectionCount];
  std::uint64_t header_fnv1a;  // FNV-1a 64 of this struct with field zeroed
};
static_assert(std::is_trivially_copyable_v<StoreHeader>);
static_assert(sizeof(StoreHeader) <= kStorePageBytes);

/// FNV-1a 64 over a byte range (the header checksum primitive; exposed for
/// tests that corrupt stores deliberately).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes);

// ---------------------------------------------------------------------------
// Pluggable read-only byte source. "How the bytes arrive" (file mmap today;
// a socket fetch or shared-memory kv server later) is separated from "what
// the bytes mean" (TraceStore::open validates and interprets them), so new
// transports never touch the format logic.

/// An open, immutable byte range. Freed (munmap / delete[]) on destruction.
class StoreMapping {
 public:
  virtual ~StoreMapping() = default;
  [[nodiscard]] virtual const std::byte* data() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

class StoreBackend {
 public:
  virtual ~StoreBackend() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Maps `source` (backend-defined; a path for the file backends) whole.
  [[nodiscard]] virtual StatusOr<std::unique_ptr<StoreMapping>> open_bytes(
      const std::string& source) = 0;
};

/// mmap(PROT_READ, MAP_SHARED) — the zero-copy default: every worker's
/// mapping aliases the same page-cache pages.
class MmapFileBackend final : public StoreBackend {
 public:
  [[nodiscard]] const char* name() const override { return "mmap"; }
  [[nodiscard]] StatusOr<std::unique_ptr<StoreMapping>> open_bytes(
      const std::string& source) override;
};

/// Plain buffered read into private heap memory. One copy per process —
/// the portability/diagnostic fallback, and proof the backend seam holds.
class ReadFileBackend final : public StoreBackend {
 public:
  [[nodiscard]] const char* name() const override { return "read"; }
  [[nodiscard]] StatusOr<std::unique_ptr<StoreMapping>> open_bytes(
      const std::string& source) override;
};

/// Shared backend instance by name ("mmap" | "read"); throws
/// std::invalid_argument for unknown names. CLI `--store-backend` goes
/// through here.
[[nodiscard]] StoreBackend& store_backend(std::string_view name);

// ---------------------------------------------------------------------------

/// Serializes `cache` (packets + every binned table) to `path`, atomically:
/// the bytes land in `path.tmp` first and rename into place after fsync, so
/// a crashed writer leaves no half-store behind. The means are population
/// statistics workers need without scanning packets.
[[nodiscard]] Status write_trace_store(const std::string& path,
                                       const core::BinnedTraceCache& cache,
                                       double mean_interarrival_usec,
                                       double mean_packet_size);

/// A validated, opened store: a TraceView over the mapped packet records
/// plus a BinnedTraceCache adopting the mapped tables. Move-only; the
/// mapping lives exactly as long as the store.
class TraceStore {
 public:
  static StatusOr<TraceStore> open(const std::string& source,
                                   StoreBackend& backend);

  TraceStore(TraceStore&&) = default;
  TraceStore& operator=(TraceStore&&) = default;

  /// The full population, backed by the mapped record section.
  [[nodiscard]] trace::TraceView view() const { return cache_->base(); }
  /// Mapped-mode cache (cache().mapped() == true); zero re-binning happened.
  [[nodiscard]] const core::BinnedTraceCache& cache() const { return *cache_; }
  [[nodiscard]] std::size_t packet_count() const { return cache_->size(); }
  [[nodiscard]] double mean_interarrival_usec() const {
    return mean_interarrival_usec_;
  }
  [[nodiscard]] double mean_packet_size() const { return mean_packet_size_; }

 private:
  TraceStore() = default;

  std::unique_ptr<StoreMapping> mapping_;
  std::unique_ptr<core::BinnedTraceCache> cache_;
  double mean_interarrival_usec_{0.0};
  double mean_packet_size_{0.0};
};

}  // namespace netsample::shard
