#include "shard/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "trace/packet_record.h"

namespace netsample::shard {

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t page_up(std::uint64_t bytes) {
  return (bytes + kStorePageBytes - 1) / kStorePageBytes * kStorePageBytes;
}

std::uint64_t header_checksum(StoreHeader h) {
  h.header_fnv1a = 0;
  return fnv1a64(&h, sizeof(h));
}

Status errno_status(StatusCode code, const std::string& what) {
  return Status{code, what + ": " + std::strerror(errno)};
}

Status data_loss(const std::string& source, const std::string& why) {
  return Status{StatusCode::kDataLoss, "trace store " + source + ": " + why};
}

}  // namespace

// ---------------------------------------------------------------------------
// Backends

namespace {

class MmapMapping final : public StoreMapping {
 public:
  MmapMapping(void* addr, std::size_t bytes) : addr_(addr), bytes_(bytes) {}
  ~MmapMapping() override {
    if (addr_ != nullptr && bytes_ > 0) ::munmap(addr_, bytes_);
  }
  [[nodiscard]] const std::byte* data() const override {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const override { return bytes_; }

 private:
  void* addr_;
  std::size_t bytes_;
};

class HeapMapping final : public StoreMapping {
 public:
  explicit HeapMapping(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}
  [[nodiscard]] const std::byte* data() const override { return bytes_.data(); }
  [[nodiscard]] std::size_t size() const override { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

StatusOr<std::pair<int, std::uint64_t>> open_and_size(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const StatusCode code =
        errno == ENOENT ? StatusCode::kNotFound : StatusCode::kDataLoss;
    return errno_status(code, "trace store " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status s = errno_status(StatusCode::kDataLoss, "trace store " + path);
    ::close(fd);
    return s;
  }
  return std::pair<int, std::uint64_t>{fd, static_cast<std::uint64_t>(st.st_size)};
}

}  // namespace

StatusOr<std::unique_ptr<StoreMapping>> MmapFileBackend::open_bytes(
    const std::string& source) {
  auto fd_size = open_and_size(source);
  if (!fd_size.has_value()) return fd_size.status();
  const auto [fd, bytes] = *fd_size;
  if (bytes == 0) {
    ::close(fd);
    return data_loss(source, "empty file");
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    return errno_status(StatusCode::kDataLoss, "trace store mmap " + source);
  }
  return std::unique_ptr<StoreMapping>(std::make_unique<MmapMapping>(addr, bytes));
}

StatusOr<std::unique_ptr<StoreMapping>> ReadFileBackend::open_bytes(
    const std::string& source) {
  auto fd_size = open_and_size(source);
  if (!fd_size.has_value()) return fd_size.status();
  const auto [fd, bytes] = *fd_size;
  std::vector<std::byte> buf(bytes);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t r = ::read(fd, buf.data() + got, bytes - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s =
          errno_status(StatusCode::kDataLoss, "trace store read " + source);
      ::close(fd);
      return s;
    }
    if (r == 0) break;  // shorter than fstat said; total_bytes check catches it
    got += static_cast<std::size_t>(r);
  }
  ::close(fd);
  buf.resize(got);
  return std::unique_ptr<StoreMapping>(std::make_unique<HeapMapping>(std::move(buf)));
}

StoreBackend& store_backend(std::string_view name) {
  static MmapFileBackend mmap_backend;
  static ReadFileBackend read_backend;
  if (name == "mmap") return mmap_backend;
  if (name == "read") return read_backend;
  throw std::invalid_argument("unknown store backend '" + std::string(name) +
                              "' (expected mmap|read)");
}

// ---------------------------------------------------------------------------
// Writer

namespace {

Status write_all(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (bytes == 0) return Status::ok();
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return errno_status(StatusCode::kInternal, "trace store write " + path);
  }
  return Status::ok();
}

Status pad_to_page(std::FILE* f, std::uint64_t written, const std::string& path) {
  static const std::vector<char> zeros(kStorePageBytes, 0);
  const std::uint64_t pad = page_up(written) - written;
  return write_all(f, zeros.data(), pad, path);
}

}  // namespace

Status write_trace_store(const std::string& path,
                         const core::BinnedTraceCache& cache,
                         double mean_interarrival_usec,
                         double mean_packet_size) {
  const core::BinnedTables t = cache.tables();
  const trace::TraceView base = cache.base();

  StoreHeader h{};
  std::memcpy(h.magic, kStoreMagic, sizeof(h.magic));
  h.format_version = kStoreFormatVersion;
  h.endian_tag = kStoreEndianTag;
  h.header_bytes = sizeof(StoreHeader);
  h.record_bytes = sizeof(trace::PacketRecord);
  h.packet_count = base.size();
  h.mean_interarrival_usec = mean_interarrival_usec;
  h.mean_packet_size = mean_packet_size;

  const std::pair<const void*, std::uint64_t> payloads[kStoreSectionCount] = {
      {base.packets().data(), base.size() * sizeof(trace::PacketRecord)},
      {t.timestamps.data(), t.timestamps.size_bytes()},
      {t.size_bins.data(), t.size_bins.size_bytes()},
      {t.gap_bins.data(), t.gap_bins.size_bytes()},
      {t.size_prefix.data(), t.size_prefix.size_bytes()},
      {t.gap_prefix.data(), t.gap_prefix.size_bytes()},
      {t.size_edges.data(), t.size_edges.size_bytes()},
      {t.gap_edges.data(), t.gap_edges.size_bytes()},
  };
  std::uint64_t offset = kStorePageBytes;  // header page
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    h.sections[s] = StoreSection{offset, payloads[s].second};
    offset = page_up(offset + payloads[s].second);
  }
  // The file ends page-aligned; total_bytes is the exact size an intact
  // store must have, which is what open() checks against the mapping.
  h.total_bytes = offset;
  h.header_fnv1a = header_checksum(h);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return errno_status(StatusCode::kInternal, "trace store create " + tmp);
  }
  Status st = write_all(f, &h, sizeof(h), tmp);
  if (st.is_ok()) st = pad_to_page(f, sizeof(h), tmp);
  for (std::size_t s = 0; st.is_ok() && s < kStoreSectionCount; ++s) {
    st = write_all(f, payloads[s].first, payloads[s].second, tmp);
    if (st.is_ok()) st = pad_to_page(f, payloads[s].second, tmp);
  }
  if (st.is_ok() && (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0)) {
    st = errno_status(StatusCode::kInternal, "trace store sync " + tmp);
  }
  if (std::fclose(f) != 0 && st.is_ok()) {
    st = errno_status(StatusCode::kInternal, "trace store close " + tmp);
  }
  if (st.is_ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = errno_status(StatusCode::kInternal, "trace store rename " + path);
  }
  if (!st.is_ok()) {
    std::remove(tmp.c_str());
    return st;
  }

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& writes =
        reg.counter("netsample_trace_store_writes_total");
    static obs::Counter& bytes =
        reg.counter("netsample_trace_store_bytes_written_total");
    writes.increment();
    bytes.add(h.total_bytes);
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Opener

namespace {

template <typename T>
std::span<const T> section_span(const std::byte* base, const StoreSection& s) {
  return {reinterpret_cast<const T*>(base + s.offset), s.bytes / sizeof(T)};
}

Status validate_header(const StoreHeader& h, std::uint64_t mapped_bytes,
                       const std::string& source) {
  if (std::memcmp(h.magic, kStoreMagic, sizeof(h.magic)) != 0) {
    return data_loss(source, "bad magic (not a trace store)");
  }
  if (h.endian_tag != kStoreEndianTag) {
    return data_loss(source, "endianness mismatch (store written on a "
                             "different byte order)");
  }
  if (h.format_version != kStoreFormatVersion) {
    return data_loss(source, "format version " +
                                 std::to_string(h.format_version) +
                                 " (this build reads version " +
                                 std::to_string(kStoreFormatVersion) + ")");
  }
  if (h.header_bytes != sizeof(StoreHeader)) {
    return data_loss(source, "header size mismatch");
  }
  if (h.record_bytes != sizeof(trace::PacketRecord)) {
    return data_loss(source, "packet record ABI mismatch");
  }
  if (h.total_bytes != mapped_bytes) {
    return data_loss(source, "truncated (header says " +
                                 std::to_string(h.total_bytes) + " bytes, " +
                                 "file has " + std::to_string(mapped_bytes) +
                                 ")");
  }
  if (h.header_fnv1a != header_checksum(h)) {
    return data_loss(source, "header checksum mismatch");
  }
  const std::uint64_t n = h.packet_count;
  const std::uint64_t size_bins = h.sections[kSecSizeEdges].bytes / 8 + 1;
  const std::uint64_t gap_bins = h.sections[kSecGapEdges].bytes / 8 + 1;
  const std::uint64_t expected[kStoreSectionCount] = {
      n * sizeof(trace::PacketRecord),
      n * sizeof(std::uint64_t),
      n,
      n,
      size_bins * (n + 1) * sizeof(std::uint32_t),
      gap_bins * (n + 1) * sizeof(std::uint32_t),
      h.sections[kSecSizeEdges].bytes,
      h.sections[kSecGapEdges].bytes,
  };
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    const StoreSection& sec = h.sections[s];
    if (sec.offset % kStorePageBytes != 0 || sec.offset < kStorePageBytes ||
        sec.offset > mapped_bytes || sec.bytes > mapped_bytes - sec.offset) {
      return data_loss(source, "section " + std::to_string(s) +
                                   " out of bounds");
    }
    if (sec.bytes != expected[s]) {
      return data_loss(source, "section " + std::to_string(s) +
                                   " length mismatch");
    }
  }
  return Status::ok();
}

}  // namespace

StatusOr<TraceStore> TraceStore::open(const std::string& source,
                                      StoreBackend& backend) {
  auto mapped = backend.open_bytes(source);
  if (!mapped.has_value()) return mapped.status();
  std::unique_ptr<StoreMapping> mapping = std::move(*mapped);

  if (mapping->size() < sizeof(StoreHeader)) {
    return data_loss(source, "shorter than a store header");
  }
  // The mapping is at least page aligned for mmap and heap-allocation
  // aligned for the read backend; copy the header out so validation never
  // depends on mapping alignment.
  StoreHeader h{};
  std::memcpy(&h, mapping->data(), sizeof(h));
  if (Status st = validate_header(h, mapping->size(), source); !st.is_ok()) {
    return st;
  }

  const std::byte* base = mapping->data();
  const trace::TraceView view(
      section_span<trace::PacketRecord>(base, h.sections[kSecRecords]));
  core::BinnedTables tables{
      section_span<double>(base, h.sections[kSecSizeEdges]),
      section_span<double>(base, h.sections[kSecGapEdges]),
      section_span<std::uint64_t>(base, h.sections[kSecTimestamps]),
      section_span<std::uint8_t>(base, h.sections[kSecSizeBins]),
      section_span<std::uint8_t>(base, h.sections[kSecGapBins]),
      section_span<std::uint32_t>(base, h.sections[kSecSizePrefix]),
      section_span<std::uint32_t>(base, h.sections[kSecGapPrefix]),
  };

  TraceStore store;
  store.mapping_ = std::move(mapping);
  store.cache_ = std::make_unique<core::BinnedTraceCache>(view, tables);
  store.mean_interarrival_usec_ = h.mean_interarrival_usec;
  store.mean_packet_size_ = h.mean_packet_size;

  if (obs::enabled()) {
    static obs::Counter& opens =
        obs::registry().counter("netsample_trace_store_opens_total");
    opens.increment();
  }
  return store;
}

}  // namespace netsample::shard
