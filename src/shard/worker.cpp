#include "shard/worker.h"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <exception>
#include <vector>

#include "exper/journal.h"
#include "exper/runner.h"
#include "obs/metrics.h"
#include "shard/grid.h"
#include "shard/protocol.h"
#include "shard/store.h"

namespace netsample::shard {

namespace {

bool send_line(std::FILE* out, const Message& m) {
  const std::string line = format_message(m) + "\n";
  return std::fwrite(line.data(), 1, line.size(), out) == line.size() &&
         std::fflush(out) == 0;
}

/// Next newline-terminated line from `in`; false on EOF/error. Uses POSIX
/// getline so RESULT-sized payloads never truncate.
bool read_line(std::FILE* in, std::string* line) {
  char* buf = nullptr;
  std::size_t cap = 0;
  const ssize_t n = ::getline(&buf, &cap, in);
  if (n < 0) {
    std::free(buf);
    return false;
  }
  line->assign(buf, static_cast<std::size_t>(n));
  std::free(buf);
  while (!line->empty() && (line->back() == '\n' || line->back() == '\r')) {
    line->pop_back();
  }
  return true;
}

std::uint64_t counter_value(const char* name) {
  if (!obs::enabled()) return 0;
  return obs::registry().counter(name).value();
}

}  // namespace

Status run_worker(const WorkerOptions& opts, std::FILE* in, std::FILE* out) {
  // A coordinator that died mid-read must surface as a write error, not a
  // process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  StoreBackend& backend = store_backend(opts.backend);
  auto opened = TraceStore::open(opts.store_path, backend);
  if (!opened.has_value()) return opened.status();
  const TraceStore store = std::move(*opened);

  Message hello;
  hello.type = MessageType::kHello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.packets = store.packet_count();
  if (obs::enabled()) {
    hello.cache_builds = counter_value("netsample_trace_cache_builds_total");
    hello.cache_maps = counter_value("netsample_trace_cache_maps_total");
  } else {
    hello.cache_builds = 0;
    hello.cache_maps = store.cache().mapped() ? 1 : 0;
  }
  if (!send_line(out, hello)) {
    return Status(StatusCode::kInternal, "worker: coordinator pipe closed");
  }

  SweepSpec spec;
  std::vector<exper::GridTask> grid;
  std::uint64_t cells_done = 0;
  std::string line;
  while (read_line(in, &line)) {
    if (line.empty()) continue;
    Message msg;
    if (!parse_message(line, &msg)) {
      return Status(StatusCode::kInvalidArgument,
                    "worker: malformed coordinator message");
    }
    switch (msg.type) {
      case MessageType::kSpec: {
        if (!decode_sweep_spec(msg.text, &spec)) {
          return Status(StatusCode::kInvalidArgument,
                        "worker: malformed sweep spec");
        }
        grid = build_grid(spec, store.view(), store.mean_interarrival_usec(),
                          &store.cache());
        break;
      }
      case MessageType::kLease: {
        Message reply;
        reply.index = msg.index;
        if (msg.index >= grid.size()) {
          reply.type = MessageType::kFail;
          reply.code = StatusCode::kInvalidArgument;
          reply.text = grid.empty() ? "lease before SPEC"
                                    : "lease index out of range";
        } else {
          const exper::CellConfig cfg =
              derived_cell_config(grid[msg.index], spec.base_seed);
          try {
            const exper::CellResult result = exper::run_cell(cfg);
            reply.type = MessageType::kResult;
            reply.text = exper::encode_replications(result.replications);
          } catch (const StatusError& e) {
            reply.type = MessageType::kFail;
            reply.code = e.status().code();
            reply.text = e.status().message();
          } catch (const std::exception& e) {
            reply.type = MessageType::kFail;
            reply.code = StatusCode::kInternal;
            reply.text = e.what();
          }
        }
        if (!send_line(out, reply)) {
          return Status(StatusCode::kInternal, "worker: coordinator pipe closed");
        }
        if (reply.type == MessageType::kResult) {
          ++cells_done;
          if (opts.die_after_cells >= 0 &&
              cells_done >= static_cast<std::uint64_t>(opts.die_after_cells)) {
            // Simulated SIGKILL: no flush, no unwind, no BYE.
            ::_exit(137);
          }
        }
        break;
      }
      case MessageType::kStop: {
        Message bye;
        bye.type = MessageType::kBye;
        bye.cells = cells_done;
        (void)send_line(out, bye);
        return Status::ok();
      }
      default:
        return Status(StatusCode::kInvalidArgument,
                      "worker: unexpected message type");
    }
  }
  return Status::ok();  // coordinator closed the pipe: orderly shutdown
}

}  // namespace netsample::shard
