#include "shard/worker.h"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "exper/journal.h"
#include "exper/runner.h"
#include "faultsim/netfault.h"
#include "obs/metrics.h"
#include "shard/grid.h"
#include "shard/protocol.h"
#include "shard/store.h"
#include "shard/transport.h"

namespace netsample::shard {

namespace {

// SIGTERM means "leave cleanly": the handler only raises a flag; the loop
// notices it between messages (the handler is installed without SA_RESTART
// so a blocking read returns EINTR) and answers with BYE + exit 0.
volatile std::sig_atomic_t g_sigterm = 0;
void sigterm_handler(int) { g_sigterm = 1; }

/// Installs the clean-departure SIGTERM handler for the duration of a
/// worker run and restores the previous disposition after (the in-process
/// test harness calls run_worker directly).
class SigtermGuard {
 public:
  SigtermGuard() {
    g_sigterm = 0;
    struct sigaction sa{};
    sa.sa_handler = sigterm_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocking reads must wake up
    ::sigaction(SIGTERM, &sa, &old_);
  }
  ~SigtermGuard() { ::sigaction(SIGTERM, &old_, nullptr); }

 private:
  struct sigaction old_{};
};

/// Forwards to a Transport the caller owns (pipe/stdio mode), so the
/// netfault wrapper — which owns its inner transport — can wrap it.
class BorrowedTransport final : public Transport {
 public:
  explicit BorrowedTransport(Transport& inner) : inner_(inner) {}
  [[nodiscard]] int poll_fd() const override { return inner_.poll_fd(); }
  [[nodiscard]] bool write_line(const std::string& line) override {
    return inner_.write_line(line);
  }
  [[nodiscard]] bool write_bytes(const std::string& bytes) override {
    return inner_.write_bytes(bytes);
  }
  [[nodiscard]] ReadResult read_line(std::string* line) override {
    return inner_.read_line(line);
  }
  [[nodiscard]] ReadResult drain(std::vector<std::string>* lines) override {
    return inner_.drain(lines);
  }
  void shutdown_write() override { inner_.shutdown_write(); }
  void close() override { inner_.close(); }
  [[nodiscard]] bool is_closed() const override { return inner_.is_closed(); }
  void append_fds(std::vector<int>* out) const override {
    inner_.append_fds(out);
  }

 private:
  Transport& inner_;
};

std::uint64_t counter_value(const char* name) {
  if (!obs::enabled()) return 0;
  return obs::registry().counter(name).value();
}

/// One worker run: the protocol loop plus (in socket mode) the
/// reconnect machinery. The TraceStore is opened exactly once per process
/// no matter how often the wire flaps — zero re-binning holds through
/// every reconnect, and the HELLO counters are reported once.
class WorkerSession {
 public:
  WorkerSession(const WorkerOptions& opts, const TraceStore& store)
      : opts_(opts), store_(store) {}

  Status run_fixed(Transport& transport) {
    fixed_ = &transport;
    if (!opts_.netfault.empty()) {
      auto spec = faultsim::parse_netfault_spec(opts_.netfault);
      if (!spec.has_value()) return spec.status();
      fault_ = std::make_unique<faultsim::NetFaultTransport>(
          *spec, std::make_unique<BorrowedTransport>(transport));
    }
    if (!hello_and_flush()) {
      return Status(StatusCode::kInternal, "worker: coordinator pipe closed");
    }
    return loop();
  }

  Status run_dialing() {
    socket_mode_ = true;
    if (!opts_.netfault.empty()) {
      auto spec = faultsim::parse_netfault_spec(opts_.netfault);
      if (!spec.has_value()) return spec.status();
      fault_ = std::make_unique<faultsim::NetFaultTransport>(*spec, nullptr);
    }
    if (!reconnect()) {
      return Status(StatusCode::kInternal,
                    "worker: cannot reach coordinator at " + opts_.connect);
    }
    return loop();
  }

 private:
  Transport* wire() {
    if (fault_) return fault_.get();
    return socket_mode_ ? owned_.get() : fixed_;
  }

  Message hello_message() const {
    Message hello;
    hello.type = MessageType::kHello;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hello.packets = store_.packet_count();
    if (obs::enabled()) {
      hello.cache_builds =
          counter_value("netsample_trace_cache_builds_total");
      hello.cache_maps = counter_value("netsample_trace_cache_maps_total");
    } else {
      hello.cache_builds = 0;
      hello.cache_maps = store_.cache().mapped() ? 1 : 0;
    }
    return hello;
  }

  /// HELLO, then whatever replies a dead wire left queued. Replayed
  /// RESULTs for cells the coordinator already committed are discarded
  /// there (dedupe), never double-committed.
  bool hello_and_flush() {
    Transport* w = wire();
    if (w == nullptr) return false;
    if (!w->write_line(format_message(hello_message()))) return false;
    return flush_queued();
  }

  bool flush_queued() {
    Transport* w = wire();
    while (!queued_.empty()) {
      if (w == nullptr || !w->write_line(queued_.front())) return false;
      queued_.pop_front();
    }
    return true;
  }

  /// (Re)dial in socket mode. dial() already applies the capped
  /// exponential backoff + jitter across its attempts; the outer loop
  /// bounds how many times a handshake may die mid-replay before we give
  /// up on this wire for good.
  bool reconnect() {
    if (!socket_mode_) return false;
    for (int attempt = 0; attempt < 4; ++attempt) {
      DialOptions dopts;
      dopts.retries = opts_.connect_retries;
      auto conn = dial(opts_.connect, dopts);
      if (!conn.has_value()) return false;
      if (fault_) {
        fault_->rebind(std::move(*conn));
      } else {
        owned_ = std::move(*conn);
      }
      if (attempt > 0 || hello_sent_) ++reconnects_;
      if (hello_and_flush()) {
        hello_sent_ = true;
        return true;
      }
    }
    return false;
  }

  /// Wire died mid-loop: pipes shut down in order, sockets redial.
  enum class LostWire { kOrderly, kRecovered, kFatal };
  LostWire lost_wire() {
    if (!socket_mode_) return LostWire::kOrderly;  // pipe EOF = shutdown
    return reconnect() ? LostWire::kRecovered : LostWire::kFatal;
  }

  Status depart() {
    Message bye;
    bye.type = MessageType::kBye;
    bye.cells = cells_done_;
    Transport* w = wire();
    if (w != nullptr) (void)w->write_line(format_message(bye));
    return Status::ok();
  }

  /// Queue a reply line, then push the queue. A write failure keeps the
  /// line queued for replay after the next reconnect.
  void deliver(const Message& reply) {
    queued_.push_back(format_message(reply));
    (void)flush_queued();
  }

  Message lease_reply(std::uint64_t index) {
    Message reply;
    reply.index = index;
    if (index >= grid_.size()) {
      reply.type = MessageType::kFail;
      reply.code = StatusCode::kInvalidArgument;
      reply.text =
          grid_.empty() ? "lease before SPEC" : "lease index out of range";
      return reply;
    }
    const exper::CellConfig cfg =
        derived_cell_config(grid_[index], spec_.base_seed);
    try {
      // Same dispatch the in-process ParallelRunner path performs through
      // RunOptions::cell_runner — both paths execute the identical per-cell
      // payload, which is what makes --workers W ≡ --jobs J bit-exact.
      const exper::CellResult result =
          spec_.workload == Workload::kFlow
              ? flow::run_flow_cell(cfg, spec_.flow,
                                    grid_estimator(spec_, index))
              : exper::run_cell(cfg);
      reply.type = MessageType::kResult;
      reply.text = exper::encode_replications(result.replications);
    } catch (const StatusError& e) {
      reply.type = MessageType::kFail;
      reply.code = e.status().code();
      reply.text = e.status().message();
    } catch (const std::exception& e) {
      reply.type = MessageType::kFail;
      reply.code = StatusCode::kInternal;
      reply.text = e.what();
    }
    return reply;
  }

  Status loop() {
    std::string line;
    while (true) {
      if (g_sigterm != 0) return depart();
      Transport* w = wire();
      if (w == nullptr || w->is_closed()) {
        switch (lost_wire()) {
          case LostWire::kOrderly: return Status::ok();
          case LostWire::kRecovered: continue;
          case LostWire::kFatal:
            return Status(StatusCode::kInternal,
                          "worker: lost coordinator (redial budget spent)");
        }
      }
      const ReadResult r = w->read_line(&line);
      if (r == ReadResult::kInterrupted) continue;  // SIGTERM checked on top
      if (r != ReadResult::kLine) {
        switch (lost_wire()) {
          case LostWire::kOrderly: return Status::ok();
          case LostWire::kRecovered: continue;
          case LostWire::kFatal:
            return Status(StatusCode::kInternal,
                          "worker: lost coordinator (redial budget spent)");
        }
      }
      if (line.empty()) continue;
      Message msg;
      if (!parse_message(line, &msg)) {
        return Status(StatusCode::kInvalidArgument,
                      "worker: malformed coordinator message");
      }
      switch (msg.type) {
        case MessageType::kSpec: {
          if (!decode_sweep_spec(msg.text, &spec_)) {
            return Status(StatusCode::kInvalidArgument,
                          "worker: malformed sweep spec");
          }
          grid_ = build_grid(spec_, store_.view(),
                             store_.mean_interarrival_usec(), &store_.cache());
          break;
        }
        case MessageType::kPing: {
          // A lost PONG is harmless: the wire loss surfaces on the next
          // read, and the coordinator's liveness deadline covers silence.
          Message pong;
          pong.type = MessageType::kPong;
          pong.index = msg.index;
          Transport* pw = wire();
          if (pw != nullptr) (void)pw->write_line(format_message(pong));
          break;
        }
        case MessageType::kLease: {
          const Message reply = lease_reply(msg.index);
          deliver(reply);
          if (reply.type == MessageType::kResult) {
            ++cells_done_;
            if (opts_.die_after_cells >= 0 &&
                cells_done_ >=
                    static_cast<std::uint64_t>(opts_.die_after_cells)) {
              // Simulated SIGKILL: no flush, no unwind, no BYE.
              ::_exit(137);
            }
            if (opts_.depart_after_cells >= 0 &&
                cells_done_ >=
                    static_cast<std::uint64_t>(opts_.depart_after_cells)) {
              return depart();  // scripted SIGTERM stand-in
            }
          }
          break;
        }
        case MessageType::kStop:
          return depart();
        default:
          return Status(StatusCode::kInvalidArgument,
                        "worker: unexpected message type");
      }
    }
  }

  const WorkerOptions& opts_;
  const TraceStore& store_;
  Transport* fixed_{nullptr};                            // pipe/stdio mode
  std::unique_ptr<Transport> owned_;                     // socket mode
  std::unique_ptr<faultsim::NetFaultTransport> fault_;   // optional wrapper
  bool socket_mode_{false};
  bool hello_sent_{false};
  std::uint64_t reconnects_{0};
  std::deque<std::string> queued_;  // replies not yet written to a live wire
  SweepSpec spec_;
  std::vector<exper::GridTask> grid_;
  std::uint64_t cells_done_{0};
};

Status run_worker_common(const WorkerOptions& opts, Transport* fixed) {
  // A coordinator that died mid-read must surface as a write error, not a
  // process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  SigtermGuard sigterm;

  StoreBackend& backend = store_backend(opts.backend);
  auto opened = TraceStore::open(opts.store_path, backend);
  if (!opened.has_value()) return opened.status();
  const TraceStore store = std::move(*opened);

  WorkerSession session(opts, store);
  if (fixed != nullptr) return session.run_fixed(*fixed);
  return session.run_dialing();
}

}  // namespace

Status run_worker(const WorkerOptions& opts, std::FILE* in, std::FILE* out) {
  auto transport = make_stdio_transport(in, out);
  return run_worker_common(opts, transport.get());
}

Status run_worker(const WorkerOptions& opts, Transport& transport) {
  return run_worker_common(opts, &transport);
}

Status run_socket_worker(const WorkerOptions& opts) {
  if (opts.connect.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "worker: socket mode needs --connect HOST:PORT");
  }
  return run_worker_common(opts, nullptr);
}

}  // namespace netsample::shard
