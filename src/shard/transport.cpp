#include "shard/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/rng.h"

namespace netsample::shard {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// The fd-pair transport behind both pipe mode (rfd != wfd) and socket
/// mode (rfd == wfd). Line framing and the discard-partial-on-close rule
/// live here, shared by every wire.
class FdTransport final : public Transport {
 public:
  FdTransport(int read_fd, int write_fd) : rfd_(read_fd), wfd_(write_fd) {}
  ~FdTransport() override { close(); }

  [[nodiscard]] int poll_fd() const override { return rfd_; }

  [[nodiscard]] bool write_line(const std::string& line) override {
    return write_bytes(line + "\n");
  }

  [[nodiscard]] bool write_bytes(const std::string& bytes) override {
    if (wfd_ < 0 || write_dead_) return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::write(wfd_, bytes.data() + off, bytes.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        write_dead_ = true;
        return false;
      }
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  [[nodiscard]] ReadResult read_line(std::string* line) override {
    while (true) {
      if (take_line(line)) return ReadResult::kLine;
      if (rfd_ < 0 || eof_) return ReadResult::kClosed;
      char chunk[65536];
      const ssize_t got = ::read(rfd_, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR) return ReadResult::kInterrupted;
        eof_ = true;
        buf_.clear();  // never deliver a torn line
        return ReadResult::kClosed;
      }
      if (got == 0) {
        eof_ = true;
        buf_.clear();
        return ReadResult::kClosed;
      }
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  [[nodiscard]] ReadResult drain(std::vector<std::string>* lines) override {
    if (rfd_ < 0 || eof_) return ReadResult::kClosed;
    // Never block here, whatever the fd's flags: a zero-timeout poll
    // stands in for O_NONBLOCK so the same fd still block-reads in
    // read_line (spurious wakeups otherwise wedge the coordinator).
    pollfd ready{rfd_, POLLIN, 0};
    if (::poll(&ready, 1, 0) <= 0 || (ready.revents & (POLLIN | POLLHUP)) == 0) {
      return ReadResult::kNoData;
    }
    char chunk[65536];
    const ssize_t got = ::read(rfd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadResult::kNoData;
      }
      eof_ = true;
      buf_.clear();
      return ReadResult::kClosed;
    }
    if (got == 0) {
      eof_ = true;
      buf_.clear();
      return ReadResult::kClosed;
    }
    buf_.append(chunk, static_cast<std::size_t>(got));
    bool any = false;
    std::string line;
    while (take_line(&line)) {
      lines->push_back(std::move(line));
      any = true;
    }
    return any ? ReadResult::kLine : ReadResult::kNoData;
  }

  void shutdown_write() override {
    if (wfd_ < 0) return;
    if (wfd_ == rfd_) {
      (void)::shutdown(wfd_, SHUT_WR);
    } else {
      ::close(wfd_);
      wfd_ = -1;
    }
    write_dead_ = true;
  }

  void close() override {
    if (rfd_ >= 0 && rfd_ == wfd_) {
      ::close(rfd_);
      rfd_ = wfd_ = -1;
    } else {
      if (rfd_ >= 0) ::close(rfd_);
      if (wfd_ >= 0) ::close(wfd_);
      rfd_ = wfd_ = -1;
    }
    eof_ = true;
    write_dead_ = true;
    buf_.clear();
  }

  [[nodiscard]] bool is_closed() const override { return eof_; }

  void append_fds(std::vector<int>* out) const override {
    if (rfd_ >= 0) out->push_back(rfd_);
    if (wfd_ >= 0 && wfd_ != rfd_) out->push_back(wfd_);
  }

 private:
  bool take_line(std::string* line) {
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) return false;
    line->assign(buf_, 0, nl);
    while (!line->empty() && line->back() == '\r') line->pop_back();
    buf_.erase(0, nl + 1);
    return true;
  }

  int rfd_{-1};
  int wfd_{-1};
  bool eof_{false};
  bool write_dead_{false};
  std::string buf_;
};

/// Stdio transport: the exec'd-worker stdin/stdout path and the tmpfile
/// unit tests. Blocking-read only; does not own the streams.
class StdioTransport final : public Transport {
 public:
  StdioTransport(std::FILE* in, std::FILE* out) : in_(in), out_(out) {}

  [[nodiscard]] int poll_fd() const override { return ::fileno(in_); }

  [[nodiscard]] bool write_line(const std::string& line) override {
    return write_bytes(line + "\n");
  }

  [[nodiscard]] bool write_bytes(const std::string& bytes) override {
    if (closed_) return false;
    if (std::fwrite(bytes.data(), 1, bytes.size(), out_) != bytes.size() ||
        std::fflush(out_) != 0) {
      closed_ = true;
      return false;
    }
    return true;
  }

  [[nodiscard]] ReadResult read_line(std::string* line) override {
    if (closed_) return ReadResult::kClosed;
    char* buf = nullptr;
    std::size_t cap = 0;
    errno = 0;
    const ssize_t n = ::getline(&buf, &cap, in_);
    if (n < 0) {
      std::free(buf);
      if (errno == EINTR) {
        std::clearerr(in_);
        return ReadResult::kInterrupted;
      }
      closed_ = true;
      return ReadResult::kClosed;
    }
    line->assign(buf, static_cast<std::size_t>(n));
    std::free(buf);
    while (!line->empty() &&
           (line->back() == '\n' || line->back() == '\r')) {
      line->pop_back();
    }
    return ReadResult::kLine;
  }

  [[nodiscard]] ReadResult drain(std::vector<std::string>*) override {
    return ReadResult::kNoData;  // worker side never drains
  }

  void shutdown_write() override {
    (void)std::fflush(out_);
    closed_ = true;
  }

  void close() override { closed_ = true; }
  [[nodiscard]] bool is_closed() const override { return closed_; }
  void append_fds(std::vector<int>*) const override {}

 private:
  std::FILE* in_;
  std::FILE* out_;
  bool closed_{false};
};

}  // namespace

std::unique_ptr<Transport> make_fd_transport(int read_fd, int write_fd) {
  return std::make_unique<FdTransport>(read_fd, write_fd);
}

std::unique_ptr<Transport> make_stdio_transport(std::FILE* in,
                                                std::FILE* out) {
  return std::make_unique<StdioTransport>(in, out);
}

StatusOr<std::pair<std::string, int>> parse_host_port(
    const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "expected HOST:PORT, got \"" + text + "\"");
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  errno = 0;
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || errno == ERANGE ||
      port < 0 || port > 65535) {
    return Status(StatusCode::kInvalidArgument,
                  "expected a port in [0, 65535], got \"" + port_text + "\"");
  }
  return std::make_pair(host, static_cast<int>(port));
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), host_(std::move(other.host_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    host_ = std::move(other.host_);
    other.fd_ = -1;
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Listener::address() const {
  return host_ + ":" + std::to_string(port_);
}

StatusOr<Listener> Listener::open(const std::string& host_port) {
  auto parsed = parse_host_port(host_port);
  if (!parsed.has_value()) return parsed.status();
  const std::string& host = parsed->first;
  const int port = parsed->second;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &res);
  if (gai != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "listener: cannot resolve " + host_port + ": " +
                      ::gai_strerror(gai));
  }

  int fd = -1;
  std::string err = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = std::strerror(errno);
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    err = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  "listener: cannot bind " + host_port + ": " + err);
  }

  // Nonblocking accept: poll() readiness is a hint, not a promise (a
  // connection can abort between poll and accept).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  int actual_port = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    actual_port = static_cast<int>(ntohs(bound.sin_port));
  }

  Listener out;
  out.fd_ = fd;
  out.port_ = actual_port;
  out.host_ = host;
  return out;
}

std::unique_ptr<Transport> Listener::accept_connection() {
  if (fd_ < 0) return nullptr;
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      // Accepted sockets inherit O_NONBLOCK on some systems; the protocol
      // wants blocking writes + poll-gated reads, so clear it.
      const int flags = ::fcntl(conn, F_GETFL, 0);
      (void)::fcntl(conn, F_SETFL, flags & ~O_NONBLOCK);
      set_nodelay(conn);
      return make_fd_transport(conn, conn);
    }
    if (errno == EINTR) continue;
    return nullptr;  // EAGAIN / aborted handshake: nothing to accept
  }
}

StatusOr<std::unique_ptr<Transport>> dial(const std::string& host_port,
                                          const DialOptions& opts) {
  auto parsed = parse_host_port(host_port);
  if (!parsed.has_value()) return parsed.status();
  const std::string& host = parsed->first;
  const int port = parsed->second;
  if (port == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "dial: port 0 is listen-only");
  }

  const std::uint64_t seed =
      opts.jitter_seed != 0
          ? opts.jitter_seed
          : derive_seed({0x6e65746469616cULL,
                         static_cast<std::uint64_t>(::getpid())});
  Rng jitter(seed);

  std::string err = "unreachable";
  double backoff = opts.initial_backoff_s;
  for (int attempt = 0; attempt <= opts.retries; ++attempt) {
    if (attempt > 0) {
      const double delay = backoff * jitter.uniform(0.5, 1.5);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      backoff = std::min(backoff * 2.0, opts.max_backoff_s);
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                  &hints, &res);
    if (gai != 0) {
      err = ::gai_strerror(gai);
      continue;
    }
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol);
      if (fd < 0) {
        err = std::strerror(errno);
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        set_nodelay(fd);
        ::freeaddrinfo(res);
        return std::unique_ptr<Transport>(make_fd_transport(fd, fd));
      }
      err = std::strerror(errno);
      ::close(fd);
    }
    ::freeaddrinfo(res);
  }
  return Status(StatusCode::kInternal,
                "dial: cannot reach " + host_port + " after " +
                    std::to_string(opts.retries + 1) + " attempt(s): " + err);
}

}  // namespace netsample::shard
