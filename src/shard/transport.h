// Byte transports for the coordinator <-> worker line protocol.
//
// PR 7 spoke the lease protocol over a pipe pair; this header makes "how
// lines travel" a seam. A Transport is one bidirectional, ordered,
// newline-framed byte channel. Two real implementations exist:
//
//   pipe    the PR 7 pair of pipe fds (or a connected socketpair) — what
//           fork-only and exec'd stdin/stdout workers use;
//   socket  one TCP connection, so workers can live on other machines
//           (`netsample sweep --transport socket --listen HOST:PORT`,
//           `netsample worker --connect HOST:PORT`).
//
// plus the deterministic wire-impairment wrapper in faultsim/netfault.h,
// which is why the interface lives header-visible: faultsim wraps a
// Transport without linking against shard internals.
//
// The interface is deliberately tiny and line-oriented:
//   - write_line()  appends '\n' and writes the whole line or reports the
//                   channel dead — there are no partial writes at this
//                   layer (a torn write is modeled as write-then-close,
//                   which is what a crashed peer actually produces);
//   - read_line()   blocks for the next complete line (worker side);
//   - drain()       nonblocking: one read() worth of bytes split into the
//                   complete lines it finished (coordinator side, after
//                   poll() said the fd is readable);
//   - poll_fd()     the fd a coordinator poll loop watches.
//
// A partial line buffered when the peer closes is DISCARDED, never
// delivered: strict framing is what keeps a half-written RESULT from a
// dying worker unparseable by construction (docs/SHARDING.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace netsample::shard {

enum class ReadResult {
  kLine,         // *line holds one complete line (newline stripped)
  kNoData,       // nonblocking drain: nothing complete yet, channel fine
  kClosed,       // peer closed (or channel previously errored)
  kInterrupted,  // blocking read hit EINTR — caller decides (SIGTERM check)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Fd a poll() loop can watch for readability (coordinator side).
  [[nodiscard]] virtual int poll_fd() const = 0;

  /// Write `line` + '\n' fully. False marks the channel closed (EPIPE,
  /// reset); a false return is sticky — the channel never half-works.
  [[nodiscard]] virtual bool write_line(const std::string& line) = 0;

  /// Raw bytes, NO framing added. Exists so a fault injector can produce a
  /// genuinely torn line — a prefix with no newline, then a close — which
  /// is what a crashed peer's last write looks like on a real wire.
  [[nodiscard]] virtual bool write_bytes(const std::string& bytes) = 0;

  /// Block until one complete line, EOF, or a signal (worker side).
  [[nodiscard]] virtual ReadResult read_line(std::string* line) = 0;

  /// Nonblocking: consume at most one read() of bytes, append every line
  /// it completed to `lines`. kLine when >= 1 line landed, kNoData when
  /// the read would block or was short of a newline, kClosed on EOF
  /// (any buffered partial line is discarded).
  [[nodiscard]] virtual ReadResult drain(std::vector<std::string>* lines) = 0;

  /// Half-close the write side so the peer sees EOF after our last line
  /// (STOP backpressure), while reads keep working.
  virtual void shutdown_write() = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool is_closed() const = 0;

  /// Append every raw fd this transport owns (fork hygiene: children close
  /// the coordinator's descriptors so sibling EOFs propagate).
  virtual void append_fds(std::vector<int>* out) const = 0;
};

/// A transport over a read fd + write fd pair (rfd == wfd for sockets;
/// distinct fds for a pipe pair). Takes ownership of both.
[[nodiscard]] std::unique_ptr<Transport> make_fd_transport(int read_fd,
                                                           int write_fd);

/// A transport over stdio streams (worker exec mode: stdin/stdout). Does
/// NOT own the FILEs; drain() is unsupported (workers only block-read).
[[nodiscard]] std::unique_ptr<Transport> make_stdio_transport(std::FILE* in,
                                                              std::FILE* out);

/// Split "host:port" (last ':' wins, so a future v6 literal can carry
/// colons). Port must be numeric in [0, 65535]; 0 is only meaningful for
/// listening (ephemeral).
[[nodiscard]] StatusOr<std::pair<std::string, int>> parse_host_port(
    const std::string& text);

/// A listening TCP socket the coordinator accepts worker connections on.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Bind + listen on "host:port" (port 0 picks an ephemeral port).
  [[nodiscard]] static StatusOr<Listener> open(const std::string& host_port);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] int port() const { return port_; }
  /// "host:actual-port" — what workers dial (resolves port 0).
  [[nodiscard]] std::string address() const;

  /// Accept one pending connection (TCP_NODELAY set); null when none is
  /// waiting (the listener fd is nonblocking).
  [[nodiscard]] std::unique_ptr<Transport> accept_connection();

  void close();

 private:
  int fd_{-1};
  int port_{0};
  std::string host_;
};

struct DialOptions {
  /// Redial attempts after the first (capped exponential backoff between
  /// attempts: initial_backoff_s doubling up to max_backoff_s, each delay
  /// jittered uniformly in [0.5x, 1.5x] so a respawned fleet does not
  /// reconnect in lockstep).
  int retries{5};
  double initial_backoff_s{0.05};
  double max_backoff_s{2.0};
  /// Seed for the jitter stream (0 derives one from the pid).
  std::uint64_t jitter_seed{0};
};

/// Connect to "host:port", retrying per `opts`. kInternal when every
/// attempt failed, kInvalidArgument for an unparseable address.
[[nodiscard]] StatusOr<std::unique_ptr<Transport>> dial(
    const std::string& host_port, const DialOptions& opts = {});

}  // namespace netsample::shard
