#include "shard/protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace netsample::shard {

namespace {

std::string u64_str(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Consume "<u64>" at p (advancing past it); false unless at least one
/// digit was parsed.
bool eat_u64(const char*& p, std::uint64_t* out) {
  if (*p < '0' || *p > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (errno != 0) return false;
  p = end;
  *out = v;
  return true;
}

bool eat(const char*& p, const char* literal) {
  const char* q = literal;
  while (*q != '\0') {
    if (*p != *q) return false;
    ++p;
    ++q;
  }
  return true;
}

bool eat_field(const char*& p, const char* name, std::uint64_t* out) {
  return eat(p, name) && eat(p, "=") && eat_u64(p, out);
}

}  // namespace

std::string format_message(const Message& m) {
  switch (m.type) {
    case MessageType::kSpec:
      return "SPEC " + m.text;
    case MessageType::kLease:
      return "LEASE " + u64_str(m.index);
    case MessageType::kStop:
      return "STOP";
    case MessageType::kHello:
      return "HELLO pid=" + u64_str(m.pid) + " packets=" + u64_str(m.packets) +
             " builds=" + u64_str(m.cache_builds) +
             " maps=" + u64_str(m.cache_maps);
    case MessageType::kResult:
      return "RESULT " + u64_str(m.index) + " " + m.text;
    case MessageType::kFail:
      return "FAIL " + u64_str(m.index) + " " +
             u64_str(static_cast<std::uint64_t>(m.code)) + " " + m.text;
    case MessageType::kBye:
      return "BYE cells=" + u64_str(m.cells);
    case MessageType::kPing:
      return "PING " + u64_str(m.index);
    case MessageType::kPong:
      return "PONG " + u64_str(m.index);
  }
  return "";
}

bool parse_message(const std::string& line, Message* m) {
  const char* p = line.c_str();
  *m = Message{};
  if (eat(p, "SPEC ")) {
    m->type = MessageType::kSpec;
    m->text = p;
    return !m->text.empty();
  }
  p = line.c_str();
  if (eat(p, "LEASE ")) {
    m->type = MessageType::kLease;
    return eat_u64(p, &m->index) && *p == '\0';
  }
  p = line.c_str();
  if (line == "STOP") {
    m->type = MessageType::kStop;
    return true;
  }
  if (eat(p, "HELLO ")) {
    m->type = MessageType::kHello;
    return eat_field(p, "pid", &m->pid) && eat(p, " ") &&
           eat_field(p, "packets", &m->packets) && eat(p, " ") &&
           eat_field(p, "builds", &m->cache_builds) && eat(p, " ") &&
           eat_field(p, "maps", &m->cache_maps) && *p == '\0';
  }
  p = line.c_str();
  if (eat(p, "RESULT ")) {
    m->type = MessageType::kResult;
    if (!eat_u64(p, &m->index) || !eat(p, " ")) return false;
    m->text = p;
    return !m->text.empty();
  }
  p = line.c_str();
  if (eat(p, "FAIL ")) {
    m->type = MessageType::kFail;
    std::uint64_t code = 0;
    if (!eat_u64(p, &m->index) || !eat(p, " ") || !eat_u64(p, &code) ||
        !eat(p, " ")) {
      return false;
    }
    if (code > static_cast<std::uint64_t>(StatusCode::kDeadlineExceeded)) {
      return false;
    }
    m->code = static_cast<StatusCode>(code);
    m->text = p;  // may legitimately be empty
    return true;
  }
  p = line.c_str();
  if (eat(p, "BYE ")) {
    m->type = MessageType::kBye;
    return eat_field(p, "cells", &m->cells) && *p == '\0';
  }
  p = line.c_str();
  if (eat(p, "PING ")) {
    m->type = MessageType::kPing;
    return eat_u64(p, &m->index) && *p == '\0';
  }
  p = line.c_str();
  if (eat(p, "PONG ")) {
    m->type = MessageType::kPong;
    return eat_u64(p, &m->index) && *p == '\0';
  }
  return false;
}

}  // namespace netsample::shard
