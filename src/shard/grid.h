// The deterministic cell grid of a sharded sweep.
//
// Coordinator and workers never ship per-cell configs over the wire; they
// each rebuild the SAME grid from a SweepSpec (one line of text) plus the
// shared TraceStore, and a lease is just an index into that grid. Cell
// identity — and therefore the derived seed and the checkpoint-journal key
// — is purely logical, exactly the property ParallelRunner's threaded path
// relies on, which is what makes a W-worker sweep bit-identical to the
// --jobs J single-process sweep at any W and J.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/samplers.h"
#include "core/targets.h"
#include "core/trace_cache.h"
#include "exper/parallel.h"
#include "flow/sweep.h"
#include "trace/trace.h"

namespace netsample::shard {

/// Which per-cell payload the sweep runs: the packet-target scoring of
/// exper::run_cell, or the flow aggregation + inversion of
/// flow::run_flow_cell.
enum class Workload {
  kPacket,
  kFlow,
};

/// What to sweep. The grid is the cross product in canonical task order —
/// packet workload: target-major, then method, then granularity (the
/// figures' row order); flow workload: estimator-major, then method, then
/// granularity (targets is a single placeholder entry so the wire encoding
/// keeps its required fields).
struct SweepSpec {
  std::vector<core::Target> targets;
  std::vector<core::Method> methods;
  std::vector<std::uint64_t> granularities;
  int replications{5};
  std::uint64_t base_seed{1};

  Workload workload{Workload::kPacket};
  /// Flow workload only: the inversion estimators swept (outermost grid
  /// axis). Must be non-empty for kFlow.
  std::vector<flow::Estimator> estimators;
  /// Flow workload only: table/inversion parameters shared by every cell.
  flow::FlowParams flow;

  [[nodiscard]] std::size_t cell_count() const {
    const std::size_t inner = methods.size() * granularities.size();
    return workload == Workload::kFlow ? estimators.size() * inner
                                       : targets.size() * inner;
  }
};

/// All 5 paper methods x both targets x the exponential ladder 2..32768.
[[nodiscard]] SweepSpec default_sweep_spec();

/// Short stable tokens used in the spec encoding and the CLI (--method):
/// systematic, stratified, random, timer-systematic, timer-stratified and
/// size, iat. parse_* throw std::invalid_argument on unknown tokens.
[[nodiscard]] const char* method_token(core::Method m);
[[nodiscard]] core::Method parse_method_token(const std::string& token);
[[nodiscard]] const char* target_token(core::Target t);
[[nodiscard]] core::Target parse_target_token(const std::string& token);

/// One-line, space-free wire encoding of a spec (the SPEC message payload),
/// and its strict parser. decode returns false on any mismatch.
[[nodiscard]] std::string encode_sweep_spec(const SweepSpec& spec);
[[nodiscard]] bool decode_sweep_spec(const std::string& text, SweepSpec* spec);

/// Cells in canonical task order over one interval (the full stored trace).
/// `cache` and `mean_interarrival_usec` are attached to every config; the
/// per-cell seed is NOT derived here (ParallelRunner::run derives it from
/// the grid coordinates itself; the sharded path uses derived_cell_config).
[[nodiscard]] std::vector<exper::GridTask> build_grid(
    const SweepSpec& spec, trace::TraceView interval,
    double mean_interarrival_usec, const core::BinnedTraceCache* cache);

/// The config run_cell actually executes for a grid task: base_seed replaced
/// by task_seed(spec seed, method, granularity, interval_index) — the exact
/// substitution ParallelRunner::run performs. Workers execute this; the
/// coordinator derives journal keys from it.
[[nodiscard]] exper::CellConfig derived_cell_config(const exper::GridTask& task,
                                                    std::uint64_t base_seed);

/// Checkpoint-journal key of a grid task — cell_journal_key over the derived
/// config plus the task's journal_suffix, byte-identical to what
/// ParallelRunner writes for the same grid. Flow cells differing only in
/// estimator (the estimator lives outside CellConfig) are disambiguated by
/// the ";e=<estimator>" suffix build_grid stamps on them, which is what
/// makes `netsample flows --sweep --resume` sound — see docs/FLOWS.md §4.
[[nodiscard]] std::string grid_journal_key(const exper::GridTask& task,
                                           std::uint64_t base_seed);

/// Estimator of grid task `index` of a kFlow spec (the estimator is the
/// outermost axis of the canonical order, so it is index / (methods x
/// granularities)). Throws std::invalid_argument for a kPacket spec or an
/// out-of-range index.
[[nodiscard]] flow::Estimator grid_estimator(const SweepSpec& spec,
                                             std::size_t index);

}  // namespace netsample::shard
