// Coordinator <-> worker line protocol.
//
// One newline-terminated ASCII message per line over a pair of pipes (or
// any byte stream — the transport is whatever spawned the worker). The
// coordinator is the only journal writer; workers are stateless lease
// executors, so the exactly-once story lives entirely on the coordinator
// side (docs/SHARDING.md).
//
//   coordinator -> worker
//     SPEC <encoded-sweep-spec>     the grid to rebuild (grid.h codec)
//     LEASE <task-index>            run grid cell <task-index>
//     PING <seq>                    liveness probe (socket transport)
//     STOP                          finish up; worker answers BYE and exits
//
//   worker -> coordinator
//     HELLO pid=<pid> packets=<n> builds=<b> maps=<m>
//                                   store opened; b/m are the worker's
//                                   trace-cache build/map counters (the
//                                   zero-re-binning assertion: b == 0).
//                                   Re-sent after a reconnect — the pid is
//                                   the worker's stable identity, so the
//                                   coordinator rebinds the new connection
//                                   to the same lease bookkeeping.
//     RESULT <task-index> <reps>    cell done; <reps> is the journal's
//                                   hexfloat replication codec, bit-exact
//     FAIL <task-index> <code> <message...>
//                                   cell failed with StatusCode <code>
//     PONG <seq>                    answer to PING <seq>
//     BYE cells=<count>             response to STOP, or an unsolicited
//                                   clean departure (SIGTERM)
//
// parse_message is strict: any malformed line fails the parse, and the
// coordinator treats a worker that emits one as dead (its leases are
// reassigned) — a half-written line from a killed worker can never corrupt
// a result.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace netsample::shard {

enum class MessageType {
  kSpec,
  kLease,
  kStop,
  kHello,
  kResult,
  kFail,
  kBye,
  kPing,
  kPong,
};

struct Message {
  MessageType type{MessageType::kStop};
  std::uint64_t index{0};         // LEASE / RESULT / FAIL / PING / PONG seq
  StatusCode code{StatusCode::kOk};  // FAIL
  std::uint64_t pid{0};           // HELLO
  std::uint64_t packets{0};       // HELLO
  std::uint64_t cache_builds{0};  // HELLO
  std::uint64_t cache_maps{0};    // HELLO
  std::uint64_t cells{0};         // BYE
  std::string text;               // SPEC payload / RESULT reps / FAIL message
};

/// The wire line for a message, WITHOUT the trailing newline.
[[nodiscard]] std::string format_message(const Message& m);

/// Strict parse of one line (no trailing newline). Returns false on any
/// mismatch; *m is unspecified then.
[[nodiscard]] bool parse_message(const std::string& line, Message* m);

}  // namespace netsample::shard
