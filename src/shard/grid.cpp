#include "shard/grid.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exper/journal.h"
#include "exper/runner.h"

namespace netsample::shard {

SweepSpec default_sweep_spec() {
  SweepSpec spec;
  spec.targets = {core::Target::kPacketSize, core::Target::kInterarrivalTime};
  spec.methods = {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                  core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                  core::Method::kStratifiedTimer};
  spec.granularities = exper::granularity_ladder();
  return spec;
}

const char* method_token(core::Method m) {
  switch (m) {
    case core::Method::kSystematicCount: return "systematic";
    case core::Method::kStratifiedCount: return "stratified";
    case core::Method::kSimpleRandom: return "random";
    case core::Method::kSystematicTimer: return "timer-systematic";
    case core::Method::kStratifiedTimer: return "timer-stratified";
  }
  throw std::invalid_argument("unknown method");
}

core::Method parse_method_token(const std::string& token) {
  if (token == "systematic") return core::Method::kSystematicCount;
  if (token == "stratified") return core::Method::kStratifiedCount;
  if (token == "random") return core::Method::kSimpleRandom;
  if (token == "timer-systematic") return core::Method::kSystematicTimer;
  if (token == "timer-stratified") return core::Method::kStratifiedTimer;
  throw std::invalid_argument(
      "unknown method '" + token +
      "' (expected systematic|stratified|random|timer-systematic|"
      "timer-stratified)");
}

const char* target_token(core::Target t) {
  return t == core::Target::kPacketSize ? "size" : "iat";
}

core::Target parse_target_token(const std::string& token) {
  if (token == "size") return core::Target::kPacketSize;
  if (token == "iat") return core::Target::kInterarrivalTime;
  throw std::invalid_argument("unknown target '" + token +
                              "' (expected size|iat)");
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::string encode_sweep_spec(const SweepSpec& spec) {
  std::string out = "v=1;seed=";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, spec.base_seed);
  out += buf;
  std::snprintf(buf, sizeof buf, ";reps=%d;targets=", spec.replications);
  out += buf;
  for (std::size_t i = 0; i < spec.targets.size(); ++i) {
    if (i != 0) out += ',';
    out += target_token(spec.targets[i]);
  }
  out += ";methods=";
  for (std::size_t i = 0; i < spec.methods.size(); ++i) {
    if (i != 0) out += ',';
    out += method_token(spec.methods[i]);
  }
  out += ";k=";
  for (std::size_t i = 0; i < spec.granularities.size(); ++i) {
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof buf, "%" PRIu64, spec.granularities[i]);
    out += buf;
  }
  if (spec.workload == Workload::kFlow) {
    // Flow fields only appear for flow specs, so packet-sweep encodings are
    // byte-identical to what older coordinators/workers produced.
    out += ";workload=flow;est=";
    for (std::size_t i = 0; i < spec.estimators.size(); ++i) {
      if (i != 0) out += ',';
      out += flow::estimator_token(spec.estimators[i]);
    }
    std::snprintf(buf, sizeof buf, ";ftimeout=%" PRIu64,
                  spec.flow.idle_timeout_usec);
    out += buf;
    std::snprintf(buf, sizeof buf, ";fcap=%" PRIu64, spec.flow.capacity);
    out += buf;
    std::snprintf(buf, sizeof buf, ";emiters=%d", spec.flow.em_iters);
    out += buf;
  }
  return out;
}

bool decode_sweep_spec(const std::string& text, SweepSpec* spec) {
  SweepSpec parsed;
  bool saw_v = false, saw_seed = false, saw_reps = false;
  bool saw_targets = false, saw_methods = false, saw_k = false;
  bool saw_flow_field = false;
  try {
    for (const std::string& field : split(text, ';')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) return false;
      const std::string name = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      std::uint64_t u = 0;
      if (name == "v") {
        if (value != "1") return false;
        saw_v = true;
      } else if (name == "seed") {
        if (!parse_u64(value, &u)) return false;
        parsed.base_seed = u;
        saw_seed = true;
      } else if (name == "reps") {
        if (!parse_u64(value, &u) || u == 0 || u > 1000000) return false;
        parsed.replications = static_cast<int>(u);
        saw_reps = true;
      } else if (name == "targets") {
        for (const std::string& t : split(value, ',')) {
          parsed.targets.push_back(parse_target_token(t));
        }
        saw_targets = true;
      } else if (name == "methods") {
        for (const std::string& m : split(value, ',')) {
          parsed.methods.push_back(parse_method_token(m));
        }
        saw_methods = true;
      } else if (name == "k") {
        for (const std::string& g : split(value, ',')) {
          if (!parse_u64(g, &u) || u == 0) return false;
          parsed.granularities.push_back(u);
        }
        saw_k = true;
      } else if (name == "workload") {
        if (value != "flow") return false;  // kPacket never emits the field
        parsed.workload = Workload::kFlow;
      } else if (name == "est") {
        for (const std::string& e : split(value, ',')) {
          parsed.estimators.push_back(flow::parse_estimator_token(e));
        }
      } else if (name == "ftimeout") {
        if (!parse_u64(value, &u) || u == 0) return false;
        parsed.flow.idle_timeout_usec = u;
        saw_flow_field = true;
      } else if (name == "fcap") {
        if (!parse_u64(value, &u)) return false;
        parsed.flow.capacity = u;
        saw_flow_field = true;
      } else if (name == "emiters") {
        if (!parse_u64(value, &u) || u == 0 || u > 1000000) return false;
        parsed.flow.em_iters = static_cast<int>(u);
        saw_flow_field = true;
      } else {
        return false;
      }
    }
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (!(saw_v && saw_seed && saw_reps && saw_targets && saw_methods && saw_k)) {
    return false;
  }
  if (parsed.workload == Workload::kFlow && parsed.estimators.empty()) {
    return false;
  }
  if (parsed.workload == Workload::kPacket &&
      (!parsed.estimators.empty() || saw_flow_field)) {
    return false;  // flow-only fields without workload=flow are malformed
  }
  if (parsed.cell_count() == 0) return false;
  *spec = std::move(parsed);
  return true;
}

std::vector<exper::GridTask> build_grid(const SweepSpec& spec,
                                        trace::TraceView interval,
                                        double mean_interarrival_usec,
                                        const core::BinnedTraceCache* cache) {
  std::vector<exper::GridTask> tasks;
  tasks.reserve(spec.cell_count());
  const auto push_cell = [&](core::Target target, core::Method method,
                             std::uint64_t k, std::string journal_suffix) {
    exper::CellConfig cfg;
    cfg.method = method;
    cfg.target = target;
    cfg.granularity = k;
    cfg.interval = interval;
    cfg.mean_interarrival_usec = mean_interarrival_usec;
    cfg.replications = spec.replications;
    cfg.base_seed = spec.base_seed;
    cfg.cache = cache;
    tasks.push_back(exper::GridTask{cfg, /*interval_index=*/0,
                                    std::move(journal_suffix)});
  };
  if (spec.workload == Workload::kFlow) {
    // Estimator-major: both estimator blocks hold IDENTICAL configs (the
    // estimator is applied by the cell runner via grid_estimator), so each
    // (method, k) pair's replications draw the same samples under both
    // estimators — a paired comparison by construction. The estimator must
    // therefore enter the journal key some other way: as the task's
    // journal_suffix (docs/FLOWS.md §4), which is what lets flow sweeps
    // checkpoint/--resume without the two blocks aliasing each other.
    for (std::size_t e = 0; e < spec.estimators.size(); ++e) {
      const std::string suffix =
          std::string(";e=") + flow::estimator_token(spec.estimators[e]);
      for (const core::Method method : spec.methods) {
        for (const std::uint64_t k : spec.granularities) {
          push_cell(core::Target::kPacketSize, method, k, suffix);
        }
      }
    }
    return tasks;
  }
  for (const core::Target target : spec.targets) {
    for (const core::Method method : spec.methods) {
      for (const std::uint64_t k : spec.granularities) {
        push_cell(target, method, k, std::string());
      }
    }
  }
  return tasks;
}

exper::CellConfig derived_cell_config(const exper::GridTask& task,
                                      std::uint64_t base_seed) {
  exper::CellConfig cfg = task.config;
  cfg.base_seed = exper::task_seed(base_seed, cfg.method, cfg.granularity,
                                   task.interval_index);
  cfg.cancel = nullptr;
  return cfg;
}

std::string grid_journal_key(const exper::GridTask& task,
                             std::uint64_t base_seed) {
  return exper::cell_journal_key(derived_cell_config(task, base_seed),
                                 task.interval_index) +
         task.journal_suffix;
}

flow::Estimator grid_estimator(const SweepSpec& spec, std::size_t index) {
  if (spec.workload != Workload::kFlow) {
    throw std::invalid_argument("grid_estimator: not a flow sweep");
  }
  const std::size_t inner = spec.methods.size() * spec.granularities.size();
  const std::size_t e = inner == 0 ? spec.estimators.size() : index / inner;
  if (e >= spec.estimators.size()) {
    throw std::invalid_argument("grid_estimator: task index out of range");
  }
  return spec.estimators[e];
}

}  // namespace netsample::shard
