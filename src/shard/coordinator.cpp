#include "shard/coordinator.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "shard/protocol.h"
#include "shard/store.h"
#include "shard/transport.h"
#include "shard/worker.h"

namespace netsample::shard {

std::size_t ShardReport::ok_count() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.status.is_ok()) ++n;
  }
  return n;
}

std::size_t ShardReport::from_journal_count() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.from_journal) ++n;
  }
  return n;
}

bool ShardReport::all_ok() const { return ok_count() == cells.size(); }

Status ShardReport::first_failure() const {
  for (const auto& c : cells) {
    if (!c.status.is_ok()) return c.status;
  }
  return Status::ok();
}

namespace {

using Clock = std::chrono::steady_clock;

/// Floating seconds -> the steady clock's native duration, so time_point
/// arithmetic stays in one representation.
Clock::duration secs(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

// How many leases a worker holds at once. Depth 2 hides the lease round
// trip: the next cell is already queued on the wire while the current one
// computes. Results stay deterministic at any depth (seeds are positional).
constexpr std::size_t kLeaseDepth = 2;

enum CellState : unsigned char { kPending = 0, kLeased, kDone };

enum class Departure { kUnexpected, kClean };

/// One worker identity. The connection (chan) and the process (pid) have
/// independent lifetimes in socket mode: a wire can die and come back
/// (awaiting + re-HELLO) while the process lives, and a process can be
/// reaped while its last bytes still sit in the socket. `dead` is final.
struct Slot {
  pid_t pid{-1};
  bool proc_alive{false};  // we spawned it and have not reaped it
  bool external{false};    // connected on its own; not our child
  bool dead{false};
  std::unique_ptr<Transport> chan;
  bool awaiting{false};  // expecting a (re)connection before the deadline
  Clock::time_point awaiting_deadline{};
  bool ever_connected{false};
  bool hello_counted{false};
  bool suspended{false};  // a lease expired; no new grants until it speaks
  Clock::time_point probation_deadline{};
  std::vector<std::uint64_t> outstanding;
  std::map<std::uint64_t, Clock::time_point> lease_sent;
  Clock::time_point last_heard_{};
  Clock::time_point last_ping_{};
};

/// An accepted socket that has not said HELLO yet — not a worker until it
/// identifies itself (or a stale duplicate; either way it gets a deadline).
struct PendingConn {
  std::unique_ptr<Transport> chan;
  Clock::time_point deadline;
};

class Coordinator {
 public:
  Coordinator(const SweepSpec& spec, const CoordinatorOptions& opts)
      : spec_(spec),
        opts_(opts),
        socket_mode_(opts.transport == TransportKind::kSocket),
        hb_(opts.heartbeat_interval_s),
        lt_(opts.lease_timeout_s),
        window_(opts.reconnect_window_s) {}

  /// Abort-path safety net: whatever is still alive gets SIGKILL'd and
  /// reaped, so no error return leaks children.
  ~Coordinator() {
    for (auto& s : slots_) {
      if (s.proc_alive) {
        ::kill(s.pid, SIGKILL);
        int st = 0;
        ::waitpid(s.pid, &st, 0);
        s.proc_alive = false;
      }
    }
  }

  StatusOr<ShardReport> run();

 private:
  // ---- wiring ----------------------------------------------------------

  static bool connected(const Slot& s) {
    return s.chan != nullptr && !s.chan->is_closed();
  }

  std::size_t capacity() const {
    std::size_t c = 0;
    for (const auto& s : slots_) {
      if (!s.dead && (connected(s) || s.awaiting)) ++c;
    }
    return c;
  }

  /// Spawn (or respawn) one worker process into slots_[si]. In pipe mode
  /// the wire exists immediately; in socket mode the slot waits for the
  /// worker to dial back (awaiting, bounded by the reconnect window).
  bool spawn_into(std::size_t si) {
    Slot& s = slots_[si];
    s = Slot{};
    const bool give_die =
        !first_spawn_done_ && opts_.first_worker_die_after >= 0;
    const bool give_depart =
        !first_spawn_done_ && opts_.first_worker_depart_after >= 0;

    int c2w[2] = {-1, -1};
    int w2c[2] = {-1, -1};
    if (!socket_mode_) {
      if (::pipe(c2w) != 0) return false;
      if (::pipe(w2c) != 0) {
        ::close(c2w[0]);
        ::close(c2w[1]);
        return false;
      }
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      if (!socket_mode_) {
        ::close(c2w[0]);
        ::close(c2w[1]);
        ::close(w2c[0]);
        ::close(w2c[1]);
      }
      return false;
    }
    if (pid == 0) {
      // Child. Drop every parent-side descriptor we inherited — our own
      // pipe's far ends (so EOF propagates), every sibling wire, and the
      // listener — so a sibling's death is visible to the coordinator as
      // EOF and nobody but the coordinator can accept().
      std::vector<int> parent_fds;
      if (listener_.fd() >= 0) parent_fds.push_back(listener_.fd());
      for (const auto& other : slots_) {
        if (other.chan) other.chan->append_fds(&parent_fds);
      }
      for (const auto& pc : pending_conns_) {
        pc.chan->append_fds(&parent_fds);
      }
      if (!socket_mode_) {
        parent_fds.push_back(c2w[1]);
        parent_fds.push_back(w2c[0]);
      }
      for (const int fd : parent_fds) ::close(fd);

      if (!opts_.worker_command.empty()) {
        std::vector<std::string> argv_s = opts_.worker_command;
        argv_s.push_back("--store");
        argv_s.push_back(opts_.store_path);
        argv_s.push_back("--store-backend");
        argv_s.push_back(opts_.backend);
        if (socket_mode_) {
          argv_s.push_back("--connect");
          argv_s.push_back(listen_addr_);
          argv_s.push_back("--connect-retries");
          argv_s.push_back(std::to_string(opts_.connect_retries));
        }
        if (!opts_.netfault.empty()) {
          argv_s.push_back("--netfault");
          argv_s.push_back(opts_.netfault);
        }
        if (give_die) {
          argv_s.push_back("--die-after");
          argv_s.push_back(std::to_string(opts_.first_worker_die_after));
        }
        if (give_depart) {
          argv_s.push_back("--depart-after");
          argv_s.push_back(std::to_string(opts_.first_worker_depart_after));
        }
        if (!socket_mode_) {
          ::dup2(c2w[0], STDIN_FILENO);
          ::dup2(w2c[1], STDOUT_FILENO);
          ::close(c2w[0]);
          ::close(w2c[1]);
        }
        std::vector<char*> argv;
        argv.reserve(argv_s.size() + 1);
        for (auto& a : argv_s) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
      }

      WorkerOptions wopts;
      wopts.store_path = opts_.store_path;
      wopts.backend = opts_.backend;
      wopts.netfault = opts_.netfault;
      if (give_die) wopts.die_after_cells = opts_.first_worker_die_after;
      if (give_depart) {
        wopts.depart_after_cells = opts_.first_worker_depart_after;
      }
      Status st;
      if (socket_mode_) {
        wopts.connect = listen_addr_;
        wopts.connect_retries = opts_.connect_retries;
        st = run_socket_worker(wopts);
      } else {
        std::FILE* fin = ::fdopen(c2w[0], "r");
        std::FILE* fout = ::fdopen(w2c[1], "w");
        if (fin == nullptr || fout == nullptr) ::_exit(127);
        st = run_worker(wopts, fin, fout);
      }
      ::_exit(st.is_ok() ? 0 : 70);
    }

    // Parent.
    s.pid = pid;
    s.proc_alive = true;
    ++report_.workers_spawned;
    first_spawn_done_ = true;
    if (socket_mode_) {
      s.awaiting = true;
      s.awaiting_deadline = Clock::now() + window_dur();
    } else {
      ::close(c2w[0]);
      ::close(w2c[1]);
      attach(s, make_fd_transport(w2c[0], c2w[1]));
    }
    return true;
  }

  /// Bind a live wire to a slot: (re)send the SPEC — rebuilding the grid
  /// is idempotent — and top the worker up with leases. A reconnect to a
  /// slot that somehow still holds a wire drops the old one first.
  void attach(Slot& s, std::unique_ptr<Transport> chan) {
    if (s.chan) {
      s.chan->close();
      s.chan.reset();
      reclaim_leases(s);
    }
    s.chan = std::move(chan);
    s.awaiting = false;
    s.suspended = false;
    const auto t = Clock::now();
    s.last_heard_ = t;
    s.last_ping_ = t;
    if (s.ever_connected) ++report_.reconnects;
    s.ever_connected = true;
    if (!s.chan->write_line(spec_line_)) return;  // EOF will surface it
    grant(s);
  }

  /// Top a worker up to kLeaseDepth outstanding leases.
  void grant(Slot& s) {
    while (connected(s) && !s.suspended &&
           s.outstanding.size() < kLeaseDepth) {
      // Skip queue entries a late duplicate already completed.
      while (!pending_.empty() && state_[pending_.front()] != kPending) {
        pending_.pop_front();
      }
      if (pending_.empty()) break;
      const std::uint64_t idx = pending_.front();
      pending_.pop_front();
      state_[idx] = kLeased;
      s.outstanding.push_back(idx);
      s.lease_sent[idx] = Clock::now();
      ++report_.leases_granted;
      Message lease;
      lease.type = MessageType::kLease;
      lease.index = idx;
      if (!s.chan->write_line(format_message(lease))) break;
    }
  }

  void refill_all() {
    for (auto& s : slots_) {
      if (connected(s)) grant(s);
    }
  }

  /// Put a slot's leases back at the FRONT of the queue in ascending
  /// order, so recovery recomputes the earliest missing cells first and
  /// the journal cursor unblocks soonest.
  void reclaim_leases(Slot& s) {
    std::sort(s.outstanding.begin(), s.outstanding.end());
    for (auto it = s.outstanding.rbegin(); it != s.outstanding.rend(); ++it) {
      if (state_[*it] == kLeased) {
        state_[*it] = kPending;
        pending_.push_front(*it);
        ++report_.reassignments;
      }
    }
    s.outstanding.clear();
    s.lease_sent.clear();
  }

  /// The wire died. Pipes cannot come back — that is a death. A socket
  /// worker whose process (or remote peer) may still be alive gets a
  /// reconnect window; its leases are reassigned NOW (someone else can
  /// run them; a duplicate result is discarded by cell state).
  void on_disconnect(Slot& s) {
    if (s.chan) {
      s.chan->close();
      s.chan.reset();
    }
    reclaim_leases(s);
    if (socket_mode_ && !s.dead && (s.proc_alive || s.external)) {
      s.awaiting = true;
      s.awaiting_deadline = Clock::now() + window_dur();
      s.suspended = false;
      return;
    }
    finalize_death(s, Departure::kUnexpected);
  }

  void finalize_death(Slot& s, Departure kind) {
    if (s.dead) return;
    if (s.chan) {
      s.chan->close();
      s.chan.reset();
    }
    reclaim_leases(s);
    if (s.proc_alive) {
      if (kind == Departure::kUnexpected) ::kill(s.pid, SIGKILL);
      int st = 0;
      ::waitpid(s.pid, &st, 0);
      s.proc_alive = false;
    }
    s.awaiting = false;
    s.suspended = false;
    s.dead = true;
    if (kind == Departure::kUnexpected) {
      ++report_.workers_died;
    } else {
      ++report_.workers_departed;
    }
  }

  /// Nonblocking reap. A reaped process that was awaiting a reconnect is
  /// done for good; one with a live wire drains to EOF first (its last
  /// bytes may still sit in the socket).
  void reap_children() {
    for (auto& s : slots_) {
      if (!s.proc_alive) continue;
      int st = 0;
      if (::waitpid(s.pid, &st, WNOHANG) != s.pid) continue;
      s.proc_alive = false;
      if (!connected(s) && !s.dead) finalize_death(s, Departure::kUnexpected);
    }
  }

  // ---- protocol --------------------------------------------------------

  void advance_journal() {
    while (next_journal_ < n_ && state_[next_journal_] == kDone) {
      const ShardCellOutcome& out = report_.cells[next_journal_];
      if (!out.from_journal && out.status.is_ok() &&
          opts_.journal != nullptr) {
        // A checkpoint write failure does not invalidate the computed
        // cell; it only costs re-execution on a future resume.
        (void)opts_.journal->record(keys_[next_journal_], out.replications);
      }
      ++next_journal_;
    }
  }

  /// Chaos: SIGKILL a worker that is mid-lease. Death is then observed via
  /// the normal EOF/reap path — the coordinator takes no shortcut, which
  /// is the point of the drill.
  void maybe_chaos_kill() {
    if (opts_.chaos_kill_after < 0 || report_.workers_killed > 0) return;
    if (results_received_ <
        static_cast<std::uint64_t>(opts_.chaos_kill_after)) {
      return;
    }
    for (auto& s : slots_) {
      if (connected(s) && s.proc_alive && !s.outstanding.empty()) {
        ::kill(s.pid, SIGKILL);
        ++report_.workers_killed;
        return;
      }
    }
  }

  /// One message from a bound worker. Returns false when the slot was
  /// finalized (departed or killed) — the caller must drop its remaining
  /// drained lines.
  bool handle_message(Slot& s, const Message& msg) {
    s.last_heard_ = Clock::now();
    s.suspended = false;  // it speaks; grants may resume

    switch (msg.type) {
      case MessageType::kHello:
        if (!s.hello_counted) {
          report_.worker_cache_builds += msg.cache_builds;
          report_.worker_cache_maps += msg.cache_maps;
          s.hello_counted = true;
        }
        grant(s);
        return true;
      case MessageType::kPong:
        // The PONG may be what lifts a post-expiry suspension: top the
        // worker back up or it idles forever with work still pending.
        grant(s);
        return true;
      case MessageType::kBye:
        // A clean departure (SIGTERM, depart-after drill): not a death.
        finalize_death(s, Departure::kClean);
        return false;
      case MessageType::kResult:
      case MessageType::kFail:
        break;
      default:
        return true;  // coordinator verbs echoed back: ignore
    }

    const std::uint64_t idx = msg.index;
    if (idx >= n_) {
      finalize_death(s, Departure::kUnexpected);  // garbage index: killed
      return false;
    }
    // Clear the sender's bookkeeping BEFORE the duplicate check, so a
    // duplicate (reconnect replay, reclaimed lease finishing twice) can
    // never pin a stale entry in `outstanding` and starve the worker.
    const auto sent = s.lease_sent.find(idx);
    if (obs::enabled() && sent != s.lease_sent.end()) {
      static obs::HistogramMetric& lease_hist = obs::registry().histogram(
          "netsample_shard_lease_seconds", obs::duration_bin_edges(),
          obs::Determinism::kNondeterministic);
      lease_hist.observe(
          std::chrono::duration<double>(Clock::now() - sent->second).count());
    }
    if (sent != s.lease_sent.end()) s.lease_sent.erase(sent);
    s.outstanding.erase(
        std::remove(s.outstanding.begin(), s.outstanding.end(), idx),
        s.outstanding.end());
    if (state_[idx] == kDone) {
      grant(s);
      return true;  // duplicate: discarded, never re-committed
    }

    ShardCellOutcome& out = report_.cells[idx];
    if (msg.type == MessageType::kResult) {
      std::vector<core::DisparityMetrics> reps;
      if (!exper::decode_replications(msg.text, &reps)) {
        // Torn or corrupt payload: the worker is dead to us and the cell
        // is recomputed elsewhere — a partial row must never be accepted,
        // let alone journaled.
        state_[idx] = kPending;
        pending_.push_front(idx);
        ++report_.reassignments;
        finalize_death(s, Departure::kUnexpected);
        return false;
      }
      out.status = Status::ok();
      out.replications = std::move(reps);
    } else {
      out.status = Status(msg.code, msg.text);
    }
    state_[idx] = kDone;
    ++done_count_;
    ++results_received_;
    // Another slot may hold a lease on this cell (it was reassigned and
    // the original still delivered). Drop those now; their late RESULT
    // will be discarded as a duplicate.
    for (auto& other : slots_) {
      if (&other == &s) continue;
      other.lease_sent.erase(idx);
      other.outstanding.erase(
          std::remove(other.outstanding.begin(), other.outstanding.end(),
                      idx),
          other.outstanding.end());
    }
    advance_journal();
    maybe_chaos_kill();
    grant(s);
    return true;
  }

  /// Drained lines from a bound slot: strict-parse each; garbage means the
  /// worker is treated as dead, exactly as a kill.
  void handle_slot_lines(Slot& s, const std::vector<std::string>& lines) {
    for (const auto& line : lines) {
      if (s.dead) return;
      if (line.empty()) continue;
      Message msg;
      if (!parse_message(line, &msg)) {
        finalize_death(s, Departure::kUnexpected);
        return;
      }
      if (!handle_message(s, msg)) return;
    }
  }

  /// First line on an accepted socket must be HELLO; the pid is the
  /// worker's identity and binds the wire to its slot (reconnect) or to a
  /// fresh external slot. Remaining drained lines (a replay burst rides
  /// the same packet) are fed to the bound slot.
  void bind_pending(std::unique_ptr<Transport> chan,
                    std::vector<std::string> lines) {
    if (lines.empty()) return;  // nothing to bind with; conn stays pending
    Message hello;
    if (!parse_message(lines.front(), &hello) ||
        hello.type != MessageType::kHello) {
      chan->close();
      return;  // not a worker; drop the connection
    }
    Slot* target = nullptr;
    for (auto& s : slots_) {
      if (!s.dead && s.pid == static_cast<pid_t>(hello.pid)) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      slots_.push_back(Slot{});
      target = &slots_.back();
      target->pid = static_cast<pid_t>(hello.pid);
      target->external = true;
    }
    attach(*target, std::move(chan));
    handle_message(*target, hello);
    lines.erase(lines.begin());
    handle_slot_lines(*target, lines);
  }

  // ---- timers ----------------------------------------------------------

  Clock::duration window_dur() const { return secs(window_); }

  /// Fire every due timer (heartbeats, liveness, lease expiry, probation,
  /// reconnect windows, handshake deadlines) and return the poll timeout
  /// in ms until the next one (-1 = none pending).
  int fire_timers() {
    const auto t = Clock::now();
    std::optional<Clock::time_point> next;
    const auto consider = [&](Clock::time_point d) {
      if (!next.has_value() || d < *next) next = d;
    };
    bool refill = false;

    for (auto& s : slots_) {
      if (s.dead) continue;
      if (s.awaiting) {
        if (t >= s.awaiting_deadline) {
          finalize_death(s, Departure::kUnexpected);
        } else {
          consider(s.awaiting_deadline);
        }
        continue;
      }
      if (!connected(s)) continue;

      if (hb_ > 0) {
        auto next_ping = s.last_ping_ + secs(hb_);
        if (t >= next_ping) {
          Message ping;
          ping.type = MessageType::kPing;
          ping.index = ping_seq_++;
          s.last_ping_ = t;
          ++report_.pings_sent;
          if (!s.chan->write_line(format_message(ping))) {
            on_disconnect(s);
            continue;
          }
          next_ping = t + secs(hb_);
        }
        consider(next_ping);
        if (s.outstanding.empty()) {
          // Idle liveness: a worker with nothing to compute answers PINGs
          // from its blocking read; 4 periods of silence is a half-open
          // wire. Busy workers are governed by the lease timeout instead.
          const auto deadline = s.last_heard_ + secs(4.0 * hb_);
          if (t >= deadline) {
            on_disconnect(s);
            continue;
          }
          consider(deadline);
        }
      }

      if (lt_ > 0) {
        std::vector<std::uint64_t> expired;
        for (const auto& [idx, sent] : s.lease_sent) {
          if (state_[idx] == kLeased && t >= sent + secs(lt_)) {
            expired.push_back(idx);
          }
        }
        if (!expired.empty()) {
          std::sort(expired.begin(), expired.end());
          for (auto it = expired.rbegin(); it != expired.rend(); ++it) {
            state_[*it] = kPending;
            pending_.push_front(*it);
            ++report_.reassignments;
            ++report_.leases_expired;
            s.lease_sent.erase(*it);
            s.outstanding.erase(std::remove(s.outstanding.begin(),
                                            s.outstanding.end(), *it),
                                s.outstanding.end());
          }
          // Stalled-but-connected: reclaimed, suspended from new grants,
          // and on a probation clock — still silent one timeout later
          // means the worker is hopeless, not slow.
          s.suspended = true;
          s.probation_deadline = t + secs(lt_);
          refill = true;
        }
        for (const auto& [idx, sent] : s.lease_sent) {
          (void)idx;
          consider(sent + secs(lt_));
        }
        if (s.suspended) {
          if (t >= s.probation_deadline) {
            finalize_death(s, Departure::kUnexpected);
            continue;
          }
          consider(s.probation_deadline);
        }
      }
    }

    for (auto it = pending_conns_.begin(); it != pending_conns_.end();) {
      if (t >= it->deadline) {
        it->chan->close();
        it = pending_conns_.erase(it);
      } else {
        consider(it->deadline);
        ++it;
      }
    }

    if (refill) refill_all();
    if (!next.has_value()) return -1;
    const double ms =
        std::chrono::duration<double, std::milli>(*next - t).count();
    if (ms <= 0) return 0;
    return static_cast<int>(std::min(ms + 1.0, 60000.0));
  }

  // ---- shutdown --------------------------------------------------------

  /// Orderly shutdown: STOP every connected worker, keep accepting and
  /// STOPping redialing stragglers, drain BYEs to EOF, reap everything —
  /// with a hard deadline after which survivors are SIGKILL'd.
  void shutdown_workers() {
    Message stop;
    stop.type = MessageType::kStop;
    const std::string stop_line = format_message(stop);

    for (auto& s : slots_) {
      s.awaiting = false;
      if (connected(s)) {
        (void)s.chan->write_line(stop_line);
        s.chan->shutdown_write();
      }
    }
    for (auto& pc : pending_conns_) {
      (void)pc.chan->write_line(stop_line);
      pc.chan->shutdown_write();
    }

    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < deadline) {
      for (auto& s : slots_) {
        if (!s.proc_alive) continue;
        int st = 0;
        if (::waitpid(s.pid, &st, WNOHANG) == s.pid) s.proc_alive = false;
      }
      bool any_proc = false;
      for (const auto& s : slots_) any_proc = any_proc || s.proc_alive;
      if (!any_proc) break;

      std::vector<pollfd> fds;
      std::vector<int> kinds;  // 0 = listener, 1 = pending, 2 = slot
      std::vector<std::size_t> refs;
      if (socket_mode_ && listener_.fd() >= 0) {
        fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
        kinds.push_back(0);
        refs.push_back(0);
      }
      for (std::size_t i = 0; i < pending_conns_.size(); ++i) {
        fds.push_back(pollfd{pending_conns_[i].chan->poll_fd(), POLLIN, 0});
        kinds.push_back(1);
        refs.push_back(i);
      }
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (connected(slots_[i])) {
          fds.push_back(pollfd{slots_[i].chan->poll_fd(), POLLIN, 0});
          kinds.push_back(2);
          refs.push_back(i);
        }
      }
      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
      if (rc < 0 && errno != EINTR) break;

      std::vector<std::size_t> dead_pending;
      for (std::size_t f = 0; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        if (kinds[f] == 0) {
          // A straggler mid-redial: greet it with STOP so it exits.
          while (auto conn = listener_.accept_connection()) {
            (void)conn->write_line(stop_line);
            conn->shutdown_write();
            pending_conns_.push_back(PendingConn{
                std::move(conn), Clock::now() + std::chrono::seconds(2)});
          }
        } else if (kinds[f] == 1) {
          std::vector<std::string> lines;
          if (pending_conns_[refs[f]].chan->drain(&lines) ==
              ReadResult::kClosed) {
            dead_pending.push_back(refs[f]);
          }
        } else {
          Slot& s = slots_[refs[f]];
          std::vector<std::string> lines;
          if (s.chan->drain(&lines) == ReadResult::kClosed) {
            s.chan->close();
            s.chan.reset();
          }
        }
      }
      std::sort(dead_pending.rbegin(), dead_pending.rend());
      for (const std::size_t i : dead_pending) {
        pending_conns_.erase(pending_conns_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      }
    }

    for (auto& s : slots_) {
      if (s.proc_alive) {
        ::kill(s.pid, SIGKILL);
        int st = 0;
        ::waitpid(s.pid, &st, 0);
        s.proc_alive = false;
      }
      if (s.chan) {
        s.chan->close();
        s.chan.reset();
      }
    }
    for (auto& pc : pending_conns_) pc.chan->close();
    pending_conns_.clear();
    listener_.close();
  }

  // ---- members ---------------------------------------------------------

  const SweepSpec& spec_;
  const CoordinatorOptions& opts_;
  const bool socket_mode_;
  const double hb_;
  const double lt_;
  const double window_;

  std::size_t n_{0};
  std::vector<std::string> keys_;
  std::vector<CellState> state_;
  std::deque<std::uint64_t> pending_;
  std::size_t done_count_{0};
  std::size_t next_journal_{0};
  ShardReport report_;
  std::string spec_line_;
  std::string listen_addr_;
  Listener listener_;
  std::vector<Slot> slots_;
  std::vector<PendingConn> pending_conns_;
  int respawns_left_{0};
  bool first_spawn_done_{false};
  std::uint64_t results_received_{0};
  std::uint64_t ping_seq_{0};
};

StatusOr<ShardReport> Coordinator::run() {
  if (opts_.workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "coordinator: --workers must be >= 1");
  }
  // A worker death between our poll() and our write() must surface as
  // EPIPE, not kill the coordinator.
  std::signal(SIGPIPE, SIG_IGN);

  // Opening the store here both validates it before any process is spawned
  // and provides the grid geometry (keys embed the interval length).
  StoreBackend& backend = store_backend(opts_.backend);
  auto opened = TraceStore::open(opts_.store_path, backend);
  if (!opened.has_value()) return opened.status();
  const TraceStore store = std::move(*opened);

  const std::vector<exper::GridTask> grid = build_grid(
      spec_, store.view(), store.mean_interarrival_usec(), &store.cache());
  n_ = grid.size();
  keys_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    keys_[i] = grid_journal_key(grid[i], spec_.base_seed);
  }

  report_.cells.resize(n_);
  state_.assign(n_, kPending);

  // Journal replay, exactly as ParallelRunner::run: already-committed cells
  // never reach a worker.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::vector<core::DisparityMetrics>* reps =
        opts_.journal != nullptr ? opts_.journal->find(keys_[i]) : nullptr;
    if (reps != nullptr) {
      report_.cells[i].status = Status::ok();
      report_.cells[i].replications = *reps;
      report_.cells[i].from_journal = true;
      state_[i] = kDone;
      ++done_count_;
    } else {
      pending_.push_back(i);
    }
  }

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& cells_total =
        reg.counter("netsample_shard_cells_total");
    static obs::Counter& replayed =
        reg.counter("netsample_shard_cells_from_journal_total");
    cells_total.add(n_);
    replayed.add(done_count_);
  }

  advance_journal();
  if (done_count_ == n_) return std::move(report_);  // served from journal

  Message spec_msg;
  spec_msg.type = MessageType::kSpec;
  spec_msg.text = encode_sweep_spec(spec_);
  spec_line_ = format_message(spec_msg);

  if (socket_mode_) {
    auto listener = Listener::open(opts_.listen);
    if (!listener.has_value()) return listener.status();
    listener_ = std::move(*listener);
    listen_addr_ = listener_.address();
  }

  slots_.resize(static_cast<std::size_t>(opts_.workers));
  respawns_left_ = opts_.max_respawns;
  for (std::size_t si = 0; si < slots_.size(); ++si) {
    if (!spawn_into(si)) {
      return Status(StatusCode::kInternal,
                    std::string("coordinator: cannot spawn worker: ") +
                        std::strerror(errno));
    }
  }
  refill_all();

  // Event loop: results, failures, deaths, reconnects, timers.
  while (done_count_ < n_) {
    reap_children();
    const int timeout_ms = fire_timers();

    // If pending work has nowhere to run, respawn or give up.
    while (!pending_.empty() &&
           capacity() < static_cast<std::size_t>(opts_.workers) &&
           respawns_left_ > 0) {
      --respawns_left_;
      bool spawned = false;
      for (std::size_t si = 0;
           si < std::min(slots_.size(),
                         static_cast<std::size_t>(opts_.workers));
           ++si) {
        if (slots_[si].dead) {
          spawned = spawn_into(si);
          break;
        }
      }
      if (!spawned) break;
      refill_all();
    }
    if (capacity() == 0 && pending_conns_.empty() && done_count_ < n_) {
      // No workers and no way to make more: quarantine what's left.
      for (std::size_t i = 0; i < n_; ++i) {
        if (state_[i] != kDone) {
          report_.cells[i].status =
              Status(StatusCode::kInternal,
                     "coordinator: no live workers (respawn budget spent)");
          state_[i] = kDone;
          ++done_count_;
        }
      }
      break;
    }
    if (done_count_ == n_) break;

    std::vector<pollfd> fds;
    std::vector<int> kinds;  // 0 = listener, 1 = pending conn, 2 = slot
    std::vector<std::size_t> refs;
    if (socket_mode_ && listener_.fd() >= 0) {
      fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      kinds.push_back(0);
      refs.push_back(0);
    }
    for (std::size_t i = 0; i < pending_conns_.size(); ++i) {
      fds.push_back(pollfd{pending_conns_[i].chan->poll_fd(), POLLIN, 0});
      kinds.push_back(1);
      refs.push_back(i);
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (connected(slots_[i])) {
        fds.push_back(pollfd{slots_[i].chan->poll_fd(), POLLIN, 0});
        kinds.push_back(2);
        refs.push_back(i);
      }
    }
    if (fds.empty() && timeout_ms < 0) continue;  // state changed above

    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    std::string("coordinator: poll: ") + std::strerror(errno));
    }

    std::vector<std::size_t> closed_pending;
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      if (kinds[f] == 0) {
        while (auto conn = listener_.accept_connection()) {
          pending_conns_.push_back(
              PendingConn{std::move(conn), Clock::now() + window_dur()});
        }
        continue;
      }
      if (kinds[f] == 1) {
        PendingConn& pc = pending_conns_[refs[f]];
        std::vector<std::string> lines;
        const ReadResult r = pc.chan->drain(&lines);
        if (!lines.empty()) {
          bind_pending(std::move(pc.chan), std::move(lines));
          closed_pending.push_back(refs[f]);
        } else if (r == ReadResult::kClosed) {
          pc.chan->close();
          closed_pending.push_back(refs[f]);
        }
        continue;
      }
      Slot& s = slots_[refs[f]];
      if (!connected(s)) continue;
      std::vector<std::string> lines;
      const ReadResult r = s.chan->drain(&lines);
      handle_slot_lines(s, lines);
      if (r == ReadResult::kClosed && !s.dead) on_disconnect(s);
    }
    std::sort(closed_pending.rbegin(), closed_pending.rend());
    for (const std::size_t i : closed_pending) {
      pending_conns_.erase(pending_conns_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
  }

  shutdown_workers();

  if (obs::enabled()) {
    auto& reg = obs::registry();
    using obs::Determinism;
    static obs::Counter& leases = reg.counter(
        "netsample_shard_leases_total", Determinism::kNondeterministic);
    static obs::Counter& reassigned = reg.counter(
        "netsample_shard_reassignments_total", Determinism::kNondeterministic);
    static obs::Counter& spawned = reg.counter(
        "netsample_shard_workers_spawned_total",
        Determinism::kNondeterministic);
    static obs::Counter& died = reg.counter(
        "netsample_shard_workers_died_total", Determinism::kNondeterministic);
    static obs::Counter& departed = reg.counter(
        "netsample_shard_workers_departed_total",
        Determinism::kNondeterministic);
    static obs::Counter& expired = reg.counter(
        "netsample_shard_leases_expired_total",
        Determinism::kNondeterministic);
    static obs::Counter& reconnects = reg.counter(
        "netsample_shard_reconnects_total", Determinism::kNondeterministic);
    static obs::Counter& pings = reg.counter(
        "netsample_shard_pings_total", Determinism::kNondeterministic);
    static obs::Gauge& builds = reg.gauge(
        "netsample_shard_worker_cache_builds", Determinism::kNondeterministic);
    leases.add(report_.leases_granted);
    reassigned.add(report_.reassignments);
    spawned.add(report_.workers_spawned);
    died.add(report_.workers_died);
    departed.add(report_.workers_departed);
    expired.add(report_.leases_expired);
    reconnects.add(report_.reconnects);
    pings.add(report_.pings_sent);
    builds.set(static_cast<double>(report_.worker_cache_builds));
  }
  return std::move(report_);
}

}  // namespace

StatusOr<ShardReport> run_sharded_sweep(const SweepSpec& spec,
                                        const CoordinatorOptions& opts) {
  Coordinator coordinator(spec, opts);
  return coordinator.run();
}

}  // namespace netsample::shard
