#include "shard/coordinator.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "shard/protocol.h"
#include "shard/store.h"
#include "shard/worker.h"

namespace netsample::shard {

std::size_t ShardReport::ok_count() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.status.is_ok()) ++n;
  }
  return n;
}

std::size_t ShardReport::from_journal_count() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.from_journal) ++n;
  }
  return n;
}

bool ShardReport::all_ok() const { return ok_count() == cells.size(); }

Status ShardReport::first_failure() const {
  for (const auto& c : cells) {
    if (!c.status.is_ok()) return c.status;
  }
  return Status::ok();
}

namespace {

using Clock = std::chrono::steady_clock;

// How many leases a worker holds at once. Depth 2 hides the lease round
// trip: the next cell is already queued on the pipe while the current one
// computes. Results stay deterministic at any depth (seeds are positional).
constexpr std::size_t kLeaseDepth = 2;

enum CellState : unsigned char { kPending = 0, kLeased, kDone };

struct WorkerProc {
  pid_t pid{-1};
  int to{-1};    // coordinator -> worker (their stdin in exec mode)
  int from{-1};  // worker -> coordinator
  bool alive{false};
  std::string buf;  // partial-line accumulation
  std::vector<std::uint64_t> outstanding;
  std::map<std::uint64_t, Clock::time_point> lease_sent;
  std::uint64_t results{0};
};

bool write_all_fd(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Owns the worker processes; whatever is still alive at destruction gets
/// SIGKILL'd and reaped, so no abort path leaks children.
struct WorkerSet {
  std::vector<WorkerProc> procs;

  ~WorkerSet() {
    for (auto& w : procs) {
      if (!w.alive) continue;
      close_fd(w.to);
      close_fd(w.from);
      ::kill(w.pid, SIGKILL);
      int st = 0;
      ::waitpid(w.pid, &st, 0);
      w.alive = false;
    }
  }
};

}  // namespace

StatusOr<ShardReport> run_sharded_sweep(const SweepSpec& spec,
                                        const CoordinatorOptions& opts) {
  if (opts.workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "coordinator: --workers must be >= 1");
  }
  // A worker death between our poll() and our write() must surface as
  // EPIPE, not kill the coordinator.
  std::signal(SIGPIPE, SIG_IGN);

  // Opening the store here both validates it before any process is spawned
  // and provides the grid geometry (keys embed the interval length).
  StoreBackend& backend = store_backend(opts.backend);
  auto opened = TraceStore::open(opts.store_path, backend);
  if (!opened.has_value()) return opened.status();
  const TraceStore store = std::move(*opened);

  const std::vector<exper::GridTask> grid = build_grid(
      spec, store.view(), store.mean_interarrival_usec(), &store.cache());
  const std::size_t n = grid.size();
  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = grid_journal_key(grid[i], spec.base_seed);
  }

  ShardReport report;
  report.cells.resize(n);
  std::vector<CellState> state(n, kPending);
  std::deque<std::uint64_t> pending;
  std::size_t done_count = 0;

  // Journal replay, exactly as ParallelRunner::run: already-committed cells
  // never reach a worker.
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<core::DisparityMetrics>* reps =
        opts.journal != nullptr ? opts.journal->find(keys[i]) : nullptr;
    if (reps != nullptr) {
      report.cells[i].status = Status::ok();
      report.cells[i].replications = *reps;
      report.cells[i].from_journal = true;
      state[i] = kDone;
      ++done_count;
    } else {
      pending.push_back(i);
    }
  }

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& cells_total =
        reg.counter("netsample_shard_cells_total");
    static obs::Counter& replayed =
        reg.counter("netsample_shard_cells_from_journal_total");
    cells_total.add(n);
    replayed.add(done_count);
  }

  // Task-order journal commit cursor (the exactly-once point). Cells are
  // recorded strictly in task order no matter what order RESULTs arrive,
  // so the journal file is byte-identical to the threaded single-process
  // run's. Replayed cells are skipped (they are already on disk).
  std::size_t next_journal = 0;
  const auto advance_journal = [&] {
    while (next_journal < n && state[next_journal] == kDone) {
      const ShardCellOutcome& out = report.cells[next_journal];
      if (!out.from_journal && out.status.is_ok() && opts.journal != nullptr) {
        // A checkpoint write failure does not invalidate the computed cell;
        // it only costs re-execution on a future resume.
        (void)opts.journal->record(keys[next_journal], out.replications);
      }
      ++next_journal;
    }
  };
  advance_journal();
  if (done_count == n) return report;  // fully served from the journal

  Message spec_msg;
  spec_msg.type = MessageType::kSpec;
  spec_msg.text = encode_sweep_spec(spec);
  const std::string spec_wire = format_message(spec_msg) + "\n";

  WorkerSet set;
  set.procs.resize(static_cast<std::size_t>(opts.workers));
  int respawns_left = opts.max_respawns;
  bool first_spawn_done = false;

  // Spawn (or respawn) one worker into `slot` and send it the SPEC.
  const auto spawn = [&](std::size_t slot) -> bool {
    int c2w[2] = {-1, -1};
    int w2c[2] = {-1, -1};
    if (::pipe(c2w) != 0) return false;
    if (::pipe(w2c) != 0) {
      ::close(c2w[0]);
      ::close(c2w[1]);
      return false;
    }
    const bool give_die_after =
        !first_spawn_done && opts.first_worker_die_after >= 0;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(c2w[0]);
      ::close(c2w[1]);
      ::close(w2c[0]);
      ::close(w2c[1]);
      return false;
    }
    if (pid == 0) {
      // Child. Drop every parent-side descriptor we inherited — our own
      // pipe's far ends (so EOF propagates) and every sibling's (so a
      // sibling's death is visible to the coordinator as EOF).
      ::close(c2w[1]);
      ::close(w2c[0]);
      for (const auto& other : set.procs) {
        if (other.to >= 0) ::close(other.to);
        if (other.from >= 0) ::close(other.from);
      }
      if (!opts.worker_command.empty()) {
        ::dup2(c2w[0], STDIN_FILENO);
        ::dup2(w2c[1], STDOUT_FILENO);
        ::close(c2w[0]);
        ::close(w2c[1]);
        std::vector<std::string> argv_s = opts.worker_command;
        argv_s.push_back("--store");
        argv_s.push_back(opts.store_path);
        argv_s.push_back("--store-backend");
        argv_s.push_back(opts.backend);
        std::vector<char*> argv;
        argv.reserve(argv_s.size() + 1);
        for (auto& a : argv_s) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
      }
      WorkerOptions wopts;
      wopts.store_path = opts.store_path;
      wopts.backend = opts.backend;
      if (give_die_after) wopts.die_after_cells = opts.first_worker_die_after;
      std::FILE* fin = ::fdopen(c2w[0], "r");
      std::FILE* fout = ::fdopen(w2c[1], "w");
      if (fin == nullptr || fout == nullptr) ::_exit(127);
      const Status st = run_worker(wopts, fin, fout);
      ::_exit(st.is_ok() ? 0 : 70);
    }
    // Parent.
    ::close(c2w[0]);
    ::close(w2c[1]);
    WorkerProc& w = set.procs[slot];
    w = WorkerProc{};
    w.pid = pid;
    w.to = c2w[1];
    w.from = w2c[0];
    w.alive = true;
    ++report.workers_spawned;
    first_spawn_done = true;
    (void)write_all_fd(w.to, spec_wire);
    return true;
  };

  const auto live_count = [&] {
    std::size_t c = 0;
    for (const auto& w : set.procs) {
      if (w.alive) ++c;
    }
    return c;
  };

  // Top a worker up to kLeaseDepth outstanding leases.
  const auto grant = [&](WorkerProc& w) {
    while (w.alive && !pending.empty() && w.outstanding.size() < kLeaseDepth) {
      const std::uint64_t idx = pending.front();
      pending.pop_front();
      state[idx] = kLeased;
      w.outstanding.push_back(idx);
      w.lease_sent[idx] = Clock::now();
      ++report.leases_granted;
      Message lease;
      lease.type = MessageType::kLease;
      lease.index = idx;
      (void)write_all_fd(w.to, format_message(lease) + "\n");
    }
  };
  const auto refill_all = [&] {
    for (auto& w : set.procs) {
      if (w.alive) grant(w);
    }
  };

  // A worker is gone (EOF / kill observed). Reap it and put its leases back
  // at the FRONT of the queue in ascending order, so recovery recomputes
  // the earliest missing cells first and the journal cursor unblocks soonest.
  const auto handle_death = [&](WorkerProc& w, bool expected) {
    close_fd(w.to);
    close_fd(w.from);
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    w.alive = false;
    if (!expected) ++report.workers_died;
    std::sort(w.outstanding.begin(), w.outstanding.end());
    for (auto it = w.outstanding.rbegin(); it != w.outstanding.rend(); ++it) {
      state[*it] = kPending;
      pending.push_front(*it);
      ++report.reassignments;
    }
    w.outstanding.clear();
    w.lease_sent.clear();
  };

  // Chaos: SIGKILL a worker that is mid-lease. Death is then observed via
  // the normal EOF path — the coordinator takes no shortcut, which is the
  // point of the test.
  const auto maybe_chaos_kill = [&](std::uint64_t results_received) {
    if (opts.chaos_kill_after < 0 || report.workers_killed > 0) return;
    if (results_received <
        static_cast<std::uint64_t>(opts.chaos_kill_after)) {
      return;
    }
    for (auto& w : set.procs) {
      if (w.alive && !w.outstanding.empty()) {
        ::kill(w.pid, SIGKILL);
        ++report.workers_killed;
        return;
      }
    }
  };

  for (std::size_t slot = 0; slot < set.procs.size(); ++slot) {
    if (!spawn(slot)) {
      return Status(StatusCode::kInternal,
                    std::string("coordinator: cannot spawn worker: ") +
                        std::strerror(errno));
    }
  }
  refill_all();

  std::uint64_t results_received = 0;

  // Event loop: results, failures, deaths.
  while (done_count < n) {
    if (pending.size() + /*leased*/ 0 > 0 || true) {
      // If everything still pending has nowhere to run, respawn or give up.
      while (!pending.empty() && live_count() < set.procs.size() &&
             respawns_left > 0) {
        --respawns_left;
        for (std::size_t slot = 0; slot < set.procs.size(); ++slot) {
          if (!set.procs[slot].alive) {
            (void)spawn(slot);
            break;
          }
        }
        refill_all();
      }
      if (live_count() == 0) {
        // No workers and no way to make more: quarantine what's left.
        for (std::size_t i = 0; i < n; ++i) {
          if (state[i] != kDone) {
            report.cells[i].status =
                Status(StatusCode::kInternal,
                       "coordinator: no live workers (respawn budget spent)");
            state[i] = kDone;
            ++done_count;
          }
        }
        break;
      }
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t slot = 0; slot < set.procs.size(); ++slot) {
      if (set.procs[slot].alive) {
        fds.push_back(pollfd{set.procs[slot].from, POLLIN, 0});
        fd_slot.push_back(slot);
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    std::string("coordinator: poll: ") + std::strerror(errno));
    }

    for (std::size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      WorkerProc& w = set.procs[fd_slot[f]];
      if (!w.alive) continue;
      char chunk[65536];
      const ssize_t got = ::read(w.from, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        handle_death(w, /*expected=*/false);
        continue;
      }
      if (got == 0) {
        handle_death(w, /*expected=*/false);
        continue;
      }
      w.buf.append(chunk, static_cast<std::size_t>(got));

      std::size_t nl = 0;
      while ((nl = w.buf.find('\n')) != std::string::npos) {
        const std::string line = w.buf.substr(0, nl);
        w.buf.erase(0, nl + 1);
        Message msg;
        if (!parse_message(line, &msg)) {
          // A worker emitting garbage is as dead to us as a killed one.
          ::kill(w.pid, SIGKILL);
          handle_death(w, /*expected=*/false);
          break;
        }
        if (msg.type == MessageType::kHello) {
          report.worker_cache_builds += msg.cache_builds;
          report.worker_cache_maps += msg.cache_maps;
          continue;
        }
        if (msg.type != MessageType::kResult &&
            msg.type != MessageType::kFail) {
          continue;  // BYE outside shutdown: ignore
        }
        const std::uint64_t idx = msg.index;
        if (idx >= n || state[idx] == kDone) continue;  // stale/duplicate
        const auto sent = w.lease_sent.find(idx);
        if (obs::enabled() && sent != w.lease_sent.end()) {
          static obs::HistogramMetric& lease_hist = obs::registry().histogram(
              "netsample_shard_lease_seconds", obs::duration_bin_edges(),
              obs::Determinism::kNondeterministic);
          lease_hist.observe(
              std::chrono::duration<double>(Clock::now() - sent->second)
                  .count());
        }
        if (sent != w.lease_sent.end()) w.lease_sent.erase(sent);
        w.outstanding.erase(
            std::remove(w.outstanding.begin(), w.outstanding.end(), idx),
            w.outstanding.end());

        ShardCellOutcome& out = report.cells[idx];
        if (msg.type == MessageType::kResult) {
          std::vector<core::DisparityMetrics> reps;
          if (exper::decode_replications(msg.text, &reps)) {
            out.status = Status::ok();
            out.replications = std::move(reps);
          } else {
            out.status = Status(StatusCode::kInternal,
                                "coordinator: undecodable result payload");
          }
          ++w.results;
        } else {
          out.status = Status(msg.code, msg.text);
        }
        state[idx] = kDone;
        ++done_count;
        ++results_received;
        advance_journal();
        maybe_chaos_kill(results_received);
        grant(w);
      }
    }
  }

  // Orderly shutdown: STOP everyone, drain BYEs, reap.
  for (auto& w : set.procs) {
    if (!w.alive) continue;
    Message stop;
    stop.type = MessageType::kStop;
    (void)write_all_fd(w.to, format_message(stop) + "\n");
    close_fd(w.to);  // EOF backs the STOP up
  }
  for (auto& w : set.procs) {
    if (!w.alive) continue;
    char chunk[4096];
    while (true) {
      const ssize_t got = ::read(w.from, chunk, sizeof chunk);
      if (got > 0) continue;  // BYE and stragglers; content irrelevant now
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    close_fd(w.from);
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    w.alive = false;
  }

  if (obs::enabled()) {
    auto& reg = obs::registry();
    using obs::Determinism;
    static obs::Counter& leases = reg.counter(
        "netsample_shard_leases_total", Determinism::kNondeterministic);
    static obs::Counter& reassigned = reg.counter(
        "netsample_shard_reassignments_total", Determinism::kNondeterministic);
    static obs::Counter& spawned = reg.counter(
        "netsample_shard_workers_spawned_total",
        Determinism::kNondeterministic);
    static obs::Counter& died = reg.counter(
        "netsample_shard_workers_died_total", Determinism::kNondeterministic);
    static obs::Gauge& builds = reg.gauge(
        "netsample_shard_worker_cache_builds", Determinism::kNondeterministic);
    leases.add(report.leases_granted);
    reassigned.add(report.reassignments);
    spawned.add(report.workers_spawned);
    died.add(report.workers_died);
    builds.set(static_cast<double>(report.worker_cache_builds));
  }
  return report;
}

}  // namespace netsample::shard
