// Checkpoint journal for interruptible sweeps (crash / kill recovery).
//
// An append-only JSONL file: one line per completed experiment cell, keyed
// by the cell's *logical coordinates* (method, target, granularity, interval
// index, interval size, replications, derived seed) and carrying the cell's
// full metric vector. Because cell seeds derive from those coordinates and
// never from scheduling, a sweep resumed from a journal reproduces the
// uninterrupted run bit-for-bit: journaled cells are replayed from disk,
// missing cells are recomputed, and both yield the same phi.
//
// Durability: every record() is flushed and fsync()'d, so at most the line
// being written when the process dies is lost. A torn trailing line (or any
// malformed line) is detected on open(), counted, and dropped; open() then
// rewrites the clean prefix to a temporary file and atomically renames it
// over the journal before appending, so the on-disk file is always a valid
// JSONL prefix of the sweep.
//
// Doubles are serialized as C99 hexfloat strings ("0x1.91eb851eb851fp-3"),
// which round-trip exactly — the bit-identical-resume guarantee would not
// survive a lossy decimal encoding. See docs/ROBUSTNESS.md for the format.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "util/status.h"

namespace netsample::exper {

struct CellConfig;  // runner.h

/// Canonical journal key for one grid cell. `interval_index` is the cell's
/// position in an interval sweep (0 otherwise) — the same coordinate that
/// feeds seed derivation. The derived seed is part of the key, so a journal
/// written under a different base seed (or grid shape) simply never matches.
[[nodiscard]] std::string cell_journal_key(const CellConfig& config,
                                           std::uint64_t interval_index);

/// Bit-exact codec for a replication-metrics vector — exactly the "reps"
/// array of a journal line (hexfloat doubles; round-trips every bit). The
/// shard worker protocol ships cell results over the wire in this encoding,
/// so a coordinator-journaled cell is byte-identical to one the journal
/// recorded from a local run. decode returns false on any mismatch and
/// leaves *reps unspecified.
[[nodiscard]] std::string encode_replications(
    const std::vector<core::DisparityMetrics>& reps);
[[nodiscard]] bool decode_replications(const std::string& text,
                                       std::vector<core::DisparityMetrics>* reps);

/// What CheckpointJournal::compact_file did.
struct JournalCompactionStats {
  std::size_t lines_before{0};    // valid lines in the input
  std::size_t dropped_lines{0};   // torn / malformed lines removed
  std::size_t duplicate_keys{0};  // superseded re-records removed
  std::size_t lines_after{0};     // unique keys written back
};

class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  ~CheckpointJournal();

  CheckpointJournal(CheckpointJournal&& other) noexcept;
  CheckpointJournal& operator=(CheckpointJournal&& other) noexcept;
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Open (creating if absent) a journal at `path`. Existing valid lines
  /// become the completed-cell set; torn or malformed lines are counted and
  /// dropped, and the cleaned file is atomically renamed into place.
  [[nodiscard]] static StatusOr<CheckpointJournal> open(const std::string& path);

  /// Append one completed cell (flushed + fsync'd before returning). A key
  /// recorded twice keeps the latest metrics.
  [[nodiscard]] Status record(const std::string& key,
                              const std::vector<core::DisparityMetrics>& reps);

  /// Metrics for a completed cell, or nullptr if the cell is not journaled.
  [[nodiscard]] const std::vector<core::DisparityMetrics>* find(
      const std::string& key) const;

  /// Rewrite the journal at `path` down to one line per key (the latest
  /// record wins, preserving record()'s overwrite semantics), dropping torn
  /// or malformed lines — this bounds resume replay cost for long-lived
  /// million-cell journals that re-recorded cells many times. Keys keep
  /// their first-appearance order. The rewrite goes through the same
  /// write-to-temporary + fsync + atomic-rename discipline as open(), so a
  /// kill mid-compaction leaves either the old file or the new one, never a
  /// torn hybrid. Must not race an open appender on the same file.
  [[nodiscard]] static StatusOr<JournalCompactionStats> compact_file(
      const std::string& path);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Lines dropped during open() (torn tail from a kill, or corruption).
  [[nodiscard]] std::size_t dropped_lines() const { return dropped_lines_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* out_{nullptr};
  std::size_t dropped_lines_{0};
  std::map<std::string, std::vector<core::DisparityMetrics>> entries_;
};

}  // namespace netsample::exper
