#include "exper/runner.h"

#include <cmath>
#include <stdexcept>

#include "core/select_indices.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace netsample::exper {

std::vector<double> CellResult::phi_values() const {
  std::vector<double> out;
  out.reserve(replications.size());
  for (const auto& m : replications) out.push_back(m.phi);
  return out;
}

double CellResult::phi_mean() const {
  if (replications.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : replications) sum += m.phi;
  return sum / static_cast<double>(replications.size());
}

stats::BoxplotSummary CellResult::phi_boxplot() const {
  return stats::boxplot(phi_values());
}

double CellResult::mean_sample_size() const {
  if (replications.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : replications) {
    sum += static_cast<double>(m.sample_n);
  }
  return sum / static_cast<double>(replications.size());
}

int CellResult::rejections_at(double alpha) const {
  int n = 0;
  for (const auto& m : replications) {
    if (m.significance < alpha) ++n;
  }
  return n;
}

core::SamplerSpec replication_spec(const CellConfig& config, int r) {
  core::SamplerSpec spec;
  spec.method = config.method;
  spec.granularity = config.granularity;
  spec.population = config.interval.size();
  spec.mean_interarrival_usec = config.mean_interarrival_usec;
  spec.seed = config.base_seed + static_cast<std::uint64_t>(r) * 0x9E3779B9ULL;

  const auto rep = static_cast<std::uint64_t>(r);
  const auto reps = static_cast<std::uint64_t>(std::max(1, config.replications));
  switch (config.method) {
    case core::Method::kSystematicCount:
      // Spread start offsets evenly over the bucket; with more replications
      // than k, fall back to cycling.
      if (reps <= config.granularity) {
        spec.offset = rep * config.granularity / reps;
      } else {
        spec.offset = rep % config.granularity;
      }
      break;
    case core::Method::kSystematicTimer: {
      const double period =
          config.mean_interarrival_usec * static_cast<double>(config.granularity);
      spec.timer_phase_usec = static_cast<std::uint64_t>(
          period * static_cast<double>(rep) / static_cast<double>(reps));
      break;
    }
    default:
      break;  // random methods replicate through the seed alone
  }
  return spec;
}

namespace {

void validate_cell(const CellConfig& config) {
  if (config.interval.empty()) {
    throw std::invalid_argument("run_cell: empty interval");
  }
  if (config.replications <= 0) {
    throw std::invalid_argument("run_cell: replications must be positive");
  }
}

/// One bulk registry update per completed cell (never per packet): which
/// engine ran, how many replications, the φ values produced, and — on the
/// legacy path — how many packets the streaming scan walked. Fast-path
/// packet accounting happens inside core::select_indices, which knows the
/// per-kernel scan shape. Everything here derives from seeds and packet
/// counts, so it all belongs to the deterministic export section.
void record_cell_run(const CellResult& result, bool fast_path,
                     std::size_t legacy_scanned) {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  static obs::Counter& fast = reg.counter("netsample_cell_fastpath_total");
  static obs::Counter& legacy = reg.counter("netsample_cell_legacy_total");
  static obs::Counter& reps = reg.counter("netsample_cell_replications_total");
  static obs::Counter& scanned =
      reg.counter("netsample_scan_packets_total");
  static obs::Counter& samples =
      reg.counter("netsample_sample_packets_total");
  static obs::HistogramMetric& phi =
      reg.histogram("netsample_phi", obs::phi_bin_edges());
  (fast_path ? fast : legacy).increment();
  reps.add(result.replications.size());
  scanned.add(legacy_scanned);
  for (const auto& m : result.replications) {
    phi.observe(m.phi);
    samples.add(m.sample_n);
  }
}

// Legacy streaming path with the population histogram already binned (it
// depends only on the interval and target, so granularity sweeps hoist it).
CellResult run_cell_replications(const CellConfig& config,
                                 const stats::Histogram& layout,
                                 const stats::Histogram& population) {
  const double fraction = 1.0 / static_cast<double>(config.granularity);
  CellResult result;
  result.config = config;
  result.replications.reserve(static_cast<std::size_t>(config.replications));
  for (int r = 0; r < config.replications; ++r) {
    util::throw_if_stopped(config.cancel);
    obs::Span scan_span("scan");
    auto sampler = core::make_sampler(replication_spec(config, r));
    const auto sample = core::draw(config.interval, *sampler, config.cancel);
    const auto observed =
        core::bin_values(core::sample_values(sample, config.target), layout);
    result.replications.push_back(
        core::score_sample(observed, population, fraction));
  }
  record_cell_run(result, /*fast_path=*/false,
                  config.interval.size() *
                      static_cast<std::size_t>(config.replications));
  return result;
}

// Fused fast path: population from prefix-sum subtraction, replications via
// index-emitting kernels + bin-id accumulation. No per-packet work outside
// the kernels themselves.
CellResult run_cell_fast(const CellConfig& config, std::size_t begin,
                         std::size_t end) {
  const core::BinnedTraceCache& cache = *config.cache;
  const auto population =
      cache.population_histogram(config.target, begin, end);
  const double fraction = 1.0 / static_cast<double>(config.granularity);
  CellResult result;
  result.config = config;
  result.replications.reserve(static_cast<std::size_t>(config.replications));
  for (int r = 0; r < config.replications; ++r) {
    util::throw_if_stopped(config.cancel);
    const auto indices =
        core::select_indices(replication_spec(config, r), cache, begin, end);
    const auto observed =
        cache.sample_histogram(config.target, indices, begin);
    result.replications.push_back(
        core::score_sample(observed, population, fraction));
  }
  record_cell_run(result, /*fast_path=*/true, /*legacy_scanned=*/0);
  return result;
}

}  // namespace

bool cell_uses_fast_path(const CellConfig& config) {
  return config.cache != nullptr && !core::legacy_scan_forced() &&
         config.cache->contains(config.interval);
}

CellResult run_cell(const CellConfig& config) {
  validate_cell(config);
  util::throw_if_stopped(config.cancel);
  if (cell_uses_fast_path(config)) {
    const std::size_t begin = config.cache->offset_of(config.interval);
    return run_cell_fast(config, begin, begin + config.interval.size());
  }
  const auto layout = core::make_target_histogram(config.target);
  const auto population = core::bin_values(
      core::population_values(config.interval, config.target), layout);
  return run_cell_replications(config, layout, population);
}

std::vector<CellResult> sweep_granularity(
    CellConfig base, const std::vector<std::uint64_t>& granularities) {
  std::vector<CellResult> out;
  out.reserve(granularities.size());
  if (granularities.empty()) return out;
  validate_cell(base);
  if (cell_uses_fast_path(base)) {
    // population_histogram is O(bins) per rung — nothing worth hoisting.
    for (std::uint64_t k : granularities) {
      base.granularity = k;
      out.push_back(run_cell(base));
    }
    return out;
  }
  // Legacy path: materialize and bin the population once for the ladder.
  const auto layout = core::make_target_histogram(base.target);
  const auto population = core::bin_values(
      core::population_values(base.interval, base.target), layout);
  for (std::uint64_t k : granularities) {
    base.granularity = k;
    out.push_back(run_cell_replications(base, layout, population));
  }
  return out;
}

std::vector<CellResult> sweep_interval(CellConfig base, trace::TraceView full,
                                       const std::vector<double>& interval_seconds) {
  std::vector<CellResult> out;
  out.reserve(interval_seconds.size());
  for (double secs : interval_seconds) {
    base.interval = full.prefix_duration(MicroDuration::from_seconds(secs));
    out.push_back(run_cell(base));
  }
  return out;
}

std::vector<std::uint64_t> granularity_ladder(std::uint64_t from,
                                              std::uint64_t to) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t k = from; k <= to; k *= 2) out.push_back(k);
  return out;
}

}  // namespace netsample::exper
