#include "exper/journal.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "exper/runner.h"
#include "obs/metrics.h"

namespace netsample::exper {

namespace {

// ---------------------------------------------------------------------------
// Line encoding. One JSON object per line; doubles as hexfloat strings so
// every bit of the metric round-trips (printf "%a" with no precision emits
// an exact representation, and strtod parses it back bit-for-bit).
// ---------------------------------------------------------------------------

void append_double(std::string& out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":\"%a\"", name, v);
  out += buf;
}

void append_u64(std::string& out, const char* name, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, name, v);
  out += buf;
}

std::string encode_line(const std::string& key,
                        const std::vector<core::DisparityMetrics>& reps) {
  return "{\"key\":\"" + key + "\",\"reps\":" + encode_replications(reps) + "}";
}

// Strict sequential parser for the exact shape encode_line() emits. Any
// mismatch fails the whole line, which open() then counts as dropped — a
// journal line is either perfectly intact or ignored.

bool take(const char*& p, const char* literal) {
  const std::size_t n = std::strlen(literal);
  if (std::strncmp(p, literal, n) != 0) return false;
  p += n;
  return true;
}

bool take_double(const char*& p, const char* name, double* out) {
  if (!take(p, "\"")) return false;
  if (!take(p, name)) return false;
  if (!take(p, "\":\"")) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  return take(p, "\"");
}

bool take_u64(const char*& p, const char* name, std::uint64_t* out) {
  if (!take(p, "\"")) return false;
  if (!take(p, name)) return false;
  if (!take(p, "\":")) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(p, &end, 10);
  if (end == p || errno == ERANGE) return false;
  p = end;
  return true;
}

bool take_reps(const char*& p, std::vector<core::DisparityMetrics>* reps) {
  if (!take(p, "[")) return false;
  reps->clear();
  while (*p == '{') {
    core::DisparityMetrics m;
    ++p;
    if (!take_double(p, "chi2", &m.chi2)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "dof", &m.dof)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "sig", &m.significance)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "cost", &m.cost)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "rcost", &m.rcost)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "x2", &m.x2)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "and", &m.avg_norm_dev)) return false;
    if (!take(p, ",")) return false;
    if (!take_double(p, "phi", &m.phi)) return false;
    if (!take(p, ",")) return false;
    if (!take_u64(p, "sn", &m.sample_n)) return false;
    if (!take(p, ",")) return false;
    if (!take_u64(p, "pn", &m.population_n)) return false;
    if (!take(p, "}")) return false;
    reps->push_back(m);
    if (*p == ',') ++p;
  }
  return take(p, "]");
}

bool decode_line(const std::string& line, std::string* key,
                 std::vector<core::DisparityMetrics>* reps) {
  const char* p = line.c_str();
  if (!take(p, "{\"key\":\"")) return false;
  const char* key_end = std::strchr(p, '"');
  if (key_end == nullptr) return false;
  key->assign(p, key_end);
  p = key_end;
  if (!take(p, "\",\"reps\":")) return false;
  if (!take_reps(p, reps)) return false;
  return take(p, "}") && *p == '\0';
}

Status write_and_sync(std::FILE* f, const std::string& data,
                      const std::string& path) {
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size() ||
      std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    return Status(StatusCode::kDataLoss,
                  "journal: short write to '" + path + "'");
  }
  return Status::ok();
}

}  // namespace

std::string encode_replications(
    const std::vector<core::DisparityMetrics>& reps) {
  std::string out = "[";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& m = reps[i];
    if (i != 0) out += ',';
    out += '{';
    append_double(out, "chi2", m.chi2);
    out += ',';
    append_double(out, "dof", m.dof);
    out += ',';
    append_double(out, "sig", m.significance);
    out += ',';
    append_double(out, "cost", m.cost);
    out += ',';
    append_double(out, "rcost", m.rcost);
    out += ',';
    append_double(out, "x2", m.x2);
    out += ',';
    append_double(out, "and", m.avg_norm_dev);
    out += ',';
    append_double(out, "phi", m.phi);
    out += ',';
    append_u64(out, "sn", m.sample_n);
    out += ',';
    append_u64(out, "pn", m.population_n);
    out += '}';
  }
  out += ']';
  return out;
}

bool decode_replications(const std::string& text,
                         std::vector<core::DisparityMetrics>* reps) {
  const char* p = text.c_str();
  return take_reps(p, reps) && *p == '\0';
}

std::string cell_journal_key(const CellConfig& config,
                             std::uint64_t interval_index) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "m=%s;t=%s;k=%" PRIu64 ";i=%" PRIu64 ";n=%zu;r=%d;s=%016" PRIx64,
                core::method_name(config.method),
                core::target_name(config.target), config.granularity,
                interval_index, config.interval.size(), config.replications,
                config.base_seed);
  return buf;
}

CheckpointJournal::~CheckpointJournal() {
  if (out_ != nullptr) std::fclose(out_);
}

CheckpointJournal::CheckpointJournal(CheckpointJournal&& other) noexcept
    : path_(std::move(other.path_)),
      out_(std::exchange(other.out_, nullptr)),
      dropped_lines_(other.dropped_lines_),
      entries_(std::move(other.entries_)) {}

CheckpointJournal& CheckpointJournal::operator=(
    CheckpointJournal&& other) noexcept {
  if (this != &other) {
    if (out_ != nullptr) std::fclose(out_);
    path_ = std::move(other.path_);
    out_ = std::exchange(other.out_, nullptr);
    dropped_lines_ = other.dropped_lines_;
    entries_ = std::move(other.entries_);
  }
  return *this;
}

StatusOr<CheckpointJournal> CheckpointJournal::open(const std::string& path) {
  CheckpointJournal j;
  j.path_ = path;

  // Load whatever valid prefix an earlier (possibly killed) run left behind.
  std::vector<std::string> valid_lines;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      std::string key;
      std::vector<core::DisparityMetrics> reps;
      if (decode_line(line, &key, &reps)) {
        // Later lines win, matching record()'s overwrite semantics.
        j.entries_[key] = std::move(reps);
        valid_lines.push_back(line);
      } else {
        ++j.dropped_lines_;
      }
    }
  }

  // Rewrite the cleaned journal via write-then-rename so the visible file
  // never holds a torn line, then reopen it for appending.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kNotFound,
                  "journal: cannot create '" + tmp + "'");
  }
  std::string blob;
  for (const auto& line : valid_lines) {
    blob += line;
    blob += '\n';
  }
  const Status ws = write_and_sync(f, blob, tmp);
  std::fclose(f);
  if (!ws.is_ok()) return ws;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status(StatusCode::kInternal,
                  "journal: rename '" + tmp + "' -> '" + path + "' failed");
  }

  j.out_ = std::fopen(path.c_str(), "ab");
  if (j.out_ == nullptr) {
    return Status(StatusCode::kNotFound,
                  "journal: cannot append to '" + path + "'");
  }
  return j;
}

Status CheckpointJournal::record(
    const std::string& key, const std::vector<core::DisparityMetrics>& reps) {
  if (out_ == nullptr) {
    return Status(StatusCode::kInternal, "journal: not open");
  }
  Status ws = Status::ok();
  if (obs::enabled()) {
    // Each record is an fflush+fsync, so flush latency is the journal's
    // whole cost story; wall time → nondeterministic section.
    const auto t0 = std::chrono::steady_clock::now();
    ws = write_and_sync(out_, encode_line(key, reps) + "\n", path_);
    const auto dt = std::chrono::steady_clock::now() - t0;
    auto& reg = obs::registry();
    static obs::Counter& records =
        reg.counter("netsample_journal_records_total");
    static obs::Counter& flush_ns =
        reg.counter("netsample_journal_flush_ns_total",
                    obs::Determinism::kNondeterministic);
    static obs::HistogramMetric& flush_hist = reg.histogram(
        "netsample_journal_flush_seconds", obs::duration_bin_edges(),
        obs::Determinism::kNondeterministic);
    records.increment();
    flush_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    flush_hist.observe(std::chrono::duration<double>(dt).count());
  } else {
    ws = write_and_sync(out_, encode_line(key, reps) + "\n", path_);
  }
  if (!ws.is_ok()) return ws;
  entries_[key] = reps;
  return Status::ok();
}

const std::vector<core::DisparityMetrics>* CheckpointJournal::find(
    const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

StatusOr<JournalCompactionStats> CheckpointJournal::compact_file(
    const std::string& path) {
  JournalCompactionStats stats;
  std::vector<std::string> key_order;         // first appearance
  std::map<std::string, std::string> latest;  // key -> newest full line
  {
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status(StatusCode::kNotFound,
                    "journal: cannot open '" + path + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::string key;
      std::vector<core::DisparityMetrics> reps;
      if (!decode_line(line, &key, &reps)) {
        ++stats.dropped_lines;
        continue;
      }
      ++stats.lines_before;
      if (latest.find(key) == latest.end()) {
        key_order.push_back(key);
      } else {
        ++stats.duplicate_keys;
      }
      latest[key] = std::move(line);
    }
  }
  stats.lines_after = key_order.size();

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kInternal, "journal: cannot create '" + tmp + "'");
  }
  std::string blob;
  for (const auto& key : key_order) {
    blob += latest[key];
    blob += '\n';
  }
  const Status ws = write_and_sync(f, blob, tmp);
  std::fclose(f);
  if (!ws.is_ok()) return ws;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status(StatusCode::kInternal,
                  "journal: rename '" + tmp + "' -> '" + path + "' failed");
  }

  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter& compactions =
        reg.counter("netsample_journal_compactions_total");
    static obs::Counter& removed =
        reg.counter("netsample_journal_compaction_removed_total");
    compactions.increment();
    removed.add(stats.duplicate_keys + stats.dropped_lines);
  }
  return stats;
}

}  // namespace netsample::exper
