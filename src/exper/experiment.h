// Shared experiment context: the parent population every figure reuses.
//
// Owns the calibrated synthetic hour (or a pcap-loaded trace), its
// population statistics, and the derived quantities samplers need (mean
// interarrival time for timer periods, population size for simple random).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/targets.h"
#include "core/trace_cache.h"
#include "synth/presets.h"
#include "trace/summary.h"
#include "trace/trace.h"

namespace netsample::exper {

class Experiment {
 public:
  /// Build from the calibrated synthetic SDSC hour.
  explicit Experiment(std::uint64_t seed = 23, double minutes = 60.0);

  /// Build from an existing trace (e.g. loaded from pcap).
  explicit Experiment(trace::Trace t);

  [[nodiscard]] const trace::Trace& trace() const { return trace_; }
  [[nodiscard]] trace::TraceView full() const { return trace_.view(); }

  /// Prefix window of the first `seconds` of the trace (the paper's
  /// "interval"): e.g. interval(1024) or interval(2048).
  [[nodiscard]] trace::TraceView interval(double seconds) const;

  /// Population mean interarrival time in microseconds (drives timer
  /// periods so timer and count methods have comparable cost).
  [[nodiscard]] double mean_interarrival_usec() const { return mean_iat_; }

  /// Population mean / stddev of packet size (drives Cochran plans).
  [[nodiscard]] double mean_packet_size() const { return mean_size_; }
  [[nodiscard]] double stddev_packet_size() const { return sd_size_; }
  [[nodiscard]] double stddev_interarrival_usec() const { return sd_iat_; }

  [[nodiscard]] std::uint64_t population_size() const { return trace_.size(); }

  /// Shared per-packet bin cache over the full trace, built lazily on first
  /// use (one O(N) pass, ~42 bytes/packet) and thread-safe to request.
  /// Attach it to CellConfig::cache to put sweeps on the fused fast path;
  /// every experiment interval() is a prefix of it. Note the laziness makes
  /// Experiment non-copyable, which nothing relied on.
  [[nodiscard]] const core::BinnedTraceCache& binned_cache() const;

 private:
  void compute_population_stats();

  trace::Trace trace_;
  double mean_iat_{0}, sd_iat_{0};
  double mean_size_{0}, sd_size_{0};
  mutable std::once_flag cache_once_;
  mutable std::unique_ptr<core::BinnedTraceCache> cache_;
};

}  // namespace netsample::exper
