// Replication runner and parameter sweeps (Section 7 of the paper).
//
// An experiment cell is (method, target, granularity, interval). We run R
// replications of the cell -- varying the start offset for deterministic
// methods and the RNG seed for random ones, exactly as the paper "varied
// the point within the data set at which to begin the sampling procedure"
// -- score each sample against the parent with the phi-family metrics, and
// aggregate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "core/trace_cache.h"
#include "stats/boxplot.h"
#include "trace/trace.h"
#include "util/cancel.h"

namespace netsample::exper {

struct CellConfig {
  core::Method method{core::Method::kSystematicCount};
  core::Target target{core::Target::kPacketSize};
  std::uint64_t granularity{50};
  trace::TraceView interval;
  /// Population mean interarrival (usec), needed by timer methods.
  double mean_interarrival_usec{0.0};
  int replications{5};
  std::uint64_t base_seed{1};
  /// Optional shared bin cache covering `interval` (usually the full
  /// trace's, from Experiment::binned_cache()). When set — and unless
  /// core::legacy_scan_forced() — run_cell takes the fused fast path:
  /// index-emitting kernels plus prefix-sum histograms instead of the
  /// streaming per-packet scan. Results are bit-identical either way
  /// (tests/test_fastpath.cpp pins this over the full figure grid). Not
  /// owned; must outlive the run.
  const core::BinnedTraceCache* cache{nullptr};
  /// Optional cancellation token / watchdog deadline. run_cell polls it at
  /// entry, between replications, and inside the streaming per-packet loop,
  /// unwinding with util::StatusError (kCancelled / kDeadlineExceeded).
  /// Not owned; the parallel runner attaches a per-cell token carrying the
  /// cell's deadline. Does not affect results, so it is excluded from cell
  /// identity (checkpoint keys, seed derivation).
  const util::CancelToken* cancel{nullptr};
};

struct CellResult {
  CellConfig config;
  std::vector<core::DisparityMetrics> replications;

  /// phi scores across replications.
  [[nodiscard]] std::vector<double> phi_values() const;
  [[nodiscard]] double phi_mean() const;
  [[nodiscard]] stats::BoxplotSummary phi_boxplot() const;
  [[nodiscard]] double mean_sample_size() const;
  /// Replications whose chi-squared significance falls below `alpha`
  /// (the paper's "rejected by the chi-squared test" count).
  [[nodiscard]] int rejections_at(double alpha) const;
};

/// Run one experiment cell. Population binning is computed once per call
/// (O(bins) prefix-sum subtractions when config.cache applies, one O(n)
/// scan otherwise). Throws std::invalid_argument for an empty interval or
/// bad config.
[[nodiscard]] CellResult run_cell(const CellConfig& config);

/// Would run_cell take the cache fast path for this config? (It does when a
/// cache is attached, covers the interval, and the legacy scan is not
/// forced.) Exposed for tests and the A/B bench harness.
[[nodiscard]] bool cell_uses_fast_path(const CellConfig& config);

/// Sweep granularities for a fixed method/target/interval (Figures 6-9).
/// The population histogram is computed once for the whole ladder, not once
/// per rung — it depends only on (interval, target).
[[nodiscard]] std::vector<CellResult> sweep_granularity(
    CellConfig base, const std::vector<std::uint64_t>& granularities);

/// Sweep interval lengths for fixed method/target/granularity (Figures
/// 10-11). `interval_seconds` values are prefixes of `full`.
[[nodiscard]] std::vector<CellResult> sweep_interval(
    CellConfig base, trace::TraceView full,
    const std::vector<double>& interval_seconds);

/// The paper's exponential granularity ladder 2, 4, ..., 32768.
[[nodiscard]] std::vector<std::uint64_t> granularity_ladder(
    std::uint64_t from = 2, std::uint64_t to = 32768);

/// Build the sampler spec for replication r of a cell (exposed for tests).
[[nodiscard]] core::SamplerSpec replication_spec(const CellConfig& config, int r);

}  // namespace netsample::exper
