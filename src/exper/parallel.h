// Parallel experiment engine: fans the method x granularity x interval grid
// out over a util::ThreadPool.
//
// The paper's evaluation is embarrassingly parallel — every cell scores an
// independent sample against a shared read-only parent population — so each
// cell becomes one pool task operating on a TraceView span (no copies).
// When the tasks carry a CellConfig::cache, all workers additionally share
// that one immutable core::BinnedTraceCache: it is built before the fan-out
// (or behind Experiment::binned_cache()'s call_once) and only read inside
// tasks, so the fast path adds no synchronization to the pool.
//
// Determinism is the design constraint: a cell's RNG seed is derived from
// its logical coordinates via task_seed(), never from execution order, so an
// N-thread sweep is bit-identical to the 1-thread sweep. --jobs 1 *is* the
// serial path (no pool is created), making the equivalence testable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exper/runner.h"
#include "util/thread_pool.h"

namespace netsample::exper {

/// Seed for one grid cell, mixed from (base_seed, method, granularity,
/// interval_index) with the splitmix-style derive_seed() hash. Replications
/// inside the cell then spread from this seed exactly as in the serial
/// runner (replication_spec).
[[nodiscard]] std::uint64_t task_seed(std::uint64_t base_seed,
                                      core::Method method,
                                      std::uint64_t granularity,
                                      std::uint64_t interval_index);

/// One cell of an experiment grid. `interval_index` identifies which
/// measurement interval the cell's view is (0 when only one interval is
/// swept); it feeds the seed derivation, not the execution.
struct GridTask {
  CellConfig config;
  std::uint64_t interval_index{0};
};

class ParallelRunner {
 public:
  /// `jobs` <= 0 selects hardware_concurrency(); 1 runs serially on the
  /// calling thread with no pool.
  explicit ParallelRunner(int jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run every task; results come back in task order. Each task's
  /// config.base_seed is replaced by task_seed(base_seed, ...) before
  /// execution, so identical grids yield identical results at any jobs
  /// level. The TraceViews inside the tasks must stay valid for the whole
  /// call. run_cell exceptions propagate (lowest-index failure wins).
  [[nodiscard]] std::vector<CellResult> run(const std::vector<GridTask>& tasks,
                                            std::uint64_t base_seed);

  /// Parallel counterpart of exper::sweep_granularity (Figures 6-9); the
  /// base seed is taken from `base.base_seed`.
  [[nodiscard]] std::vector<CellResult> sweep_granularity(
      CellConfig base, const std::vector<std::uint64_t>& granularities);

  /// Parallel counterpart of exper::sweep_interval (Figures 10-11);
  /// interval i gets interval_index i in the seed derivation.
  [[nodiscard]] std::vector<CellResult> sweep_interval(
      CellConfig base, trace::TraceView full,
      const std::vector<double>& interval_seconds);

 private:
  int jobs_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when jobs_ == 1
};

}  // namespace netsample::exper
