// Parallel experiment engine: fans the method x granularity x interval grid
// out over a util::ThreadPool.
//
// The paper's evaluation is embarrassingly parallel — every cell scores an
// independent sample against a shared read-only parent population — so each
// cell becomes one pool task operating on a TraceView span (no copies).
// When the tasks carry a CellConfig::cache, all workers additionally share
// that one immutable core::BinnedTraceCache: it is built before the fan-out
// (or behind Experiment::binned_cache()'s call_once) and only read inside
// tasks, so the fast path adds no synchronization to the pool.
//
// Determinism is the design constraint: a cell's RNG seed is derived from
// its logical coordinates via task_seed(), never from execution order, so an
// N-thread sweep is bit-identical to the 1-thread sweep. --jobs 1 *is* the
// serial path (no pool is created), making the equivalence testable.
//
// Fault tolerance rides on the same property (see docs/ROBUSTNESS.md):
// cells execute in isolation and report StatusOr-style CellOutcomes, a
// FailPolicy decides whether one failure aborts, skips, or retries (with
// per-attempt derived seeds), a per-cell watchdog deadline unwinds wedged
// cells without stalling the pool, and a CheckpointJournal lets a killed
// sweep resume bit-identically because cell identity is purely logical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exper/journal.h"
#include "exper/runner.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace netsample::exper {

/// Seed for one grid cell, mixed from (base_seed, method, granularity,
/// interval_index) with the splitmix-style derive_seed() hash. Replications
/// inside the cell then spread from this seed exactly as in the serial
/// runner (replication_spec).
[[nodiscard]] std::uint64_t task_seed(std::uint64_t base_seed,
                                      core::Method method,
                                      std::uint64_t granularity,
                                      std::uint64_t interval_index);

/// One cell of an experiment grid. `interval_index` identifies which
/// measurement interval the cell's view is (0 when only one interval is
/// swept); it feeds the seed derivation, not the execution.
/// `journal_suffix` is appended to the cell's checkpoint-journal key for
/// grids where several tasks share identical CellConfig coordinates but
/// run different workloads (the flow grid repeats each cell once per
/// inversion estimator); it feeds neither seeds nor execution.
struct GridTask {
  CellConfig config;
  std::uint64_t interval_index{0};
  std::string journal_suffix{};
};

/// What a sweep does when a cell fails (throws / times out).
enum class FailPolicy {
  kAbort,  // cancel the remaining cells; the sweep stops (default)
  kSkip,   // quarantine the failed cell, run everything else
  kRetry,  // re-run the cell up to max_attempts times, then quarantine
};

/// Sweep-level fault-tolerance options for ParallelRunner::run.
struct RunOptions {
  FailPolicy on_error{FailPolicy::kAbort};

  /// Total attempts per cell under kRetry (first try included). Attempt 0
  /// runs with the cell's coordinate-derived seed; attempt a > 0 runs with
  /// derive_seed({cell_seed, a}), so retries are deterministic but draw
  /// fresh randomness. Ignored by the other policies.
  int max_attempts{3};

  /// Per-cell watchdog: a cell that exceeds this wall-clock budget unwinds
  /// with kDeadlineExceeded at its next cancellation poll instead of
  /// stalling the pool. 0 disables the deadline.
  double cell_timeout_seconds{0};

  /// Optional sweep-wide cancellation (e.g. SIGINT handling): cells not yet
  /// started return kCancelled, running cells unwind at their next poll.
  util::CancelToken* cancel{nullptr};

  /// Optional checkpoint journal. Cells whose key is already journaled are
  /// served from it without executing; cells that complete OK are recorded.
  /// Because seeds are schedule-independent, a resumed sweep is bit-identical
  /// to an uninterrupted one.
  CheckpointJournal* journal{nullptr};

  /// Deterministic fault-injection hook (the faultsim seam): called before
  /// each attempt with the cell's task index and the attempt number; a
  /// non-OK return fails that attempt as if the cell had thrown. Tests use
  /// it to script first-attempt failures and mid-sweep kills.
  std::function<Status(std::size_t task_index, int attempt)> fault_injector{};

  /// Called on the coordinating thread, in task order, as each cell's
  /// outcome is collected (journal replays included). Tests use it to
  /// cancel mid-sweep at a deterministic point.
  std::function<void(std::size_t task_index, const Status&)> on_cell_done{};

  /// Workload hook: when set, replaces run_cell as the per-cell payload
  /// (all fault-tolerance machinery — retries, deadlines, journal replay,
  /// fault injection — wraps it unchanged). The flow workload plugs
  /// flow::run_flow_cell in here; the default packet workload leaves it
  /// empty. Must be deterministic in (config, task_index) for the
  /// jobs-equivalence guarantee to hold.
  std::function<CellResult(const CellConfig& config, std::size_t task_index)>
      cell_runner{};
};

/// Timing record of one executed attempt of one cell. Every attempt is
/// kept — a retried cell used to surface only its last attempt, which made
/// retry-latency metrics lie about where the wall-clock went.
struct AttemptRecord {
  Status status;            // outcome of this attempt
  std::uint64_t seed{0};    // the seed this attempt actually ran with
  double wall_seconds{0};   // steady-clock duration of the attempt
  double cpu_seconds{0};    // thread CPU time (0 where unsupported)
};

/// Outcome of one cell under a fault-tolerance policy.
struct CellOutcome {
  Status status;       // OK iff `result` is valid
  CellResult result;
  int attempts{0};     // attempts actually executed (0 for journal replays
                       // and cells cancelled before starting)
  /// One record per executed attempt, in attempt order; size() == attempts.
  /// The last record's status equals `status` unless the cell was cancelled
  /// before its first attempt.
  std::vector<AttemptRecord> attempt_log;
  bool from_journal{false};
  /// The original exception when the last attempt threw (kept so the legacy
  /// abort path can rethrow the exact type).
  std::exception_ptr exception{};
};

/// Everything a fault-tolerant sweep produced: per-cell outcomes in task
/// order, with the failed ones quarantined rather than lost.
struct RunReport {
  std::vector<CellOutcome> cells;

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t failed_count() const;  // non-OK outcomes
  /// Indices of quarantined (non-OK) cells, in task order.
  [[nodiscard]] std::vector<std::size_t> quarantined() const;
  [[nodiscard]] bool all_ok() const { return failed_count() == 0; }
  /// Status of the lowest-index failed cell (OK when all cells succeeded).
  [[nodiscard]] Status first_failure() const;
};

class ParallelRunner {
 public:
  /// `jobs` <= 0 selects hardware_concurrency(); 1 runs serially on the
  /// calling thread with no pool.
  explicit ParallelRunner(int jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run every task; results come back in task order. Each task's
  /// config.base_seed is replaced by task_seed(base_seed, ...) before
  /// execution, so identical grids yield identical results at any jobs
  /// level. The TraceViews inside the tasks must stay valid for the whole
  /// call. Convenience wrapper over the fault-tolerant overload with the
  /// kAbort policy: on failure the lowest-index failed cell's original
  /// exception is rethrown (cells already finished are discarded).
  [[nodiscard]] std::vector<CellResult> run(const std::vector<GridTask>& tasks,
                                            std::uint64_t base_seed);

  /// Fault-tolerant run: every cell executes in isolation and comes back as
  /// a CellOutcome instead of killing the sweep. Under kAbort the first
  /// failure cancels the cells that have not started (they report
  /// kCancelled); under kSkip/kRetry the sweep always completes and failed
  /// cells are quarantined in the report. Never throws for cell failures.
  [[nodiscard]] RunReport run(const std::vector<GridTask>& tasks,
                              std::uint64_t base_seed, const RunOptions& opts);

  /// Parallel counterpart of exper::sweep_granularity (Figures 6-9); the
  /// base seed is taken from `base.base_seed`.
  [[nodiscard]] std::vector<CellResult> sweep_granularity(
      CellConfig base, const std::vector<std::uint64_t>& granularities);

  /// Parallel counterpart of exper::sweep_interval (Figures 10-11);
  /// interval i gets interval_index i in the seed derivation.
  [[nodiscard]] std::vector<CellResult> sweep_interval(
      CellConfig base, trace::TraceView full,
      const std::vector<double>& interval_seconds);

 private:
  /// Add the pool's scheduling counters accumulated since the last call to
  /// the obs registry (nondeterministic section). No-op when metrics are
  /// disabled or the runner is serial.
  void publish_pool_stats();

  int jobs_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when jobs_ == 1
  util::ThreadPool::Stats pool_published_{};  // high-water of published stats
};

}  // namespace netsample::exper
