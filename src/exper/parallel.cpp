#include "exper/parallel.h"

#include <future>
#include <utility>

#include "util/rng.h"

namespace netsample::exper {

std::uint64_t task_seed(std::uint64_t base_seed, core::Method method,
                        std::uint64_t granularity,
                        std::uint64_t interval_index) {
  return derive_seed(
      {base_seed, core::method_seed_tag(method), granularity, interval_index});
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs <= 0 ? static_cast<int>(util::ThreadPool::default_thread_count())
                      : jobs) {
  if (jobs_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(jobs_));
  }
}

ParallelRunner::~ParallelRunner() = default;

std::vector<CellResult> ParallelRunner::run(const std::vector<GridTask>& tasks,
                                            std::uint64_t base_seed) {
  std::vector<CellConfig> configs;
  configs.reserve(tasks.size());
  for (const auto& t : tasks) {
    CellConfig cfg = t.config;
    cfg.base_seed = task_seed(base_seed, cfg.method, cfg.granularity,
                              t.interval_index);
    configs.push_back(cfg);
  }

  std::vector<CellResult> results;
  results.reserve(configs.size());
  if (!pool_) {
    for (const auto& cfg : configs) results.push_back(run_cell(cfg));
    return results;
  }

  std::vector<std::future<CellResult>> futures;
  futures.reserve(configs.size());
  for (const auto& cfg : configs) {
    futures.push_back(pool_->submit([cfg]() { return run_cell(cfg); }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::vector<CellResult> ParallelRunner::sweep_granularity(
    CellConfig base, const std::vector<std::uint64_t>& granularities) {
  std::vector<GridTask> tasks;
  tasks.reserve(granularities.size());
  for (std::uint64_t k : granularities) {
    GridTask t;
    t.config = base;
    t.config.granularity = k;
    tasks.push_back(t);
  }
  return run(tasks, base.base_seed);
}

std::vector<CellResult> ParallelRunner::sweep_interval(
    CellConfig base, trace::TraceView full,
    const std::vector<double>& interval_seconds) {
  std::vector<GridTask> tasks;
  tasks.reserve(interval_seconds.size());
  for (std::size_t i = 0; i < interval_seconds.size(); ++i) {
    GridTask t;
    t.config = base;
    t.config.interval =
        full.prefix_duration(MicroDuration::from_seconds(interval_seconds[i]));
    t.interval_index = i;
    tasks.push_back(t);
  }
  return run(tasks, base.base_seed);
}

}  // namespace netsample::exper
