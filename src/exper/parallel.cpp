#include "exper/parallel.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace netsample::exper {

namespace {

/// Thread CPU time in seconds; 0.0 on platforms without the POSIX clock.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

std::uint64_t task_seed(std::uint64_t base_seed, core::Method method,
                        std::uint64_t granularity,
                        std::uint64_t interval_index) {
  return derive_seed(
      {base_seed, core::method_seed_tag(method), granularity, interval_index});
}

std::size_t RunReport::ok_count() const {
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(),
                    [](const CellOutcome& c) { return c.status.is_ok(); }));
}

std::size_t RunReport::failed_count() const { return cells.size() - ok_count(); }

std::vector<std::size_t> RunReport::quarantined() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].status.is_ok()) out.push_back(i);
  }
  return out;
}

Status RunReport::first_failure() const {
  for (const auto& c : cells) {
    if (!c.status.is_ok()) return c.status;
  }
  return Status::ok();
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs <= 0 ? static_cast<int>(util::ThreadPool::default_thread_count())
                      : jobs) {
  if (jobs_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(jobs_));
  }
}

ParallelRunner::~ParallelRunner() { publish_pool_stats(); }

void ParallelRunner::publish_pool_stats() {
  if (!pool_ || !obs::enabled()) return;
  using obs::Determinism;
  const util::ThreadPool::Stats now = pool_->stats();
  auto& reg = obs::registry();
  // All of these depend on thread timing, so they live in the
  // nondeterministic export section.
  reg.gauge("netsample_pool_threads", Determinism::kNondeterministic)
      .set(static_cast<double>(pool_->thread_count()));
  reg.gauge("netsample_pool_queue_depth_max", Determinism::kNondeterministic)
      .max(static_cast<double>(now.max_queue_depth));
  reg.counter("netsample_pool_tasks_submitted_total",
              Determinism::kNondeterministic)
      .add(now.submitted - pool_published_.submitted);
  reg.counter("netsample_pool_tasks_executed_total",
              Determinism::kNondeterministic)
      .add(now.executed - pool_published_.executed);
  reg.counter("netsample_pool_queue_wait_ns_total",
              Determinism::kNondeterministic)
      .add(now.queue_wait_ns - pool_published_.queue_wait_ns);
  reg.counter("netsample_pool_task_exec_ns_total",
              Determinism::kNondeterministic)
      .add(now.exec_ns - pool_published_.exec_ns);
  pool_published_ = now;
}

namespace {

/// Run one cell in isolation under the sweep's fault policy: every failure
/// mode (throw, injected fault, cancellation, deadline) becomes a Status on
/// the outcome instead of escaping into the pool. Retries re-derive the
/// cell seed per attempt so they are deterministic yet independent draws.
CellOutcome execute_cell(CellConfig cfg, std::size_t index,
                         const RunOptions& opts,
                         const util::CancelToken* sweep_cancel) {
  const std::uint64_t cell_seed = cfg.base_seed;
  const int attempts_allowed = opts.on_error == FailPolicy::kRetry
                                   ? std::max(1, opts.max_attempts)
                                   : 1;
  CellOutcome out;
  // Every executed attempt gets a timing record, finishing it inside the
  // catch handlers too — a retried cell's wall-clock history must show all
  // attempts, not just the one that finally succeeded.
  auto finish_attempt = [&out](const std::chrono::steady_clock::time_point& w0,
                               double c0) {
    AttemptRecord& rec = out.attempt_log.back();
    rec.status = out.status;
    rec.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
    rec.cpu_seconds = thread_cpu_seconds() - c0;
  };
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    // A sweep-wide cancel always wins: don't start (or retry) doomed work.
    if (sweep_cancel != nullptr && sweep_cancel->cancel_requested()) {
      out.status = Status(StatusCode::kCancelled, "sweep cancelled");
      out.exception = nullptr;
      return out;
    }
    ++out.attempts;
    cfg.base_seed = attempt == 0
                        ? cell_seed
                        : derive_seed({cell_seed,
                                       static_cast<std::uint64_t>(attempt)});
    out.attempt_log.push_back(AttemptRecord{Status::ok(), cfg.base_seed, 0, 0});
    const auto wall_start = std::chrono::steady_clock::now();
    const double cpu_start = thread_cpu_seconds();
    util::CancelToken token;  // per-cell watchdog, chained to the sweep token
    token.link_parent(sweep_cancel);
    token.set_deadline_after(opts.cell_timeout_seconds);
    cfg.cancel = &token;
    try {
      obs::Span attempt_span("attempt");
      if (opts.fault_injector) {
        const Status injected = opts.fault_injector(index, attempt);
        if (!injected.is_ok()) throw StatusError(injected);
      }
      out.result = opts.cell_runner ? opts.cell_runner(cfg, index)
                                    : run_cell(cfg);
      out.result.config.cancel = nullptr;  // the token dies with this frame
      out.status = Status::ok();
      out.exception = nullptr;
      finish_attempt(wall_start, cpu_start);
      return out;
    } catch (const StatusError& e) {
      out.status = e.status();
      out.exception = std::current_exception();
      finish_attempt(wall_start, cpu_start);
      // External cancellation is not the cell's fault; retrying would just
      // observe it again.
      if (e.status().code() == StatusCode::kCancelled) return out;
    } catch (const std::exception& e) {
      out.status =
          Status(StatusCode::kInternal, std::string("run_cell: ") + e.what());
      out.exception = std::current_exception();
      finish_attempt(wall_start, cpu_start);
    }
  }
  return out;
}

/// Fold one collected outcome into the obs registry. Runs on the
/// coordinating thread, in task order, so deterministic counters cannot be
/// perturbed by scheduling. Cancellation counts ARE scheduling-dependent
/// (how many cells the abort token reached first), so they live in the
/// nondeterministic section along with every duration.
void record_cell_metrics(const CellOutcome& out) {
  if (!obs::enabled()) return;
  using obs::Determinism;
  auto& reg = obs::registry();
  static obs::Counter& cells = reg.counter("netsample_sweep_cells_total");
  static obs::Counter& ok = reg.counter("netsample_sweep_cells_ok_total");
  static obs::Counter& journal =
      reg.counter("netsample_sweep_cells_from_journal_total");
  static obs::Counter& quarantined =
      reg.counter("netsample_sweep_cells_quarantined_total");
  static obs::Counter& attempts = reg.counter("netsample_sweep_attempts_total");
  static obs::Counter& retries = reg.counter("netsample_sweep_retries_total");
  static obs::Counter& cancelled = reg.counter(
      "netsample_sweep_cells_cancelled_total", Determinism::kNondeterministic);
  static obs::Counter& wall_ns = reg.counter(
      "netsample_cell_wall_ns_total", Determinism::kNondeterministic);
  static obs::Counter& cpu_ns = reg.counter("netsample_cell_cpu_ns_total",
                                            Determinism::kNondeterministic);
  static obs::Counter& retry_wall_ns = reg.counter(
      "netsample_retry_wall_ns_total", Determinism::kNondeterministic);
  static obs::HistogramMetric& wall_hist =
      reg.histogram("netsample_cell_wall_seconds", obs::duration_bin_edges(),
                    Determinism::kNondeterministic);

  cells.increment();
  if (out.from_journal) journal.increment();
  if (out.status.is_ok()) {
    ok.increment();
  } else if (out.status.code() == StatusCode::kCancelled) {
    cancelled.increment();
  } else {
    quarantined.increment();
  }
  attempts.add(static_cast<std::uint64_t>(out.attempts));
  if (out.attempts > 1) {
    retries.add(static_cast<std::uint64_t>(out.attempts - 1));
  }
  for (const AttemptRecord& rec : out.attempt_log) {
    wall_ns.add(static_cast<std::uint64_t>(rec.wall_seconds * 1e9));
    cpu_ns.add(static_cast<std::uint64_t>(rec.cpu_seconds * 1e9));
    wall_hist.observe(rec.wall_seconds);
    if (!rec.status.is_ok()) {
      retry_wall_ns.add(static_cast<std::uint64_t>(rec.wall_seconds * 1e9));
    }
  }
}

}  // namespace

RunReport ParallelRunner::run(const std::vector<GridTask>& tasks,
                              std::uint64_t base_seed, const RunOptions& opts) {
  std::vector<CellConfig> configs;
  std::vector<std::string> keys;
  configs.reserve(tasks.size());
  keys.reserve(tasks.size());
  for (const auto& t : tasks) {
    CellConfig cfg = t.config;
    cfg.base_seed =
        task_seed(base_seed, cfg.method, cfg.granularity, t.interval_index);
    cfg.cancel = nullptr;
    configs.push_back(cfg);
    keys.push_back(opts.journal != nullptr
                       ? cell_journal_key(cfg, t.interval_index) +
                             t.journal_suffix
                       : std::string());
  }

  // Under kAbort the first genuine failure trips this token and the cells
  // that have not started come back kCancelled; external cancellation
  // (opts.cancel) propagates through the parent link under every policy.
  util::CancelToken abort_token;
  abort_token.link_parent(opts.cancel);

  // Trace chain: sweep (this thread) → cell (worker thread, explicit parent
  // because thread-locals do not follow tasks through the pool) → attempt /
  // kernel spans (implicit, same-thread).
  obs::Span sweep_span("sweep");
  const std::uint64_t sweep_span_id = sweep_span.id();

  auto run_one = [&opts, &abort_token, sweep_span_id](const CellConfig& cfg,
                                                      std::size_t index) {
    obs::Span cell_span("cell", sweep_span_id);
    CellOutcome out = execute_cell(cfg, index, opts, &abort_token);
    if (opts.on_error == FailPolicy::kAbort && !out.status.is_ok() &&
        out.status.code() != StatusCode::kCancelled) {
      abort_token.cancel();
    }
    return out;
  };

  auto replay_from_journal =
      [&](std::size_t i) -> const std::vector<core::DisparityMetrics>* {
    return opts.journal != nullptr ? opts.journal->find(keys[i]) : nullptr;
  };

  RunReport report;
  report.cells.resize(tasks.size());

  // Fan the non-journaled cells out (or run them inline at jobs == 1),
  // then collect in task order: journaled cells replay from disk, computed
  // OK cells are checkpointed, and the on_cell_done hook observes every
  // outcome in a deterministic order on this thread.
  std::vector<std::future<CellOutcome>> futures(tasks.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (replay_from_journal(i) != nullptr) continue;
    if (pool_) {
      const CellConfig& cfg = configs[i];
      futures[i] = pool_->submit([&run_one, cfg, i]() { return run_one(cfg, i); });
    }
  }

  for (std::size_t i = 0; i < configs.size(); ++i) {
    CellOutcome& out = report.cells[i];
    if (const auto* reps = replay_from_journal(i)) {
      out.status = Status::ok();
      out.result.config = configs[i];
      out.result.replications = *reps;
      out.from_journal = true;
    } else {
      out = pool_ ? futures[i].get() : run_one(configs[i], i);
      if (out.status.is_ok() && opts.journal != nullptr) {
        // A checkpoint write failure does not invalidate the computed cell;
        // it only costs re-execution on a future resume.
        (void)opts.journal->record(keys[i], out.result.replications);
      }
    }
    record_cell_metrics(out);
    if (opts.on_cell_done) opts.on_cell_done(i, out.status);
  }
  publish_pool_stats();
  return report;
}

std::vector<CellResult> ParallelRunner::run(const std::vector<GridTask>& tasks,
                                            std::uint64_t base_seed) {
  RunReport report = run(tasks, base_seed, RunOptions{});
  // Legacy contract: the lowest-index *genuine* failure rethrows with its
  // original type (cells cancelled by the abort are collateral, not causes).
  for (const auto& c : report.cells) {
    if (!c.status.is_ok() && c.exception != nullptr) {
      std::rethrow_exception(c.exception);
    }
  }
  for (const auto& c : report.cells) {
    if (!c.status.is_ok()) throw StatusError(c.status);
  }
  std::vector<CellResult> results;
  results.reserve(report.cells.size());
  for (auto& c : report.cells) results.push_back(std::move(c.result));
  return results;
}

std::vector<CellResult> ParallelRunner::sweep_granularity(
    CellConfig base, const std::vector<std::uint64_t>& granularities) {
  std::vector<GridTask> tasks;
  tasks.reserve(granularities.size());
  for (std::uint64_t k : granularities) {
    GridTask t;
    t.config = base;
    t.config.granularity = k;
    tasks.push_back(t);
  }
  obs::Span ladder_span("ladder");  // run()'s sweep span chains under this
  return run(tasks, base.base_seed);
}

std::vector<CellResult> ParallelRunner::sweep_interval(
    CellConfig base, trace::TraceView full,
    const std::vector<double>& interval_seconds) {
  std::vector<GridTask> tasks;
  tasks.reserve(interval_seconds.size());
  for (std::size_t i = 0; i < interval_seconds.size(); ++i) {
    GridTask t;
    t.config = base;
    t.config.interval =
        full.prefix_duration(MicroDuration::from_seconds(interval_seconds[i]));
    t.interval_index = i;
    tasks.push_back(t);
  }
  obs::Span ladder_span("ladder");  // run()'s sweep span chains under this
  return run(tasks, base.base_seed);
}

}  // namespace netsample::exper
