#include "exper/experiment.h"

#include "stats/descriptive.h"

namespace netsample::exper {

Experiment::Experiment(std::uint64_t seed, double minutes) {
  synth::TraceModel model(synth::sdsc_minutes_config(minutes, seed));
  trace_ = model.generate();
  compute_population_stats();
}

Experiment::Experiment(trace::Trace t) : trace_(std::move(t)) {
  compute_population_stats();
}

void Experiment::compute_population_stats() {
  // One fused pass: both accumulators see their values in the same order as
  // separate sizes/interarrivals() traversals would, without materializing
  // the gap vector or reading the trace twice.
  stats::MomentAccumulator size_acc, iat_acc;
  const auto view = trace_.view();
  for (std::size_t i = 0; i < view.size(); ++i) {
    size_acc.add(static_cast<double>(view[i].size));
    if (i > 0) {
      iat_acc.add(static_cast<double>(
          (view[i].timestamp - view[i - 1].timestamp).usec));
    }
  }
  mean_size_ = size_acc.mean();
  sd_size_ = size_acc.population_stddev();
  mean_iat_ = iat_acc.mean();
  sd_iat_ = iat_acc.population_stddev();
}

const core::BinnedTraceCache& Experiment::binned_cache() const {
  std::call_once(cache_once_, [this] {
    cache_ = std::make_unique<core::BinnedTraceCache>(trace_.view());
  });
  return *cache_;
}

trace::TraceView Experiment::interval(double seconds) const {
  return trace_.view().prefix_duration(MicroDuration::from_seconds(seconds));
}

}  // namespace netsample::exper
