#include "exper/experiment.h"

#include "stats/descriptive.h"

namespace netsample::exper {

Experiment::Experiment(std::uint64_t seed, double minutes) {
  synth::TraceModel model(synth::sdsc_minutes_config(minutes, seed));
  trace_ = model.generate();
  compute_population_stats();
}

Experiment::Experiment(trace::Trace t) : trace_(std::move(t)) {
  compute_population_stats();
}

void Experiment::compute_population_stats() {
  stats::MomentAccumulator size_acc, iat_acc;
  const auto view = trace_.view();
  for (const auto& p : view) size_acc.add(static_cast<double>(p.size));
  for (double g : view.interarrivals()) iat_acc.add(g);
  mean_size_ = size_acc.mean();
  sd_size_ = size_acc.population_stddev();
  mean_iat_ = iat_acc.mean();
  sd_iat_ = iat_acc.population_stddev();
}

trace::TraceView Experiment::interval(double seconds) const {
  return trace_.view().prefix_duration(MicroDuration::from_seconds(seconds));
}

}  // namespace netsample::exper
