#include "net/checksum.h"

namespace netsample::net {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (std::uint32_t{data[i]} << 8) | std::uint32_t{data[i + 1]};
  }
  if (i < data.size()) {
    // Odd trailing byte is padded with zero on the right (RFC 1071).
    acc += std::uint32_t{data[i]} << 8;
  }
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) {
    acc = (acc & 0xFFFFu) + (acc >> 16);
  }
  return static_cast<std::uint16_t>(~acc & 0xFFFFu);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

}  // namespace netsample::net
