// The Internet checksum (RFC 1071) used by IPv4/ICMP headers and, with a
// pseudo-header, by TCP and UDP. Needed so the pcap writer can emit packets
// that external tools accept, and so the reader can validate captures.
#pragma once

#include <cstdint>
#include <span>

namespace netsample::net {

/// One's-complement sum of a byte buffer, folded to 16 bits (not inverted).
/// Exposed separately so callers can chain buffers (header + pseudo-header).
[[nodiscard]] std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                                std::uint32_t acc = 0);

/// Fold an accumulated sum and invert: the final RFC 1071 checksum value.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t acc);

/// Convenience: checksum of a single contiguous buffer.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace netsample::net
