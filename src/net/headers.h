// IPv4 / TCP / UDP / ICMP header parsing and construction.
//
// The characterization layer (the paper's Table 1 objects) needs exactly the
// fields NNStat/ARTS read from each sampled header: total length, protocol,
// source/destination address, and transport ports. We parse from raw bytes
// into plain structs ("header views") and can also serialize structs back to
// wire format, with correct checksums, so synthetic traces round-trip through
// the pcap layer and external tools.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "util/status.h"

namespace netsample::net {

/// IP protocol numbers we classify (the paper's protocol-over-IP object).
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,
  kTcp = 6,
  kEgp = 8,
  kUdp = 17,
  kOther = 255,
};

[[nodiscard]] constexpr const char* ip_proto_name(std::uint8_t proto) {
  switch (proto) {
    case 1: return "ICMP";
    case 2: return "IGMP";
    case 6: return "TCP";
    case 8: return "EGP";
    case 17: return "UDP";
    default: return "other";
  }
}

/// Decoded IPv4 header. Field names follow RFC 791.
struct Ipv4Header {
  std::uint8_t version{4};
  std::uint8_t ihl{5};          // header length in 32-bit words
  std::uint8_t tos{0};
  std::uint16_t total_length{0};  // header + payload, bytes
  std::uint16_t identification{0};
  std::uint8_t flags{0};        // 3 bits
  std::uint16_t fragment_offset{0};  // in 8-byte units
  std::uint8_t ttl{64};
  std::uint8_t protocol{0};
  std::uint16_t header_checksum{0};
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t header_bytes() const { return std::size_t{ihl} * 4; }
  [[nodiscard]] std::size_t payload_bytes() const {
    return total_length >= header_bytes() ? total_length - header_bytes() : 0;
  }
};

/// Decoded TCP header (options are preserved as raw bytes).
struct TcpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t data_offset{5};  // in 32-bit words
  std::uint8_t flags{0};        // CWR..FIN bits
  std::uint16_t window{0};
  std::uint16_t checksum{0};
  std::uint16_t urgent{0};

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  [[nodiscard]] std::size_t header_bytes() const {
    return std::size_t{data_offset} * 4;
  }
};

/// Decoded UDP header.
struct UdpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint16_t length{0};  // header + payload
  std::uint16_t checksum{0};
};

/// Decoded ICMP header (type/code/checksum + rest-of-header word).
struct IcmpHeader {
  std::uint8_t type{0};
  std::uint8_t code{0};
  std::uint16_t checksum{0};
  std::uint32_t rest{0};
};

/// Parse an IPv4 header from `data` (which must start at the IP header).
/// Fails on short buffers, non-IPv4 versions, and bad IHL.
[[nodiscard]] StatusOr<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> data);

/// Parse transport headers from the bytes *after* the IP header.
[[nodiscard]] StatusOr<TcpHeader> parse_tcp(std::span<const std::uint8_t> data);
[[nodiscard]] StatusOr<UdpHeader> parse_udp(std::span<const std::uint8_t> data);
[[nodiscard]] StatusOr<IcmpHeader> parse_icmp(std::span<const std::uint8_t> data);

/// Verify the IPv4 header checksum over the raw header bytes.
[[nodiscard]] bool ipv4_checksum_ok(std::span<const std::uint8_t> header_bytes);

/// Serialize an IPv4 header (computing the checksum) followed by `payload`
/// into a fresh wire-format packet. `hdr.total_length` is overwritten with
/// the correct value.
[[nodiscard]] std::vector<std::uint8_t> build_ipv4_packet(
    Ipv4Header hdr, std::span<const std::uint8_t> payload);

/// Serialize a TCP header (no options beyond data_offset padding) and payload
/// into the TCP segment bytes, computing the checksum with the IPv4
/// pseudo-header for `src`/`dst`.
[[nodiscard]] std::vector<std::uint8_t> build_tcp_segment(
    const TcpHeader& hdr, Ipv4Address src, Ipv4Address dst,
    std::span<const std::uint8_t> payload);

/// Serialize a UDP datagram, computing length and checksum.
[[nodiscard]] std::vector<std::uint8_t> build_udp_datagram(
    UdpHeader hdr, Ipv4Address src, Ipv4Address dst,
    std::span<const std::uint8_t> payload);

}  // namespace netsample::net
