// Well-known TCP/UDP port registry (the 1993 subset NSFNET reported on).
//
// The T1/T3 "TCP/UDP port distribution, well-known subset" object (Table 1)
// counted traffic against a fixed list of service ports and lumped the rest
// into an "other" bucket. We reproduce that list from the period's
// /etc/services plus the NSFNET reports.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace netsample::net {

struct WellKnownPort {
  std::uint16_t port;
  std::string_view name;
};

/// The registry, in ascending port order.
[[nodiscard]] std::span<const WellKnownPort> well_known_ports();

/// Look up a port's service name; nullopt if it is not in the subset.
[[nodiscard]] std::optional<std::string_view> well_known_port_name(std::uint16_t port);

/// True if the port is in the well-known subset.
[[nodiscard]] bool is_well_known_port(std::uint16_t port);

/// The port an NNStat-style object keys a packet on: the *well-known* end if
/// exactly one end is well-known, the lower port if both are, nullopt if
/// neither (those packets land in the "other" bucket).
[[nodiscard]] std::optional<std::uint16_t> service_port(std::uint16_t src_port,
                                                        std::uint16_t dst_port);

}  // namespace netsample::net
