#include "net/ports.h"

#include <algorithm>
#include <array>

namespace netsample::net {

namespace {

// Period-accurate well-known services (1993 /etc/services subset that the
// NSFNET reports broke out). Kept sorted by port for binary search.
constexpr std::array<WellKnownPort, 22> kPorts = {{
    {20, "ftp-data"},
    {21, "ftp"},
    {23, "telnet"},
    {25, "smtp"},
    {37, "time"},
    {42, "nameserver"},
    {43, "whois"},
    {53, "domain"},
    {69, "tftp"},
    {70, "gopher"},
    {79, "finger"},
    {80, "www"},
    {109, "pop2"},
    {110, "pop3"},
    {111, "sunrpc"},
    {119, "nntp"},
    {123, "ntp"},
    {161, "snmp"},
    {179, "bgp"},
    {512, "exec"},
    {513, "login"},
    {514, "shell"},
}};

}  // namespace

std::span<const WellKnownPort> well_known_ports() { return kPorts; }

std::optional<std::string_view> well_known_port_name(std::uint16_t port) {
  const auto it = std::lower_bound(
      kPorts.begin(), kPorts.end(), port,
      [](const WellKnownPort& w, std::uint16_t p) { return w.port < p; });
  if (it != kPorts.end() && it->port == port) return it->name;
  return std::nullopt;
}

bool is_well_known_port(std::uint16_t port) {
  return well_known_port_name(port).has_value();
}

std::optional<std::uint16_t> service_port(std::uint16_t src_port,
                                          std::uint16_t dst_port) {
  const bool src_wk = is_well_known_port(src_port);
  const bool dst_wk = is_well_known_port(dst_port);
  if (src_wk && dst_wk) return std::min(src_port, dst_port);
  if (src_wk) return src_port;
  if (dst_wk) return dst_port;
  return std::nullopt;
}

}  // namespace netsample::net
