#include "net/ipv4.h"

#include <cstdio>

namespace netsample::net {

StatusOr<Ipv4Address> Ipv4Address::parse(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int matched =
      std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return Status(StatusCode::kInvalidArgument,
                  "not a dotted-quad IPv4 address: '" + s + "'");
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::string NetworkNumber::to_string() const {
  Ipv4Address as_addr(prefix_);
  return as_addr.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace netsample::net
