#include "net/headers.h"

#include "net/checksum.h"
#include "util/byteorder.h"

namespace netsample::net {

namespace {

Status short_buffer(const char* what, std::size_t need, std::size_t have) {
  return Status(StatusCode::kDataLoss,
                std::string(what) + ": need " + std::to_string(need) +
                    " bytes, have " + std::to_string(have));
}

/// IPv4 pseudo-header contribution to the TCP/UDP checksum.
std::uint32_t pseudo_header_sum(Ipv4Address src, Ipv4Address dst,
                                std::uint8_t proto, std::uint16_t length) {
  std::uint8_t buf[12];
  store_be32(buf, src.value());
  store_be32(buf + 4, dst.value());
  buf[8] = 0;
  buf[9] = proto;
  store_be16(buf + 10, length);
  return checksum_accumulate(std::span<const std::uint8_t>(buf, sizeof(buf)));
}

}  // namespace

StatusOr<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> data) {
  if (data.size() < 20) return short_buffer("IPv4 header", 20, data.size());
  Ipv4Header h;
  h.version = data[0] >> 4;
  h.ihl = data[0] & 0x0F;
  if (h.version != 4) {
    return Status(StatusCode::kInvalidArgument,
                  "not IPv4: version=" + std::to_string(h.version));
  }
  if (h.ihl < 5) {
    return Status(StatusCode::kDataLoss,
                  "bad IHL: " + std::to_string(h.ihl));
  }
  if (data.size() < h.header_bytes()) {
    return short_buffer("IPv4 options", h.header_bytes(), data.size());
  }
  h.tos = data[1];
  h.total_length = load_be16(data.data() + 2);
  h.identification = load_be16(data.data() + 4);
  const std::uint16_t frag = load_be16(data.data() + 6);
  h.flags = static_cast<std::uint8_t>(frag >> 13);
  h.fragment_offset = frag & 0x1FFF;
  h.ttl = data[8];
  h.protocol = data[9];
  h.header_checksum = load_be16(data.data() + 10);
  h.src = Ipv4Address(load_be32(data.data() + 12));
  h.dst = Ipv4Address(load_be32(data.data() + 16));
  if (h.total_length < h.header_bytes()) {
    return Status(StatusCode::kDataLoss,
                  "total_length smaller than header: " +
                      std::to_string(h.total_length));
  }
  return h;
}

StatusOr<TcpHeader> parse_tcp(std::span<const std::uint8_t> data) {
  if (data.size() < 20) return short_buffer("TCP header", 20, data.size());
  TcpHeader h;
  h.src_port = load_be16(data.data());
  h.dst_port = load_be16(data.data() + 2);
  h.seq = load_be32(data.data() + 4);
  h.ack = load_be32(data.data() + 8);
  h.data_offset = data[12] >> 4;
  h.flags = data[13];
  h.window = load_be16(data.data() + 14);
  h.checksum = load_be16(data.data() + 16);
  h.urgent = load_be16(data.data() + 18);
  if (h.data_offset < 5) {
    return Status(StatusCode::kDataLoss,
                  "bad TCP data offset: " + std::to_string(h.data_offset));
  }
  return h;
}

StatusOr<UdpHeader> parse_udp(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return short_buffer("UDP header", 8, data.size());
  UdpHeader h;
  h.src_port = load_be16(data.data());
  h.dst_port = load_be16(data.data() + 2);
  h.length = load_be16(data.data() + 4);
  h.checksum = load_be16(data.data() + 6);
  if (h.length < 8) {
    return Status(StatusCode::kDataLoss,
                  "bad UDP length: " + std::to_string(h.length));
  }
  return h;
}

StatusOr<IcmpHeader> parse_icmp(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return short_buffer("ICMP header", 8, data.size());
  IcmpHeader h;
  h.type = data[0];
  h.code = data[1];
  h.checksum = load_be16(data.data() + 2);
  h.rest = load_be32(data.data() + 4);
  return h;
}

bool ipv4_checksum_ok(std::span<const std::uint8_t> header_bytes) {
  if (header_bytes.size() < 20) return false;
  const std::size_t ihl_bytes = std::size_t{header_bytes[0] & 0x0Fu} * 4;
  if (ihl_bytes < 20 || header_bytes.size() < ihl_bytes) return false;
  // A valid header sums (including the stored checksum) to 0xFFFF, so the
  // finished (inverted) checksum over the whole header is zero.
  return internet_checksum(header_bytes.first(ihl_bytes)) == 0;
}

std::vector<std::uint8_t> build_ipv4_packet(Ipv4Header hdr,
                                            std::span<const std::uint8_t> payload) {
  hdr.version = 4;
  if (hdr.ihl < 5) hdr.ihl = 5;
  const std::size_t hlen = hdr.header_bytes();
  hdr.total_length = static_cast<std::uint16_t>(hlen + payload.size());

  std::vector<std::uint8_t> out(hlen + payload.size(), 0);
  out[0] = static_cast<std::uint8_t>((hdr.version << 4) | hdr.ihl);
  out[1] = hdr.tos;
  store_be16(out.data() + 2, hdr.total_length);
  store_be16(out.data() + 4, hdr.identification);
  store_be16(out.data() + 6,
             static_cast<std::uint16_t>((std::uint16_t{hdr.flags} << 13) |
                                        hdr.fragment_offset));
  out[8] = hdr.ttl;
  out[9] = hdr.protocol;
  // checksum bytes 10..11 left zero for computation
  store_be32(out.data() + 12, hdr.src.value());
  store_be32(out.data() + 16, hdr.dst.value());
  const std::uint16_t csum =
      internet_checksum(std::span<const std::uint8_t>(out.data(), hlen));
  store_be16(out.data() + 10, csum);
  std::copy(payload.begin(), payload.end(), out.begin() + static_cast<std::ptrdiff_t>(hlen));
  return out;
}

std::vector<std::uint8_t> build_tcp_segment(const TcpHeader& hdr, Ipv4Address src,
                                            Ipv4Address dst,
                                            std::span<const std::uint8_t> payload) {
  const std::size_t hlen = std::size_t{hdr.data_offset < 5 ? std::uint8_t{5}
                                                           : hdr.data_offset} * 4;
  std::vector<std::uint8_t> out(hlen + payload.size(), 0);
  store_be16(out.data(), hdr.src_port);
  store_be16(out.data() + 2, hdr.dst_port);
  store_be32(out.data() + 4, hdr.seq);
  store_be32(out.data() + 8, hdr.ack);
  out[12] = static_cast<std::uint8_t>((hlen / 4) << 4);
  out[13] = hdr.flags;
  store_be16(out.data() + 14, hdr.window);
  // checksum bytes 16..17 left zero for computation
  store_be16(out.data() + 18, hdr.urgent);
  std::copy(payload.begin(), payload.end(), out.begin() + static_cast<std::ptrdiff_t>(hlen));

  std::uint32_t acc = pseudo_header_sum(src, dst, 6 /*TCP*/,
                                        static_cast<std::uint16_t>(out.size()));
  acc = checksum_accumulate(out, acc);
  store_be16(out.data() + 16, checksum_finish(acc));
  return out;
}

std::vector<std::uint8_t> build_udp_datagram(UdpHeader hdr, Ipv4Address src,
                                             Ipv4Address dst,
                                             std::span<const std::uint8_t> payload) {
  hdr.length = static_cast<std::uint16_t>(8 + payload.size());
  std::vector<std::uint8_t> out(hdr.length, 0);
  store_be16(out.data(), hdr.src_port);
  store_be16(out.data() + 2, hdr.dst_port);
  store_be16(out.data() + 4, hdr.length);
  // checksum bytes 6..7 left zero for computation
  std::copy(payload.begin(), payload.end(), out.begin() + 8);

  std::uint32_t acc = pseudo_header_sum(src, dst, 17 /*UDP*/, hdr.length);
  acc = checksum_accumulate(out, acc);
  std::uint16_t csum = checksum_finish(acc);
  if (csum == 0) csum = 0xFFFF;  // RFC 768: transmitted zero means "no checksum"
  store_be16(out.data() + 6, csum);
  return out;
}

}  // namespace netsample::net
