// IPv4 addresses and 1993-era classful network numbers.
//
// The NSFNET statistics objects (Table 1 of the paper) aggregate traffic by
// *network number*, which in 1993 meant classful A/B/C prefixes: the NNStat
// and ARTS "net matrix" objects keyed source/destination pairs on these.
// We implement the classful rules exactly so the characterization layer can
// reproduce that keying.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace netsample::net {

/// An IPv4 address held in host byte order for convenient arithmetic.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation ("132.239.1.5").
  static StatusOr<Ipv4Address> parse(const std::string& s);

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(addr_ >> (8 * (3 - i)));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t addr_{0};
};

/// Classful address classes as defined pre-CIDR (RFC 791 era).
enum class AddressClass : std::uint8_t { kA, kB, kC, kD /*multicast*/, kE /*reserved*/ };

[[nodiscard]] constexpr AddressClass address_class(Ipv4Address a) {
  const std::uint32_t v = a.value();
  if ((v & 0x80000000u) == 0) return AddressClass::kA;
  if ((v & 0xC0000000u) == 0x80000000u) return AddressClass::kB;
  if ((v & 0xE0000000u) == 0xC0000000u) return AddressClass::kC;
  if ((v & 0xF0000000u) == 0xE0000000u) return AddressClass::kD;
  return AddressClass::kE;
}

/// A classful network number: the address masked to its class prefix.
/// This is the aggregation key of the NSFNET source/destination matrix.
class NetworkNumber {
 public:
  constexpr NetworkNumber() = default;

  /// Derive the network number of a host address under classful rules.
  static constexpr NetworkNumber of(Ipv4Address a) {
    switch (address_class(a)) {
      case AddressClass::kA:
        return NetworkNumber(a.value() & 0xFF000000u, 8);
      case AddressClass::kB:
        return NetworkNumber(a.value() & 0xFFFF0000u, 16);
      case AddressClass::kC:
        return NetworkNumber(a.value() & 0xFFFFFF00u, 24);
      case AddressClass::kD:
      case AddressClass::kE:
        // Multicast/reserved space has no network number; key on the
        // full address so such packets never alias a real network.
        return NetworkNumber(a.value(), 32);
    }
    return NetworkNumber(a.value(), 32);
  }

  [[nodiscard]] constexpr std::uint32_t prefix() const { return prefix_; }
  [[nodiscard]] constexpr int prefix_len() const { return prefix_len_; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(NetworkNumber, NetworkNumber) = default;

 private:
  constexpr NetworkNumber(std::uint32_t prefix, int len)
      : prefix_(prefix), prefix_len_(len) {}

  std::uint32_t prefix_{0};
  int prefix_len_{0};
};

}  // namespace netsample::net

template <>
struct std::hash<netsample::net::Ipv4Address> {
  std::size_t operator()(const netsample::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<netsample::net::NetworkNumber> {
  std::size_t operator()(const netsample::net::NetworkNumber& n) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{n.prefix()} << 8) | static_cast<std::uint64_t>(n.prefix_len()));
  }
};
