#include "stats/boxplot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/descriptive.h"

namespace netsample::stats {

BoxplotSummary boxplot(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("boxplot of empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());

  BoxplotSummary b;
  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);
  double sum = 0.0;
  for (double x : sorted) sum += x;
  b.mean = sum / static_cast<double>(sorted.size());

  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;

  // Whiskers extend to the most extreme data point within the fences.
  b.whisker_low = b.q1;
  b.whisker_high = b.q3;
  for (double x : sorted) {
    if (x >= lo_fence) {
      b.whisker_low = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < lo_fence || x > hi_fence) b.outliers.push_back(x);
  }
  return b;
}

std::string boxplot_ascii(const BoxplotSummary& b, double axis_min,
                          double axis_max, std::size_t width) {
  if (width < 10) width = 10;
  std::string line(width, ' ');
  const double span = axis_max - axis_min;
  auto col = [&](double v) -> std::size_t {
    if (span <= 0.0) return 0;
    double t = (v - axis_min) / span;
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<std::size_t>(std::lround(t * static_cast<double>(width - 1)));
  };
  const std::size_t wl = col(b.whisker_low);
  const std::size_t q1 = col(b.q1);
  const std::size_t md = col(b.median);
  const std::size_t q3 = col(b.q3);
  const std::size_t wh = col(b.whisker_high);
  for (std::size_t i = wl; i <= wh && i < width; ++i) line[i] = '-';
  for (std::size_t i = q1; i <= q3 && i < width; ++i) line[i] = '=';
  line[wl] = '|';
  line[wh] = '|';
  line[q1] = '[';
  line[q3] = ']';
  line[md] = 'M';
  for (double o : b.outliers) line[col(o)] = 'o';
  return line;
}

}  // namespace netsample::stats
