// Misra-Gries heavy-hitters summary: space-bounded frequent-item counting.
//
// The paper's closing problem (Section 8): the source-destination matrix is
// hard to characterize under sampling "mainly because of its large size".
// The operational fix is to not keep the full matrix at all: a Misra-Gries
// summary with m counters tracks every key whose true frequency exceeds
// n/(m+1), using O(m) memory regardless of the key universe, with a
// deterministic undercount bound of n/(m+1). Combined with packet sampling
// it gives the "big cells are fine" part of the matrix at bounded cost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace netsample::stats {

template <typename Key>
class MisraGries {
 public:
  /// `counters` is the summary size m; throws std::invalid_argument if 0.
  explicit MisraGries(std::size_t counters) : capacity_(counters) {
    if (counters == 0) {
      throw std::invalid_argument("MisraGries requires at least one counter");
    }
  }

  void add(const Key& key, std::uint64_t weight = 1) {
    total_ += weight;
    const auto it = counts_.find(key);
    if (it != counts_.end()) {
      it->second += weight;
      return;
    }
    if (counts_.size() < capacity_) {
      counts_.emplace(key, weight);
      return;
    }
    // Decrement-all step, batched by the smallest surviving decrement.
    std::uint64_t decrement = weight;
    for (const auto& [k, c] : counts_) {
      (void)k;
      decrement = std::min(decrement, c);
    }
    std::uint64_t remaining_weight = weight - decrement;
    for (auto iter = counts_.begin(); iter != counts_.end();) {
      iter->second -= decrement;
      if (iter->second == 0) {
        iter = counts_.erase(iter);
      } else {
        ++iter;
      }
    }
    if (remaining_weight > 0) add(key, remaining_weight);
  }

  /// Estimated count for a key (an undercount by at most error_bound()).
  [[nodiscard]] std::uint64_t estimate(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Maximum possible undercount: total / (m + 1).
  [[nodiscard]] std::uint64_t error_bound() const {
    return total_ / (capacity_ + 1);
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Tracked keys ordered by descending estimated count.
  [[nodiscard]] std::vector<std::pair<Key, std::uint64_t>> top(
      std::size_t n) const {
    std::vector<std::pair<Key, std::uint64_t>> out(counts_.begin(),
                                                   counts_.end());
    std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    if (out.size() > n) out.resize(n);
    return out;
  }

  /// Merge another summary (standard MG merge: add then re-trim). The
  /// resulting error bound is the sum of both inputs' bounds.
  void merge(const MisraGries& other) {
    for (const auto& [k, c] : other.counts_) add(k, c);
    total_ += other.total_ - other.summarized_total();
  }

 private:
  /// Sum of retained counters (used to avoid double counting in merge).
  [[nodiscard]] std::uint64_t summarized_total() const {
    std::uint64_t s = 0;
    for (const auto& [k, c] : counts_) {
      (void)k;
      s += c;
    }
    return s;
  }

  std::size_t capacity_;
  std::uint64_t total_{0};
  std::map<Key, std::uint64_t> counts_;
};

}  // namespace netsample::stats
