// P^2 streaming quantile estimation (Jain & Chlamtac, 1985).
//
// Operational motivation: a collection agent that wants the median packet
// size or the 95th-percentile interarrival time cannot afford to store the
// observations (that is the whole premise of the paper). The P^2 algorithm
// maintains five markers and estimates any fixed quantile online in O(1)
// memory, with parabolic interpolation between markers.
#pragma once

#include <array>
#include <cstdint>

namespace netsample::stats {

class P2Quantile {
 public:
  /// Estimate the q-quantile, q in (0,1). Throws std::domain_error otherwise.
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Current estimate. For fewer than 5 observations, the exact sample
  /// quantile of what has been seen. Throws std::logic_error when empty.
  [[nodiscard]] double value() const;

 private:
  void parabolic_or_linear_adjust(int i, double d);

  double q_;
  std::uint64_t count_{0};
  std::array<double, 5> heights_{};       // marker heights
  std::array<double, 5> positions_{};     // actual marker positions (1-based)
  std::array<double, 5> desired_{};       // desired marker positions
  std::array<double, 5> increments_{};    // desired position increments
};

}  // namespace netsample::stats
