// Boxplot summaries in the convention of the paper's Figure 6.
//
// Footnote 4 of the paper: "the dotted lines (or 'whiskers') ... extend to
// the extreme values of data or 1.5 times the interquartile difference from
// the center, whichever is less." We reproduce exactly that rule and also
// report the points falling outside the whiskers (outliers).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace netsample::stats {

struct BoxplotSummary {
  double min{0};
  double whisker_low{0};
  double q1{0};
  double median{0};
  double q3{0};
  double whisker_high{0};
  double max{0};
  double mean{0};
  std::vector<double> outliers;  // points beyond the whiskers
};

/// Compute a boxplot summary; throws std::invalid_argument on empty input.
[[nodiscard]] BoxplotSummary boxplot(std::span<const double> data);

/// Render the box as a one-line ASCII glyph over [axis_min, axis_max],
/// e.g. "  |----[==M==]--------|   " — used by the fig06 bench output.
[[nodiscard]] std::string boxplot_ascii(const BoxplotSummary& b, double axis_min,
                                        double axis_max, std::size_t width);

}  // namespace netsample::stats
