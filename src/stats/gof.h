// Goodness-of-fit tests: Pearson chi-squared, Kolmogorov-Smirnov, and
// Anderson-Darling.
//
// The paper uses the chi-squared *test* to check whether a sample is
// statistically compatible with the parent trace (Section 5.2, Section 6)
// and cites KS and Anderson-Darling as alternatives that have "proven
// difficult to apply" to wide-area traffic; we implement all three so users
// can make the comparison themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace netsample::stats {

/// Result of a Pearson chi-squared test of observed vs expected bin counts.
struct ChiSquaredResult {
  double statistic{0};        // sum (O-E)^2 / E
  double degrees_of_freedom{0};
  double significance{1.0};   // P(Chi2_dof >= statistic), the p-value
  std::size_t bins_used{0};   // bins with nonzero expected count
  bool expected_counts_adequate{true};  // every used bin had E >= 5
};

/// Pearson test of `observed` against `expected` (same length). Bins with
/// zero expected count are skipped. `fitted_parameters` is subtracted from
/// the degrees of freedom along with the customary 1.
/// Throws std::invalid_argument on length mismatch or fewer than 2 usable bins.
[[nodiscard]] ChiSquaredResult chi_squared_test(std::span<const double> observed,
                                                std::span<const double> expected,
                                                int fitted_parameters = 0);

/// Chi-squared test of homogeneity: are two sets of bin counts draws from
/// the same underlying distribution? Unlike chi_squared_test, neither side
/// is treated as ground truth -- expected counts come from the pooled
/// proportions, and dof = (bins - 1) * (samples - 1) = bins - 1 here.
/// Used to compare two *samples* (e.g. two sampling disciplines' outputs)
/// without access to the parent population.
/// Throws std::invalid_argument on mismatched lengths, empty inputs, or
/// fewer than 2 usable bins.
[[nodiscard]] ChiSquaredResult chi_squared_homogeneity(
    std::span<const double> counts_a, std::span<const double> counts_b);

/// Result of a Kolmogorov-Smirnov test.
struct KsResult {
  double statistic{0};   // sup |F1 - F2|
  double significance{1.0};
};

/// One-sample KS: empirical CDF of `data` (unsorted ok, copied) against a
/// continuous reference CDF. Significance from the asymptotic Kolmogorov
/// distribution with Stephens' small-sample correction.
[[nodiscard]] KsResult ks_test(std::span<const double> data,
                               const std::function<double(double)>& cdf);

/// Two-sample KS: compares the empirical CDFs of two data sets.
[[nodiscard]] KsResult ks_test_two_sample(std::span<const double> a,
                                          std::span<const double> b);

/// Result of an Anderson-Darling A^2 test against a continuous CDF.
struct AndersonDarlingResult {
  double a_squared{0};
  /// Approximate p-value for the case of a fully-specified null distribution
  /// (no fitted parameters), per Marsaglia & Marsaglia's asymptotic fit.
  double significance{1.0};
};

[[nodiscard]] AndersonDarlingResult anderson_darling_test(
    std::span<const double> data, const std::function<double(double)>& cdf);

}  // namespace netsample::stats
