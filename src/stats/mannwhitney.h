// Mann-Whitney U test (Wilcoxon rank-sum): a nonparametric comparison of
// two samples of scores.
//
// The paper: correlation among samples "inhibits statistically precise
// statements about the superiority of one sampling method over another. On
// the other hand this approach does allow us to easily order sampling
// methods based on their performance." The rank-sum test makes that
// ordering statement quantitative without assuming phi scores are normal:
// it tests whether one method's phi replications are stochastically larger
// than another's.
#pragma once

#include <span>

namespace netsample::stats {

struct MannWhitneyResult {
  double u{0};            // U statistic of sample A
  double z{0};            // normal approximation (tie-corrected)
  double significance{1}; // two-sided p-value
  /// P(random a > random b) + 0.5 P(tie): the common-language effect size.
  /// 0.5 means indistinguishable; 1.0 means every a exceeds every b.
  double prob_a_greater{0.5};
};

/// Two-sided test of H0: samples a and b come from the same distribution.
/// Uses the normal approximation with tie correction (adequate for the
/// replication counts used here, n >= ~8 total).
/// Throws std::invalid_argument if either sample is empty.
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

}  // namespace netsample::stats
