#include "stats/histogram.h"

#include <algorithm>
#include <stdexcept>

#include "util/format.h"

namespace netsample::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("histogram edges must be strictly increasing");
  }
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::equal_width(double width, std::size_t bin_count) {
  if (width <= 0 || bin_count == 0) {
    throw std::invalid_argument("equal_width requires width>0 and bins>0");
  }
  std::vector<double> edges;
  edges.reserve(bin_count);
  // n interior edges -> n+1 bins; we want bin_count bins total including the
  // open-ended top bin, so emit bin_count-1 interior edges above zero... but
  // the natural NNStat layout is [0,w),[w,2w),...,[ (n-1)w, inf ), with an
  // implicit empty (-inf,0) bin we fold away by starting edges at 0.
  for (std::size_t i = 0; i < bin_count; ++i) {
    edges.push_back(width * static_cast<double>(i));
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::with_counts(std::vector<double> edges,
                                 std::vector<std::uint64_t> counts) {
  Histogram h(std::move(edges));
  if (counts.size() != h.counts_.size()) {
    throw std::invalid_argument("with_counts: counts/edges size mismatch");
  }
  h.counts_ = std::move(counts);
  h.total_ = 0;
  for (const auto c : h.counts_) h.total_ += c;
  return h;
}

std::size_t Histogram::bin_index(double x) const {
  // upper_bound over edges: number of edges <= x gives the bin index.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(it - edges_.begin());
}

void Histogram::add(double x, std::uint64_t weight) {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

std::vector<double> Histogram::proportions() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> Histogram::scaled_counts(double target_total) const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double scale = target_total / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) * scale;
  }
  return out;
}

std::string Histogram::bin_label(std::size_t bin) const {
  if (edges_.empty()) return "(all)";
  if (bin == 0) return "< " + fmt_double(edges_.front(), 0);
  if (bin >= edges_.size()) return ">= " + fmt_double(edges_.back(), 0);
  return "[" + fmt_double(edges_[bin - 1], 0) + ", " + fmt_double(edges_[bin], 0) +
         ")";
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

void Histogram::merge(const Histogram& other) {
  if (other.edges_ != edges_) {
    throw std::invalid_argument("merging histograms with different edges");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

}  // namespace netsample::stats
