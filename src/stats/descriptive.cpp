#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsample::stats {

void MomentAccumulator::add(double x) {
  // Pebay's single-pass update of central moments.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - m1_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  m1_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double MomentAccumulator::population_variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double MomentAccumulator::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double MomentAccumulator::population_stddev() const {
  return std::sqrt(population_variance());
}

double MomentAccumulator::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double MomentAccumulator::skewness() const {
  if (n_ == 0 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double MomentAccumulator::kurtosis() const {
  if (n_ == 0 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_);
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.m1_ - m1_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m1 = m1_ + delta * nb / n;
  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  n_ += other.n_;
  m1_ = m1;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("quantile of empty data");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

std::vector<double> quantiles(std::span<const double> data,
                              std::span<const double> qs) {
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

Summary summarize(std::span<const double> data) {
  Summary s;
  if (data.empty()) return s;
  MomentAccumulator acc;
  for (double x : data) acc.add(x);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());

  s.n = acc.count();
  s.min = acc.min();
  s.max = acc.max();
  s.p5 = quantile_sorted(sorted, 0.05);
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.mean = acc.mean();
  s.stddev = acc.population_stddev();
  s.skewness = acc.skewness();
  s.kurtosis = acc.kurtosis();
  return s;
}

}  // namespace netsample::stats
