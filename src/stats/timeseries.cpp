#include "stats/timeseries.h"

#include <stdexcept>

namespace netsample::stats {

namespace {

double mean_of(std::span<const double> data) {
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

}  // namespace

double autocorrelation(std::span<const double> data, std::size_t lag) {
  if (data.size() < 2 || lag >= data.size()) {
    throw std::invalid_argument("autocorrelation: lag out of range");
  }
  const double m = mean_of(data);
  double var = 0.0;
  for (double x : data) var += (x - m) * (x - m);
  if (var == 0.0) {
    throw std::invalid_argument("autocorrelation of constant series");
  }
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < data.size(); ++i) {
    cov += (data[i] - m) * (data[i + lag] - m);
  }
  return cov / var;
}

std::vector<double> acf(std::span<const double> data, std::size_t max_lag) {
  std::vector<double> out;
  const std::size_t limit = data.size() > 1 ? data.size() - 1 : 0;
  for (std::size_t k = 1; k <= max_lag && k <= limit; ++k) {
    out.push_back(autocorrelation(data, k));
  }
  return out;
}

double index_of_dispersion(std::span<const double> counts, std::size_t window) {
  if (window == 0 || counts.size() < window) {
    throw std::invalid_argument("index_of_dispersion: bad window");
  }
  // Aggregate into non-overlapping windows.
  std::vector<double> sums;
  sums.reserve(counts.size() / window);
  for (std::size_t i = 0; i + window <= counts.size(); i += window) {
    double s = 0.0;
    for (std::size_t j = 0; j < window; ++j) s += counts[i + j];
    sums.push_back(s);
  }
  if (sums.size() < 2) {
    throw std::invalid_argument("index_of_dispersion: too few windows");
  }
  const double m = mean_of(sums);
  if (m == 0.0) return 0.0;
  double var = 0.0;
  for (double s : sums) var += (s - m) * (s - m);
  var /= static_cast<double>(sums.size());
  return var / m;
}

std::vector<IdcPoint> idc_curve(std::span<const double> counts,
                                std::size_t max_window) {
  std::vector<IdcPoint> out;
  for (std::size_t w = 1; w <= max_window && counts.size() / w >= 2; w *= 2) {
    out.push_back({w, index_of_dispersion(counts, w)});
  }
  return out;
}

}  // namespace netsample::stats
