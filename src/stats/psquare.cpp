#include "stats/psquare.h"

#include <algorithm>
#include <stdexcept>

namespace netsample::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::domain_error("P2Quantile requires q in (0,1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }

  // Find the cell k containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (move_right || move_left) {
      parabolic_or_linear_adjust(i, move_right ? 1.0 : -1.0);
    }
  }
}

void P2Quantile::parabolic_or_linear_adjust(int i, double d) {
  const double qp = heights_[i];
  const double np = positions_[i];
  const double n_lo = positions_[i - 1];
  const double n_hi = positions_[i + 1];
  const double q_lo = heights_[i - 1];
  const double q_hi = heights_[i + 1];

  // Piecewise-parabolic prediction.
  double candidate =
      qp + d / (n_hi - n_lo) *
               ((np - n_lo + d) * (q_hi - qp) / (n_hi - np) +
                (n_hi - np - d) * (qp - q_lo) / (np - n_lo));
  if (candidate <= q_lo || candidate >= q_hi) {
    // Fall back to linear prediction toward the neighbor in direction d.
    const double qn = d > 0 ? q_hi : q_lo;
    const double nn = d > 0 ? n_hi : n_lo;
    candidate = qp + d * (qn - qp) / (nn - np);
  }
  heights_[i] = candidate;
  positions_[i] += d;
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile::value on empty stream");
  if (count_ >= 5) return heights_[2];
  // Exact quantile of the few observations seen so far.
  std::array<double, 5> tmp = heights_;
  const auto n = static_cast<std::size_t>(count_);
  std::sort(tmp.begin(), tmp.begin() + static_cast<long>(n));
  const double pos = q_ * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= n) return tmp[n - 1];
  return tmp[lo] + frac * (tmp[lo + 1] - tmp[lo]);
}

}  // namespace netsample::stats
