// Fixed-edge histograms.
//
// The paper's entire scoring machinery works on binned counts: hand-chosen
// bins for the two targets (packet size, interarrival time), a 50-byte
// packet-length histogram and a 20-pps rate histogram for the NNStat
// objects. We provide one histogram type driven by an explicit edge list
// plus helpers for equal-width layouts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace netsample::stats {

/// A one-dimensional histogram over bins defined by interior edges.
///
/// `edges = {e0, e1, ..., em}` defines m+1 bins:
///   (-inf, e0), [e0, e1), ..., [e_{m-1}, e_m), [e_m, +inf)
/// i.e. interior edges are *lower bounds* of the bin to their right.
/// With no edges there is a single catch-all bin.
class Histogram {
 public:
  /// Edges must be strictly increasing; throws std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> edges);

  /// Equal-width layout: bins [0,w), [w,2w), ... , [ (n-1)w, +inf ).
  /// Reproduces the NNStat "granularity" histograms (50-byte, 20-pps).
  static Histogram equal_width(double width, std::size_t bin_count);

  /// Build a histogram directly from per-bin counts (counts.size() must be
  /// edges.size() + 1; throws std::invalid_argument otherwise). This is how
  /// the binned-trace fast path materializes histograms from prefix-sum
  /// tables without replaying add() per observation.
  static Histogram with_counts(std::vector<double> edges,
                               std::vector<std::uint64_t> counts);

  void add(double x, std::uint64_t weight = 1);

  /// Index of the bin x falls into.
  [[nodiscard]] std::size_t bin_index(double x) const;

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::span<const std::uint64_t> counts() const { return counts_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::span<const double> edges() const { return edges_; }

  /// Proportion of observations in each bin (empty histogram -> all zeros).
  [[nodiscard]] std::vector<double> proportions() const;

  /// Counts as doubles, rescaled so they sum to `target_total`. This is how
  /// sample histograms are scaled up to the population size before computing
  /// chi-square-family disparity metrics.
  [[nodiscard]] std::vector<double> scaled_counts(double target_total) const;

  /// Human-readable label of a bin, e.g. "[41, 181)" or "< 41" / ">= 3600".
  [[nodiscard]] std::string bin_label(std::size_t bin) const;

  /// Reset all counts to zero (the 15-minute collection cycle does this).
  void reset();

  /// Merge counts from a histogram with identical edges; throws on mismatch.
  void merge(const Histogram& other);

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace netsample::stats
