#include "stats/special.h"

#include <math.h>

#include <cmath>
#include <stdexcept>

namespace netsample::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Lower incomplete gamma by series expansion: good for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction: good for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(_POSIX_C_SOURCE)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("regularized_gamma_p requires a>0, x>=0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("regularized_gamma_q requires a>0, x>=0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_contfrac(a, x);
}

double chi_squared_cdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

double chi_squared_sf(double x, double k) {
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(k / 2.0, x / 2.0);
}

double chi_squared_quantile(double p, double k) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("chi_squared_quantile requires p in (0,1)");
  }
  if (k <= 0.0) {
    throw std::domain_error("chi_squared_quantile requires k > 0");
  }
  // Wilson-Hilferty approximation as the bracketing seed.
  const double z = normal_quantile(p);
  const double c = 2.0 / (9.0 * k);
  double x = k * std::pow(1.0 - c + z * std::sqrt(c), 3.0);
  if (x <= 0.0) x = 1e-8;

  // Expand a bracket around the seed, then bisect.
  double lo = x, hi = x;
  while (chi_squared_cdf(lo, k) > p && lo > 1e-300) lo /= 2.0;
  while (chi_squared_cdf(hi, k) < p && hi < 1e300) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi_squared_cdf(mid, k) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile requires p in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double z_for_confidence(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::domain_error("confidence must be in (0,1)");
  }
  return normal_quantile(0.5 + confidence / 2.0);
}

double kolmogorov_sf(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        sign * std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                        lambda * lambda);
    sum += term;
    if (std::fabs(term) < 1e-16) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

}  // namespace netsample::stats
