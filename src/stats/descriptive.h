// Descriptive statistics: streaming moments and quantiles.
//
// The paper reports population summaries as min / quartiles / 5%,95% /
// max / mean / standard deviation / skewness / kurtosis (Tables 2 and 3).
// Moments are accumulated with Welford-style online updates (numerically
// stable for the million-packet populations); quantiles use the standard
// linear-interpolation estimator (R type 7) over sorted data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netsample::stats {

/// Online accumulator for the first four central moments.
class MomentAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? m1_ : 0.0; }
  /// Population variance (divide by n): we treat the trace as the complete
  /// parent population per the paper's framing.
  [[nodiscard]] double population_variance() const;
  /// Sample variance (divide by n-1), for sample-based estimates.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double population_stddev() const;
  [[nodiscard]] double sample_stddev() const;
  /// Skewness g1 = m3 / m2^{3/2} (population form).
  [[nodiscard]] double skewness() const;
  /// Kurtosis m4 / m2^2 (NOT excess; the paper's Table 2 reports ~3 for
  /// near-normal distributions, so it uses the non-excess convention).
  [[nodiscard]] double kurtosis() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return m1_ * static_cast<double>(n_); }

  /// Merge another accumulator's observations into this one.
  void merge(const MomentAccumulator& other);

 private:
  std::uint64_t n_{0};
  double m1_{0}, m2_{0}, m3_{0}, m4_{0};
  double min_{0}, max_{0};
};

/// Quantile of *sorted* data by linear interpolation (R type 7).
/// q in [0,1]; q=0.5 is the median. Throws std::invalid_argument on empty.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> data,
                                            std::span<const double> qs);

/// Full summary in the layout of the paper's Table 2 / Table 3 rows.
struct Summary {
  std::uint64_t n{0};
  double min{0}, p5{0}, q1{0}, median{0}, q3{0}, p95{0}, max{0};
  double mean{0}, stddev{0}, skewness{0}, kurtosis{0};
};

/// Compute a Summary over the data (population stddev convention).
[[nodiscard]] Summary summarize(std::span<const double> data);

}  // namespace netsample::stats
