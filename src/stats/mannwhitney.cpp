#include "stats/mannwhitney.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace netsample::stats {

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mann_whitney_u: empty sample");
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  // Pool, sort, assign mid-ranks to ties.
  struct Entry {
    double value;
    bool from_a;
  };
  std::vector<Entry> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) pooled.push_back({v, true});
  for (double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Entry& x, const Entry& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    const double tied = static_cast<double>(j - i);
    // Mid-rank for the tied block spanning 1-based ranks [i+1, j].
    const double mid_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += mid_rank;
    }
    tie_correction += tied * tied * tied - tied;
    i = j;
  }

  const double u_a = rank_sum_a - na * (na + 1.0) / 2.0;

  MannWhitneyResult r;
  r.u = u_a;
  r.prob_a_greater = u_a / (na * nb);

  const double n = na + nb;
  const double mean_u = na * nb / 2.0;
  double var_u = na * nb / 12.0 *
                 ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values identical: no evidence of any difference.
    r.z = 0.0;
    r.significance = 1.0;
    return r;
  }
  // Continuity correction toward the mean.
  const double diff = u_a - mean_u;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  r.z = corrected / std::sqrt(var_u);
  r.significance = 2.0 * (1.0 - normal_cdf(std::fabs(r.z)));
  r.significance = std::clamp(r.significance, 0.0, 1.0);
  return r;
}

}  // namespace netsample::stats
