// Time-series statistics for characterizing traffic burstiness.
//
// The paper's headline result hinges on serial structure in the packet
// process (trains of closely spaced packets). These helpers quantify that
// structure so the workload calibration and the burstiness ablation can
// report it: the autocorrelation function of a series, and the index of
// dispersion for counts (IDC) -- variance/mean of counts in windows of
// growing size, flat at 1 for Poisson arrivals and growing for bursty ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netsample::stats {

/// Lag-k sample autocorrelation of `data` (biased estimator, the standard
/// ACF normalization). Throws std::invalid_argument if k >= data.size() or
/// data is constant/empty.
[[nodiscard]] double autocorrelation(std::span<const double> data, std::size_t lag);

/// ACF at lags 1..max_lag (clamped to data.size()-1).
[[nodiscard]] std::vector<double> acf(std::span<const double> data,
                                      std::size_t max_lag);

/// Index of dispersion for counts: given per-slot counts (e.g. packets per
/// second), IDC(m) = Var(sum of m consecutive slots) / Mean(sum of m slots).
/// For a Poisson process IDC(m) == 1 for all m; bursty/correlated traffic
/// has IDC growing with m.
[[nodiscard]] double index_of_dispersion(std::span<const double> counts,
                                         std::size_t window);

/// IDC at a ladder of window sizes (1, 2, 4, ... up to max_window).
struct IdcPoint {
  std::size_t window;
  double idc;
};
[[nodiscard]] std::vector<IdcPoint> idc_curve(std::span<const double> counts,
                                              std::size_t max_window);

}  // namespace netsample::stats
