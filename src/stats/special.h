// Special functions needed by the goodness-of-fit machinery.
//
// Implemented from scratch (series + continued fractions, Numerical-Recipes
// style) so the library has no dependency beyond libm. Accuracy is ~1e-12
// over the parameter ranges the experiments exercise; tests pin reference
// values from independent tables.
#pragma once

namespace netsample::stats {

/// ln |Gamma(x)|, safe to call concurrently. glibc's lgamma() writes the sign
/// of Gamma(x) to the process-global `signgam`, a data race when experiment
/// cells run in parallel; this wrapper uses the reentrant lgamma_r() where
/// available. All callers in this library pass x > 0, where the sign is +1.
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Domain: a > 0, x >= 0. Throws std::domain_error otherwise.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// CDF of the chi-squared distribution with k degrees of freedom.
[[nodiscard]] double chi_squared_cdf(double x, double k);

/// Survival function (upper tail): the chi-squared test's significance level
/// for an observed statistic x with k degrees of freedom.
[[nodiscard]] double chi_squared_sf(double x, double k);

/// Quantile (inverse CDF) of the chi-squared distribution with k degrees of
/// freedom: the x with chi_squared_cdf(x, k) == p. Wilson-Hilferty starting
/// point refined by bisection+Newton; |err| < 1e-10 over p in (0,1).
/// Throws std::domain_error for p outside (0,1) or k <= 0.
[[nodiscard]] double chi_squared_quantile(double p, double k);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile (inverse CDF), p in (0,1).
/// Acklam's rational approximation refined with one Halley step; |err|<1e-12.
[[nodiscard]] double normal_quantile(double p);

/// Two-sided z-value for a 100*(1-alpha)% confidence level, e.g.
/// z_for_confidence(0.95) == 1.959964... (the paper's 1.96).
[[nodiscard]] double z_for_confidence(double confidence);

/// Asymptotic Kolmogorov distribution tail: Q_KS(lambda) =
/// 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
[[nodiscard]] double kolmogorov_sf(double lambda);

}  // namespace netsample::stats
