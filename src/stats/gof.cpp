#include "stats/gof.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace netsample::stats {

ChiSquaredResult chi_squared_test(std::span<const double> observed,
                                  std::span<const double> expected,
                                  int fitted_parameters) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_squared_test: length mismatch");
  }
  ChiSquaredResult r;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      if (observed[i] > 0.0) {
        // Observations where none are expected: infinite disparity. Report a
        // huge but finite statistic so callers can still rank samples.
        r.statistic += observed[i] * 1e12;
      }
      continue;
    }
    const double diff = observed[i] - expected[i];
    r.statistic += diff * diff / expected[i];
    ++r.bins_used;
    if (expected[i] < 5.0) r.expected_counts_adequate = false;
  }
  if (r.bins_used < 2) {
    throw std::invalid_argument("chi_squared_test: fewer than 2 usable bins");
  }
  r.degrees_of_freedom =
      static_cast<double>(r.bins_used) - 1.0 - static_cast<double>(fitted_parameters);
  if (r.degrees_of_freedom < 1.0) r.degrees_of_freedom = 1.0;
  r.significance = chi_squared_sf(r.statistic, r.degrees_of_freedom);
  return r;
}

ChiSquaredResult chi_squared_homogeneity(std::span<const double> counts_a,
                                         std::span<const double> counts_b) {
  if (counts_a.size() != counts_b.size()) {
    throw std::invalid_argument("chi_squared_homogeneity: length mismatch");
  }
  double total_a = 0.0, total_b = 0.0;
  for (double v : counts_a) total_a += v;
  for (double v : counts_b) total_b += v;
  if (total_a <= 0.0 || total_b <= 0.0) {
    throw std::invalid_argument("chi_squared_homogeneity: empty sample");
  }
  const double total = total_a + total_b;

  ChiSquaredResult r;
  for (std::size_t i = 0; i < counts_a.size(); ++i) {
    const double row = counts_a[i] + counts_b[i];
    if (row <= 0.0) continue;
    const double ea = row * total_a / total;
    const double eb = row * total_b / total;
    const double da = counts_a[i] - ea;
    const double db = counts_b[i] - eb;
    r.statistic += da * da / ea + db * db / eb;
    ++r.bins_used;
    if (ea < 5.0 || eb < 5.0) r.expected_counts_adequate = false;
  }
  if (r.bins_used < 2) {
    throw std::invalid_argument(
        "chi_squared_homogeneity: fewer than 2 usable bins");
  }
  r.degrees_of_freedom = static_cast<double>(r.bins_used - 1);
  r.significance = chi_squared_sf(r.statistic, r.degrees_of_freedom);
  return r;
}

namespace {

/// Stephens' effective-n correction factor for the one-sample KS statistic.
double ks_significance(double d, double n_eff) {
  const double sq = std::sqrt(n_eff);
  return kolmogorov_sf((sq + 0.12 + 0.11 / sq) * d);
}

}  // namespace

KsResult ks_test(std::span<const double> data,
                 const std::function<double(double)>& cdf) {
  if (data.empty()) throw std::invalid_argument("ks_test: empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  return {d, ks_significance(d, n)};
}

KsResult ks_test_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_test_two_sample: empty data");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  const double n_eff = na * nb / (na + nb);
  return {d, ks_significance(d, n_eff)};
}

AndersonDarlingResult anderson_darling_test(
    std::span<const double> data, const std::function<double(double)>& cdf) {
  if (data.empty()) {
    throw std::invalid_argument("anderson_darling_test: empty data");
  }
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double dn = static_cast<double>(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Clamp the CDF away from {0,1}: real traffic CDFs are discrete at the
    // clock granularity and would otherwise produce log(0).
    double fi = cdf(sorted[i]);
    fi = std::clamp(fi, 1e-12, 1.0 - 1e-12);
    double fj = cdf(sorted[n - 1 - i]);
    fj = std::clamp(fj, 1e-12, 1.0 - 1e-12);
    s += (2.0 * static_cast<double>(i) + 1.0) * (std::log(fi) + std::log1p(-fj));
  }
  const double a2 = -dn - s / dn;

  // Asymptotic p-value for case 0 (fully-specified null distribution),
  // piecewise fit from D'Agostino & Stephens, "Goodness-of-Fit Techniques".
  double p;
  if (a2 <= 0.0) {
    p = 1.0;
  } else if (a2 < 0.2) {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2 - 223.73 * a2 * a2);
  } else if (a2 < 0.34) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2 - 59.938 * a2 * a2);
  } else if (a2 < 0.6) {
    p = std::exp(0.9177 - 4.279 * a2 - 1.38 * a2 * a2);
  } else if (a2 < 150.0) {
    p = std::exp(1.2937 - 5.709 * a2 + 0.0186 * a2 * a2);
  } else {
    // Beyond the fit's validity range the quadratic term misbehaves; the
    // p-value is zero to any representable precision anyway.
    p = 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  return {a2, p};
}

}  // namespace netsample::stats
