// `netsample serve`: the multi-tenant streaming scoring daemon.
//
// One Server multiplexes thousands of concurrent scoring sessions over a
// fixed pool of scoring lanes. The shape (docs/SERVING.md):
//
//   transports   shard::Transport connections (TCP via Listener, or any
//                adopted fd pair — tests use socketpairs), polled by one
//                protocol thread that never blocks on a session;
//   sessions     each owns a netsample::SessionSpec-configured
//                stream::Engine plus a bounded SpscRing of packet chunks;
//   scoring      a shared util::ThreadPool drains rings into engines.
//                A session is scheduled at most once at a time (an atomic
//                claim flag), so each engine stays single-threaded and
//                rows stay in order — NOT one thread per session;
//   budgets      per-tenant admission control (max sessions) and load
//                shedding (queued ring bytes, packets/sec token bucket),
//                the collector-style drop-under-pressure model applied to
//                ourselves. Shedding is session-granular, never
//                packet-granular: a survivor's packet sequence — and
//                therefore its rows — is byte-identical to an unloaded
//                run (the serve determinism contract).
//
// Rows reuse the watch vocabulary verbatim: the payload of every
// `ROWS <id> <json>` line is exactly the jsonl line `netsample watch`
// prints for the same input, which is what the CI serve-smoke byte-diff
// pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "shard/transport.h"

namespace netsample::serve {

/// Admission/shedding budget for one tenant. Zero means unlimited.
struct TenantBudget {
  std::size_t max_sessions{0};    // concurrent sessions (admission)
  std::size_t max_ring_bytes{0};  // queued-but-unscored packet bytes
  double max_pps{0};              // sustained packets/sec (1 s burst)
};

struct ServeOptions {
  /// "host:port" to listen on (port 0 = ephemeral); empty = no listener,
  /// sessions arrive only via adopt_client() (in-process tests).
  std::string listen{};
  /// Scoring lanes (ThreadPool threads); 0 = hardware default.
  std::size_t lanes{0};
  /// Budget for tenants without an explicit entry in `tenant_budgets`.
  TenantBudget default_budget{};
  std::map<std::string, TenantBudget> tenant_budgets{};
  /// Polled each loop iteration; true requests a drain-and-stop (the CLI
  /// wires the SIGTERM flag here). May be empty.
  std::function<bool()> stop_check{};
};

/// Point-in-time counters, also emitted on the STATS wire line.
struct ServeStats {
  std::uint64_t sessions_opened{0};
  std::uint64_t sessions_rejected{0};
  std::uint64_t sessions_shed{0};
  std::uint64_t sessions_closed{0};  // clean CLOSE -> CLOSED finishes
  std::uint64_t packets{0};          // FEED packets accepted into rings
  std::uint64_t rows{0};             // ROWS lines written
  std::size_t active_sessions{0};
  std::size_t clients{0};
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listener (when options.listen is set). Throws
  /// util::StatusError when the address cannot be bound.
  void start();

  /// "host:actual-port" of the bound listener ("" without one).
  [[nodiscard]] std::string address() const;

  /// Hand the server an already-connected client transport (tests,
  /// in-process harnesses). Thread-compatible with run(): call only
  /// before run() or from the run() thread.
  void adopt_client(std::unique_ptr<shard::Transport> transport);

  /// Serve until stop is requested (then drain: every open session is
  /// finished and gets its final ROWS + CLOSED before return) or — when
  /// running without a listener — until the last client disconnects.
  void run();

  /// Ask run() to drain and return. Thread-safe.
  void request_stop();

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace netsample::serve
