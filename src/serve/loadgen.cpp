#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "shard/transport.h"

namespace netsample::serve {

namespace {

using Clock = std::chrono::steady_clock;

enum class Phase { kPending, kOpened, kRejected, kShed, kClosed };

struct SessionState {
  std::string id;
  std::size_t group{0};
  std::size_t connection{0};
  Phase phase{Phase::kPending};
  std::vector<std::string> rows;  // payload after "ROWS <id> "
  Clock::time_point close_sent{};
  double latency_ms{-1};
};

/// Everything the reader threads share with the driver. One mutex for the
/// whole drill keeps the logic obvious; with thousands of sessions the
/// contended section is a map lookup plus a string move.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<SessionState> sessions;
  std::unordered_map<std::string, SessionState*> by_id;
  std::size_t open_connections{0};
  std::string wire_error;  // first ERROR line seen (diagnostic)
};

/// Parse one server line into the session state table.
void on_server_line(Shared& shared, const std::string& line) {
  const std::size_t sp1 = line.find(' ');
  const std::string verb = line.substr(0, sp1);
  std::lock_guard<std::mutex> lock(shared.mu);
  if (verb == "ERROR" || verb == "STATS") {
    if (verb == "ERROR" && shared.wire_error.empty()) shared.wire_error = line;
    return;
  }
  if (sp1 == std::string::npos) return;
  const std::size_t sp2 = std::min(line.find(' ', sp1 + 1), line.size());
  const std::string id = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto it = shared.by_id.find(id);
  if (it == shared.by_id.end()) return;
  SessionState& s = *it->second;
  if (verb == "OPENED") {
    s.phase = Phase::kOpened;
  } else if (verb == "REJECT") {
    s.phase = Phase::kRejected;
  } else if (verb == "ROWS") {
    if (sp2 < line.size()) s.rows.push_back(line.substr(sp2 + 1));
    return;  // not a phase change; no need to wake the driver
  } else if (verb == "SHED") {
    s.phase = Phase::kShed;
  } else if (verb == "CLOSED") {
    s.phase = Phase::kClosed;
    if (s.close_sent != Clock::time_point{}) {
      s.latency_ms = std::chrono::duration<double, std::milli>(
                         Clock::now() - s.close_sent)
                         .count();
    }
  } else {
    return;
  }
  shared.cv.notify_all();
}

void reader_loop(Shared& shared, shard::Transport& transport) {
  std::string line;
  for (;;) {
    const shard::ReadResult r = transport.read_line(&line);
    if (r == shard::ReadResult::kInterrupted) continue;
    if (r != shard::ReadResult::kLine) break;
    on_server_line(shared, line);
  }
  std::lock_guard<std::mutex> lock(shared.mu);
  --shared.open_connections;
  shared.cv.notify_all();
}

[[nodiscard]] bool all_out_of_phase(const Shared& shared, Phase phase) {
  return std::none_of(
      shared.sessions.begin(), shared.sessions.end(),
      [phase](const SessionState& s) { return s.phase == phase; });
}

[[nodiscard]] bool all_terminal(const Shared& shared) {
  return std::all_of(shared.sessions.begin(), shared.sessions.end(),
                     [](const SessionState& s) {
                       return s.phase != Phase::kPending &&
                              s.phase != Phase::kOpened;
                     });
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenOptions& options,
                          std::span<const trace::PacketRecord> packets) {
  LoadgenReport report;
  report.sessions = options.sessions;
  const auto fail = [&report](const std::string& why) {
    report.ok = false;
    if (report.error.empty()) report.error = why;
    return report;
  };
  if (options.sessions == 0) return fail("no sessions requested");
  if (packets.empty()) return fail("no packets to replay");
  const std::size_t connections =
      std::max<std::size_t>(1, std::min(options.connections, options.sessions));
  const std::size_t seed_groups =
      std::max<std::size_t>(1, options.seed_groups);
  const std::size_t feed_packets =
      std::max<std::size_t>(1, options.feed_packets);

  // Dial every connection before opening anything.
  std::vector<std::unique_ptr<shard::Transport>> transports;
  for (std::size_t c = 0; c < connections; ++c) {
    auto dialed = shard::dial(options.connect);
    if (!dialed.has_value()) {
      return fail("dial " + options.connect + ": " +
                  dialed.status().to_string());
    }
    transports.push_back(std::move(dialed).value());
  }

  Shared shared;
  shared.sessions.resize(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    SessionState& s = shared.sessions[i];
    s.id = "s" + std::to_string(i);
    s.group = i % seed_groups;
    s.connection = i % connections;
  }
  for (auto& s : shared.sessions) shared.by_id.emplace(s.id, &s);
  shared.open_connections = connections;

  std::vector<std::thread> readers;
  readers.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    readers.push_back(
        std::thread([&shared, t = transports[c].get()] { reader_loop(shared, *t); }));
  }
  // From here on every exit path must unblock and join the readers.
  const auto teardown = [&] {
    for (auto& t : transports) t->shutdown_write();
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait_for(lock, std::chrono::seconds(5),
                         [&] { return shared.open_connections == 0; });
    }
    for (auto& t : transports) t->close();
    for (auto& r : readers) r.join();
  };
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.timeout_s));
  const auto wait_until = [&](auto predicate) {
    std::unique_lock<std::mutex> lock(shared.mu);
    return shared.cv.wait_until(lock, deadline, [&] { return predicate(); });
  };
  const auto send = [&](std::size_t connection, const std::string& line) {
    return transports[connection]->write_line(line);
  };

  // Phase 1: OPEN everything, then wait for every verdict. All sessions
  // are genuinely concurrent before the first packet flows.
  for (const auto& s : shared.sessions) {
    SessionSpec spec = options.spec;
    spec.seed = options.spec.seed + s.group;
    if (!send(s.connection, "OPEN " + s.id + " " + encode_session_spec(spec))) {
      teardown();
      return fail("connection died during OPEN");
    }
  }
  if (!wait_until([&] {
        return all_out_of_phase(shared, Phase::kPending) ||
               shared.open_connections == 0;
      })) {
    teardown();
    return fail("timeout waiting for OPEN verdicts");
  }

  // Phase 2: round-robin FEED interleaving across all admitted sessions.
  const std::size_t chunk_count = (packets.size() + feed_packets - 1) / feed_packets;
  std::vector<std::string> payloads;
  payloads.reserve(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * feed_packets;
    const std::size_t end = std::min(begin + feed_packets, packets.size());
    payloads.push_back(
        encode_feed_payload(packets.subspan(begin, end - begin)));
  }
  for (std::size_t c = 0; c < chunk_count; ++c) {
    for (const auto& s : shared.sessions) {
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (s.phase != Phase::kOpened) continue;
      }
      if (!send(s.connection, "FEED " + s.id + " " + payloads[c])) {
        teardown();
        return fail("connection died during FEED");
      }
    }
  }

  // Phase 3: CLOSE (unless this is the SIGTERM-drain drill) and wait for
  // every session to reach a terminal state.
  if (options.close_sessions) {
    for (auto& s : shared.sessions) {
      bool is_open = false;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        is_open = s.phase == Phase::kOpened;
        if (is_open) s.close_sent = Clock::now();
      }
      if (is_open && !send(s.connection, "CLOSE " + s.id)) {
        teardown();
        return fail("connection died during CLOSE");
      }
    }
  }
  if (!wait_until([&] { return all_terminal(shared); })) {
    teardown();
    return fail(options.close_sessions
                    ? "timeout waiting for CLOSED"
                    : "timeout waiting for the daemon drain to CLOSED us");
  }
  teardown();

  // Tally.
  std::vector<double> latencies;
  std::map<std::size_t, const SessionState*> group_reference;
  for (const auto& s : shared.sessions) {
    switch (s.phase) {
      case Phase::kClosed: ++report.completed; break;
      case Phase::kShed: ++report.shed; break;
      case Phase::kRejected: ++report.rejected; break;
      default: break;
    }
    report.rows += s.rows.size();
    if (s.latency_ms >= 0) latencies.push_back(s.latency_ms);
    if (s.phase != Phase::kClosed) continue;
    // Cross-session determinism: within a seed group every completed
    // session saw the same packets with the same spec, so the ROWS
    // payload sequences must match byte for byte.
    const auto [it, inserted] = group_reference.emplace(s.group, &s);
    if (!inserted && it->second->rows != s.rows) {
      report.deterministic = false;
      if (report.error.empty()) {
        report.error = "cross-session nondeterminism: " + s.id +
                       " rows differ from " + it->second->id;
      }
    }
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.max_ms = latencies.back();
    const std::size_t idx =
        std::min(latencies.size() - 1,
                 static_cast<std::size_t>(
                     std::ceil(0.99 * static_cast<double>(latencies.size())) -
                     1));
    report.p99_ms = latencies[idx];
  }
  if (!options.dump_rows_path.empty()) {
    const auto it = shared.by_id.find("s0");
    if (it == shared.by_id.end() || it->second->phase != Phase::kClosed) {
      return fail("dump-rows: session s0 did not complete");
    }
    std::ofstream out(options.dump_rows_path, std::ios::binary);
    for (const auto& row : it->second->rows) out << row << "\n";
    if (!out) return fail("dump-rows: cannot write " + options.dump_rows_path);
  }
  if (report.completed == 0) {
    return fail(shared.wire_error.empty() ? "no session completed"
                                          : shared.wire_error);
  }
  if (!report.deterministic) return report;  // error already set
  if (options.p99_ms > 0 && report.p99_ms > options.p99_ms) {
    return fail("p99 latency " + std::to_string(report.p99_ms) +
                " ms exceeds bound " + std::to_string(options.p99_ms) + " ms");
  }
  report.ok = true;
  return report;
}

}  // namespace netsample::serve
