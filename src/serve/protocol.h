// The `netsample serve` session wire protocol (docs/SERVING.md).
//
// One client connection is one shard::Transport carrying newline-framed
// lines, exactly like the sweep lease wire. A connection multiplexes many
// sessions; every line names the session it concerns:
//
//   client -> server
//     OPEN <id> <spec>          spec = netsample::encode_session_spec()
//     FEED <id> <ts>:<len> ...  packets in arrival order (usec:bytes)
//     CLOSE <id>                no more FEEDs; flush and finish
//     STATS                     one-line server counters
//     BYE                       client departing; open sessions discarded
//
//   server -> client
//     OPENED <id>
//     REJECT <id> <reason> [detail...]   admission control said no
//     ROWS <id> <json>          one streaming row; the payload after the
//                               second space is byte-identical to a
//                               `netsample watch --format jsonl` line
//     SHED <id> <reason>        session dropped under pressure (terminal)
//     CLOSED <id> rows=N packets=N       clean finish (terminal)
//     STATS <k>=<v> ...
//     ERROR <detail...>         protocol violation; connection stays up
//
// FEED timestamps are salvaged with the same running-max clamp rule as
// stream::PcapSource (trace::TimePolicy::kClamp), so a serve session fed
// from a capture replay scores exactly what `netsample watch` scores on
// the same file. Strict framing is inherited from the transport: a torn
// line from a dying peer is discarded, never half-parsed.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "trace/packet_record.h"
#include "util/timeval.h"

namespace netsample::serve {

/// Session ids are client-chosen tokens of [A-Za-z0-9._-], at most this
/// long — the same alphabet as SessionSpec tenants, for the same reason
/// (they travel space-delimited on the wire).
inline constexpr std::size_t kMaxSessionIdLen = 64;

[[nodiscard]] bool valid_session_id(const std::string& id);

enum class ClientCommand {
  kOpen,
  kFeed,
  kClose,
  kStats,
  kBye,
};

/// One parsed client line.
struct ClientMessage {
  ClientCommand command{ClientCommand::kStats};
  std::string session_id;  // OPEN / FEED / CLOSE
  std::string payload;     // OPEN: encoded spec; FEED: packet tokens
};

/// Parse one client line. False on an unknown verb, a malformed session
/// id, or missing operands, with a human-readable reason in *error (the
/// server echoes it on an ERROR line).
[[nodiscard]] bool parse_client_line(const std::string& line,
                                     ClientMessage* msg, std::string* error);

/// Decoded FEED payload plus the salvage tally.
struct FeedChunk {
  std::vector<trace::PacketRecord> packets;
  std::size_t clamped{0};  // timestamps that ran backwards and were clamped
};

/// Parse a FEED payload ("<ts>:<len> ..."). `last_ts` is the session's
/// running-max timestamp, carried across FEED lines and updated here;
/// out-of-order timestamps are clamped to it and counted. False on any
/// malformed token (zero or oversized length, non-numeric fields) — the
/// session cannot be trusted past a garbled FEED and is shed.
[[nodiscard]] bool parse_feed_payload(const std::string& payload,
                                      MicroTime* last_ts, FeedChunk* out);

/// Encode packets as a FEED payload (the loadgen/test side of the codec).
[[nodiscard]] std::string encode_feed_payload(
    std::span<const trace::PacketRecord> packets);

}  // namespace netsample::serve
