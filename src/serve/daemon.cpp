#include "serve/serve.h"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netsample/result.h"
#include "netsample/session.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "stream/engine.h"
#include "stream/ring.h"
#include "trace/packet_record.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace netsample::serve {

namespace {

std::int64_t chunk_bytes(std::size_t packets) {
  return static_cast<std::int64_t>(packets * sizeof(trace::PacketRecord));
}

}  // namespace

/// Per-tenant accounting. active_sessions and the pps bucket belong to the
/// protocol thread; queued_bytes is shared with the scoring lanes.
struct TenantState {
  TenantBudget budget;
  std::size_t active_sessions{0};
  std::atomic<std::int64_t> queued_bytes{0};
  double tokens{0};
  bool bucket_primed{false};
  std::chrono::steady_clock::time_point last_refill{};
};

struct ClientState {
  std::unique_ptr<shard::Transport> transport;
  /// Serializes every line written to this transport — the protocol thread
  /// and any scoring lane emitting ROWS interleave whole lines, never bytes.
  std::mutex write_mu;
  /// Live sessions keyed by id. Protocol thread only.
  std::unordered_map<std::string, std::shared_ptr<struct Session>> sessions;
  /// Ids that reached a terminal state (CLOSED / SHED / REJECT): late FEEDs
  /// and CLOSEs for them are dropped instead of ERROR'd. Protocol thread.
  std::unordered_set<std::string> tombstones;
  bool closed{false};

  void send(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    (void)transport->write_line(line);  // false is sticky; sweep cleans up
  }
};

/// One scoring session. The protocol thread produces (FEED -> ring); at
/// most one pool task at a time consumes (the `scheduled` claim flag), so
/// the engine is effectively single-threaded and rows stay ordered.
struct Session {
  std::string id;
  SessionSpec spec;
  std::shared_ptr<ClientState> client;
  TenantState* tenant;
  util::CancelToken cancel;
  stream::SpscRing<std::vector<trace::PacketRecord>> ring;
  stream::Engine engine;

  MicroTime last_ts{};  // FEED clamp state; protocol thread only

  /// Exclusive drain claim: whoever flips false->true owns the session's
  /// engine until it stores false (or the session terminates).
  std::atomic<bool> scheduled{false};
  std::atomic<bool> close_requested{false};
  /// Terminal-shed claim: the first CAS from null wins and owns the
  /// transition; the value is always a string literal.
  std::atomic<const char*> shed_reason{nullptr};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> rows{0};

  Session(std::string sid, SessionSpec sp, std::shared_ptr<ClientState> c,
          TenantState* t)
      : id(std::move(sid)),
        spec(std::move(sp)),
        client(std::move(c)),
        tenant(t),
        ring(spec.ring_capacity),
        engine(session_lanes(spec), session_engine_options(spec, &cancel)) {
    if (spec.deadline_s > 0) cancel.set_deadline_after(spec.deadline_s);
  }

  [[nodiscard]] bool shed_claimed() const {
    return shed_reason.load(std::memory_order_acquire) != nullptr;
  }
  [[nodiscard]] bool claim_shed(const char* reason) {
    const char* expected = nullptr;
    return shed_reason.compare_exchange_strong(expected, reason,
                                               std::memory_order_acq_rel);
  }
};

struct Server::Impl {
  ServeOptions options;
  shard::Listener listener;
  bool has_listener{false};
  bool started{false};
  bool draining{false};
  std::atomic<bool> stop_flag{false};

  std::vector<std::shared_ptr<ClientState>> clients;
  std::map<std::string, std::unique_ptr<TenantState>> tenants;

  std::atomic<std::uint64_t> opened{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> closed_count{0};
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> rows{0};
  std::atomic<std::size_t> active_sessions{0};
  std::atomic<std::size_t> client_count{0};

  // OPEN admission is determined by client behavior alone; shed/close/row
  // tallies depend on scheduling and load, hence the nondeterministic tag.
  obs::Counter& c_opened = obs::registry().counter(
      "netsample_serve_sessions_opened_total", obs::Determinism::kDeterministic);
  obs::Counter& c_rejected = obs::registry().counter(
      "netsample_serve_sessions_rejected_total",
      obs::Determinism::kDeterministic);
  obs::Counter& c_shed = obs::registry().counter(
      "netsample_serve_sessions_shed_total",
      obs::Determinism::kNondeterministic);
  obs::Counter& c_closed = obs::registry().counter(
      "netsample_serve_sessions_closed_total",
      obs::Determinism::kNondeterministic);
  obs::Counter& c_packets = obs::registry().counter(
      "netsample_serve_packets_total", obs::Determinism::kNondeterministic);
  obs::Counter& c_rows = obs::registry().counter(
      "netsample_serve_rows_total", obs::Determinism::kNondeterministic);

  // Declared last so it is destroyed first: queued drain tasks reference
  // the members above and must finish before they go away.
  std::unique_ptr<util::ThreadPool> pool;

  explicit Impl(ServeOptions opts) : options(std::move(opts)) {
    pool = std::make_unique<util::ThreadPool>(options.lanes);
  }

  TenantState& tenant_for(const std::string& name) {
    auto it = tenants.find(name);
    if (it == tenants.end()) {
      auto state = std::make_unique<TenantState>();
      const auto budget_it = options.tenant_budgets.find(name);
      state->budget = budget_it != options.tenant_budgets.end()
                          ? budget_it->second
                          : options.default_budget;
      it = tenants.emplace(name, std::move(state)).first;
    }
    return *it->second;
  }

  // ---- scoring-lane side -------------------------------------------------

  void emit_rows(Session& s, const stream::WindowScore& score) {
    const auto& columns = session_row_columns();
    const auto cells = session_row_cells(score);
    std::lock_guard<std::mutex> lock(s.client->write_mu);
    for (const auto& row : cells) {
      (void)s.client->transport->write_line("ROWS " + s.id + " " +
                                            json_line(columns, row));
      s.rows.fetch_add(1, std::memory_order_relaxed);
      rows.fetch_add(1, std::memory_order_relaxed);
      c_rows.increment();
    }
  }

  /// Terminal shed: discard whatever is still queued, tell the client,
  /// mark done. Runs on a pool lane holding the drain claim.
  void shed_terminal(Session& s) {
    while (s.ring.size() > 0) {
      auto chunk = s.ring.pop();
      if (!chunk) break;
      s.tenant->queued_bytes.fetch_sub(chunk_bytes(chunk->size()),
                                       std::memory_order_relaxed);
    }
    const char* reason = s.shed_reason.load(std::memory_order_acquire);
    s.client->send(std::string("SHED ") + s.id + " " +
                   (reason != nullptr ? reason : "internal"));
    shed.fetch_add(1, std::memory_order_relaxed);
    c_shed.increment();
    s.done.store(true, std::memory_order_release);
  }

  /// Clean finish: final score, final ROWS, CLOSED. Pool lane, claimed.
  void finalize(Session& s) {
    try {
      emit_rows(s, s.engine.finish());
    } catch (const std::exception&) {
      (void)s.claim_shed("internal");
      shed_terminal(s);
      return;
    }
    s.client->send("CLOSED " + s.id + " rows=" +
                   std::to_string(s.rows.load(std::memory_order_relaxed)) +
                   " packets=" +
                   std::to_string(s.packets.load(std::memory_order_relaxed)));
    closed_count.fetch_add(1, std::memory_order_relaxed);
    c_closed.increment();
    s.done.store(true, std::memory_order_release);
  }

  /// The drain task: pop chunks, feed the engine, handle terminal
  /// transitions, release the claim only when there is truly nothing to do.
  void drain_session(const std::shared_ptr<Session>& s) {
    for (;;) {
      if (s->shed_claimed()) {
        shed_terminal(*s);
        return;
      }
      try {
        while (s->ring.size() > 0) {
          auto chunk = s->ring.pop();
          if (!chunk) break;
          s->tenant->queued_bytes.fetch_sub(chunk_bytes(chunk->size()),
                                            std::memory_order_relaxed);
          if (s->cancel.deadline_exceeded()) {
            (void)s->claim_shed("deadline");
            shed_terminal(*s);
            return;
          }
          s->engine.feed(*chunk);
          if (s->shed_claimed()) {
            shed_terminal(*s);
            return;
          }
        }
      } catch (const StatusError& e) {
        (void)s->claim_shed(e.status().code() == StatusCode::kDeadlineExceeded
                                ? "deadline"
                                : "cancelled");
        shed_terminal(*s);
        return;
      } catch (const std::exception&) {
        (void)s->claim_shed("input-error");
        shed_terminal(*s);
        return;
      }
      if (s->close_requested.load(std::memory_order_acquire) &&
          s->ring.size() == 0) {
        finalize(*s);
        return;
      }
      // Release the claim, then re-check: the protocol thread may have
      // pushed (or requested close/shed) between our empty check and the
      // release. Whoever wins the re-claim continues.
      s->scheduled.store(false, std::memory_order_release);
      if (s->ring.size() == 0 &&
          !s->close_requested.load(std::memory_order_acquire) &&
          !s->shed_claimed()) {
        return;
      }
      if (s->scheduled.exchange(true, std::memory_order_acq_rel)) return;
    }
  }

  // ---- protocol-thread side ----------------------------------------------

  void schedule(const std::shared_ptr<Session>& s) {
    if (s->done.load(std::memory_order_acquire)) return;
    if (s->scheduled.exchange(true, std::memory_order_acq_rel)) return;
    try {
      auto future = pool->submit([this, s] { drain_session(s); });
      (void)future;
    } catch (const std::runtime_error&) {
      s->scheduled.store(false, std::memory_order_release);
    }
  }

  void request_shed(const std::shared_ptr<Session>& s, const char* reason) {
    if (s->done.load(std::memory_order_acquire)) return;
    if (!s->claim_shed(reason)) return;
    s->cancel.cancel();  // unwedge a mid-feed engine promptly
    schedule(s);
  }

  void reject(ClientState& client, const std::string& id,
              const std::string& reason) {
    client.send("REJECT " + id + " " + reason);
    rejected.fetch_add(1, std::memory_order_relaxed);
    c_rejected.increment();
    // Tombstone so in-flight FEED/CLOSE lines for the rejected id are
    // dropped silently. Live sessions are looked up before tombstones, so
    // a duplicate-id reject cannot shadow the session that owns the id.
    if (client.sessions.count(id) == 0) client.tombstones.insert(id);
  }

  void handle_open(const std::shared_ptr<ClientState>& client,
                   const std::string& id, const std::string& payload) {
    if (client->sessions.count(id) != 0 || client->tombstones.count(id) != 0) {
      reject(*client, id, "duplicate-id");
      return;
    }
    if (draining) {
      reject(*client, id, "draining");
      return;
    }
    SessionSpec spec;
    if (!decode_session_spec(payload, &spec)) {
      reject(*client, id, "bad-spec");
      return;
    }
    if (const Status st = validate_session_spec(spec); !st.is_ok()) {
      reject(*client, id, "invalid-spec " + st.message());
      return;
    }
    TenantState& tenant = tenant_for(spec.tenant);
    if (tenant.budget.max_sessions > 0 &&
        tenant.active_sessions >= tenant.budget.max_sessions) {
      reject(*client, id, "sessions-budget");
      return;
    }
    std::shared_ptr<Session> session;
    try {
      session = std::make_shared<Session>(id, std::move(spec), client, &tenant);
    } catch (const std::exception&) {
      reject(*client, id, "invalid-spec");
      return;
    }
    Session* raw = session.get();
    session->engine.on_snapshot(
        [this, raw](const stream::WindowScore& w) { emit_rows(*raw, w); });
    ++tenant.active_sessions;
    active_sessions.fetch_add(1, std::memory_order_relaxed);
    client->sessions.emplace(id, std::move(session));
    opened.fetch_add(1, std::memory_order_relaxed);
    c_opened.increment();
    client->send("OPENED " + id);
  }

  void handle_feed(const std::shared_ptr<ClientState>& client,
                   const std::string& id, const std::string& payload) {
    const auto it = client->sessions.find(id);
    if (it == client->sessions.end()) {
      if (client->tombstones.count(id) == 0) {
        client->send("ERROR FEED unknown session " + id);
      }
      return;  // tombstoned: late FEED to a finished/rejected session
    }
    const std::shared_ptr<Session>& s = it->second;
    if (s->done.load(std::memory_order_acquire) || s->shed_claimed()) return;
    if (s->close_requested.load(std::memory_order_acquire)) {
      client->send("ERROR FEED after CLOSE " + id);
      return;
    }
    FeedChunk chunk;
    if (!parse_feed_payload(payload, &s->last_ts, &chunk)) {
      request_shed(s, "input-error");
      return;
    }
    TenantState& tenant = *s->tenant;
    if (tenant.budget.max_pps > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (!tenant.bucket_primed) {
        tenant.tokens = tenant.budget.max_pps;  // a full 1 s burst to start
        tenant.bucket_primed = true;
      } else {
        const double dt =
            std::chrono::duration<double>(now - tenant.last_refill).count();
        tenant.tokens = std::min(tenant.budget.max_pps,
                                 tenant.tokens + dt * tenant.budget.max_pps);
      }
      tenant.last_refill = now;
      if (static_cast<double>(chunk.packets.size()) > tenant.tokens) {
        request_shed(s, "pps-budget");
        return;
      }
      tenant.tokens -= static_cast<double>(chunk.packets.size());
    }
    const std::int64_t bytes = chunk_bytes(chunk.packets.size());
    if (tenant.budget.max_ring_bytes > 0 &&
        tenant.queued_bytes.load(std::memory_order_relaxed) + bytes >
            static_cast<std::int64_t>(tenant.budget.max_ring_bytes)) {
      request_shed(s, "ring-bytes");
      return;
    }
    const std::uint64_t count = chunk.packets.size();
    // A full ring with no budget breach is backpressure, not loss: the
    // protocol thread is the ring's sole producer, so once size() drops
    // below capacity this push cannot fail. Re-schedule the drain and wait
    // (bounded); only a lane pool that cannot make progress at all trips
    // the terminal ring-full shed — which, like every shed, never touches
    // another session's packet sequence.
    bool pushed = false;
    for (int spin = 0; spin < 5000; ++spin) {
      if (s->ring.size() < s->spec.ring_capacity) {
        pushed = s->ring.try_push(std::move(chunk.packets));
        break;
      }
      schedule(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (s->done.load(std::memory_order_acquire) || s->shed_claimed()) return;
    }
    if (!pushed) {
      request_shed(s, "ring-full");
      return;
    }
    tenant.queued_bytes.fetch_add(bytes, std::memory_order_relaxed);
    s->packets.fetch_add(count, std::memory_order_relaxed);
    packets.fetch_add(count, std::memory_order_relaxed);
    c_packets.add(count);
    schedule(s);
  }

  void handle_close(const std::shared_ptr<ClientState>& client,
                    const std::string& id) {
    const auto it = client->sessions.find(id);
    if (it == client->sessions.end()) {
      if (client->tombstones.count(id) == 0) {
        client->send("ERROR CLOSE unknown session " + id);
      }
      return;  // tombstoned: the session already reached a terminal state
    }
    const std::shared_ptr<Session>& s = it->second;
    if (s->done.load(std::memory_order_acquire) || s->shed_claimed()) return;
    if (s->close_requested.exchange(true, std::memory_order_acq_rel)) return;
    schedule(s);
  }

  void handle_stats(ClientState& client) {
    client.send(
        "STATS active=" + std::to_string(active_sessions.load()) +
        " opened=" + std::to_string(opened.load()) +
        " rejected=" + std::to_string(rejected.load()) +
        " shed=" + std::to_string(shed.load()) +
        " closed=" + std::to_string(closed_count.load()) +
        " packets=" + std::to_string(packets.load()) +
        " rows=" + std::to_string(rows.load()));
  }

  void drop_client(const std::shared_ptr<ClientState>& client) {
    if (client->closed) return;
    client->closed = true;
    for (auto& [id, s] : client->sessions) request_shed(s, "disconnect");
    std::lock_guard<std::mutex> lock(client->write_mu);
    client->transport->close();
  }

  void handle_line(const std::shared_ptr<ClientState>& client,
                   const std::string& line) {
    ClientMessage msg;
    std::string error;
    if (!parse_client_line(line, &msg, &error)) {
      client->send("ERROR " + error);
      return;
    }
    switch (msg.command) {
      case ClientCommand::kOpen:
        handle_open(client, msg.session_id, msg.payload);
        break;
      case ClientCommand::kFeed:
        handle_feed(client, msg.session_id, msg.payload);
        break;
      case ClientCommand::kClose:
        handle_close(client, msg.session_id);
        break;
      case ClientCommand::kStats:
        handle_stats(*client);
        break;
      case ClientCommand::kBye:
        drop_client(client);
        break;
    }
  }

  /// Retire finished sessions (protocol thread): reclaim any residual ring
  /// bytes a racing FEED queued after the terminal drain, release the
  /// tenant slot, tombstone the id. Then drop fully-departed clients.
  void sweep() {
    for (auto& client : clients) {
      for (auto it = client->sessions.begin(); it != client->sessions.end();) {
        Session& s = *it->second;
        if (!s.done.load(std::memory_order_acquire)) {
          ++it;
          continue;
        }
        while (s.ring.size() > 0) {
          auto chunk = s.ring.pop();
          if (!chunk) break;
          s.tenant->queued_bytes.fetch_sub(chunk_bytes(chunk->size()),
                                           std::memory_order_relaxed);
        }
        --s.tenant->active_sessions;
        active_sessions.fetch_sub(1, std::memory_order_relaxed);
        client->tombstones.insert(it->first);
        it = client->sessions.erase(it);
      }
    }
    std::erase_if(clients, [](const std::shared_ptr<ClientState>& c) {
      return (c->closed || c->transport->is_closed()) && c->sessions.empty();
    });
    client_count.store(clients.size(), std::memory_order_relaxed);
  }

  void begin_drain() {
    draining = true;
    if (has_listener) listener.close();
    for (auto& client : clients) {
      for (auto& [id, s] : client->sessions) {
        if (s->done.load(std::memory_order_acquire) || s->shed_claimed()) {
          continue;
        }
        if (!s->close_requested.exchange(true, std::memory_order_acq_rel)) {
          schedule(s);
        }
      }
    }
  }

  void run() {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<ClientState>> polled;
    for (;;) {
      const bool stop_now =
          stop_flag.load(std::memory_order_relaxed) ||
          (options.stop_check && options.stop_check());
      if (stop_now && !draining) begin_drain();
      sweep();
      if (draining) {
        bool busy = false;
        for (const auto& c : clients) busy = busy || !c->sessions.empty();
        if (!busy) return;
      } else if (!has_listener && clients.empty()) {
        return;  // adopted-transport mode: last client departed
      }

      fds.clear();
      polled.clear();
      if (has_listener && !draining) {
        fds.push_back({listener.fd(), POLLIN, 0});
      }
      for (const auto& client : clients) {
        if (client->closed || client->transport->is_closed()) continue;
        fds.push_back({client->transport->poll_fd(), POLLIN, 0});
        polled.push_back(client);
      }
      if (fds.empty()) {
        (void)::poll(nullptr, 0, 2);  // drain tick: wait for lanes to finish
        continue;
      }
      const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
      if (ready <= 0) continue;  // timeout or EINTR: loop re-checks stop

      std::size_t fd_index = 0;
      if (has_listener && !draining) {
        if ((fds[0].revents & POLLIN) != 0) {
          while (auto transport = listener.accept_connection()) {
            auto client = std::make_shared<ClientState>();
            client->transport = std::move(transport);
            clients.push_back(std::move(client));
          }
          client_count.store(clients.size(), std::memory_order_relaxed);
        }
        fd_index = 1;
      }
      std::vector<std::string> lines;
      for (std::size_t i = 0; i < polled.size(); ++i, ++fd_index) {
        if ((fds[fd_index].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        const auto& client = polled[i];
        lines.clear();
        const shard::ReadResult r = client->transport->drain(&lines);
        for (const auto& line : lines) handle_line(client, line);
        if (r == shard::ReadResult::kClosed) drop_client(client);
      }
    }
  }
};

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

void Server::start() {
  if (impl_->started) return;
  impl_->started = true;
  if (impl_->options.listen.empty()) return;
  auto listener = shard::Listener::open(impl_->options.listen);
  if (!listener.has_value()) throw StatusError(listener.status());
  impl_->listener = std::move(listener).value();
  impl_->has_listener = true;
}

std::string Server::address() const {
  return impl_->has_listener ? impl_->listener.address() : std::string();
}

void Server::adopt_client(std::unique_ptr<shard::Transport> transport) {
  auto client = std::make_shared<ClientState>();
  client->transport = std::move(transport);
  impl_->clients.push_back(std::move(client));
  impl_->client_count.store(impl_->clients.size(), std::memory_order_relaxed);
}

void Server::run() {
  if (!impl_->started) start();
  impl_->run();
}

void Server::request_stop() {
  impl_->stop_flag.store(true, std::memory_order_relaxed);
}

ServeStats Server::stats() const {
  ServeStats out;
  out.sessions_opened = impl_->opened.load(std::memory_order_relaxed);
  out.sessions_rejected = impl_->rejected.load(std::memory_order_relaxed);
  out.sessions_shed = impl_->shed.load(std::memory_order_relaxed);
  out.sessions_closed = impl_->closed_count.load(std::memory_order_relaxed);
  out.packets = impl_->packets.load(std::memory_order_relaxed);
  out.rows = impl_->rows.load(std::memory_order_relaxed);
  out.active_sessions = impl_->active_sessions.load(std::memory_order_relaxed);
  out.clients = impl_->client_count.load(std::memory_order_relaxed);
  return out;
}

}  // namespace netsample::serve
