// Load generator for `netsample serve` (the `netsample loadgen`
// subcommand and the CI serve-smoke drill).
//
// Replays one in-memory packet sequence as N concurrent sessions spread
// over C connections: all OPENs first (true concurrency, not N sequential
// sessions), then round-robin FEED interleaving so every session's chunks
// contend with every other's, then CLOSE and a latency-stamped wait for
// CLOSED. Two assertions ride along:
//
//   latency        p99 of CLOSE->CLOSED (the enqueue-to-row flush path
//                  through ring + pool + engine + transport) against a
//                  caller-supplied bound;
//   determinism    sessions share the packet sequence and, within a seed
//                  group, the spec — so their ROWS payload sequences must
//                  be byte-identical however the daemon interleaved them.
//                  Any divergence is cross-session nondeterminism, the one
//                  thing the serve architecture must never exhibit.
//
// With close_sessions=false the driver skips CLOSE and waits for the
// daemon to finish the sessions itself — the SIGTERM drain drill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "netsample/session.h"
#include "trace/packet_record.h"

namespace netsample::serve {

struct LoadgenOptions {
  std::string connect;           // daemon "host:port"
  std::size_t sessions{64};
  std::size_t connections{8};    // transports the sessions multiplex over
  netsample::SessionSpec spec;   // template; see seed_groups
  /// Session i runs spec.seed + (i % seed_groups). 1 = every session
  /// identical (the strongest determinism check); sessions = all distinct.
  std::size_t seed_groups{1};
  std::size_t feed_packets{512};  // packets per FEED line
  /// Assert p99 CLOSE->CLOSED latency <= this many ms (0 = report only).
  double p99_ms{0};
  /// Write session s0's ROWS payload lines here (byte-diff vs watch).
  std::string dump_rows_path{};
  /// False: never send CLOSE; wait for the daemon's drain to CLOSED us.
  bool close_sessions{true};
  double timeout_s{120};
};

struct LoadgenReport {
  bool ok{false};
  std::string error;         // first failure, empty when ok
  std::size_t sessions{0};
  std::size_t completed{0};  // reached CLOSED
  std::size_t shed{0};
  std::size_t rejected{0};
  std::uint64_t rows{0};     // ROWS lines received, all sessions
  double p99_ms{0};          // 0 when no latencies were measured
  double max_ms{0};
  bool deterministic{true};
};

/// Drive the drill. Failures (dial errors, timeouts, nondeterminism, a
/// missed p99 bound) come back in the report, never as exceptions.
[[nodiscard]] LoadgenReport run_loadgen(
    const LoadgenOptions& options,
    std::span<const trace::PacketRecord> packets);

}  // namespace netsample::serve
