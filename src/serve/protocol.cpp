#include "serve/protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace netsample::serve {

namespace {

/// Split off the next space-delimited token starting at *pos; empty when
/// exhausted. Consecutive spaces are a framing error surfaced as an empty
/// token by the callers' "missing operand" checks.
std::string next_token(const std::string& line, std::size_t* pos) {
  if (*pos >= line.size()) return {};
  const std::size_t space = std::min(line.find(' ', *pos), line.size());
  std::string token = line.substr(*pos, space - *pos);
  *pos = space + 1;
  return token;
}

bool parse_u64(const char* begin, const char* end, std::uint64_t* out) {
  if (begin == end) return false;
  char* parse_end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &parse_end, 10);
  if (errno != 0 || parse_end != end) return false;
  *out = v;
  return true;
}

}  // namespace

bool valid_session_id(const std::string& id) {
  if (id.empty() || id.size() > kMaxSessionIdLen) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool parse_client_line(const std::string& line, ClientMessage* msg,
                       std::string* error) {
  std::size_t pos = 0;
  const std::string verb = next_token(line, &pos);
  const auto fail = [error](const std::string& why) {
    *error = why;
    return false;
  };
  if (verb == "STATS") {
    if (pos <= line.size()) return fail("STATS takes no operands");
    msg->command = ClientCommand::kStats;
    msg->session_id.clear();
    msg->payload.clear();
    return true;
  }
  if (verb == "BYE") {
    if (pos <= line.size()) return fail("BYE takes no operands");
    msg->command = ClientCommand::kBye;
    msg->session_id.clear();
    msg->payload.clear();
    return true;
  }
  if (verb != "OPEN" && verb != "FEED" && verb != "CLOSE") {
    return fail("unknown verb \"" + verb + "\"");
  }
  const std::string id = next_token(line, &pos);
  if (!valid_session_id(id)) return fail(verb + ": bad session id");
  msg->session_id = id;
  if (verb == "CLOSE") {
    if (pos <= line.size()) return fail("CLOSE takes only a session id");
    msg->command = ClientCommand::kClose;
    msg->payload.clear();
    return true;
  }
  // OPEN and FEED carry the rest of the line as payload.
  if (pos > line.size()) return fail(verb + ": missing payload");
  msg->command = verb == "OPEN" ? ClientCommand::kOpen : ClientCommand::kFeed;
  msg->payload = line.substr(pos);
  if (msg->payload.empty()) return fail(verb + ": missing payload");
  return true;
}

bool parse_feed_payload(const std::string& payload, MicroTime* last_ts,
                        FeedChunk* out) {
  out->packets.clear();
  out->clamped = 0;
  const char* const base = payload.c_str();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t space = std::min(payload.find(' ', pos), payload.size());
    const std::size_t colon = payload.find(':', pos);
    if (colon == std::string::npos || colon >= space) return false;
    std::uint64_t ts = 0;
    std::uint64_t len = 0;
    if (!parse_u64(base + pos, base + colon, &ts)) return false;
    if (!parse_u64(base + colon + 1, base + space, &len)) return false;
    if (len == 0 || len > 65535) return false;
    if (ts < last_ts->usec) {
      ts = last_ts->usec;  // PcapSource's running-max salvage rule
      ++out->clamped;
    }
    last_ts->usec = ts;
    trace::PacketRecord record;
    record.timestamp = MicroTime{ts};
    record.size = static_cast<std::uint16_t>(len);
    out->packets.push_back(record);
    pos = space + 1;
  }
  return !out->packets.empty();
}

std::string encode_feed_payload(
    std::span<const trace::PacketRecord> packets) {
  std::string out;
  out.reserve(packets.size() * 12);
  char buf[48];
  for (const auto& p : packets) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 ":%u", p.timestamp.usec,
                  static_cast<unsigned>(p.size));
    if (!out.empty()) out += ' ';
    out += buf;
  }
  return out;
}

}  // namespace netsample::serve
