// The facade's unified result envelope and row emitter.
//
// Before PR 5 the repo grew three ad-hoc result shapes: exper::RunReport
// (typed outcomes), the figure binaries' "CSV,..." stdout rows, and the
// `netsample impair` hand-rolled table/CSV duo. This header folds their
// *presentation* into one interface:
//
//   Table          — column names + string cells, the lingua franca
//   emit()         — render a Table as an aligned text table, CSV, or
//                    JSON lines
//   csv_line() /   — single-row helpers for streaming emitters that cannot
//   json_line()      buffer a whole Table (e.g. `netsample watch`)
//   Result<T>      — Status + typed value + presentation-ready Table
//   as_result()    — adapters from the typed shapes (RunReport today)
//
// Old entry points honored the deprecation policy and are gone: bench::csv
// shipped one release as a [[deprecated]] wrapper over csv_line and was
// removed in v1.1 — see docs/API.md, "Deprecation policy".
#pragma once

#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exper/parallel.h"
#include "shard/grid.h"
#include "util/status.h"

namespace netsample {

/// Presentation-ready tabular data: column names plus rows of string cells.
struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Throws std::invalid_argument unless cells.size() == columns.size().
  void add_row(std::vector<std::string> cells);
};

enum class RowFormat {
  kAligned,    // human-readable aligned columns (util::TextTable)
  kCsv,        // header line + comma-separated rows, RFC-4180-ish quoting
  kJsonLines,  // one JSON object per row, keys = column names
};

struct EmitOptions {
  /// Emit the column-name header line in kCsv mode.
  bool csv_header{true};
  /// Optional leading tag field for greppable mixed-output streams (the
  /// figure binaries' historical "CSV,..." convention).
  std::string csv_prefix{};
};

/// Render `table` to `os` in the requested format.
void emit(const Table& table, RowFormat format, std::ostream& os,
          const EmitOptions& options = {});

/// One CSV line. Fields containing commas, quotes, or newlines are quoted;
/// a non-empty `prefix` becomes the first field.
[[nodiscard]] std::string csv_line(std::span<const std::string> fields,
                                   std::string_view prefix = {});

/// One JSON-lines object from parallel column/cell lists. Cells that parse
/// as plain JSON numbers are emitted unquoted; everything else is escaped
/// as a JSON string.
[[nodiscard]] std::string json_line(std::span<const std::string> columns,
                                    std::span<const std::string> cells);

/// The unified result envelope: how the operation ended, the typed value
/// for programmatic callers, and a Table for presentation. `value` is
/// populated even for partially-failed operations when the producer has
/// partial results worth reporting (e.g. a sweep with quarantined cells).
template <typename T>
struct Result {
  Status status{};
  std::optional<T> value{};
  Table rows{};

  [[nodiscard]] bool ok() const { return status.is_ok(); }
  explicit operator bool() const { return ok(); }

  /// The value; throws util::StatusError when the operation failed with no
  /// partial value.
  [[nodiscard]] const T& operator*() const {
    if (!value.has_value()) throw StatusError(status);
    return *value;
  }
  [[nodiscard]] const T* operator->() const { return &**this; }
};

/// Adapt a fault-tolerant sweep report: status = first_failure(), rows =
/// one line per cell (method, target, k, attempts, φ summary).
[[nodiscard]] Result<exper::RunReport> as_result(exper::RunReport report);

/// Adapt a flow-workload sweep report (netsample flows --sweep): same
/// envelope, but the "target" column becomes the inversion estimator (read
/// from `spec` by task index — the estimator lives outside CellConfig) and
/// "mean n" is the mean estimated original flow count. `spec` must be the
/// kFlow spec the grid was built from; throws std::invalid_argument when
/// the cell count disagrees.
[[nodiscard]] Result<exper::RunReport> as_flow_result(
    exper::RunReport report, const shard::SweepSpec& spec);

}  // namespace netsample
