// Version of the netsample public API (the facade in netsample.h).
//
// The integer NETSAMPLE_API_VERSION is MAJOR * 1000 + MINOR, with MINOR
// stepping by 100 per minor release (v1.1 = 1100). MAJOR bumps on breaking
// changes to the supported surface, MINOR on additions. Deprecated entry
// points survive exactly one MINOR release after their replacement ships
// (docs/API.md, "Deprecation policy") — v1.1 collects on that: bench::csv,
// deprecated in v1.0, is gone.
#pragma once

#define NETSAMPLE_API_VERSION_MAJOR 1
#define NETSAMPLE_API_VERSION_MINOR 100
#define NETSAMPLE_API_VERSION \
  (NETSAMPLE_API_VERSION_MAJOR * 1000 + NETSAMPLE_API_VERSION_MINOR)

namespace netsample {

inline constexpr int kApiVersionMajor = NETSAMPLE_API_VERSION_MAJOR;
inline constexpr int kApiVersionMinor = NETSAMPLE_API_VERSION_MINOR;
inline constexpr char kApiVersionString[] = "1.1";

}  // namespace netsample
