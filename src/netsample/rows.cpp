#include "netsample/result.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/targets.h"
#include "util/format.h"

namespace netsample {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns.size()) {
    throw std::invalid_argument("Table: row has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(columns.size()));
  }
  rows.push_back(std::move(cells));
}

namespace {

bool needs_csv_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string csv_field(const std::string& field) {
  if (!needs_csv_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Is `s` already a valid bare JSON number? (strtod-accepted, full match,
/// no leading '+'/padding — conservative on purpose.)
bool is_json_number(const std::string& s) {
  if (s.empty() || s == "-" || s[0] == '+' || std::isspace(
      static_cast<unsigned char>(s[0])) != 0) {
    return false;
  }
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // strtod accepts inf/nan/hex, which JSON does not.
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '+' && c != '.' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return true;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string csv_line(std::span<const std::string> fields,
                     std::string_view prefix) {
  std::string out;
  if (!prefix.empty()) out += std::string(prefix);
  bool first = prefix.empty();
  for (const auto& f : fields) {
    if (!first) out += ',';
    first = false;
    out += csv_field(f);
  }
  return out;
}

std::string json_line(std::span<const std::string> columns,
                      std::span<const std::string> cells) {
  if (columns.size() != cells.size()) {
    throw std::invalid_argument("json_line: column/cell count mismatch");
  }
  std::string out = "{";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += json_string(columns[i]);
    out += ':';
    out += is_json_number(cells[i]) ? cells[i] : json_string(cells[i]);
  }
  out += '}';
  return out;
}

void emit(const Table& table, RowFormat format, std::ostream& os,
          const EmitOptions& options) {
  switch (format) {
    case RowFormat::kAligned: {
      TextTable text(table.columns);
      for (const auto& row : table.rows) text.add_row(row);
      text.print(os);
      break;
    }
    case RowFormat::kCsv: {
      if (options.csv_header) {
        os << csv_line(table.columns, options.csv_prefix) << '\n';
      }
      for (const auto& row : table.rows) {
        os << csv_line(row, options.csv_prefix) << '\n';
      }
      break;
    }
    case RowFormat::kJsonLines: {
      for (const auto& row : table.rows) {
        os << json_line(table.columns, row) << '\n';
      }
      break;
    }
  }
}

Result<exper::RunReport> as_flow_result(exper::RunReport report,
                                        const shard::SweepSpec& spec) {
  if (spec.workload != shard::Workload::kFlow) {
    throw std::invalid_argument("as_flow_result: not a flow sweep spec");
  }
  if (report.cells.size() != spec.cell_count()) {
    throw std::invalid_argument("as_flow_result: report has " +
                                std::to_string(report.cells.size()) +
                                " cells, spec expects " +
                                std::to_string(spec.cell_count()));
  }
  Result<exper::RunReport> out;
  out.status = report.first_failure();
  out.rows.columns = {"cell",   "method",   "estimator", "k",
                      "status", "attempts", "phi mean",  "phi min",
                      "phi max", "mean n"};
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const auto& cell = report.cells[i];
    const auto& config = cell.result.config;
    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    row.push_back(core::method_name(config.method));
    row.push_back(flow::estimator_name(shard::grid_estimator(spec, i)));
    row.push_back(std::to_string(config.granularity));
    row.push_back(cell.status.is_ok()
                      ? (cell.from_journal ? "ok (journal)" : "ok")
                      : cell.status.to_string());
    row.push_back(std::to_string(cell.attempts));
    if (cell.status.is_ok() && !cell.result.replications.empty()) {
      const auto phis = cell.result.phi_values();
      const auto [mn, mx] = std::minmax_element(phis.begin(), phis.end());
      row.push_back(fmt_double(cell.result.phi_mean(), 4));
      row.push_back(fmt_double(*mn, 4));
      row.push_back(fmt_double(*mx, 4));
      row.push_back(fmt_double(cell.result.mean_sample_size(), 1));
    } else {
      row.insert(row.end(), {"-", "-", "-", "-"});
    }
    out.rows.add_row(std::move(row));
  }
  out.value = std::move(report);
  return out;
}

Result<exper::RunReport> as_result(exper::RunReport report) {
  Result<exper::RunReport> out;
  out.status = report.first_failure();
  out.rows.columns = {"cell",  "method",   "target", "k",
                      "status", "attempts", "phi mean", "phi min",
                      "phi max", "mean n"};
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const auto& cell = report.cells[i];
    const auto& config = cell.result.config;
    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    row.push_back(core::method_name(config.method));
    row.push_back(core::target_name(config.target));
    row.push_back(std::to_string(config.granularity));
    row.push_back(cell.status.is_ok()
                      ? (cell.from_journal ? "ok (journal)" : "ok")
                      : cell.status.to_string());
    row.push_back(std::to_string(cell.attempts));
    if (cell.status.is_ok() && !cell.result.replications.empty()) {
      const auto phis = cell.result.phi_values();
      const auto [mn, mx] = std::minmax_element(phis.begin(), phis.end());
      row.push_back(fmt_double(cell.result.phi_mean(), 4));
      row.push_back(fmt_double(*mn, 4));
      row.push_back(fmt_double(*mx, 4));
      row.push_back(fmt_double(cell.result.mean_sample_size(), 1));
    } else {
      row.insert(row.end(), {"-", "-", "-", "-"});
    }
    out.rows.add_row(std::move(row));
  }
  out.value = std::move(report);
  return out;
}

}  // namespace netsample
