// The facade's session vocabulary (API v1.1): one struct describing a
// streaming scoring session, shared by `netsample watch` (one session per
// process) and `netsample serve` (thousands multiplexed over a daemon).
//
// Before v1.1 the watch subcommand plumbed every knob flag-by-flag into
// CellConfig + EngineOptions + PipelineOptions by hand; a serve daemon
// would have had to duplicate that plumbing — and any drift between the
// two would silently break the serve-equals-watch byte-identity contract
// (docs/SERVING.md). SessionSpec is the single truth:
//
//   SessionSpec        — everything that identifies a session's scoring
//                        behavior (method, k, reps, seed, targets, window,
//                        stride, chunk, ring, deadline) plus the tenant it
//                        bills to
//   validate_*         — the one validator both entry points run
//   session_lanes      — the stream::Engine lane set ("size/r0", "iat/r1",
//                        ... — exactly watch's lane labels)
//   session_row_*      — the JSONL/CSV row vocabulary of watch, reused
//                        verbatim by serve ROWS payloads
//   encode_/decode_*   — the space-free wire form carried by the serve
//                        protocol's OPEN message
//
// Determinism: two engines built from equal specs and fed the same packet
// sequence emit byte-identical rows regardless of chunking (the Engine
// contract), which is what makes a serve session diffable against a watch
// run of the same capture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/samplers.h"
#include "stream/engine.h"
#include "util/status.h"

namespace netsample {

/// One streaming scoring session. Defaults mirror `netsample watch`'s
/// flag defaults; encode/decode round-trip every field.
struct SessionSpec {
  core::Method method{core::Method::kSystematicCount};
  std::uint64_t granularity{50};   // 1-in-k
  int replications{5};
  std::uint64_t seed{1};
  /// Which histogram targets get lanes: "both", "size", or "iat".
  std::string targets{"both"};
  double window_s{0};    // rolling window; 0 = drain mode
  double stride_s{0};    // snapshot period; 0 = one per window
  /// Population size for simple random sampling on a live stream (the
  /// paper's operational setting: N comes from the previous cycle).
  std::uint64_t population{0};
  /// Population mean interarrival (usec) for the timer methods.
  double mean_iat_usec{0};
  std::size_t chunk_packets{4096};  // packets per pipeline/ring chunk
  std::size_t ring_capacity{16};    // ring capacity in chunks
  double deadline_s{0};             // wall-clock budget; 0 = none
  /// Budget bucket the session bills to (serve admission control).
  std::string tenant{"default"};

  [[nodiscard]] bool operator==(const SessionSpec&) const = default;
};

/// The one validator behind watch flags and serve OPEN: kInvalidArgument
/// with a user-facing message on any inconsistency (random without a
/// population, timer-* without --mean-iat, unknown targets, a lane count
/// beyond stream::Engine::kMaxLanes, zero chunk/ring, non-finite or
/// negative durations, a tenant that would break the wire encoding).
[[nodiscard]] Status validate_session_spec(const SessionSpec& spec);

/// Lane set of a valid spec: per-replication lanes for each requested
/// target, labelled "size/r0" ... "iat/rN" exactly as `netsample watch`
/// has always labelled them.
[[nodiscard]] std::vector<stream::LaneSpec> session_lanes(
    const SessionSpec& spec);

/// Engine options of a valid spec (stride 0 resolves to the window —
/// tumbling — matching watch). `cancel` is borrowed, may be null.
[[nodiscard]] stream::EngineOptions session_engine_options(
    const SessionSpec& spec, const util::CancelToken* cancel = nullptr);

/// The streaming row vocabulary: tick, final, start_usec, end_usec,
/// packets, lane, target, k, n, phi, significance.
[[nodiscard]] const std::vector<std::string>& session_row_columns();

/// One row of cells per lane of `score`, in lane order — the exact cell
/// strings watch prints (phi/significance via fmt_double(·, 6)).
[[nodiscard]] std::vector<std::vector<std::string>> session_row_cells(
    const stream::WindowScore& score);

/// Space-free single-token wire encoding ("v=1,m=systematic,k=50,...");
/// doubles are printed with %.17g so decode round-trips them exactly.
[[nodiscard]] std::string encode_session_spec(const SessionSpec& spec);

/// Strict parser for encode_session_spec output: false on unknown fields,
/// missing required fields, duplicates, or malformed values. A decoded
/// spec still needs validate_session_spec (the codec checks shape, not
/// policy).
[[nodiscard]] bool decode_session_spec(const std::string& text,
                                       SessionSpec* spec);

}  // namespace netsample
