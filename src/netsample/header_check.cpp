// Header-hygiene check: the public facade must compile standalone, warning
// free, in an otherwise empty translation unit. The CI header-hygiene leg
// builds this file with -Wall -Wextra -Werror.
#include "netsample/netsample.h"

// Anchor so the object file is non-empty on every toolchain.
namespace netsample {
const char* api_version_self_check() { return kApiVersionString; }
}  // namespace netsample
