#include "netsample/session.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/targets.h"
#include "exper/runner.h"
#include "shard/grid.h"
#include "util/format.h"

namespace netsample {

namespace {

bool valid_token(const std::string& text, std::size_t max_len) {
  if (text.empty() || text.size() > max_len) return false;
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

std::size_t target_lane_multiplier(const std::string& targets) {
  return targets == "both" ? 2 : 1;
}

/// The CellConfig a session's lanes derive from — the same shape
/// `netsample watch` has always built from its flags.
exper::CellConfig session_cell_config(const SessionSpec& spec) {
  exper::CellConfig cfg;
  cfg.method = spec.method;
  cfg.granularity = spec.granularity;
  cfg.mean_interarrival_usec = spec.mean_iat_usec;
  cfg.replications = spec.replications;
  cfg.base_seed = spec.seed;
  return cfg;
}

std::string fmt_g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_u64_field(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_double_field(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

Status validate_session_spec(const SessionSpec& spec) {
  const auto invalid = [](const std::string& msg) {
    return Status(StatusCode::kInvalidArgument, "session: " + msg);
  };
  if (spec.granularity == 0) return invalid("granularity k must be >= 1");
  if (spec.replications < 1 || spec.replications > 1000000) {
    return invalid("replications must be in [1, 1000000]");
  }
  if (spec.targets != "both" && spec.targets != "size" &&
      spec.targets != "iat") {
    return invalid("targets must be both|size|iat, got \"" + spec.targets +
                   "\"");
  }
  const std::size_t lanes = static_cast<std::size_t>(spec.replications) *
                            target_lane_multiplier(spec.targets);
  if (lanes > stream::Engine::kMaxLanes) {
    return invalid("lane count " + std::to_string(lanes) + " exceeds " +
                   std::to_string(stream::Engine::kMaxLanes) +
                   " (replications x targets)");
  }
  if (spec.method == core::Method::kSimpleRandom && spec.population == 0) {
    return invalid(
        "method random draws Algorithm S over a known population; "
        "set population N (e.g. from the previous collection cycle)");
  }
  if ((spec.method == core::Method::kSystematicTimer ||
       spec.method == core::Method::kStratifiedTimer) &&
      !(spec.mean_iat_usec > 0)) {
    return invalid("timer methods need mean-iat USEC to size the timer period");
  }
  if (!finite_nonneg(spec.window_s)) return invalid("window must be >= 0 s");
  if (!finite_nonneg(spec.stride_s)) return invalid("stride must be >= 0 s");
  if (!finite_nonneg(spec.deadline_s)) {
    return invalid("deadline must be >= 0 s");
  }
  if (!finite_nonneg(spec.mean_iat_usec)) {
    return invalid("mean-iat must be >= 0 usec");
  }
  if (spec.chunk_packets == 0) return invalid("chunk must be >= 1 packet");
  if (spec.ring_capacity == 0) return invalid("ring must be >= 1 chunk");
  if (!valid_token(spec.tenant, 64)) {
    return invalid("tenant must be 1-64 chars of [A-Za-z0-9._-], got \"" +
                   spec.tenant + "\"");
  }
  return Status::ok();
}

std::vector<stream::LaneSpec> session_lanes(const SessionSpec& spec) {
  exper::CellConfig cfg = session_cell_config(spec);
  std::vector<stream::LaneSpec> lanes;
  for (const auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    if (spec.targets == "size" && target != core::Target::kPacketSize) continue;
    if (spec.targets == "iat" && target != core::Target::kInterarrivalTime) {
      continue;
    }
    const char* prefix = target == core::Target::kPacketSize ? "size" : "iat";
    cfg.target = target;
    for (auto& lane : stream::lanes_for_cell(cfg, spec.population)) {
      lane.label = std::string(prefix) + "/" + lane.label;
      lanes.push_back(std::move(lane));
    }
  }
  return lanes;
}

stream::EngineOptions session_engine_options(const SessionSpec& spec,
                                             const util::CancelToken* cancel) {
  stream::EngineOptions opts;
  opts.window = MicroDuration::from_seconds(spec.window_s);
  opts.stride = MicroDuration::from_seconds(spec.stride_s);
  if (opts.stride.usec == 0) opts.stride = opts.window;  // tumbling
  opts.cancel = cancel;
  return opts;
}

const std::vector<std::string>& session_row_columns() {
  static const std::vector<std::string> columns = {
      "tick", "final",  "start_usec", "end_usec",     "packets", "lane",
      "target", "k",    "n",          "phi",          "significance"};
  return columns;
}

std::vector<std::vector<std::string>> session_row_cells(
    const stream::WindowScore& score) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(score.lanes.size());
  for (const auto& lane : score.lanes) {
    rows.push_back({
        std::to_string(score.tick),
        score.is_final ? "1" : "0",
        std::to_string(score.window_start.usec),
        std::to_string(score.window_end.usec),
        std::to_string(score.packets_seen),
        lane.label,
        core::target_name(lane.target),
        std::to_string(lane.granularity),
        std::to_string(lane.metrics.sample_n),
        fmt_double(lane.metrics.phi, 6),
        fmt_double(lane.metrics.significance, 6),
    });
  }
  return rows;
}

std::string encode_session_spec(const SessionSpec& spec) {
  std::string out = "v=1";
  out += ",m=";
  out += shard::method_token(spec.method);
  char buf[96];
  std::snprintf(buf, sizeof buf, ",k=%" PRIu64, spec.granularity);
  out += buf;
  std::snprintf(buf, sizeof buf, ",r=%d", spec.replications);
  out += buf;
  std::snprintf(buf, sizeof buf, ",s=%" PRIu64, spec.seed);
  out += buf;
  out += ",t=" + spec.targets;
  out += ",w=" + fmt_g17(spec.window_s);
  out += ",st=" + fmt_g17(spec.stride_s);
  std::snprintf(buf, sizeof buf, ",pop=%" PRIu64, spec.population);
  out += buf;
  out += ",iat=" + fmt_g17(spec.mean_iat_usec);
  std::snprintf(buf, sizeof buf, ",chunk=%zu,ring=%zu", spec.chunk_packets,
                spec.ring_capacity);
  out += buf;
  out += ",dl=" + fmt_g17(spec.deadline_s);
  out += ",tn=" + spec.tenant;
  return out;
}

bool decode_session_spec(const std::string& text, SessionSpec* spec) {
  SessionSpec parsed;
  // Every field encode_session_spec writes is required exactly once; the
  // strictness is the point (a truncated OPEN must not half-apply).
  bool seen[14] = {};
  enum Field {
    kV, kM, kK, kR, kS, kT, kW, kSt, kPop, kIat, kChunk, kRing, kDl, kTn
  };
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string field = text.substr(start, comma - start);
    start = comma + 1;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string name = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::uint64_t u = 0;
    double d = 0;
    Field which;
    if (name == "v") {
      if (value != "1") return false;
      which = kV;
    } else if (name == "m") {
      try {
        parsed.method = shard::parse_method_token(value);
      } catch (const std::invalid_argument&) {
        return false;
      }
      which = kM;
    } else if (name == "k") {
      if (!parse_u64_field(value, &u)) return false;
      parsed.granularity = u;
      which = kK;
    } else if (name == "r") {
      if (!parse_u64_field(value, &u) || u == 0 || u > 1000000) return false;
      parsed.replications = static_cast<int>(u);
      which = kR;
    } else if (name == "s") {
      if (!parse_u64_field(value, &u)) return false;
      parsed.seed = u;
      which = kS;
    } else if (name == "t") {
      if (value != "both" && value != "size" && value != "iat") return false;
      parsed.targets = value;
      which = kT;
    } else if (name == "w") {
      if (!parse_double_field(value, &d)) return false;
      parsed.window_s = d;
      which = kW;
    } else if (name == "st") {
      if (!parse_double_field(value, &d)) return false;
      parsed.stride_s = d;
      which = kSt;
    } else if (name == "pop") {
      if (!parse_u64_field(value, &u)) return false;
      parsed.population = u;
      which = kPop;
    } else if (name == "iat") {
      if (!parse_double_field(value, &d)) return false;
      parsed.mean_iat_usec = d;
      which = kIat;
    } else if (name == "chunk") {
      if (!parse_u64_field(value, &u) || u == 0) return false;
      parsed.chunk_packets = static_cast<std::size_t>(u);
      which = kChunk;
    } else if (name == "ring") {
      if (!parse_u64_field(value, &u) || u == 0) return false;
      parsed.ring_capacity = static_cast<std::size_t>(u);
      which = kRing;
    } else if (name == "dl") {
      if (!parse_double_field(value, &d)) return false;
      parsed.deadline_s = d;
      which = kDl;
    } else if (name == "tn") {
      if (!valid_token(value, 64)) return false;
      parsed.tenant = value;
      which = kTn;
    } else {
      return false;
    }
    if (seen[which]) return false;
    seen[which] = true;
  }
  for (const bool s : seen) {
    if (!s) return false;
  }
  *spec = std::move(parsed);
  return true;
}

}  // namespace netsample
