// netsample — the versioned public API facade.
//
// This is the one header applications, tools, and benchmarks include; it
// re-exports the *supported* surface of the library (docs/API.md spells
// out what "supported" means and lists the internal headers that are
// deliberately absent). Everything here compiles standalone under
// -Wall -Wextra -Werror — the CI header-hygiene leg builds exactly this
// header in an otherwise empty translation unit.
//
// Layering: the facade sits on top of every module and may be included
// from anywhere outside src/; modules never include it.
//
//   Versioning      netsample/version.h (NETSAMPLE_API_VERSION)
//   Results/rows    netsample/result.h (Result<T>, Table, emit)
//   Substrate       Status/StatusOr, CancelToken, Rng, MicroTime, ArgParser
//   Traces          trace::Trace/TraceView, flows, summaries, pcap I/O
//   Synthesis       synth:: traffic models and presets
//   Sampling        core:: samplers, targets, φ metrics, design helpers
//   Experiments     exper:: Experiment, CellConfig/run_cell, sweeps,
//                   ParallelRunner, checkpoint journal
//   Flow workload   flow:: sampled-flow tables, flow-size distributions,
//                   inversion estimators, run_flow_cell
//   Streaming       stream:: Engine, sources, SPSC ring, run_pipeline
//   Sessions        netsample::SessionSpec (v1.1) — the shared session
//                   vocabulary of `watch` and `serve`
//   Serving         serve:: daemon, wire protocol, loadgen driver
//   Fault injection faultsim::, characterization charact::, NSFNET
//                   collection model collector::
//   Observability   obs:: metrics registry, spans, exporters
#pragma once

#include "netsample/result.h"   // IWYU pragma: export
#include "netsample/session.h"  // IWYU pragma: export
#include "netsample/version.h"  // IWYU pragma: export

// Substrate.
#include "util/args.h"        // IWYU pragma: export
#include "util/asciichart.h"  // IWYU pragma: export
#include "util/cancel.h"      // IWYU pragma: export
#include "util/format.h"      // IWYU pragma: export
#include "util/rng.h"         // IWYU pragma: export
#include "util/status.h"      // IWYU pragma: export
#include "util/timeval.h"     // IWYU pragma: export

// Packet headers and addresses.
#include "net/headers.h"  // IWYU pragma: export
#include "net/ipv4.h"     // IWYU pragma: export
#include "net/ports.h"    // IWYU pragma: export

// Traces and capture I/O.
#include "pcap/pcap.h"           // IWYU pragma: export
#include "pcap/stream.h"         // IWYU pragma: export
#include "trace/flow_export.h"   // IWYU pragma: export
#include "trace/flows.h"         // IWYU pragma: export
#include "trace/packet_record.h" // IWYU pragma: export
#include "trace/summary.h"       // IWYU pragma: export
#include "trace/trace.h"         // IWYU pragma: export

// Statistics toolkit (supported subset).
#include "stats/boxplot.h"      // IWYU pragma: export
#include "stats/descriptive.h"  // IWYU pragma: export
#include "stats/histogram.h"    // IWYU pragma: export

// Synthetic traffic.
#include "synth/model.h"    // IWYU pragma: export
#include "synth/presets.h"  // IWYU pragma: export

// Sampling disciplines and scoring.
#include "core/categorical.h"  // IWYU pragma: export
#include "core/design.h"       // IWYU pragma: export
#include "core/metrics.h"      // IWYU pragma: export
#include "core/sampler.h"      // IWYU pragma: export
#include "core/samplers.h"     // IWYU pragma: export
#include "core/simd/simd.h"    // IWYU pragma: export
#include "core/targets.h"      // IWYU pragma: export
#include "core/theory.h"       // IWYU pragma: export
#include "core/trace_cache.h"  // IWYU pragma: export

// Characterization, collection model, fault injection.
#include "charact/agent.h"       // IWYU pragma: export
#include "collector/backbone.h"  // IWYU pragma: export
#include "faultsim/faultsim.h"   // IWYU pragma: export
#include "faultsim/netfault.h"   // IWYU pragma: export

// Experiments.
#include "exper/experiment.h"  // IWYU pragma: export
#include "exper/journal.h"     // IWYU pragma: export
#include "exper/parallel.h"    // IWYU pragma: export
#include "exper/runner.h"      // IWYU pragma: export

// Flow workload: sampled-flow aggregation and size-distribution inversion.
#include "flow/inversion.h"      // IWYU pragma: export
#include "flow/sampled_table.h"  // IWYU pragma: export
#include "flow/size_dist.h"      // IWYU pragma: export
#include "flow/sweep.h"          // IWYU pragma: export

// Sharded multi-process sweeps over a memory-mapped trace store.
#include "shard/coordinator.h"  // IWYU pragma: export
#include "shard/grid.h"         // IWYU pragma: export
#include "shard/protocol.h"     // IWYU pragma: export
#include "shard/store.h"        // IWYU pragma: export
#include "shard/transport.h"    // IWYU pragma: export
#include "shard/worker.h"       // IWYU pragma: export

// Streaming scorer.
#include "stream/engine.h"    // IWYU pragma: export
#include "stream/pipeline.h"  // IWYU pragma: export
#include "stream/ring.h"      // IWYU pragma: export
#include "stream/source.h"    // IWYU pragma: export

// Multi-tenant scoring daemon (link netsample_serve to use these).
#include "serve/loadgen.h"    // IWYU pragma: export
#include "serve/protocol.h"   // IWYU pragma: export
#include "serve/serve.h"      // IWYU pragma: export

// Observability.
#include "obs/export.h"   // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/span.h"     // IWYU pragma: export
