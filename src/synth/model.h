// Synthetic wide-area traffic model, calibrated to the paper's trace.
//
// The paper's parent population is a one-hour, ~1.63M-packet trace of the
// SDSC -> NSFNET E-NSS FDDI entrance (March 1993), which no longer exists in
// distributable form. This model generates a packet stream with the same
// *structural* properties the sampling experiments depend on:
//
//   1. the bimodal packet-size marginal of Table 3 (modes at 40 and 552
//      bytes, mean ~232, sd ~236, quartiles 40/76/552);
//   2. the interarrival marginal of Table 3 (mean ~2358 us, sd ~2734,
//      quantized to the 400 us measurement clock);
//   3. serial correlation: traffic arrives in packet *trains* belonging to
//      application flows (bulk transfers emit runs of 552-byte packets at
//      small gaps; interactive sessions emit isolated small packets). This
//      is the mechanism behind the paper's headline result -- timer-driven
//      sampling preferentially selects packets that follow long idle gaps
//      and under-represents train interiors;
//   4. non-stationary per-second rates matching Table 2 (mean ~424 pps,
//      cv ~0.2, right-skewed), via an AR(1) log-normal rate modulation;
//   5. plausible 1993 endpoint structure (classful networks, well-known
//      service ports, TCP/UDP/ICMP mix) so the NSFNET characterization
//      objects (Table 1) have realistic material to aggregate.
//
// Every draw comes from a single seed; generation is fully deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/timeval.h"

namespace netsample::synth {

/// One component of a flow type's packet-size mixture: with probability
/// proportional to `weight`, draw a size uniformly in [lo, hi] (lo == hi
/// for an atom such as the 40-byte ACK or the 552-byte data segment).
struct SizeComponent {
  double weight{1.0};
  std::uint16_t lo{40};
  std::uint16_t hi{40};
};

/// An application flow type: how often trains of this type occur, how long
/// they run, how tightly their packets are spaced, and what they look like.
struct FlowTypeSpec {
  std::string name;
  double train_weight{1.0};        // relative probability a train is this type
  double mean_train_len{1.0};      // mean packets per train (>= 1)
  double within_gap_mean_usec{1400.0};  // mean gap between packets of a train
  std::vector<SizeComponent> sizes;
  std::uint8_t protocol{6};        // IP protocol (6 TCP, 17 UDP, 1 ICMP)
  std::vector<std::uint16_t> service_ports;  // destination service ports
};

/// AR(1) log-normal per-second rate modulation. All gaps in second s are
/// scaled by m(s) = exp(x_s - sigma^2/2), x_s = ar1 * x_{s-1} + N(0, eps),
/// with eps chosen so that sd(x) == log_sigma. Disabled -> stationary rates.
struct RateModulation {
  bool enabled{true};
  double ar1{0.9};
  double log_sigma{0.2};
};

/// Distribution of train lengths around each flow type's configured mean.
/// kGeometric is the memoryless default; kPareto produces heavy-tailed
/// trains (same mean, infinite variance for shape <= 2) -- the structure
/// later measurements found in wide-area traffic, kept here as a knob for
/// the train-tail sensitivity ablation.
enum class TrainLengthModel {
  kGeometric,
  kPareto,
};

struct TraceModelConfig {
  MicroDuration duration{MicroDuration::from_seconds(3600)};
  /// Target population mean interarrival time (Table 3: 2358 us -> ~424 pps).
  double mean_gap_usec{2358.0};
  std::vector<FlowTypeSpec> flows;
  RateModulation modulation;
  TrainLengthModel train_length_model{TrainLengthModel::kGeometric};
  /// Pareto shape when train_length_model == kPareto (must be > 1 so the
  /// mean exists; 1 < shape <= 2 gives infinite variance).
  double pareto_shape{1.6};
  /// Measurement clock tick; timestamps are floored to multiples of this
  /// (0 = keep full microsecond resolution). The paper's clock was 400 us.
  MicroDuration clock_tick{400};
  /// Endpoint structure: number of distinct remote networks, Zipf skew of
  /// their popularity, and hosts per network.
  int remote_networks{220};
  double zipf_s{0.9};
  int hosts_per_network{40};
  std::uint64_t seed{23};
};

class TraceModel {
 public:
  /// Validates the configuration and derives the between-train gap mean that
  /// makes the overall mean gap hit `mean_gap_usec`.
  /// Throws std::invalid_argument on empty flow mix, non-positive durations,
  /// or a flow mix whose within-train gaps already exceed the target mean.
  explicit TraceModel(TraceModelConfig config);

  /// Generate the trace (deterministic in config.seed).
  [[nodiscard]] trace::Trace generate() const;

  [[nodiscard]] const TraceModelConfig& config() const { return config_; }

  /// The derived mean of the exponential between-train gap.
  [[nodiscard]] double between_gap_mean_usec() const { return between_gap_mean_; }

  /// Mean packets per train across the flow mix.
  [[nodiscard]] double mean_train_len() const { return mean_train_len_; }

 private:
  TraceModelConfig config_;
  double between_gap_mean_{0};
  double mean_train_len_{0};
  std::vector<double> cumulative_train_weight_;
};

}  // namespace netsample::synth
