// Calibrated model presets.
#pragma once

#include "synth/model.h"

namespace netsample::synth {

/// The paper's parent population: one hour of SDSC -> E-NSS traffic,
/// calibrated to Tables 2 and 3 (~1.5-1.7M packets, mean size ~232 B,
/// mean gap ~2358 us quantized to the 400 us clock, ~424 pps with cv ~0.2).
/// Flow mix: interactive telnet, ACK streams of inbound transfers, bulk
/// FTP/NNTP data, UDP transactions (DNS/SNMP/sunrpc), mail, and a little
/// ICMP.
[[nodiscard]] TraceModelConfig sdsc_hour_config(std::uint64_t seed = 23);

/// A shorter variant of sdsc_hour_config for unit tests (default 2 minutes),
/// same structure and calibration.
[[nodiscard]] TraceModelConfig sdsc_minutes_config(double minutes,
                                                   std::uint64_t seed = 23);

/// The paper's *preliminary* environment (footnote 3): the FIX-West
/// interexchange point at Moffett Field. An interexchange aggregates
/// transit traffic between agency backbones: relatively more bulk transfer
/// and NNTP, less interactive traffic, a larger and flatter remote-network
/// population, and a slightly higher mean rate. The paper reports that
/// results on the two data sets "were quite similar"; bench/ext_fixwest
/// checks that our method rankings transfer the same way.
[[nodiscard]] TraceModelConfig fixwest_minutes_config(double minutes,
                                                      std::uint64_t seed = 29);

/// The flow-workload parent population: the SDSC mix re-weighted toward
/// flow-train structure with heavy-tailed (Pareto, shape 1.25) train
/// lengths, the regime the flow-size inversion estimators are built for —
/// many single-packet transactions plus a long tail of bulk trains reaching
/// thousands of packets. Feeds `netsample generate --flow-mix` and the
/// flow-sweep tests (docs/FLOWS.md).
[[nodiscard]] TraceModelConfig flow_mix_minutes_config(double minutes,
                                                       std::uint64_t seed = 31);

/// Ablation transform: remove the packet-train burst structure while
/// preserving the packet-size marginal, the mean rate, and the per-second
/// modulation. Every train becomes a single packet (flow weights are
/// re-balanced from train shares to packet shares so the size mixture is
/// unchanged), making arrivals a (modulated) Poisson process. Used by
/// bench/abl_burstiness to show the timer-vs-packet gap is driven by
/// burstiness.
[[nodiscard]] TraceModelConfig poissonified(TraceModelConfig config);

}  // namespace netsample::synth
