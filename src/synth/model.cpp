#include "synth/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/ipv4.h"

namespace netsample::synth {

namespace {

/// Zipf(s) sampler over ranks [0, n) via inverse-CDF on precomputed weights.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) {
    cumulative_.reserve(static_cast<std::size_t>(n));
    double acc = 0.0;
    for (int r = 1; r <= n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r), s);
      cumulative_.push_back(acc);
    }
  }

  [[nodiscard]] int draw(Rng& rng) const {
    const double u = rng.uniform01() * cumulative_.back();
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

std::uint16_t draw_size(const FlowTypeSpec& flow, Rng& rng) {
  double total = 0.0;
  for (const auto& c : flow.sizes) total += c.weight;
  double u = rng.uniform01() * total;
  for (const auto& c : flow.sizes) {
    if (u < c.weight || &c == &flow.sizes.back()) {
      if (c.lo == c.hi) return c.lo;
      return static_cast<std::uint16_t>(rng.uniform_in(c.lo, c.hi));
    }
    u -= c.weight;
  }
  return flow.sizes.back().hi;
}

}  // namespace

TraceModel::TraceModel(TraceModelConfig config) : config_(std::move(config)) {
  if (config_.flows.empty()) {
    throw std::invalid_argument("trace model: flow mix is empty");
  }
  if (config_.duration.usec <= 0) {
    throw std::invalid_argument("trace model: duration must be positive");
  }
  if (config_.mean_gap_usec <= 0) {
    throw std::invalid_argument("trace model: mean gap must be positive");
  }
  if (config_.train_length_model == TrainLengthModel::kPareto &&
      config_.pareto_shape <= 1.0) {
    throw std::invalid_argument(
        "trace model: pareto shape must exceed 1 (finite mean)");
  }

  double weight_total = 0.0;
  double mean_len = 0.0;
  double within_gap_mass = 0.0;  // sum_t w_t * (len_t - 1) * gap_t
  for (const auto& f : config_.flows) {
    if (f.train_weight <= 0.0 || f.mean_train_len < 1.0 || f.sizes.empty() ||
        f.within_gap_mean_usec < 0.0) {
      throw std::invalid_argument("trace model: bad flow spec '" + f.name + "'");
    }
    weight_total += f.train_weight;
  }
  for (const auto& f : config_.flows) {
    const double w = f.train_weight / weight_total;
    mean_len += w * f.mean_train_len;
    within_gap_mass += w * (f.mean_train_len - 1.0) * f.within_gap_mean_usec;
    cumulative_train_weight_.push_back(
        (cumulative_train_weight_.empty() ? 0.0 : cumulative_train_weight_.back()) +
        w);
  }
  mean_train_len_ = mean_len;

  // Overall mean gap = [within mass + 1 between-gap per train] / packets
  // per train. Solve for the between-train mean.
  between_gap_mean_ = mean_len * config_.mean_gap_usec - within_gap_mass;
  if (between_gap_mean_ <= 0.0) {
    throw std::invalid_argument(
        "trace model: within-train gaps exceed the target mean gap; "
        "reduce train lengths or within-gap means");
  }
}

trace::Trace TraceModel::generate() const {
  Rng rng(config_.seed);
  Rng endpoint_rng = rng.split();
  Rng size_rng = rng.split();
  Rng gap_rng = rng.split();
  Rng modulation_rng = rng.split();

  // --- Endpoint structure ------------------------------------------------
  // Local side: SDSC's class-B network 132.249/16. Remote side: a Zipf-
  // popular pool of classful networks (class B and C mix).
  std::vector<std::uint32_t> remote_networks;
  remote_networks.reserve(static_cast<std::size_t>(config_.remote_networks));
  for (int i = 0; i < config_.remote_networks; ++i) {
    if (i % 3 == 0) {
      // class C: 192..223 . x . y . 0
      const std::uint32_t b1 = 192 + endpoint_rng.uniform_below(32);
      const std::uint32_t b2 = endpoint_rng.uniform_below(256);
      const std::uint32_t b3 = endpoint_rng.uniform_below(256);
      remote_networks.push_back((b1 << 24) | (b2 << 16) | (b3 << 8));
    } else {
      // class B: 128..191 . x . 0 . 0
      const std::uint32_t b1 = 128 + endpoint_rng.uniform_below(64);
      const std::uint32_t b2 = endpoint_rng.uniform_below(256);
      remote_networks.push_back((b1 << 24) | (b2 << 16));
    }
  }
  const ZipfSampler network_zipf(config_.remote_networks, config_.zipf_s);
  const ZipfSampler host_zipf(config_.hosts_per_network, 0.5);

  // --- Per-second rate modulation ----------------------------------------
  const std::size_t total_seconds =
      static_cast<std::size_t>(config_.duration.usec / 1'000'000) + 2;
  std::vector<double> modulation(total_seconds, 1.0);
  if (config_.modulation.enabled) {
    const double a = config_.modulation.ar1;
    const double sx = config_.modulation.log_sigma;
    const double eps = sx * std::sqrt(std::max(1e-12, 1.0 - a * a));
    double x = modulation_rng.normal(0.0, sx);  // stationary start
    for (auto& m : modulation) {
      m = std::exp(x - sx * sx / 2.0);  // E[m] == 1
      x = a * x + modulation_rng.normal(0.0, eps);
    }
  }
  auto gap_scale = [&](std::uint64_t t_usec) {
    const std::size_t s = static_cast<std::size_t>(t_usec / 1'000'000);
    return s < modulation.size() ? modulation[s] : 1.0;
  };

  // --- Main generation loop ----------------------------------------------
  std::vector<trace::PacketRecord> packets;
  packets.reserve(static_cast<std::size_t>(
      config_.duration.to_seconds() * 1e6 / config_.mean_gap_usec * 1.1));

  const std::uint64_t end_usec = static_cast<std::uint64_t>(config_.duration.usec);
  double t = gap_rng.exponential(between_gap_mean_);

  while (static_cast<std::uint64_t>(t) < end_usec) {
    // Pick the train's flow type.
    const double u = gap_rng.uniform01();
    std::size_t type = 0;
    while (type + 1 < cumulative_train_weight_.size() &&
           u >= cumulative_train_weight_[type]) {
      ++type;
    }
    const FlowTypeSpec& flow = config_.flows[type];

    // Pick the train's flow endpoints.
    const std::uint32_t remote =
        remote_networks[static_cast<std::size_t>(network_zipf.draw(endpoint_rng))];
    const std::uint32_t remote_host =
        remote | (1 + static_cast<std::uint32_t>(host_zipf.draw(endpoint_rng)));
    const std::uint32_t local_host =
        (132u << 24) | (249u << 16) |
        static_cast<std::uint32_t>(
            1 + endpoint_rng.uniform_below(
                    static_cast<std::uint64_t>(config_.hosts_per_network) * 8));
    const std::uint16_t dst_port =
        flow.service_ports.empty()
            ? static_cast<std::uint16_t>(1024 + endpoint_rng.uniform_below(4000))
            : flow.service_ports[endpoint_rng.uniform_below(flow.service_ports.size())];
    const std::uint16_t src_port =
        static_cast<std::uint16_t>(1024 + endpoint_rng.uniform_below(4000));

    // Train length: 1 + a nonnegative tail whose mean is mean_train_len - 1.
    std::uint64_t train_len = 1;
    if (flow.mean_train_len > 1.0) {
      if (config_.train_length_model == TrainLengthModel::kGeometric) {
        train_len = 1 + gap_rng.geometric(1.0 / flow.mean_train_len);
      } else {
        // Pareto tail with matching mean: E[floor(X)] ~ E[X] - 1/2, so aim
        // the continuous mean at (mean_len - 1) + 1/2.
        const double alpha = config_.pareto_shape;
        const double target = flow.mean_train_len - 0.5;
        const double xm = target * (alpha - 1.0) / alpha;
        train_len =
            1 + static_cast<std::uint64_t>(gap_rng.pareto(xm, alpha));
      }
    }

    for (std::uint64_t i = 0; i < train_len; ++i) {
      const std::uint64_t ts = static_cast<std::uint64_t>(t);
      if (ts >= end_usec) break;

      trace::PacketRecord rec;
      rec.timestamp = MicroTime{ts};
      rec.size = draw_size(flow, size_rng);
      rec.protocol = flow.protocol;
      rec.src = net::Ipv4Address(local_host);
      rec.dst = net::Ipv4Address(remote_host);
      if (flow.protocol == 6 || flow.protocol == 17) {
        rec.src_port = src_port;
        rec.dst_port = dst_port;
      }
      if (flow.protocol == 6) {
        rec.tcp_flags = (i == 0 && gap_rng.bernoulli(0.08))
                            ? std::uint8_t{0x02 | 0x10}   // SYN|ACK-ish start
                            : std::uint8_t{0x10};         // ACK
        if (rec.size > 41) rec.tcp_flags |= 0x08;          // PSH on data
      }
      packets.push_back(rec);

      const bool last_in_train = (i + 1 == train_len);
      const double mean =
          last_in_train ? between_gap_mean_ : flow.within_gap_mean_usec;
      double gap = gap_rng.exponential(std::max(1.0, mean));
      gap *= gap_scale(ts);
      t += std::max(1.0, gap);
    }
  }

  trace::Trace out(std::move(packets));
  if (config_.clock_tick.usec > 0) {
    out.quantize_clock(config_.clock_tick);
  }
  return out;
}

}  // namespace netsample::synth
