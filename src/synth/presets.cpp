#include "synth/presets.h"

namespace netsample::synth {

TraceModelConfig sdsc_hour_config(std::uint64_t seed) {
  return sdsc_minutes_config(60.0, seed);
}

TraceModelConfig sdsc_minutes_config(double minutes, std::uint64_t seed) {
  TraceModelConfig cfg;
  cfg.duration = MicroDuration::from_seconds(minutes * 60.0);
  cfg.mean_gap_usec = 2358.0;  // Table 3 population mean
  cfg.clock_tick = MicroDuration{400};
  cfg.seed = seed;
  cfg.modulation = RateModulation{true, 0.9, 0.2};

  // Flow mix calibrated so the aggregate packet-size marginal matches
  // Table 3: P(40B) ~ 0.30, P(552B) ~ 0.25, median ~76, mean ~232, and the
  // per-packet shares are bulk ~0.22, ACK-stream ~0.18, interactive ~0.36,
  // transaction ~0.12, mail ~0.10 (train weights below are packet shares
  // divided by mean train length, then normalized).
  //
  // Within-train gaps use a common 1400 us mean; the between-train gap mean
  // is derived by the model so the population mean stays 2358 us.
  cfg.flows = {
      // Outbound bulk data: FTP-data and NNTP pushes. Runs of 552-byte
      // segments (the era's common 512-byte-MSS + headers), rare 576/1500.
      FlowTypeSpec{
          .name = "bulk-data",
          .train_weight = 0.063,
          .mean_train_len = 9.0,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{0.90, 552, 552}, {0.025, 576, 576}, {0.015, 1500, 1500},
                    {0.03, 40, 40}, {0.03, 256, 512}},
          .protocol = 6,
          .service_ports = {20, 119},
      },
      // ACK streams: the outbound halves of inbound bulk transfers --
      // pure 40-byte packets (IP + TCP headers, no payload) in trains.
      FlowTypeSpec{
          .name = "ack-stream",
          .train_weight = 0.078,
          .mean_train_len = 6.0,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{1.0, 40, 40}},
          .protocol = 6,
          .service_ports = {20, 21, 80, 70},
      },
      // Interactive sessions (telnet/rlogin): isolated small packets --
      // echoes and keystrokes at 40-75 B, occasional screen redraws.
      FlowTypeSpec{
          .name = "interactive",
          .train_weight = 0.547,
          .mean_train_len = 1.7,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{0.30, 40, 40}, {0.45, 41, 75}, {0.20, 76, 180},
                    {0.05, 552, 552}},
          .protocol = 6,
          .service_ports = {23, 513, 79},
      },
      // Transactions: DNS, SNMP, sunrpc over UDP -- single datagrams.
      FlowTypeSpec{
          .name = "transaction-udp",
          .train_weight = 0.214,
          .mean_train_len = 1.3,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{0.15, 41, 75}, {0.50, 76, 180}, {0.35, 181, 551}},
          .protocol = 17,
          .service_ports = {53, 161, 111, 123},
      },
      // Mail and news article bursts: mixed mid-size and full segments.
      FlowTypeSpec{
          .name = "mail-news",
          .train_weight = 0.074,
          .mean_train_len = 3.5,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{0.35, 552, 552}, {0.35, 181, 551}, {0.20, 76, 180},
                    {0.10, 40, 40}},
          .protocol = 6,
          .service_ports = {25, 119},
      },
      // A trickle of ICMP (echo, unreachable). Carries the population's
      // sub-40-byte tail (IP + ICMP can be as small as 28 bytes; TCP
      // packets cannot go below 40).
      FlowTypeSpec{
          .name = "icmp",
          .train_weight = 0.024,
          .mean_train_len = 1.1,
          .within_gap_mean_usec = 1400.0,
          .sizes = {{0.45, 28, 55}, {0.55, 56, 84}},
          .protocol = 1,
          .service_ports = {},
      },
  };
  return cfg;
}

TraceModelConfig flow_mix_minutes_config(double minutes, std::uint64_t seed) {
  // The SDSC calibration with the train-length distribution swapped for the
  // flow-workload regime: Pareto train lengths at shape 1.25 (mean exists,
  // variance does not), so the flow-size distribution has the heavy tail
  // the inversion estimators are evaluated on — most flows are 1-2 packet
  // transactions while the largest trains run to thousands of packets.
  TraceModelConfig cfg = sdsc_minutes_config(minutes, seed);
  cfg.train_length_model = TrainLengthModel::kPareto;
  cfg.pareto_shape = 1.25;
  for (auto& f : cfg.flows) {
    if (f.name == "bulk-data") {
      f.train_weight *= 1.5;  // more long transfers to populate the tail
      f.mean_train_len = 14.0;
    } else if (f.name == "ack-stream") {
      f.mean_train_len = 9.0;
    }
  }
  return cfg;
}

TraceModelConfig fixwest_minutes_config(double minutes, std::uint64_t seed) {
  // Start from the SDSC mix, then shift toward a transit profile.
  TraceModelConfig cfg = sdsc_minutes_config(minutes, seed);
  cfg.mean_gap_usec = 2100.0;  // somewhat busier aggregate
  cfg.remote_networks = 600;   // flatter, larger network population
  cfg.zipf_s = 0.7;
  cfg.modulation.log_sigma = 0.25;

  for (auto& f : cfg.flows) {
    if (f.name == "bulk-data") {
      f.train_weight *= 1.8;       // more transit bulk
      f.mean_train_len = 11.0;
    } else if (f.name == "interactive") {
      f.train_weight *= 0.55;      // less interactive across an exchange
    } else if (f.name == "mail-news") {
      f.train_weight *= 1.6;
    } else if (f.name == "ack-stream") {
      f.train_weight *= 1.2;
    }
  }
  return cfg;
}

TraceModelConfig poissonified(TraceModelConfig config) {
  // Re-balance train weights to per-packet shares, then collapse every train
  // to a single packet: the size marginal and mean rate are preserved while
  // all burst structure disappears.
  double weight_total = 0.0;
  for (const auto& f : config.flows) weight_total += f.train_weight;
  double mean_len = 0.0;
  for (const auto& f : config.flows) {
    mean_len += f.train_weight / weight_total * f.mean_train_len;
  }
  for (auto& f : config.flows) {
    f.train_weight = f.train_weight / weight_total * f.mean_train_len / mean_len;
    f.mean_train_len = 1.0;
    f.within_gap_mean_usec = 0.0;  // unused with single-packet trains
  }
  return config;
}

}  // namespace netsample::synth
