// Flow-workload experiment cells: sample, aggregate, invert, score.
//
// A flow cell reuses the packet-sweep cell vocabulary (exper::CellConfig:
// method, granularity k, interval, replications, seed) but changes what is
// measured: each replication's selected packets feed a bounded
// SampledFlowTable, the resulting sampled flow-size distribution is
// inverted back to an estimate of the original distribution
// (flow/inversion.h), and the estimate is scored against the cell's ground
// truth with the same chi-squared/phi machinery the packet sweeps use
// (core::score_counts at fraction 1.0 — the inversion already rescaled to
// population scale). Ground truth is the uncapped flow table over every
// packet of the interval, computed once per cell.
//
// run_flow_cell is the exper::RunOptions::cell_runner payload for
// `netsample flows --sweep` — both the in-process ParallelRunner path and
// the sharded worker path call exactly this function, which is what makes
// the byte-identical --jobs/--workers contract hold.
#pragma once

#include <cstdint>

#include "exper/runner.h"
#include "flow/inversion.h"

namespace netsample::flow {

struct FlowParams {
  /// Flow idle timeout applied to both the sampled tables and the ground
  /// truth (microseconds).
  std::uint64_t idle_timeout_usec{30'000'000};
  /// Sampled-table capacity cap; 0 = unbounded. Ground truth is always
  /// uncapped.
  std::uint64_t capacity{0};
  /// EM iteration budget (kEm only).
  int em_iters{60};

  friend bool operator==(const FlowParams&, const FlowParams&) = default;
};

/// Run one flow cell under `est`. Uses cfg.method / cfg.granularity /
/// cfg.interval / cfg.replications / cfg.base_seed / cfg.cache /
/// cfg.mean_interarrival_usec exactly as run_cell does (replication_spec
/// derives the same per-rep sampler specs); cfg.target is ignored. Requires
/// cfg.cache covering the interval (throws std::invalid_argument
/// otherwise). Polls cfg.cancel between replications.
///
/// Scoring: kTailRescale is compared against the truth truncated to sizes
/// >= k (its comparable support); kEm against the full truth. A cell whose
/// comparison population is empty (e.g. no flow reached k packets) scores
/// as the degenerate zero-disparity metric with population_n = 0 rather
/// than throwing — sweeps over aggressive k must not abort.
[[nodiscard]] exper::CellResult run_flow_cell(const exper::CellConfig& cfg,
                                              const FlowParams& params,
                                              Estimator est);

/// Default granularity ladder for flow sweeps: {10, 100, 1000}, the
/// sampling fractions the inversion literature reports.
[[nodiscard]] std::vector<std::uint64_t> flow_ladder();

}  // namespace netsample::flow
