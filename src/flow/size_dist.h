// Flow-size distributions: the quantity the inversion literature estimates.
//
// A SizeDist is the number of flows of each packet-count size s >= 1 —
// fractional, because inversion estimators produce expected counts, not
// integers. Scoring an estimate against ground truth reuses the paper's
// φ/χ² machinery (core::score_counts) over a geometric size binning: flow
// sizes are heavy-tailed, so linear bins would put almost all mass in bin
// one and the tail — where the estimators earn their keep — in empty bins.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/flows.h"

namespace netsample::flow {

/// Fractional count of flows per flow size (packets per flow). Index s
/// holds the count of flows with exactly s packets; index 0 is unused and
/// always zero.
class SizeDist {
 public:
  SizeDist() = default;

  /// Add `weight` flows of `size` packets (size >= 1; size 0 is ignored —
  /// a flow with no packets does not exist).
  void add(std::uint64_t size, double weight = 1.0);

  [[nodiscard]] double count(std::uint64_t size) const {
    return size < counts_.size() ? counts_[size] : 0.0;
  }
  /// Largest size with nonzero count (0 for an empty distribution).
  [[nodiscard]] std::uint64_t max_size() const;
  /// Total flows (sum of counts).
  [[nodiscard]] double total_flows() const;
  /// Total packets (sum of size * count).
  [[nodiscard]] double total_packets() const;
  /// Mean flow size in packets (0 for an empty distribution).
  [[nodiscard]] double mean_size() const;
  /// Flows with size >= threshold.
  [[nodiscard]] double tail_flows(std::uint64_t threshold) const;
  [[nodiscard]] bool empty() const { return total_flows() == 0.0; }

  /// Copy with every size < threshold zeroed (the comparable-support
  /// truncation for tail estimators).
  [[nodiscard]] SizeDist truncated_below(std::uint64_t threshold) const;

 private:
  std::vector<double> counts_;  // counts_[s] = flows of size s
};

/// Aggregate finished flow records into a size distribution.
[[nodiscard]] SizeDist size_dist_of(const std::vector<trace::FlowRecord>& records);

/// Geometric size-bin lower bounds covering [1, max_size]: exact bins for
/// the small sizes, then ~1.45x-spaced bins. Always starts at 1 and is
/// strictly increasing, so two distributions binned with the same call are
/// directly comparable by score_counts.
[[nodiscard]] std::vector<std::uint64_t> flow_size_bins(std::uint64_t max_size);

/// Per-bin totals of `dist` under `bins` (lower bounds from
/// flow_size_bins); sizes below bins.front() land in bin 0.
[[nodiscard]] std::vector<double> bin_counts(
    const SizeDist& dist, const std::vector<std::uint64_t>& bins);

}  // namespace netsample::flow
