#include "flow/sampled_table.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.h"

namespace netsample::flow {

namespace {

/// Total order on 5-tuples, used to sort expiry/flush batches so record
/// order never depends on hash-map iteration.
bool key_less(const trace::FlowKey& a, const trace::FlowKey& b) {
  return std::make_tuple(a.src.value(), a.dst.value(), a.src_port, a.dst_port,
                         a.protocol) <
         std::make_tuple(b.src.value(), b.dst.value(), b.src_port, b.dst_port,
                         b.protocol);
}

}  // namespace

SampledFlowTable::SampledFlowTable(MicroDuration idle_timeout,
                                   std::size_t capacity)
    : idle_timeout_(idle_timeout), capacity_(capacity) {
  if (idle_timeout_.usec <= 0) {
    throw std::invalid_argument(
        "sampled flow table: idle timeout must be positive");
  }
}

void SampledFlowTable::offer(const trace::PacketRecord& p) {
  if (saw_packet_ && p.timestamp < last_time_) {
    throw std::invalid_argument(
        "sampled flow table: packets must be time-ordered");
  }
  last_time_ = p.timestamp;
  saw_packet_ = true;
  ++offered_;
  expire_idle(p.timestamp);

  const trace::FlowKey key{p.src, p.dst, p.src_port, p.dst_port, p.protocol};
  auto it = active_.find(key);
  if (it == active_.end()) {
    if (capacity_ > 0 && active_.size() >= capacity_) evict_lru();
    recency_.push_front(key);
    Entry entry;
    entry.record.key = key;
    entry.record.first_seen = p.timestamp;
    entry.lru = recency_.begin();
    it = active_.emplace(key, std::move(entry)).first;
  } else {
    recency_.splice(recency_.begin(), recency_, it->second.lru);
  }
  trace::FlowRecord& flow = it->second.record;
  flow.last_seen = p.timestamp;
  flow.packets += 1;
  flow.bytes += p.size;
  if (p.protocol == 6) {
    if (p.tcp_flags & 0x02) flow.saw_syn = true;
    if (p.tcp_flags & 0x01) flow.saw_fin = true;
  }
}

void SampledFlowTable::expire_idle(MicroTime now) {
  // Same amortization as trace::FlowTable: idle flows only need noticing
  // within a quarter timeout of expiry.
  if (checked_expiry_ &&
      now - last_expiry_check_ < MicroDuration{idle_timeout_.usec / 4 + 1}) {
    return;
  }
  checked_expiry_ = true;
  last_expiry_check_ = now;
  std::vector<trace::FlowRecord> batch;
  for (auto it = active_.begin(); it != active_.end();) {
    if (now - it->second.record.last_seen > idle_timeout_) {
      batch.push_back(it->second.record);
      recency_.erase(it->second.lru);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  idle_expiries_ += batch.size();
  finish_sorted(std::move(batch));
}

void SampledFlowTable::evict_lru() {
  // recency_ back is the least-recently-seen flow; list order is packet
  // arrival order, so the victim is unique — no hash-order tiebreak.
  const trace::FlowKey victim = recency_.back();
  auto it = active_.find(victim);
  records_.push_back(it->second.record);
  recency_.pop_back();
  active_.erase(it);
  ++evictions_;
}

void SampledFlowTable::finish_sorted(std::vector<trace::FlowRecord> batch) {
  std::sort(batch.begin(), batch.end(),
            [](const trace::FlowRecord& a, const trace::FlowRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              return key_less(a.key, b.key);
            });
  records_.insert(records_.end(), batch.begin(), batch.end());
}

void SampledFlowTable::flush() {
  std::vector<trace::FlowRecord> batch;
  batch.reserve(active_.size());
  for (const auto& [key, entry] : active_) {
    (void)key;
    batch.push_back(entry.record);
  }
  active_.clear();
  recency_.clear();
  finish_sorted(std::move(batch));

  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("netsample_flow_packets_offered_total").add(offered_);
    reg.counter("netsample_flow_records_total").add(records_.size());
    reg.counter("netsample_flow_evictions_total").add(evictions_);
    reg.counter("netsample_flow_idle_expiries_total").add(idle_expiries_);
  }
}

SampledFlowTable::Stats SampledFlowTable::stats() const {
  Stats s;
  s.packets_offered = offered_;
  s.flows_finished = records_.size();
  s.evictions = evictions_;
  s.idle_expiries = idle_expiries_;
  s.capacity = capacity_;
  return s;
}

}  // namespace netsample::flow
