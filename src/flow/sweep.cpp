#include "flow/sweep.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/select_indices.h"
#include "flow/sampled_table.h"
#include "util/cancel.h"

namespace netsample::flow {

namespace {

core::DisparityMetrics score_estimate(const SizeDist& sampled,
                                      const SizeDist& truth, std::uint64_t k,
                                      Estimator est, const FlowParams& params) {
  SizeDist estimate;
  SizeDist population;
  switch (est) {
    case Estimator::kTailRescale:
      estimate = invert_tail_rescale(sampled, k);
      population = truth.truncated_below(k);
      break;
    case Estimator::kEm: {
      EmOptions opt;
      opt.max_iters = params.em_iters;
      estimate = invert_em(sampled, 1.0 / static_cast<double>(k), opt).estimated;
      population = truth;
      break;
    }
  }
  if (population.total_flows() == 0.0) {
    // No comparable support (nothing in the truth reaches this estimator's
    // domain). Score as zero disparity with an empty population instead of
    // letting score_counts throw; aggressive-k sweep cells stay kOk.
    core::DisparityMetrics m;
    m.dof = 1.0;
    m.sample_n =
        static_cast<std::uint64_t>(std::llround(estimate.total_flows()));
    return m;
  }
  // Bin by the POPULATION's support: estimate mass beyond the truth's
  // largest size (binomial overshoot in the rescaler, grid slack in EM)
  // folds into the top bin instead of landing in zero-population bins,
  // where score_counts' impossible-bin penalty would swamp phi.
  const std::vector<std::uint64_t> bins = flow_size_bins(population.max_size());
  std::vector<double> pop_binned = bin_counts(population, bins);
  std::vector<double> est_binned = bin_counts(estimate, bins);

  // Cochran's rule: merge sparse bins left-to-right until each merged
  // population bin holds >= 5 expected flows, so the chi-squared family is
  // meaningful on the heavy tail. Pure sequential arithmetic — the merge is
  // a function of the population alone, identical across jobs/workers.
  std::vector<double> pop_m, est_m;
  double ps = 0.0, es = 0.0;
  for (std::size_t i = 0; i < pop_binned.size(); ++i) {
    ps += pop_binned[i];
    es += est_binned[i];
    if (ps >= 5.0) {
      pop_m.push_back(ps);
      est_m.push_back(es);
      ps = es = 0.0;
    }
  }
  if (ps > 0.0 || es > 0.0) {
    if (pop_m.empty()) {
      pop_m.push_back(ps);
      est_m.push_back(es);
    } else {
      pop_m.back() += ps;
      est_m.back() += es;
    }
  }
  return core::score_counts(est_m, pop_m, /*sampling_fraction=*/1.0);
}

}  // namespace

exper::CellResult run_flow_cell(const exper::CellConfig& cfg,
                                const FlowParams& params, Estimator est) {
  if (cfg.cache == nullptr) {
    throw std::invalid_argument("flow cell: a binned trace cache is required");
  }
  if (cfg.interval.size() == 0) {
    throw std::invalid_argument("flow cell: empty interval");
  }
  if (cfg.granularity == 0) {
    throw std::invalid_argument("flow cell: granularity must be >= 1");
  }
  util::throw_if_stopped(cfg.cancel);

  const core::BinnedTraceCache& cache = *cfg.cache;
  const std::size_t begin = cache.offset_of(cfg.interval);
  const std::size_t end = begin + cfg.interval.size();
  const MicroDuration timeout{
      static_cast<std::int64_t>(params.idle_timeout_usec)};

  // Ground truth: every packet of the interval through an uncapped table.
  SampledFlowTable truth_table(timeout, /*capacity=*/0);
  for (std::size_t i = 0; i < cfg.interval.size(); ++i) {
    truth_table.offer(cfg.interval[i]);
  }
  truth_table.flush();
  const SizeDist truth = size_dist_of(truth_table.records());

  exper::CellResult out;
  out.config = cfg;
  out.replications.reserve(static_cast<std::size_t>(cfg.replications));
  for (int r = 0; r < cfg.replications; ++r) {
    util::throw_if_stopped(cfg.cancel);
    const core::SamplerSpec spec = exper::replication_spec(cfg, r);
    const std::vector<std::size_t> idx =
        core::select_indices(spec, cache, begin, end);
    SampledFlowTable table(timeout, static_cast<std::size_t>(params.capacity));
    for (std::size_t i : idx) table.offer(cfg.interval[i]);
    table.flush();
    out.replications.push_back(score_estimate(size_dist_of(table.records()),
                                              truth, cfg.granularity, est,
                                              params));
  }
  return out;
}

std::vector<std::uint64_t> flow_ladder() { return {10, 100, 1000}; }

}  // namespace netsample::flow
