#include "flow/size_dist.h"

#include <algorithm>

namespace netsample::flow {

void SizeDist::add(std::uint64_t size, double weight) {
  if (size == 0) return;
  if (size >= counts_.size()) counts_.resize(size + 1, 0.0);
  counts_[size] += weight;
}

std::uint64_t SizeDist::max_size() const {
  for (std::size_t s = counts_.size(); s-- > 1;) {
    if (counts_[s] != 0.0) return s;
  }
  return 0;
}

double SizeDist::total_flows() const {
  double sum = 0.0;
  for (std::size_t s = 1; s < counts_.size(); ++s) sum += counts_[s];
  return sum;
}

double SizeDist::total_packets() const {
  double sum = 0.0;
  for (std::size_t s = 1; s < counts_.size(); ++s) {
    sum += static_cast<double>(s) * counts_[s];
  }
  return sum;
}

double SizeDist::mean_size() const {
  const double flows = total_flows();
  return flows == 0.0 ? 0.0 : total_packets() / flows;
}

double SizeDist::tail_flows(std::uint64_t threshold) const {
  double sum = 0.0;
  for (std::size_t s = std::max<std::uint64_t>(threshold, 1);
       s < counts_.size(); ++s) {
    sum += counts_[s];
  }
  return sum;
}

SizeDist SizeDist::truncated_below(std::uint64_t threshold) const {
  SizeDist out;
  for (std::size_t s = std::max<std::uint64_t>(threshold, 1);
       s < counts_.size(); ++s) {
    if (counts_[s] != 0.0) out.add(s, counts_[s]);
  }
  return out;
}

SizeDist size_dist_of(const std::vector<trace::FlowRecord>& records) {
  SizeDist dist;
  for (const auto& r : records) dist.add(r.packets);
  return dist;
}

std::vector<std::uint64_t> flow_size_bins(std::uint64_t max_size) {
  std::vector<std::uint64_t> bins;
  std::uint64_t b = 1;
  while (b <= std::max<std::uint64_t>(max_size, 1)) {
    bins.push_back(b);
    // Exact bins through 8, then geometric ~1.45x so tail bins keep enough
    // expected mass for the chi-squared family to be meaningful.
    const std::uint64_t next =
        b < 8 ? b + 1 : std::max<std::uint64_t>(b + 1, (b * 29) / 20);
    b = next;
  }
  return bins;
}

std::vector<double> bin_counts(const SizeDist& dist,
                               const std::vector<std::uint64_t>& bins) {
  std::vector<double> out(bins.size(), 0.0);
  if (bins.empty()) return out;
  std::size_t bin = 0;
  for (std::uint64_t s = 1; s <= dist.max_size(); ++s) {
    while (bin + 1 < bins.size() && s >= bins[bin + 1]) ++bin;
    out[bin] += dist.count(s);
  }
  return out;
}

}  // namespace netsample::flow
