// Bounded, memory-pressured sampled-flow aggregator.
//
// The operational problem behind sampled NetFlow: a router's flow cache is
// a fixed-size table fed by *sampled* packets, so under pressure it evicts
// live flows early, splitting them into multiple records. This table
// models exactly that — a capacity cap with LRU eviction plus the usual
// idle-timeout expiry — while staying fully deterministic:
//
//   * eviction picks the least-recently-seen flow (ties cannot occur: the
//     recency list is ordered by packet arrival, a logical order);
//   * expiry and flush emit records sorted by (first_seen, 5-tuple), never
//     in hash-map iteration order.
//
// So the finished-record list is a pure function of the offered packet
// sequence — the property the flow sweep's bit-identical-across
// --jobs/--workers/SIMD contract rests on (docs/FLOWS.md). Eviction
// pressure is observable through obs:: counters
// (netsample_flow_evictions_total etc., deterministic section).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "trace/flows.h"

namespace netsample::flow {

class SampledFlowTable {
 public:
  /// `capacity` caps concurrently-tracked flows (0 = unbounded). Throws
  /// std::invalid_argument unless idle_timeout > 0.
  SampledFlowTable(MicroDuration idle_timeout, std::size_t capacity);

  /// Offer one (sampled) packet; must be in non-decreasing time order
  /// (throws std::invalid_argument otherwise). May evict the LRU flow when
  /// the table is full and the packet opens a new flow.
  void offer(const trace::PacketRecord& p);

  /// Force-finish all active flows and publish eviction counters. The
  /// record list is complete only after flush().
  void flush();

  /// Finished flow records. Deterministic: expiry/flush batches are sorted
  /// by (first_seen, 5-tuple); evictions append at their logical time.
  [[nodiscard]] const std::vector<trace::FlowRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }

  struct Stats {
    std::uint64_t packets_offered{0};
    std::uint64_t flows_finished{0};
    std::uint64_t evictions{0};       // flows closed early by the cap
    std::uint64_t idle_expiries{0};   // flows closed by the idle timeout
    std::size_t capacity{0};          // 0 = unbounded
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    trace::FlowRecord record;
    std::list<trace::FlowKey>::iterator lru;  // position in recency list
  };

  void expire_idle(MicroTime now);
  void evict_lru();
  void finish_sorted(std::vector<trace::FlowRecord> batch);

  MicroDuration idle_timeout_;
  std::size_t capacity_;
  MicroTime last_time_;
  MicroTime last_expiry_check_;
  bool saw_packet_{false};
  bool checked_expiry_{false};
  std::uint64_t offered_{0};
  std::uint64_t evictions_{0};
  std::uint64_t idle_expiries_{0};
  std::list<trace::FlowKey> recency_;  // front = most recently seen
  std::unordered_map<trace::FlowKey, Entry, trace::FlowKeyHash> active_;
  std::vector<trace::FlowRecord> records_;
};

}  // namespace netsample::flow
