#include "flow/inversion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace netsample::flow {

const char* estimator_token(Estimator e) {
  switch (e) {
    case Estimator::kTailRescale: return "rescale";
    case Estimator::kEm: return "em";
  }
  throw std::invalid_argument("unknown estimator");
}

Estimator parse_estimator_token(const std::string& token) {
  if (token == "rescale") return Estimator::kTailRescale;
  if (token == "em") return Estimator::kEm;
  throw std::invalid_argument("unknown estimator '" + token +
                              "' (expected rescale|em)");
}

const char* estimator_name(Estimator e) {
  switch (e) {
    case Estimator::kTailRescale: return "tail-rescale";
    case Estimator::kEm: return "em";
  }
  throw std::invalid_argument("unknown estimator");
}

SizeDist invert_tail_rescale(const SizeDist& sampled, std::uint64_t k) {
  if (k == 0) {
    throw std::invalid_argument("tail rescale: k must be >= 1");
  }
  SizeDist out;
  for (std::uint64_t j = 1; j <= sampled.max_size(); ++j) {
    const double c = sampled.count(j);
    if (c != 0.0) out.add(j * k, c);
  }
  return out;
}

namespace {

/// Geometric ladder of integer original-size support points covering
/// [1, smax]: exact through 16, then ~1.3x steps. Keeps the E-step
/// O(observed sizes x ~50-150 points) at any sampling fraction.
std::vector<std::uint64_t> support_grid(std::uint64_t smax) {
  std::vector<std::uint64_t> grid;
  std::uint64_t s = 1;
  while (s <= smax) {
    grid.push_back(s);
    s = s < 16 ? s + 1 : std::max<std::uint64_t>(s + 1, (s * 13) / 10);
  }
  return grid;
}

/// log Binomial(j | s, p); -inf when j > s.
double log_binom(std::uint64_t j, std::uint64_t s, double log_p,
                 double log_q) {
  if (j > s) return -std::numeric_limits<double>::infinity();
  const auto sd = static_cast<double>(s);
  const auto jd = static_cast<double>(j);
  return stats::log_gamma(sd + 1.0) - stats::log_gamma(jd + 1.0) -
         stats::log_gamma(sd - jd + 1.0) + jd * log_p + (sd - jd) * log_q;
}

}  // namespace

EmResult invert_em(const SizeDist& sampled, double p,
                   const EmOptions& options) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("em inversion: p must be in (0, 1]");
  }
  EmResult result;
  const std::uint64_t max_j = sampled.max_size();
  if (max_j == 0) return result;

  // Observed sizes and counts, densely packed.
  std::vector<std::uint64_t> obs_size;
  std::vector<double> obs_count;
  double observed_flows = 0.0;
  for (std::uint64_t j = 1; j <= max_j; ++j) {
    const double c = sampled.count(j);
    if (c > 0.0) {
      obs_size.push_back(j);
      obs_count.push_back(c);
      observed_flows += c;
    }
  }

  if (p == 1.0) {
    // Degenerate: nothing was thinned, the sample IS the original.
    for (std::size_t i = 0; i < obs_size.size(); ++i) {
      result.estimated.add(obs_size[i], obs_count[i]);
    }
    result.total_flows = observed_flows;
    result.support = support_grid(max_j);
    return result;
  }

  const auto smax = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(max_j) / p * options.support_slack));
  const std::vector<std::uint64_t> grid =
      support_grid(std::max(smax, max_j));
  const std::size_t G = grid.size();
  const std::size_t J = obs_size.size();

  // Precompute the thinning kernel B(j | s, p) for every observed j and
  // support s, and the never-seen probability B(0 | s, p) = (1-p)^s.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  std::vector<double> kernel(J * G);  // row j-index, col g
  for (std::size_t i = 0; i < J; ++i) {
    for (std::size_t g = 0; g < G; ++g) {
      const double lb = log_binom(obs_size[i], grid[g], log_p, log_q);
      kernel[i * G + g] = std::isfinite(lb) ? std::exp(lb) : 0.0;
    }
  }
  std::vector<double> b0(G);
  for (std::size_t g = 0; g < G; ++g) {
    b0[g] = std::exp(static_cast<double>(grid[g]) * log_q);
  }

  // Initialize theta from the rescaled observations: an observed j most
  // plausibly came from an original size near j/p, so seed the mixture
  // there. A uniform init is badly conditioned at small p — most mass
  // starts on tiny sizes whose B(0|s,p) is near 1 and whose likelihood
  // gradient is nearly flat, so EM needs thousands of iterations to drain
  // it and N-hat stays inflated meanwhile. The 1% uniform floor keeps
  // every support point reachable (exact zeros are absorbing in EM).
  std::vector<double> theta(G, 0.0);
  for (std::size_t i = 0; i < J; ++i) {
    const double target = static_cast<double>(obs_size[i]) / p;
    std::size_t g = static_cast<std::size_t>(
        std::lower_bound(grid.begin(), grid.end(),
                         static_cast<std::uint64_t>(target)) -
        grid.begin());
    if (g == G) g = G - 1;
    if (g > 0 && target - static_cast<double>(grid[g - 1]) <
                     static_cast<double>(grid[g]) - target) {
      --g;
    }
    theta[g] += obs_count[i];
  }
  for (double& t : theta) {
    t = 0.99 * (t / observed_flows) + 0.01 / static_cast<double>(G);
  }
  std::vector<double> mix(J);  // m_j = sum_g theta_g B(j|s_g,p)
  double b0bar = 0.0;

  // Zero-truncated observed-data log-likelihood of the current theta:
  //   l = sum_j c_j [ log m_j - log(1 - b0bar) ]
  const auto compute_mixture = [&]() -> double {
    b0bar = 0.0;
    for (std::size_t g = 0; g < G; ++g) b0bar += theta[g] * b0[g];
    b0bar = std::min(b0bar, 1.0 - 1e-12);
    double loglik = 0.0;
    const double log_seen = std::log1p(-b0bar);
    for (std::size_t i = 0; i < J; ++i) {
      double m = 0.0;
      for (std::size_t g = 0; g < G; ++g) m += theta[g] * kernel[i * G + g];
      mix[i] = std::max(m, 1e-300);
      loglik += obs_count[i] * (std::log(mix[i]) - log_seen);
    }
    return loglik;
  };

  double prev = compute_mixture();
  std::vector<double> weight(G);
  for (int iter = 0; iter < std::max(1, options.max_iters); ++iter) {
    // E-step responsibilities folded into the M-step weights: observed
    // flows split across support sizes, plus the expected unseen flows
    // C * theta_g b0_g / (1 - b0bar) attributed entirely to their size.
    const double unseen_scale = observed_flows / (1.0 - b0bar);
    double wsum = 0.0;
    for (std::size_t g = 0; g < G; ++g) {
      double w = unseen_scale * theta[g] * b0[g];
      for (std::size_t i = 0; i < J; ++i) {
        w += obs_count[i] * theta[g] * kernel[i * G + g] / mix[i];
      }
      weight[g] = w;
      wsum += w;
    }
    for (std::size_t g = 0; g < G; ++g) theta[g] = weight[g] / wsum;

    const double cur = compute_mixture();
    result.log_likelihood.push_back(cur);
    if (cur - prev < options.rel_tol * (std::fabs(cur) + 1.0)) break;
    prev = cur;
  }

  result.total_flows = observed_flows / (1.0 - b0bar);
  for (std::size_t g = 0; g < G; ++g) {
    const double c = result.total_flows * theta[g];
    if (c > 0.0) result.estimated.add(grid[g], c);
  }
  result.support = grid;
  return result;
}

}  // namespace netsample::flow
