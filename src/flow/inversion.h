// Inverting a sampled flow-size distribution back to the original.
//
// Packet sampling at fraction p thins every flow: a flow of s packets is
// seen with j ~ Binomial(s, p) of them, and is invisible when j = 0. Two
// estimators from the follow-on literature recover the original
// distribution from the observed one:
//
//   kTailRescale (Chabchoub et al.) — deterministic 1-in-k rescaling: a
//   flow observed with j sampled packets is estimated to have had j*k
//   originals. Exact in expectation for the tail (s >> k, where every flow
//   is seen and j concentrates at s/k); blind below s ~ k, so its output is
//   scored on the comparable support s >= k only.
//
//   kEm (Clegg et al.) — expectation-maximization over a zero-truncated
//   binomial-thinning mixture: original sizes live on a geometric grid of
//   support points, the E-step attributes each observed size j to support
//   sizes by Binomial(j | s, p) responsibility plus the expected
//   never-seen mass B(0|s,p), and the M-step re-weights. The unseen-flow
//   mass makes the estimated *total* flow count N-hat = C / (1 - P(unseen))
//   an output, not an input. Standard EM theory guarantees the observed-
//   data (zero-truncated) log-likelihood is non-decreasing per iteration —
//   asserted exactly by the conformance suite.
//
// Both estimators are pure sequential double arithmetic over the sampled
// distribution: bit-identical across threads, worker processes, and SIMD
// variants by construction. docs/FLOWS.md derives the math.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/size_dist.h"

namespace netsample::flow {

enum class Estimator {
  kTailRescale,  // deterministic 1-in-k tail rescaling
  kEm,           // zero-truncated binomial-thinning EM
};

/// Stable wire/CLI tokens: "rescale", "em". parse throws
/// std::invalid_argument on unknown tokens.
[[nodiscard]] const char* estimator_token(Estimator e);
[[nodiscard]] Estimator parse_estimator_token(const std::string& token);
/// Human name for tables ("tail-rescale", "em").
[[nodiscard]] const char* estimator_name(Estimator e);

/// Tail rescaling at granularity k: observed size j becomes estimated
/// original size j*k with the same flow count. Defined on sizes >= k only;
/// score it against a truth truncated_below(k). Throws
/// std::invalid_argument for k == 0.
[[nodiscard]] SizeDist invert_tail_rescale(const SizeDist& sampled,
                                           std::uint64_t k);

struct EmOptions {
  /// EM iterations (upper bound; iteration stops early once the
  /// log-likelihood gain falls below rel_tol * |loglik|).
  int max_iters{60};
  double rel_tol{1e-10};
  /// Original-size support extends to max_observed / p times this slack.
  double support_slack{2.0};
};

struct EmResult {
  /// Estimated original distribution: fractional flow counts at the
  /// support grid sizes (includes the estimated unseen flows).
  SizeDist estimated;
  /// Estimated total original flows N-hat = C / (1 - P(unseen)).
  double total_flows{0.0};
  /// Zero-truncated observed-data log-likelihood after each iteration;
  /// EM guarantees this sequence is non-decreasing.
  std::vector<double> log_likelihood;
  /// Support grid actually used (geometric ladder of integer sizes).
  std::vector<std::uint64_t> support;
};

/// EM inversion of `sampled` under independent-thinning probability p in
/// (0, 1]. Throws std::invalid_argument for p outside (0, 1]; an empty
/// sampled distribution returns an empty estimate.
[[nodiscard]] EmResult invert_em(const SizeDist& sampled, double p,
                                 const EmOptions& options = {});

}  // namespace netsample::flow
