// Backbone statistics-collection simulation (Section 2 / Figure 1).
//
// Figure 1 of the paper shows monthly T1-backbone packet totals counted two
// ways: by SNMP interface counters (incremented in the forwarding fast path,
// hence reliable) and by the NNStat categorization processor (a dedicated
// CPU that examines packet headers and saturates under load). From 1990 the
// two series diverge as traffic outgrows the processor; in September 1991
// the operator deployed 1-in-50 systematic sampling and the discrepancy
// collapsed.
//
// We reproduce the effect with a capacity-limited collection model: each
// month offers an exponentially growing packet volume spread over hours
// with a diurnal + log-normal load profile; the categorization processor
// examines headers at up to `capacity_pps`; examined counts are scaled by
// the sampling granularity to estimate totals. Overload manifests exactly
// as in the paper -- the categorized estimate falls short of SNMP during
// busy hours, and sampling restores integrity at a small accuracy cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netsample::collector {

struct BackboneConfig {
  int months{48};                        // simulated months (month 0 = Jan 1989)
  double initial_monthly_packets{1.3e9}; // packets in month 0 (~500 pps mean)
  double monthly_growth{1.06};           // compound traffic growth per month
  double processor_capacity_pps{3000.0}; // headers/sec the stats CPU can examine
  /// Month at which 1-in-k sampling is deployed (-1 = never).
  int sampling_deploy_month{32};        // month 32 ~ September 1991
  std::uint64_t sampling_granularity{50};
  /// Hour-to-hour load dispersion (log-normal sigma) and diurnal swing.
  double hourly_log_sigma{0.35};
  double diurnal_amplitude{0.6};        // peak/off-peak swing around the mean
  std::uint64_t seed{1991};
};

struct MonthResult {
  int month{0};
  std::string label;                    // "Jan 89" style
  bool sampling_active{false};
  double offered_packets{0};            // ground truth == SNMP count
  double snmp_packets{0};
  double examined_packets{0};           // headers the stats CPU got through
  double categorized_estimate{0};       // examined * granularity
  double discrepancy_fraction{0};       // (snmp - estimate) / snmp
};

class BackboneSimulation {
 public:
  /// Throws std::invalid_argument on non-positive volumes/capacity/months.
  explicit BackboneSimulation(BackboneConfig config);

  /// Run the whole simulated period; deterministic in config.seed.
  [[nodiscard]] std::vector<MonthResult> run() const;

  [[nodiscard]] const BackboneConfig& config() const { return config_; }

 private:
  BackboneConfig config_;
};

/// "Jan 89"-style label for month index m with month 0 = January 1989.
[[nodiscard]] std::string month_label(int m);

}  // namespace netsample::collector
