#include "collector/noc.h"

#include <stdexcept>

namespace netsample::collector {

NocSimulation::NocSimulation(NocConfig config) : config_(std::move(config)) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument("noc simulation: empty fleet");
  }
  for (const auto& n : config_.nodes) {
    if (n.traffic_share <= 0.0 || n.capacity_pps <= 0.0) {
      throw std::invalid_argument("noc simulation: bad node '" + n.name + "'");
    }
  }
}

std::vector<NocMonth> NocSimulation::run() const {
  double share_total = 0.0;
  for (const auto& n : config_.nodes) share_total += n.traffic_share;

  // One capacity-limited pipeline per node, with its slice of the traffic
  // and an independent hourly-noise stream.
  std::vector<std::vector<MonthResult>> per_node_results;
  per_node_results.reserve(config_.nodes.size());
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    BackboneConfig node_cfg = config_.base;
    node_cfg.initial_monthly_packets *=
        config_.nodes[i].traffic_share / share_total;
    node_cfg.processor_capacity_pps = config_.nodes[i].capacity_pps;
    node_cfg.seed = config_.base.seed + 0x9E37 * (i + 1);
    per_node_results.push_back(BackboneSimulation(node_cfg).run());
  }

  std::vector<NocMonth> out;
  out.reserve(static_cast<std::size_t>(config_.base.months));
  for (int m = 0; m < config_.base.months; ++m) {
    NocMonth month;
    month.month = m;
    month.label = month_label(m);
    for (const auto& node : per_node_results) {
      month.per_node.push_back(node[static_cast<std::size_t>(m)]);
      month.snmp_total += node[static_cast<std::size_t>(m)].snmp_packets;
      month.categorized_total +=
          node[static_cast<std::size_t>(m)].categorized_estimate;
    }
    month.discrepancy_fraction =
        (month.snmp_total - month.categorized_total) / month.snmp_total;
    out.push_back(std::move(month));
  }
  return out;
}

NocConfig NocSimulation::default_fleet() {
  NocConfig cfg;
  cfg.base = BackboneConfig{};
  // Shares loosely modeled on T1-era nodal imbalance: a few heavy exchange
  // nodes and a tail. Uniform processor hardware across the fleet.
  const double shares[] = {3.0, 2.5, 2.0, 1.5, 1.2, 1.0, 1.0,
                           0.8, 0.7, 0.6, 0.5, 0.5, 0.4, 0.3};
  int i = 0;
  for (double s : shares) {
    cfg.nodes.push_back(NodeConfig{"NSS-" + std::to_string(++i), s, 450.0});
  }
  return cfg;
}

}  // namespace netsample::collector
