// Multi-node NOC collection simulation.
//
// The paper (Section 2): "Every fifteen minutes, the central agent at the
// NOC ... queries each of the backbone nodes, which report and then reset
// their object counters." The T1 backbone had ~14 nodes with very different
// traffic levels, so the statistics processors saturated at different
// times. This extends the single-pipeline Figure 1 model to a fleet: each
// node carries a share of total traffic and has its own capacity; the NOC
// aggregates per-month totals across nodes, which is what Figure 1 plots.
#pragma once

#include <string>
#include <vector>

#include "collector/backbone.h"

namespace netsample::collector {

struct NodeConfig {
  std::string name;
  double traffic_share{1.0};     // relative share of backbone traffic
  double capacity_pps{3000.0};   // this node's stats processor capacity
};

struct NocConfig {
  BackboneConfig base;           // growth curve, deployment month, etc.
  std::vector<NodeConfig> nodes;
};

/// Per-month, per-node and aggregate results.
struct NocMonth {
  int month{0};
  std::string label;
  std::vector<MonthResult> per_node;
  double snmp_total{0};
  double categorized_total{0};
  double discrepancy_fraction{0};
};

class NocSimulation {
 public:
  /// Throws std::invalid_argument on an empty fleet or non-positive shares.
  explicit NocSimulation(NocConfig config);

  [[nodiscard]] std::vector<NocMonth> run() const;

  [[nodiscard]] const NocConfig& config() const { return config_; }

  /// A plausible T1-era fleet: a few big nodes and a tail of small ones.
  [[nodiscard]] static NocConfig default_fleet();

 private:
  NocConfig config_;
};

}  // namespace netsample::collector
