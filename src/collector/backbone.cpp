#include "collector/backbone.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.h"

namespace netsample::collector {

namespace {
constexpr int kHoursPerMonth = 30 * 24;
constexpr double kSecondsPerHour = 3600.0;
const char* kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
}  // namespace

std::string month_label(int m) {
  const int year = 89 + (m / 12);
  return std::string(kMonthNames[m % 12]) + " " + std::to_string(year % 100);
}

BackboneSimulation::BackboneSimulation(BackboneConfig config)
    : config_(config) {
  if (config_.months <= 0 || config_.initial_monthly_packets <= 0.0 ||
      config_.processor_capacity_pps <= 0.0 || config_.monthly_growth <= 0.0 ||
      config_.sampling_granularity == 0) {
    throw std::invalid_argument("backbone simulation: invalid configuration");
  }
}

std::vector<MonthResult> BackboneSimulation::run() const {
  Rng rng(config_.seed);
  std::vector<MonthResult> out;
  out.reserve(static_cast<std::size_t>(config_.months));

  double monthly = config_.initial_monthly_packets;
  for (int m = 0; m < config_.months; ++m) {
    MonthResult r;
    r.month = m;
    r.label = month_label(m);
    r.sampling_active = config_.sampling_deploy_month >= 0 &&
                        m >= config_.sampling_deploy_month;
    const std::uint64_t k =
        r.sampling_active ? config_.sampling_granularity : 1;

    const double mean_hourly = monthly / kHoursPerMonth;
    double offered = 0.0;
    double examined = 0.0;
    for (int h = 0; h < kHoursPerMonth; ++h) {
      // Diurnal swing plus log-normal hour-to-hour noise.
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(h % 24) / 24.0;
      const double diurnal =
          1.0 + config_.diurnal_amplitude * std::sin(phase - std::numbers::pi / 2);
      const double sigma = config_.hourly_log_sigma;
      const double noise = std::exp(rng.normal(-sigma * sigma / 2.0, sigma));
      const double volume = mean_hourly * diurnal * noise;
      offered += volume;

      // The stats processor sees volume/k headers this hour and can examine
      // at most capacity_pps * 3600 of them.
      const double headers = volume / static_cast<double>(k);
      const double capacity = config_.processor_capacity_pps * kSecondsPerHour;
      examined += std::min(headers, capacity);
    }

    r.offered_packets = offered;
    r.snmp_packets = offered;  // SNMP counters live in the forwarding path
    r.examined_packets = examined;
    r.categorized_estimate = examined * static_cast<double>(k);
    r.discrepancy_fraction =
        (r.snmp_packets - r.categorized_estimate) / r.snmp_packets;
    out.push_back(std::move(r));

    monthly *= config_.monthly_growth;
  }
  return out;
}

}  // namespace netsample::collector
