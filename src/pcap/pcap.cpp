#include "pcap/pcap.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "net/headers.h"
#include "obs/metrics.h"
#include "util/byteorder.h"

namespace netsample::pcap {

namespace {

constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;
constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? load_be32(p) : load_le32(p);
}

std::uint16_t read_u16(const std::uint8_t* p, bool swapped) {
  return swapped ? load_be16(p) : load_le16(p);
}

}  // namespace

namespace {

// A record whose claimed capture length is this far past the snaplen is
// framing garbage (bit flip or desync), not a generous writer.
constexpr std::uint32_t kInclLenSlack = 4096;

// Salvage resync: clock jumps this large between adjacent records mark a
// candidate header as implausible. Generous on purpose — the goal is to
// reject random garbage, not to police real monitor clocks (decode sorts
// small reorderings anyway).
constexpr std::uint32_t kMaxResyncClockJumpSec = 86400;

// Does `off` look like the start of an intact record header? Used only while
// resyncing after corruption, where a false positive costs one garbage
// record and a false negative costs a little more skipped data.
bool plausible_record_at(std::span<const std::uint8_t> bytes, std::size_t off,
                         bool swapped, std::uint32_t snaplen,
                         std::uint32_t prev_ts_sec) {
  if (off + kRecordHeaderSize > bytes.size()) return false;
  const std::uint32_t ts_sec = read_u32(bytes.data() + off, swapped);
  const std::uint32_t ts_usec = read_u32(bytes.data() + off + 4, swapped);
  const std::uint32_t incl_len = read_u32(bytes.data() + off + 8, swapped);
  if (incl_len > snaplen + kInclLenSlack) return false;
  if (off + kRecordHeaderSize + incl_len > bytes.size()) return false;
  if (ts_usec >= 1000000) return false;
  if (ts_sec < prev_ts_sec) return false;
  if (ts_sec - prev_ts_sec > kMaxResyncClockJumpSec) return false;
  return true;
}

// Ingest counters are pure functions of the capture bytes, so they belong
// to the deterministic metrics section. Published once per parse()/decode()
// via scope guards (both functions have several exit paths).
void publish_parse_stats(const ParseStats& s) {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  static obs::Counter& records = reg.counter("netsample_pcap_records_total");
  static obs::Counter& corrupt =
      reg.counter("netsample_pcap_corrupt_records_total");
  static obs::Counter& skipped =
      reg.counter("netsample_pcap_skipped_bytes_total");
  static obs::Counter& torn =
      reg.counter("netsample_pcap_torn_tail_bytes_total");
  records.add(s.records);
  corrupt.add(s.corrupt_records);
  skipped.add(s.skipped_bytes);
  torn.add(s.torn_tail_bytes);
}

void publish_decode_stats(const DecodeStats& s) {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  static obs::Counter& decoded =
      reg.counter("netsample_pcap_packets_decoded_total");
  static obs::Counter& non_ipv4 = reg.counter("netsample_pcap_non_ipv4_total");
  static obs::Counter& malformed =
      reg.counter("netsample_pcap_malformed_total");
  static obs::Counter& out_of_order =
      reg.counter("netsample_pcap_out_of_order_total");
  decoded.add(s.decoded);
  non_ipv4.add(s.non_ipv4);
  malformed.add(s.malformed);
  out_of_order.add(s.out_of_order);
}

struct ParseStatsPublisher {
  const ParseStats& s;
  ~ParseStatsPublisher() { publish_parse_stats(s); }
};
struct DecodeStatsPublisher {
  const DecodeStats& s;
  ~DecodeStatsPublisher() { publish_decode_stats(s); }
};

}  // namespace

StatusOr<CaptureFile> parse(std::span<const std::uint8_t> bytes,
                            const ParseOptions& options, ParseStats* stats) {
  ParseStats local;
  ParseStatsPublisher publisher{local};
  if (bytes.size() < kGlobalHeaderSize) {
    if (stats != nullptr) *stats = local;
    return Status(StatusCode::kDataLoss,
                  "pcap: file shorter than global header (" +
                      std::to_string(bytes.size()) + " bytes)");
  }
  // The magic is stored in the writer's host order; reading it little-endian
  // and seeing the swapped constant means the writer was big-endian.
  const std::uint32_t magic_le = load_le32(bytes.data());
  bool swapped;
  if (magic_le == kMagicNative) {
    swapped = false;
  } else if (magic_le == kMagicSwapped) {
    swapped = true;
  } else {
    if (stats != nullptr) *stats = local;
    return Status(StatusCode::kInvalidArgument,
                  "pcap: bad magic (not a classic pcap file)");
  }

  CaptureFile file;
  file.byte_swapped = swapped;
  const std::uint16_t major = read_u16(bytes.data() + 4, swapped);
  if (major != kVersionMajor) {
    if (stats != nullptr) *stats = local;
    return Status(StatusCode::kUnimplemented,
                  "pcap: unsupported version " + std::to_string(major));
  }
  file.snaplen = read_u32(bytes.data() + 16, swapped);
  file.link_type = read_u32(bytes.data() + 20, swapped);

  std::uint32_t prev_ts_sec = 0;
  std::size_t off = kGlobalHeaderSize;
  while (off + kRecordHeaderSize <= bytes.size()) {
    const std::uint32_t ts_sec = read_u32(bytes.data() + off, swapped);
    const std::uint32_t ts_usec = read_u32(bytes.data() + off + 4, swapped);
    const std::uint32_t incl_len = read_u32(bytes.data() + off + 8, swapped);
    const std::uint32_t orig_len = read_u32(bytes.data() + off + 12, swapped);
    if (incl_len > file.snaplen + kInclLenSlack) {
      // Framing garbage: a record header no writer would produce.
      ++local.corrupt_records;
      if (options.on_corrupt == OnCorrupt::kFail) {
        if (stats != nullptr) *stats = local;
        return Status(StatusCode::kDataLoss,
                      "pcap: corrupt record header at byte " +
                          std::to_string(off) + " (incl_len " +
                          std::to_string(incl_len) + " > snaplen " +
                          std::to_string(file.snaplen) + ")");
      }
      if (options.on_corrupt == OnCorrupt::kTruncate) break;
      // Salvage: slide forward one byte at a time until the stream looks
      // like a record header again, then resume normal framing there.
      std::size_t next = off + 1;
      while (next + kRecordHeaderSize <= bytes.size() &&
             !plausible_record_at(bytes, next, swapped, file.snaplen,
                                  prev_ts_sec)) {
        ++next;
      }
      local.skipped_bytes += next - off;
      off = next;
      if (off + kRecordHeaderSize > bytes.size()) break;
      continue;
    }
    if (off + kRecordHeaderSize + incl_len > bytes.size()) {
      // Torn trailing record: keep the complete prefix.
      local.torn_tail_bytes = bytes.size() - off;
      break;
    }
    off += kRecordHeaderSize;
    RawPacket rec;
    rec.timestamp = MicroTime::from_sec_usec(ts_sec, ts_usec);
    rec.orig_len = orig_len;
    rec.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                    bytes.begin() + static_cast<std::ptrdiff_t>(off + incl_len));
    file.records.push_back(std::move(rec));
    ++local.records;
    prev_ts_sec = ts_sec;
    off += incl_len;
  }
  if (stats != nullptr) *stats = local;
  return file;
}

StatusOr<CaptureFile> parse(std::span<const std::uint8_t> bytes) {
  return parse(bytes, ParseOptions{}, nullptr);
}

StatusOr<CaptureFile> read_file(const std::string& path,
                                const ParseOptions& options,
                                ParseStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "pcap: cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parse(bytes, options, stats);
}

StatusOr<CaptureFile> read_file(const std::string& path) {
  return read_file(path, ParseOptions{}, nullptr);
}

std::vector<std::uint8_t> serialize(const CaptureFile& file) {
  std::vector<std::uint8_t> out;
  std::size_t total = kGlobalHeaderSize;
  for (const auto& r : file.records) total += kRecordHeaderSize + r.data.size();
  out.reserve(total);

  auto push_u16 = [&](std::uint16_t v) {
    std::uint8_t buf[2];
    store_le16(buf, v);
    out.insert(out.end(), buf, buf + 2);
  };
  auto push_u32 = [&](std::uint32_t v) {
    std::uint8_t buf[4];
    store_le32(buf, v);
    out.insert(out.end(), buf, buf + 4);
  };

  push_u32(kMagicNative);
  push_u16(kVersionMajor);
  push_u16(kVersionMinor);
  push_u32(0);  // thiszone
  push_u32(0);  // sigfigs
  push_u32(file.snaplen);
  push_u32(file.link_type);

  for (const auto& r : file.records) {
    push_u32(static_cast<std::uint32_t>(r.timestamp.seconds()));
    push_u32(static_cast<std::uint32_t>(r.timestamp.subsec_usec()));
    push_u32(static_cast<std::uint32_t>(r.data.size()));
    push_u32(r.orig_len);
    out.insert(out.end(), r.data.begin(), r.data.end());
  }
  return out;
}

Status write_file(const std::string& path, const CaptureFile& file) {
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) {
    return Status(StatusCode::kNotFound, "pcap: cannot create '" + path + "'");
  }
  const auto bytes = serialize(file);
  outf.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!outf) {
    return Status(StatusCode::kDataLoss, "pcap: short write to '" + path + "'");
  }
  return Status::ok();
}

std::optional<trace::PacketRecord> decode_record(const RawPacket& raw,
                                                 std::uint32_t link_type,
                                                 DecodeStats* stats) {
  DecodeStats scratch;
  DecodeStats& s = stats != nullptr ? *stats : scratch;

  std::span<const std::uint8_t> ip_bytes(raw.data);
  if (link_type == kLinkTypeEthernet) {
    if (ip_bytes.size() < kEthernetHeaderSize) {
      ++s.malformed;
      return std::nullopt;
    }
    const std::uint16_t ether_type = load_be16(ip_bytes.data() + 12);
    if (ether_type != kEtherTypeIpv4) {
      ++s.non_ipv4;
      return std::nullopt;
    }
    ip_bytes = ip_bytes.subspan(kEthernetHeaderSize);
  }

  auto ip = net::parse_ipv4(ip_bytes);
  if (!ip) {
    if (ip.status().code() == StatusCode::kInvalidArgument) {
      ++s.non_ipv4;
    } else {
      ++s.malformed;
    }
    return std::nullopt;
  }

  trace::PacketRecord rec;
  rec.timestamp = raw.timestamp;
  rec.size = ip->total_length;
  rec.protocol = ip->protocol;
  rec.src = ip->src;
  rec.dst = ip->dst;

  const auto payload = ip_bytes.subspan(
      std::min(ip->header_bytes(), ip_bytes.size()));
  // Only unfragmented first fragments carry a transport header.
  if (ip->fragment_offset == 0) {
    if (ip->protocol == 6) {
      if (auto tcp = net::parse_tcp(payload)) {
        rec.src_port = tcp->src_port;
        rec.dst_port = tcp->dst_port;
        rec.tcp_flags = tcp->flags;
      }
    } else if (ip->protocol == 17) {
      if (auto udp = net::parse_udp(payload)) {
        rec.src_port = udp->src_port;
        rec.dst_port = udp->dst_port;
      }
    }
  }
  ++s.decoded;
  return rec;
}

trace::Trace decode(const CaptureFile& file, DecodeStats* stats) {
  DecodeStats local;
  DecodeStatsPublisher publisher{local};
  std::vector<trace::PacketRecord> records;
  records.reserve(file.records.size());

  for (const auto& raw : file.records) {
    if (auto rec = decode_record(raw, file.link_type, &local)) {
      records.push_back(*rec);
    }
  }

  if (!std::is_sorted(records.begin(), records.end(),
                      [](const trace::PacketRecord& a, const trace::PacketRecord& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    std::stable_sort(records.begin(), records.end(),
                     [](const trace::PacketRecord& a, const trace::PacketRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
    ++local.out_of_order;
  }
  if (stats != nullptr) *stats = local;
  return trace::Trace(std::move(records));
}

CaptureFile encode(const trace::Trace& t, std::uint32_t snaplen) {
  CaptureFile file;
  file.link_type = kLinkTypeRaw;
  file.snaplen = snaplen;
  file.records.reserve(t.size());

  for (const auto& rec : t.packets()) {
    net::Ipv4Header ip;
    ip.protocol = rec.protocol;
    ip.src = rec.src;
    ip.dst = rec.dst;
    ip.ttl = 30;

    // Build a transport header matching the record, then pad the payload so
    // the IP total length equals rec.size.
    std::vector<std::uint8_t> transport;
    const std::size_t ip_hlen = 20;
    const std::size_t want_payload = rec.size > ip_hlen ? rec.size - ip_hlen : 0;
    if (rec.protocol == 6 && want_payload >= 20) {
      net::TcpHeader tcp;
      tcp.src_port = rec.src_port;
      tcp.dst_port = rec.dst_port;
      tcp.flags = rec.tcp_flags;
      tcp.window = 4096;
      std::vector<std::uint8_t> body(want_payload - 20, 0);
      transport = net::build_tcp_segment(tcp, rec.src, rec.dst, body);
    } else if (rec.protocol == 17 && want_payload >= 8) {
      net::UdpHeader udp;
      udp.src_port = rec.src_port;
      udp.dst_port = rec.dst_port;
      std::vector<std::uint8_t> body(want_payload - 8, 0);
      transport = net::build_udp_datagram(udp, rec.src, rec.dst, body);
    } else {
      transport.assign(want_payload, 0);
    }

    RawPacket raw;
    raw.timestamp = rec.timestamp;
    auto wire = net::build_ipv4_packet(ip, transport);
    raw.orig_len = static_cast<std::uint32_t>(wire.size());
    if (wire.size() > snaplen) wire.resize(snaplen);
    raw.data = std::move(wire);
    file.records.push_back(std::move(raw));
  }
  return file;
}

StatusOr<trace::Trace> read_trace(const std::string& path, DecodeStats* stats) {
  auto file = read_file(path);
  if (!file) return file.status();
  return decode(*file, stats);
}

StatusOr<trace::Trace> read_trace(const std::string& path,
                                  const ParseOptions& options,
                                  ParseStats* parse_stats,
                                  DecodeStats* decode_stats) {
  auto file = read_file(path, options, parse_stats);
  if (!file) return file.status();
  return decode(*file, decode_stats);
}

Status write_trace(const std::string& path, const trace::Trace& t,
                   std::uint32_t snaplen) {
  return write_file(path, encode(t, snaplen));
}

}  // namespace netsample::pcap
