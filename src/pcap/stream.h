// Streaming pcap I/O: record-at-a-time reading and writing.
//
// The in-memory API (pcap.h) is convenient for experiments; operational
// tools cannot always afford to hold a multi-gigabyte capture. StreamReader
// yields one RawPacket at a time from disk with O(record) memory, and
// StreamWriter appends records as they are produced (e.g. by a sampler in
// a filtering pipeline). Both share the format logic via pcap.h semantics
// and are covered by equivalence tests against the in-memory path.
#pragma once

#include <fstream>
#include <optional>
#include <string>

#include "pcap/pcap.h"

namespace netsample::pcap {

class StreamReader {
 public:
  /// Opens and validates the global header; check ok() before reading.
  explicit StreamReader(const std::string& path);

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] bool ok() const { return status_.is_ok(); }

  [[nodiscard]] std::uint32_t link_type() const { return link_type_; }
  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }
  [[nodiscard]] bool byte_swapped() const { return swapped_; }

  /// Next record, or nullopt at end of file / on a torn trailing record
  /// (mirroring parse()'s prefix semantics). Never throws.
  [[nodiscard]] std::optional<RawPacket> next();

  /// Records returned so far.
  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }

 private:
  std::ifstream in_;
  Status status_;
  std::uint32_t link_type_{kLinkTypeRaw};
  std::uint32_t snaplen_{65535};
  bool swapped_{false};
  std::uint64_t records_read_{0};
};

class StreamWriter {
 public:
  /// Creates/truncates the file and writes the global header immediately.
  StreamWriter(const std::string& path, std::uint32_t link_type = kLinkTypeRaw,
               std::uint32_t snaplen = 65535);

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] bool ok() const { return status_.is_ok(); }

  /// Append one record (data longer than snaplen is truncated; orig_len is
  /// preserved). Returns false once the stream has failed.
  bool write(const RawPacket& record);

  /// Convenience: encode and append a PacketRecord as a raw-IP record.
  bool write_packet(const trace::PacketRecord& packet);

  [[nodiscard]] std::uint64_t records_written() const {
    return records_written_;
  }

  /// Flush buffered output (also happens on destruction).
  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  Status status_;
  std::uint32_t snaplen_;
  std::uint64_t records_written_{0};
};

}  // namespace netsample::pcap
