#include "pcap/stream.h"

#include <algorithm>
#include <array>

#include "net/headers.h"
#include "util/byteorder.h"

namespace netsample::pcap {

namespace {

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? load_be32(p) : load_le32(p);
}
std::uint16_t read_u16(const std::uint8_t* p, bool swapped) {
  return swapped ? load_be16(p) : load_le16(p);
}

}  // namespace

StreamReader::StreamReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    status_ = Status(StatusCode::kNotFound, "pcap: cannot open '" + path + "'");
    return;
  }
  std::array<std::uint8_t, 24> header{};
  if (!in_.read(reinterpret_cast<char*>(header.data()), header.size())) {
    status_ = Status(StatusCode::kDataLoss, "pcap: short global header");
    return;
  }
  const std::uint32_t magic_le = load_le32(header.data());
  if (magic_le == kMagicNative) {
    swapped_ = false;
  } else if (magic_le == kMagicSwapped) {
    swapped_ = true;
  } else {
    status_ = Status(StatusCode::kInvalidArgument, "pcap: bad magic");
    return;
  }
  const std::uint16_t major = read_u16(header.data() + 4, swapped_);
  if (major != kVersionMajor) {
    status_ = Status(StatusCode::kUnimplemented,
                     "pcap: unsupported version " + std::to_string(major));
    return;
  }
  snaplen_ = read_u32(header.data() + 16, swapped_);
  link_type_ = read_u32(header.data() + 20, swapped_);
}

std::optional<RawPacket> StreamReader::next() {
  if (!ok()) return std::nullopt;
  std::array<std::uint8_t, 16> rec{};
  if (!in_.read(reinterpret_cast<char*>(rec.data()), rec.size())) {
    return std::nullopt;  // clean EOF or torn header: stop
  }
  const std::uint32_t ts_sec = read_u32(rec.data(), swapped_);
  const std::uint32_t ts_usec = read_u32(rec.data() + 4, swapped_);
  const std::uint32_t incl_len = read_u32(rec.data() + 8, swapped_);
  const std::uint32_t orig_len = read_u32(rec.data() + 12, swapped_);
  if (incl_len > snaplen_ + 4096) {
    return std::nullopt;  // implausible length: treat as torn
  }
  RawPacket out;
  out.timestamp = MicroTime::from_sec_usec(ts_sec, ts_usec);
  out.orig_len = orig_len;
  out.data.resize(incl_len);
  if (!in_.read(reinterpret_cast<char*>(out.data.data()), incl_len)) {
    return std::nullopt;  // torn body
  }
  ++records_read_;
  return out;
}

StreamWriter::StreamWriter(const std::string& path, std::uint32_t link_type,
                           std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  if (!out_) {
    status_ = Status(StatusCode::kNotFound, "pcap: cannot create '" + path + "'");
    return;
  }
  CaptureFile empty;
  empty.link_type = link_type;
  empty.snaplen = snaplen;
  const auto header = serialize(empty);  // header of an empty capture
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  if (!out_) {
    status_ = Status(StatusCode::kDataLoss, "pcap: header write failed");
  }
}

bool StreamWriter::write(const RawPacket& record) {
  if (!ok()) return false;
  std::array<std::uint8_t, 16> hdr{};
  store_le32(hdr.data(), static_cast<std::uint32_t>(record.timestamp.seconds()));
  store_le32(hdr.data() + 4,
             static_cast<std::uint32_t>(record.timestamp.subsec_usec()));
  const std::uint32_t incl =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(record.data.size()),
                              snaplen_);
  store_le32(hdr.data() + 8, incl);
  store_le32(hdr.data() + 12, record.orig_len);
  out_.write(reinterpret_cast<const char*>(hdr.data()), hdr.size());
  out_.write(reinterpret_cast<const char*>(record.data.data()), incl);
  if (!out_) {
    status_ = Status(StatusCode::kDataLoss, "pcap: record write failed");
    return false;
  }
  ++records_written_;
  return true;
}

bool StreamWriter::write_packet(const trace::PacketRecord& packet) {
  // Reuse the in-memory encoder for a single packet.
  trace::Trace one(std::vector<trace::PacketRecord>{packet});
  const auto file = encode(one, snaplen_);
  return write(file.records.front());
}

}  // namespace netsample::pcap
