// Classic libpcap capture file format, implemented from scratch.
//
// The paper's raw material is a packet-header trace; today such traces ship
// as pcap files. We implement the classic (non-ng) format: a 24-byte global
// header whose magic declares byte order, followed by 16-byte per-record
// headers. Both byte orders are read; files are written in host order with
// magic 0xa1b2c3d4, which any libpcap tool accepts.
//
// Supported link types: LINKTYPE_RAW (packets begin at the IP header) and
// LINKTYPE_ETHERNET (a 14-byte MAC header precedes IP). Decoding a file
// produces a trace::Trace of the IPv4 packets; non-IPv4 records are counted
// and skipped rather than failing the whole file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"
#include "util/timeval.h"

namespace netsample::pcap {

inline constexpr std::uint32_t kMagicNative = 0xA1B2C3D4u;   // usec timestamps
inline constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1u;
inline constexpr std::uint16_t kVersionMajor = 2;
inline constexpr std::uint16_t kVersionMinor = 4;

inline constexpr std::uint32_t kLinkTypeEthernet = 1;
inline constexpr std::uint32_t kLinkTypeRaw = 101;  // packets start at the IP header

/// A captured record: timestamp plus the captured bytes (possibly truncated
/// to the file's snaplen; `orig_len` is the untruncated wire length).
struct RawPacket {
  MicroTime timestamp;
  std::uint32_t orig_len{0};
  std::vector<std::uint8_t> data;
};

/// A parsed capture file.
struct CaptureFile {
  std::uint32_t link_type{kLinkTypeRaw};
  std::uint32_t snaplen{65535};
  bool byte_swapped{false};  // file was written on an opposite-endian host
  std::vector<RawPacket> records;
};

/// What to do when a record header is implausible (incl_len far beyond the
/// snaplen — bit flips, mid-file truncation that desynced the framing):
enum class OnCorrupt {
  kTruncate,  // keep the clean prefix, drop the rest (historical default)
  kFail,      // strict: reject the whole capture with kDataLoss
  kSalvage,   // skip the corrupt region, resync on the next plausible
              // record header, and keep reading
};

struct ParseOptions {
  OnCorrupt on_corrupt{OnCorrupt::kTruncate};
};

/// Counters from one parse. `corrupt_records` > 0 means the capture was
/// impaired; in salvage mode `skipped_bytes` says how much of it was
/// discarded while resyncing. A torn trailing record (clean header, data
/// running past EOF) is counted separately — that is a short capture, not a
/// corrupt one.
struct ParseStats {
  std::size_t records{0};
  std::size_t corrupt_records{0};   // implausible headers encountered
  std::size_t skipped_bytes{0};     // bytes discarded while resyncing
  std::size_t torn_tail_bytes{0};   // incomplete trailing record dropped
  [[nodiscard]] bool clean() const {
    return corrupt_records == 0 && skipped_bytes == 0 && torn_tail_bytes == 0;
  }
};

/// Read a capture file from disk. Truncated trailing records are dropped
/// with a DataLoss status only if *no* records could be read; otherwise the
/// complete prefix is returned (tools must survive torn captures).
[[nodiscard]] StatusOr<CaptureFile> read_file(const std::string& path);
[[nodiscard]] StatusOr<CaptureFile> read_file(const std::string& path,
                                              const ParseOptions& options,
                                              ParseStats* stats = nullptr);

/// Parse a capture file from an in-memory buffer (same semantics).
[[nodiscard]] StatusOr<CaptureFile> parse(std::span<const std::uint8_t> bytes);
[[nodiscard]] StatusOr<CaptureFile> parse(std::span<const std::uint8_t> bytes,
                                          const ParseOptions& options,
                                          ParseStats* stats = nullptr);

/// Serialize a capture to bytes / write it to disk (host byte order).
[[nodiscard]] std::vector<std::uint8_t> serialize(const CaptureFile& file);
[[nodiscard]] Status write_file(const std::string& path, const CaptureFile& file);

/// Statistics from decoding raw records into PacketRecords.
struct DecodeStats {
  std::size_t decoded{0};
  std::size_t non_ipv4{0};
  std::size_t malformed{0};
  std::size_t out_of_order{0};  // records re-sorted into time order
};

/// Decode one captured record into an IPv4 PacketRecord, applying the same
/// link-type framing rules as decode(): Ethernet headers are stripped (and
/// non-IPv4 ether types rejected) when `link_type` is kLinkTypeEthernet.
/// Returns std::nullopt for non-IPv4 or malformed records, bumping the
/// matching DecodeStats counter when `stats` is given. This is the single
/// decode truth shared by the whole-file path and the streaming sources
/// (stream::PcapSource), so the two cannot diverge.
[[nodiscard]] std::optional<trace::PacketRecord> decode_record(
    const RawPacket& raw, std::uint32_t link_type, DecodeStats* stats = nullptr);

/// Decode a capture into a Trace of IPv4 PacketRecords. Ethernet framing is
/// stripped when the link type requires it. Records are sorted into
/// timestamp order if needed (some capture stacks emit small reorderings).
[[nodiscard]] trace::Trace decode(const CaptureFile& file,
                                  DecodeStats* stats = nullptr);

/// Encode a Trace back to a capture file: each PacketRecord is synthesized
/// into a wire-format IPv4 packet (with correct checksums and a TCP/UDP/
/// ICMP header matching the record), truncated to `snaplen` captured bytes.
/// Round-tripping encode+decode preserves every PacketRecord field as long
/// as snaplen covers the headers (>= 40 bytes).
[[nodiscard]] CaptureFile encode(const trace::Trace& t,
                                 std::uint32_t snaplen = 65535);

/// Convenience wrappers.
[[nodiscard]] StatusOr<trace::Trace> read_trace(const std::string& path,
                                                DecodeStats* stats = nullptr);
[[nodiscard]] StatusOr<trace::Trace> read_trace(const std::string& path,
                                                const ParseOptions& options,
                                                ParseStats* parse_stats = nullptr,
                                                DecodeStats* decode_stats = nullptr);
[[nodiscard]] Status write_trace(const std::string& path, const trace::Trace& t,
                                 std::uint32_t snaplen = 65535);

}  // namespace netsample::pcap
