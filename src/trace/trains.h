// Packet-train detection (Jain & Routhier's train model, the era's standard
// description of traffic burst structure).
//
// A train is a maximal run of packets whose successive gaps are all below a
// threshold (the "maximum allowed inter-car gap"). Train statistics both
// validate the synthetic workload's burst structure and explain the paper's
// timer-sampling result: timer triggers land between trains, so train
// interiors are under-sampled.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/descriptive.h"
#include "trace/trace.h"

namespace netsample::trace {

struct Train {
  std::size_t first_index{0};  // position within the analyzed view
  std::size_t packets{0};
  std::uint64_t bytes{0};
  MicroTime start;
  MicroTime end;

  [[nodiscard]] MicroDuration duration() const { return end - start; }
};

/// Split a view into trains using the given maximum intra-train gap.
/// Throws std::invalid_argument unless max_gap > 0.
[[nodiscard]] std::vector<Train> detect_trains(TraceView view,
                                               MicroDuration max_gap);

/// Aggregate train statistics.
struct TrainStats {
  std::uint64_t trains{0};
  double mean_length_packets{0};
  double mean_duration_usec{0};
  double mean_intertrain_gap_usec{0};
  /// Fraction of all packets that are train interiors (not train heads);
  /// this is the traffic mass a between-train timer trigger cannot select
  /// first.
  double interior_fraction{0};
  stats::Summary length_summary;
};

[[nodiscard]] TrainStats train_stats(TraceView view, MicroDuration max_gap);

}  // namespace netsample::trace
