#include "trace/trains.h"

#include <stdexcept>

namespace netsample::trace {

std::vector<Train> detect_trains(TraceView view, MicroDuration max_gap) {
  if (max_gap.usec <= 0) {
    throw std::invalid_argument("detect_trains: max_gap must be positive");
  }
  std::vector<Train> out;
  if (view.empty()) return out;

  Train current;
  current.first_index = 0;
  current.packets = 1;
  current.bytes = view[0].size;
  current.start = view[0].timestamp;
  current.end = view[0].timestamp;

  for (std::size_t i = 1; i < view.size(); ++i) {
    const auto gap = view[i].timestamp - view[i - 1].timestamp;
    if (gap <= max_gap) {
      current.packets += 1;
      current.bytes += view[i].size;
      current.end = view[i].timestamp;
    } else {
      out.push_back(current);
      current = Train{};
      current.first_index = i;
      current.packets = 1;
      current.bytes = view[i].size;
      current.start = view[i].timestamp;
      current.end = view[i].timestamp;
    }
  }
  out.push_back(current);
  return out;
}

TrainStats train_stats(TraceView view, MicroDuration max_gap) {
  TrainStats s;
  const auto trains = detect_trains(view, max_gap);
  s.trains = trains.size();
  if (trains.empty()) return s;

  std::vector<double> lengths;
  lengths.reserve(trains.size());
  double dur_sum = 0.0;
  std::uint64_t interior = 0;
  for (const auto& t : trains) {
    lengths.push_back(static_cast<double>(t.packets));
    dur_sum += static_cast<double>(t.duration().usec);
    interior += t.packets - 1;
  }
  double gap_sum = 0.0;
  for (std::size_t i = 1; i < trains.size(); ++i) {
    gap_sum += static_cast<double>((trains[i].start - trains[i - 1].end).usec);
  }

  s.length_summary = stats::summarize(lengths);
  s.mean_length_packets = s.length_summary.mean;
  s.mean_duration_usec = dur_sum / static_cast<double>(trains.size());
  s.mean_intertrain_gap_usec =
      trains.size() > 1 ? gap_sum / static_cast<double>(trains.size() - 1) : 0.0;
  s.interior_fraction =
      view.empty() ? 0.0
                   : static_cast<double>(interior) / static_cast<double>(view.size());
  return s;
}

}  // namespace netsample::trace
