#include "trace/trace.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace netsample::trace {

MicroTime TraceView::start_time() const {
  if (packets_.empty()) throw std::out_of_range("start_time of empty view");
  return packets_.front().timestamp;
}

MicroTime TraceView::end_time() const {
  if (packets_.empty()) throw std::out_of_range("end_time of empty view");
  return packets_.back().timestamp;
}

MicroDuration TraceView::duration() const { return end_time() - start_time(); }

TraceView TraceView::window(MicroTime t0, MicroTime t1) const {
  if (t1 <= t0) return TraceView{};
  const auto lo = std::lower_bound(
      packets_.begin(), packets_.end(), t0,
      [](const PacketRecord& p, MicroTime t) { return p.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, packets_.end(), t1,
      [](const PacketRecord& p, MicroTime t) { return p.timestamp < t; });
  return TraceView(packets_.subspan(
      static_cast<std::size_t>(lo - packets_.begin()),
      static_cast<std::size_t>(hi - lo)));
}

TraceView TraceView::prefix_duration(MicroDuration d) const {
  if (packets_.empty() || d.usec <= 0) return TraceView{};
  return window(start_time(), start_time() + d);
}

bool TraceView::contains(TraceView sub) const {
  const PacketRecord* lo = packets_.data();
  const PacketRecord* hi = lo + packets_.size();
  const PacketRecord* sub_lo = sub.packets_.data();
  const PacketRecord* sub_hi = sub_lo + sub.size();
  if (sub_lo == nullptr || lo == nullptr) return false;
  // std::less_equal gives a total pointer order even across allocations.
  const std::less_equal<const PacketRecord*> le;
  return le(lo, sub_lo) && le(sub_hi, hi);
}

std::size_t TraceView::offset_of(TraceView sub) const {
  if (!contains(sub)) {
    throw std::out_of_range("offset_of: view is not a sub-span");
  }
  return static_cast<std::size_t>(sub.packets_.data() - packets_.data());
}

std::uint64_t TraceView::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : packets_) total += p.size;
  return total;
}

std::vector<double> TraceView::sizes() const {
  std::vector<double> out;
  out.reserve(packets_.size());
  for (const auto& p : packets_) out.push_back(static_cast<double>(p.size));
  return out;
}

std::vector<double> TraceView::interarrivals() const {
  std::vector<double> out;
  if (packets_.size() < 2) return out;
  out.reserve(packets_.size() - 1);
  for (std::size_t i = 1; i < packets_.size(); ++i) {
    out.push_back(static_cast<double>(
        (packets_[i].timestamp - packets_[i - 1].timestamp).usec));
  }
  return out;
}

Trace::Trace(std::vector<PacketRecord> packets) : packets_(std::move(packets)) {
  if (!std::is_sorted(packets_.begin(), packets_.end(),
                      [](const PacketRecord& a, const PacketRecord& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    throw std::invalid_argument("trace packets must be time-ordered");
  }
}

void Trace::append(const PacketRecord& p) {
  if (!packets_.empty() && p.timestamp < packets_.back().timestamp) {
    throw std::invalid_argument("appending packet would break time order");
  }
  packets_.push_back(p);
}

bool Trace::append(const PacketRecord& p, TimePolicy policy,
                   AppendStats* stats) {
  if (packets_.empty() || !(p.timestamp < packets_.back().timestamp)) {
    packets_.push_back(p);
    return true;
  }
  switch (policy) {
    case TimePolicy::kStrict:
      throw std::invalid_argument("appending packet would break time order");
    case TimePolicy::kClamp: {
      PacketRecord fixed = p;
      fixed.timestamp = packets_.back().timestamp;
      packets_.push_back(fixed);
      if (stats != nullptr) ++stats->clamped;
      return true;
    }
    case TimePolicy::kQuarantine:
      if (stats != nullptr) ++stats->quarantined;
      return false;
  }
  return false;  // unreachable
}

std::size_t Trace::quantize_clock(MicroDuration tick) {
  if (tick.usec <= 0) {
    throw std::invalid_argument("clock tick must be positive");
  }
  const auto t = static_cast<std::uint64_t>(tick.usec);
  std::size_t changed = 0;
  for (auto& p : packets_) {
    const std::uint64_t q = (p.timestamp.usec / t) * t;
    if (q != p.timestamp.usec) {
      p.timestamp = MicroTime{q};
      ++changed;
    }
  }
  return changed;
}

void Trace::rebase_to_zero() {
  if (packets_.empty()) return;
  const std::uint64_t t0 = packets_.front().timestamp.usec;
  for (auto& p : packets_) p.timestamp = MicroTime{p.timestamp.usec - t0};
}

}  // namespace netsample::trace
