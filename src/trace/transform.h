// Trace manipulation: merging, filtering, slicing.
//
// Operational uses: a backbone node aggregates several interfaces into one
// measurement stream (merge); analyses are often restricted to a protocol
// or service (filter); experiments replay shifted copies of a workload to
// scale load (time_shift). All transforms preserve the time-order
// invariant by construction.
#pragma once

#include <functional>
#include <vector>

#include "trace/trace.h"

namespace netsample::trace {

/// Predicate on packets.
using PacketPredicate = std::function<bool(const PacketRecord&)>;

/// Merge any number of traces into one time-ordered trace (stable: ties
/// keep the order of the input list). K-way merge, O(total log k).
[[nodiscard]] Trace merge(const std::vector<TraceView>& inputs);

/// Keep only packets satisfying the predicate.
[[nodiscard]] Trace filter(TraceView input, const PacketPredicate& keep);

/// Copy a view into an owning trace with all timestamps shifted by `delta`
/// (useful for overlaying load: merge({a, time_shift(a, d)})).
/// Throws std::invalid_argument if the shift would underflow time zero.
[[nodiscard]] Trace time_shift(TraceView input, MicroDuration delta);

/// Ready-made predicates.
[[nodiscard]] PacketPredicate by_protocol(std::uint8_t protocol);
[[nodiscard]] PacketPredicate by_service_port(std::uint16_t port);
[[nodiscard]] PacketPredicate by_destination_network(net::NetworkNumber net);

}  // namespace netsample::trace
