// Flow assembly: grouping packets into transport flows.
//
// The paper's Table 1 objects aggregate by network pair and by service
// port; the natural finer granularity -- the 5-tuple flow with an idle
// timeout -- is what NetFlow later standardized and what the paper's
// "geographic flow information" objects foreshadow. The flow table here is
// a streaming structure: offer packets in time order, flows expire after
// `idle_timeout` without traffic, expired flows accumulate into a record
// list for reporting.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"

namespace netsample::trace {

/// Flow key: the classic 5-tuple.
struct FlowKey {
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint8_t protocol{0};

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    // Pack the 13 key bytes into two disjoint words and run each through
    // the full SplitMix64 finalizer. The earlier multiply-add chain had
    // poor avalanche (single-bit key flips moved only a handful of output
    // bits), which clustered structured 5-tuple populations — sequential
    // ports, /24 scans — into few buckets. Pinned by the collision /
    // avalanche regression in tests/test_flows.cpp.
    const std::uint64_t addrs =
        (std::uint64_t{k.src.value()} << 32) | k.dst.value();
    const std::uint64_t rest = (std::uint64_t{k.src_port} << 48) |
                               (std::uint64_t{k.dst_port} << 32) | k.protocol;
    return static_cast<std::size_t>(
        mix64(addrs ^ mix64(rest + 0x9E3779B97F4A7C15ULL)));
  }
};

/// A completed (or in-progress) flow record.
struct FlowRecord {
  FlowKey key;
  MicroTime first_seen;
  MicroTime last_seen;
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  bool saw_syn{false};
  bool saw_fin{false};

  [[nodiscard]] MicroDuration duration() const { return last_seen - first_seen; }
  [[nodiscard]] double mean_packet_size() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(bytes) / static_cast<double>(packets);
  }

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Streaming flow table with idle-timeout expiry.
class FlowTable {
 public:
  /// Throws std::invalid_argument unless idle_timeout > 0.
  explicit FlowTable(MicroDuration idle_timeout);

  /// Offer one packet (must be in non-decreasing time order; throws
  /// std::invalid_argument otherwise). Expires idle flows as time advances.
  void offer(const PacketRecord& p);

  /// Drive a whole view, then expire everything still active.
  void run(TraceView view);

  /// Force-expire all active flows (end of measurement).
  void flush();

  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }
  [[nodiscard]] const std::vector<FlowRecord>& expired() const {
    return expired_;
  }

  /// Expired flows sorted by descending packet count (top talkers).
  [[nodiscard]] std::vector<FlowRecord> top_by_packets(std::size_t n) const;

  /// Summary across all expired flows.
  struct Stats {
    std::uint64_t flows{0};
    std::uint64_t packets{0};
    std::uint64_t bytes{0};
    double mean_flow_packets{0};
    double mean_flow_duration_sec{0};
  };
  [[nodiscard]] Stats stats() const;

 private:
  void expire_idle(MicroTime now);

  MicroDuration idle_timeout_;
  MicroTime last_time_;
  MicroTime last_expiry_check_;
  bool saw_packet_{false};
  bool checked_expiry_{false};
  std::unordered_map<FlowKey, FlowRecord, FlowKeyHash> active_;
  std::vector<FlowRecord> expired_;
};

}  // namespace netsample::trace
