// Binary flow-record export format ("NSFE"), reader and writer.
//
// A compact on-disk representation of assembled FlowRecords so flow-level
// results can be archived and exchanged without re-parsing packet traces --
// the role NetFlow v5 export files played operationally. Format (all
// little-endian):
//
//   file header (16 bytes):
//     magic  "NSFE"            4 bytes
//     version (= 1)            u16
//     reserved                 u16
//     record count             u64
//   per record (48 bytes):
//     src addr, dst addr       u32 x2 (host-order address values)
//     src port, dst port       u16 x2
//     protocol                 u8
//     flags (bit0 SYN seen, bit1 FIN seen)  u8
//     reserved                 u16
//     first_seen usec          u64
//     last_seen usec           u64
//     packets                  u64
//     bytes                    u64
//
// Readers validate magic, version, and payload length; the layout is
// covered by round-trip tests.
#pragma once

#include <string>
#include <vector>

#include "trace/flows.h"
#include "util/status.h"

namespace netsample::trace {

inline constexpr std::uint16_t kFlowExportVersion = 1;

/// Serialize records to the NSFE byte format.
[[nodiscard]] std::vector<std::uint8_t> serialize_flows(
    const std::vector<FlowRecord>& records);

/// Parse NSFE bytes. Fails on bad magic/version or truncated payload.
[[nodiscard]] StatusOr<std::vector<FlowRecord>> parse_flows(
    std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
[[nodiscard]] Status write_flows(const std::string& path,
                                 const std::vector<FlowRecord>& records);
[[nodiscard]] StatusOr<std::vector<FlowRecord>> read_flows(
    const std::string& path);

}  // namespace netsample::trace
