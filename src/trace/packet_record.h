// The per-packet record every layer of the library operates on.
//
// This is the decoded form of what the NSFNET collection path kept from each
// packet header: arrival time, IP total length, addresses, protocol, and
// transport ports. 32 bytes per record keeps an hour-long million-packet
// trace comfortably in memory.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "util/timeval.h"

namespace netsample::trace {

struct PacketRecord {
  MicroTime timestamp;          // arrival time since trace epoch
  std::uint16_t size{0};        // IP total length in bytes (28..1500 for this era)
  std::uint8_t protocol{0};     // IP protocol number (6=TCP, 17=UDP, 1=ICMP, ...)
  std::uint8_t tcp_flags{0};    // TCP flag bits; 0 for non-TCP
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port{0};    // 0 for protocols without ports
  std::uint16_t dst_port{0};

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

}  // namespace netsample::trace
