#include "trace/flow_export.h"

#include <cstring>
#include <fstream>

#include "util/byteorder.h"

namespace netsample::trace {

namespace {

constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kRecordSize = 48;
constexpr char kMagic[4] = {'N', 'S', 'F', 'E'};

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  std::uint8_t buf[2];
  store_le16(buf, v);
  out.insert(out.end(), buf, buf + 2);
}
void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t buf[4];
  store_le32(buf, v);
  out.insert(out.end(), buf, buf + 4);
}
void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  push_u32(out, static_cast<std::uint32_t>(v));
  push_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return std::uint64_t{load_le32(p)} |
         (std::uint64_t{load_le32(p + 4)} << 32);
}

}  // namespace

std::vector<std::uint8_t> serialize_flows(
    const std::vector<FlowRecord>& records) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + records.size() * kRecordSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  push_u16(out, kFlowExportVersion);
  push_u16(out, 0);  // reserved
  push_u64(out, records.size());

  for (const auto& r : records) {
    push_u32(out, r.key.src.value());
    push_u32(out, r.key.dst.value());
    push_u16(out, r.key.src_port);
    push_u16(out, r.key.dst_port);
    out.push_back(r.key.protocol);
    out.push_back(static_cast<std::uint8_t>((r.saw_syn ? 1 : 0) |
                                            (r.saw_fin ? 2 : 0)));
    push_u16(out, 0);  // reserved / alignment
    push_u64(out, r.first_seen.usec);
    push_u64(out, r.last_seen.usec);
    push_u64(out, r.packets);
    push_u64(out, r.bytes);
  }
  return out;
}

StatusOr<std::vector<FlowRecord>> parse_flows(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status(StatusCode::kDataLoss, "flow export: short header");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status(StatusCode::kInvalidArgument, "flow export: bad magic");
  }
  const std::uint16_t version = load_le16(bytes.data() + 4);
  if (version != kFlowExportVersion) {
    return Status(StatusCode::kUnimplemented,
                  "flow export: unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = read_u64(bytes.data() + 8);
  // Check count against the payload actually present BEFORE computing the
  // byte total: a hostile count near 2^64 would overflow
  // kHeaderSize + count * kRecordSize and wrap past the truncation check.
  const std::uint64_t payload = bytes.size() - kHeaderSize;
  if (count > payload / kRecordSize) {
    return Status(StatusCode::kDataLoss,
                  "flow export: truncated payload (have " +
                      std::to_string(bytes.size()) + " bytes, need " +
                      std::to_string(count) + " records of " +
                      std::to_string(kRecordSize) + ")");
  }
  if (payload != count * kRecordSize) {
    // Trailing bytes mean the writer and the header disagree about how many
    // records exist — a count-vs-payload corruption, not harmless padding.
    return Status(StatusCode::kDataLoss,
                  "flow export: count/payload mismatch (" +
                      std::to_string(payload - count * kRecordSize) +
                      " trailing bytes)");
  }

  std::vector<FlowRecord> records;
  records.reserve(count);
  const std::uint8_t* p = bytes.data() + kHeaderSize;
  for (std::uint64_t i = 0; i < count; ++i, p += kRecordSize) {
    FlowRecord r;
    r.key.src = net::Ipv4Address(load_le32(p));
    r.key.dst = net::Ipv4Address(load_le32(p + 4));
    r.key.src_port = load_le16(p + 8);
    r.key.dst_port = load_le16(p + 10);
    r.key.protocol = p[12];
    r.saw_syn = (p[13] & 1) != 0;
    r.saw_fin = (p[13] & 2) != 0;
    r.first_seen = MicroTime{read_u64(p + 16)};
    r.last_seen = MicroTime{read_u64(p + 24)};
    r.packets = read_u64(p + 32);
    r.bytes = read_u64(p + 40);
    records.push_back(r);
  }
  return records;
}

Status write_flows(const std::string& path,
                   const std::vector<FlowRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kNotFound, "flow export: cannot create " + path);
  }
  const auto bytes = serialize_flows(records);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status(StatusCode::kDataLoss, "flow export: short write");
  }
  return Status::ok();
}

StatusOr<std::vector<FlowRecord>> read_flows(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "flow export: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parse_flows(bytes);
}

}  // namespace netsample::trace
