// Per-second volume series (the paper's Table 2 view of the trace).
//
// Table 2 summarizes three per-second distributions over the hour: packet
// arrivals (pps), byte arrivals (kB/s), and mean per-second packet size.
// We bucket the trace by wall-clock second relative to the interval start
// and expose the three series for summarization.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace netsample::trace {

struct SecondBucket {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};

  [[nodiscard]] double mean_packet_size() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(bytes) / static_cast<double>(packets);
  }
};

class PerSecondSeries {
 public:
  /// Bucket every packet of `view` by floor((t - t_start)/1s). Empty seconds
  /// inside the span are kept (zero packets), matching how an operational
  /// per-second rate histogram would see them.
  explicit PerSecondSeries(TraceView view);

  [[nodiscard]] std::size_t seconds() const { return buckets_.size(); }
  [[nodiscard]] const SecondBucket& bucket(std::size_t s) const {
    return buckets_.at(s);
  }

  /// The three Table-2 series. `mean_sizes` skips empty seconds (a mean
  /// packet size is undefined there).
  [[nodiscard]] std::vector<double> packet_rates() const;
  [[nodiscard]] std::vector<double> byte_rates() const;       // bytes per second
  [[nodiscard]] std::vector<double> kilobyte_rates() const;   // kB per second
  [[nodiscard]] std::vector<double> mean_sizes() const;

 private:
  std::vector<SecondBucket> buckets_;
};

}  // namespace netsample::trace
