#include "trace/flows.h"

#include <algorithm>
#include <stdexcept>

namespace netsample::trace {

FlowTable::FlowTable(MicroDuration idle_timeout) : idle_timeout_(idle_timeout) {
  if (idle_timeout_.usec <= 0) {
    throw std::invalid_argument("flow table: idle timeout must be positive");
  }
}

void FlowTable::offer(const PacketRecord& p) {
  if (saw_packet_ && p.timestamp < last_time_) {
    throw std::invalid_argument("flow table: packets must be time-ordered");
  }
  last_time_ = p.timestamp;
  saw_packet_ = true;
  expire_idle(p.timestamp);

  const FlowKey key{p.src, p.dst, p.src_port, p.dst_port, p.protocol};
  auto [it, inserted] = active_.try_emplace(key);
  FlowRecord& flow = it->second;
  if (inserted) {
    flow.key = key;
    flow.first_seen = p.timestamp;
  }
  flow.last_seen = p.timestamp;
  flow.packets += 1;
  flow.bytes += p.size;
  if (p.protocol == 6) {
    if (p.tcp_flags & 0x02) flow.saw_syn = true;
    if (p.tcp_flags & 0x01) flow.saw_fin = true;
  }
}

void FlowTable::expire_idle(MicroTime now) {
  // Amortize the scan: idle flows only need to be noticed within a quarter
  // timeout of their expiry, so scanning that often keeps offer() O(1)
  // amortized. (An operational implementation would keep an LRU list.)
  if (checked_expiry_ &&
      now - last_expiry_check_ < MicroDuration{idle_timeout_.usec / 4 + 1}) {
    return;
  }
  checked_expiry_ = true;
  last_expiry_check_ = now;
  for (auto it = active_.begin(); it != active_.end();) {
    if (now - it->second.last_seen > idle_timeout_) {
      expired_.push_back(it->second);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowTable::run(TraceView view) {
  for (const auto& p : view) offer(p);
  flush();
}

void FlowTable::flush() {
  for (auto& [key, flow] : active_) {
    (void)key;
    expired_.push_back(flow);
  }
  active_.clear();
}

std::vector<FlowRecord> FlowTable::top_by_packets(std::size_t n) const {
  std::vector<FlowRecord> out = expired_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.packets > b.packets;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

FlowTable::Stats FlowTable::stats() const {
  Stats s;
  s.flows = expired_.size();
  double dur_sum = 0.0;
  for (const auto& f : expired_) {
    s.packets += f.packets;
    s.bytes += f.bytes;
    dur_sum += f.duration().to_seconds();
  }
  if (s.flows > 0) {
    s.mean_flow_packets =
        static_cast<double>(s.packets) / static_cast<double>(s.flows);
    s.mean_flow_duration_sec = dur_sum / static_cast<double>(s.flows);
  }
  return s;
}

}  // namespace netsample::trace
