#include "trace/transform.h"

#include <queue>
#include <stdexcept>

#include "net/ports.h"

namespace netsample::trace {

Trace merge(const std::vector<TraceView>& inputs) {
  struct Head {
    std::size_t input;
    std::size_t index;
    MicroTime time;
  };
  // Min-heap ordered by (time, input index) for stability.
  auto cmp = [](const Head& a, const Head& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.input > b.input;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);

  std::size_t total = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    total += inputs[i].size();
    if (!inputs[i].empty()) {
      heap.push(Head{i, 0, inputs[i][0].timestamp});
    }
  }

  std::vector<PacketRecord> out;
  out.reserve(total);
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    out.push_back(inputs[h.input][h.index]);
    const std::size_t next = h.index + 1;
    if (next < inputs[h.input].size()) {
      heap.push(Head{h.input, next, inputs[h.input][next].timestamp});
    }
  }
  return Trace(std::move(out));
}

Trace filter(TraceView input, const PacketPredicate& keep) {
  std::vector<PacketRecord> out;
  for (const auto& p : input) {
    if (keep(p)) out.push_back(p);
  }
  return Trace(std::move(out));
}

Trace time_shift(TraceView input, MicroDuration delta) {
  std::vector<PacketRecord> out;
  out.reserve(input.size());
  for (const auto& p : input) {
    if (delta.usec < 0 &&
        p.timestamp.usec < static_cast<std::uint64_t>(-delta.usec)) {
      throw std::invalid_argument("time_shift: would move before time zero");
    }
    PacketRecord shifted = p;
    shifted.timestamp = p.timestamp + delta;
    out.push_back(shifted);
  }
  return Trace(std::move(out));
}

PacketPredicate by_protocol(std::uint8_t protocol) {
  return [protocol](const PacketRecord& p) { return p.protocol == protocol; };
}

PacketPredicate by_service_port(std::uint16_t port) {
  return [port](const PacketRecord& p) {
    if (p.protocol != 6 && p.protocol != 17) return false;
    return net::service_port(p.src_port, p.dst_port).value_or(0xFFFF) == port;
  };
}

PacketPredicate by_destination_network(net::NetworkNumber network) {
  return [network](const PacketRecord& p) {
    return net::NetworkNumber::of(p.dst) == network;
  };
}

}  // namespace netsample::trace
