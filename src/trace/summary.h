// Whole-trace summaries in the layout of the paper's Tables 2 and 3.
#pragma once

#include "stats/descriptive.h"
#include "trace/series.h"
#include "trace/trace.h"

namespace netsample::trace {

/// Table 2: per-second packet / byte / mean-size distribution summaries.
struct PerSecondSummary {
  stats::Summary packet_rate;      // packets per second
  stats::Summary kilobyte_rate;    // kB per second
  stats::Summary mean_packet_size; // bytes
  std::uint64_t total_packets{0};
};

[[nodiscard]] PerSecondSummary summarize_per_second(TraceView view);

/// Table 3: population packet-size and interarrival-time distributions.
struct PopulationSummary {
  stats::Summary packet_size;      // bytes
  stats::Summary interarrival;     // microseconds
  std::uint64_t total_packets{0};
};

[[nodiscard]] PopulationSummary summarize_population(TraceView view);

}  // namespace netsample::trace
