// In-memory packet traces and time-window views.
//
// A Trace owns a time-ordered vector of PacketRecords and is the "parent
// population" of every sampling experiment. TraceView is a non-owning,
// contiguous window over a Trace — the paper's exponentially growing
// measurement intervals are TraceViews, so no experiment ever copies the
// population.
#pragma once

#include <span>
#include <vector>

#include "trace/packet_record.h"
#include "util/timeval.h"

namespace netsample::trace {

/// Non-owning view over a contiguous run of packets. Cheap to copy.
class TraceView {
 public:
  TraceView() = default;
  explicit TraceView(std::span<const PacketRecord> packets) : packets_(packets) {}

  [[nodiscard]] std::span<const PacketRecord> packets() const { return packets_; }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }
  [[nodiscard]] const PacketRecord& operator[](std::size_t i) const {
    return packets_[i];
  }
  [[nodiscard]] auto begin() const { return packets_.begin(); }
  [[nodiscard]] auto end() const { return packets_.end(); }

  /// First/last timestamps; both throw std::out_of_range when empty.
  [[nodiscard]] MicroTime start_time() const;
  [[nodiscard]] MicroTime end_time() const;
  [[nodiscard]] MicroDuration duration() const;

  /// Sub-window of packets with timestamp in [t0, t1). Binary search; O(log n).
  [[nodiscard]] TraceView window(MicroTime t0, MicroTime t1) const;

  /// Prefix covering the first `d` of the view's span (the paper's growing
  /// interval experiment: window(start, start + d)).
  [[nodiscard]] TraceView prefix_duration(MicroDuration d) const;

  /// True when `sub` is a sub-span of this view (same underlying packet
  /// storage). A default-constructed (null) sub-view is contained nowhere.
  /// This is how shared per-trace caches decide whether an interval can be
  /// served from their precomputed tables.
  [[nodiscard]] bool contains(TraceView sub) const;

  /// Index of sub's first packet within this view; throws std::out_of_range
  /// unless contains(sub).
  [[nodiscard]] std::size_t offset_of(TraceView sub) const;

  /// Total IP bytes across the view.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Packet sizes as doubles (analysis target #1).
  [[nodiscard]] std::vector<double> sizes() const;

  /// Interarrival times in microseconds (analysis target #2); size()-1
  /// entries. Empty for views with fewer than 2 packets.
  [[nodiscard]] std::vector<double> interarrivals() const;

 private:
  std::span<const PacketRecord> packets_;
};

/// What to do with a packet whose timestamp would break the trace's time
/// order (monitor clock glitches, impaired captures). kStrict is the
/// historical contract; the salvage policies keep ingestion alive and count
/// what they touched.
enum class TimePolicy {
  kStrict,      // throw std::invalid_argument (default)
  kClamp,       // pull the timestamp up to the previous packet's
  kQuarantine,  // drop the packet
};

/// Counters for salvage-mode appends.
struct AppendStats {
  std::size_t clamped{0};      // timestamps rewritten by kClamp
  std::size_t quarantined{0};  // packets dropped by kQuarantine
  [[nodiscard]] bool clean() const { return clamped == 0 && quarantined == 0; }
};

/// Owning, time-ordered packet trace.
class Trace {
 public:
  Trace() = default;
  /// Takes ownership; throws std::invalid_argument if timestamps decrease.
  explicit Trace(std::vector<PacketRecord> packets);

  /// Append a packet; throws std::invalid_argument if it breaks time order.
  void append(const PacketRecord& p);

  /// Append under a salvage policy: a time-order-breaking packet is clamped
  /// or quarantined per `policy` (counted into `stats` when given) instead
  /// of throwing. Returns true when the packet landed in the trace.
  bool append(const PacketRecord& p, TimePolicy policy,
              AppendStats* stats = nullptr);

  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }
  [[nodiscard]] const PacketRecord& operator[](std::size_t i) const {
    return packets_[i];
  }
  [[nodiscard]] std::span<const PacketRecord> packets() const { return packets_; }
  [[nodiscard]] TraceView view() const { return TraceView(packets_); }

  /// Quantize all timestamps down to multiples of `tick` — models the
  /// 400 us measurement clock of the paper's capture environment.
  /// Returns the number of packets whose timestamp changed.
  std::size_t quantize_clock(MicroDuration tick);

  /// Rebase timestamps so the first packet is at t=0.
  void rebase_to_zero();

 private:
  std::vector<PacketRecord> packets_;
};

}  // namespace netsample::trace
