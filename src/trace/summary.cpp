#include "trace/summary.h"

namespace netsample::trace {

PerSecondSummary summarize_per_second(TraceView view) {
  PerSecondSummary s;
  s.total_packets = view.size();
  if (view.empty()) return s;
  PerSecondSeries series(view);
  const auto pps = series.packet_rates();
  const auto kbps = series.kilobyte_rates();
  const auto sizes = series.mean_sizes();
  s.packet_rate = stats::summarize(pps);
  s.kilobyte_rate = stats::summarize(kbps);
  s.mean_packet_size = stats::summarize(sizes);
  return s;
}

PopulationSummary summarize_population(TraceView view) {
  PopulationSummary s;
  s.total_packets = view.size();
  if (view.empty()) return s;
  const auto sizes = view.sizes();
  s.packet_size = stats::summarize(sizes);
  const auto iats = view.interarrivals();
  if (!iats.empty()) s.interarrival = stats::summarize(iats);
  return s;
}

}  // namespace netsample::trace
