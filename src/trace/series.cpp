#include "trace/series.h"

namespace netsample::trace {

PerSecondSeries::PerSecondSeries(TraceView view) {
  if (view.empty()) return;
  const std::uint64_t t0 = view.start_time().usec;
  const std::uint64_t span = view.end_time().usec - t0;
  buckets_.resize(span / 1'000'000ULL + 1);
  for (const auto& p : view) {
    const std::size_t s =
        static_cast<std::size_t>((p.timestamp.usec - t0) / 1'000'000ULL);
    buckets_[s].packets += 1;
    buckets_[s].bytes += p.size;
  }
}

std::vector<double> PerSecondSeries::packet_rates() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(static_cast<double>(b.packets));
  return out;
}

std::vector<double> PerSecondSeries::byte_rates() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(static_cast<double>(b.bytes));
  return out;
}

std::vector<double> PerSecondSeries::kilobyte_rates() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(static_cast<double>(b.bytes) / 1000.0);
  }
  return out;
}

std::vector<double> PerSecondSeries::mean_sizes() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    if (b.packets > 0) out.push_back(b.mean_packet_size());
  }
  return out;
}

}  // namespace netsample::trace
