#include "util/args.h"

#include <cstdlib>
#include <stdexcept>

namespace netsample {

void ArgParser::add_flag(const std::string& name, const std::string& value_name,
                         const std::string& help,
                         std::optional<std::string> def) {
  specs_[name] = FlagSpec{value_name, help, std::move(def)};
}

Status ArgParser::parse(const std::vector<std::string>& args) {
  values_.clear();
  positionals_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      positionals_.push_back(a);
      continue;
    }
    std::string name = a.substr(2);
    std::string inline_value;
    bool has_inline = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      return Status(StatusCode::kInvalidArgument, "unknown flag --" + name);
    }
    if (it->second.value_name.empty()) {
      if (has_inline) {
        return Status(StatusCode::kInvalidArgument,
                      "switch --" + name + " takes no value");
      }
      values_[name] = "true";
      continue;
    }
    if (has_inline) {
      values_[name] = inline_value;
    } else {
      if (i + 1 >= args.size()) {
        return Status(StatusCode::kInvalidArgument,
                      "flag --" + name + " requires a value");
      }
      values_[name] = args[++i];
    }
  }
  return Status::ok();
}

bool ArgParser::has(const std::string& name) const {
  if (values_.count(name)) return true;
  const auto it = specs_.find(name);
  return it != specs_.end() && it->second.default_value.has_value();
}

std::string ArgParser::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value) {
    return *spec->second.default_value;
  }
  throw std::invalid_argument("missing flag --" + name);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": '" + v +
                                "' is not an integer");
  }
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": '" + v +
                                "' is not a number");
  }
  return out;
}

bool ArgParser::get_bool(const std::string& name) const {
  if (values_.count(name)) return values_.at(name) == "true";
  const auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value) {
    return *spec->second.default_value == "true";
  }
  return false;
}

std::string ArgParser::help() const {
  std::string out;
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.value_name.empty()) out += " <" + spec.value_name + ">";
    out += "\n      " + spec.help;
    if (spec.default_value) out += " (default: " + *spec.default_value + ")";
    out += "\n";
  }
  return out;
}

}  // namespace netsample
