// Small text-table and number formatting helpers shared by the bench
// binaries and examples. All paper tables/figures are emitted as aligned
// ASCII tables plus machine-readable CSV lines, so a plotting script can
// regenerate the figures without re-running the experiments.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace netsample {

/// Format a double with `prec` significant decimal places, trimming noise.
[[nodiscard]] std::string fmt_double(double v, int prec = 4);

/// Format a fraction like 1/4096 as "1/4096".
[[nodiscard]] std::string fmt_fraction(std::uint64_t denom);

/// Format a byte count with thousands separators ("1,636,000").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

/// An aligned ASCII table builder. Rows are added as vectors of cells;
/// `print` pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netsample
