#include "util/rng.h"

#include <cmath>

namespace netsample {

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's method with rejection to remove bias.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::geometric(double p) {
  if (p >= 1.0) return 0;
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

}  // namespace netsample
