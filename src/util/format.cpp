#include "util/format.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace netsample {

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string s(buf);
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

std::string fmt_fraction(std::uint64_t denom) {
  return "1/" + std::to_string(denom);
}

std::string fmt_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace netsample
