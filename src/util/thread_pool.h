// Fixed-size worker pool with a mutex+condvar task queue.
//
// The parallel experiment engine (exper::ParallelRunner) fans grid cells out
// over this pool. Tasks are type-erased thunks; submit() wraps the callable
// in a std::packaged_task so return values and exceptions both travel back
// through the returned std::future. Destruction drains the queue: every task
// submitted before the destructor runs is executed, then the workers join —
// so a future obtained from submit() is always eventually satisfied.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace netsample::util {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);

  /// Runs every queued task, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queue `fn` for execution on some worker. The future carries fn's return
  /// value, or rethrows whatever fn threw, on get(). Throws
  /// std::runtime_error if the pool is already shutting down.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Tasks accepted but not yet started (snapshot; racy by nature).
  [[nodiscard]] std::size_t queued() const;

  /// Scheduling counters, all inherently nondeterministic (they depend on
  /// thread timing). util cannot depend on src/obs (obs sits above util in
  /// the layering), so the pool only exposes this plain snapshot;
  /// exper::ParallelRunner publishes it into the obs registry.
  struct Stats {
    std::uint64_t submitted{0};        // tasks accepted by submit()
    std::uint64_t executed{0};         // tasks that finished running
    std::uint64_t max_queue_depth{0};  // high-water mark of queued()
    std::uint64_t queue_wait_ns{0};    // total enqueue→dequeue latency
    std::uint64_t exec_ns{0};          // total time spent inside tasks
  };
  [[nodiscard]] Stats stats() const;

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 on exotic platforms).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_{false};

  // Guarded by mutex_ (updated where the lock is already held)...
  std::uint64_t submitted_{0};
  std::uint64_t max_queue_depth_{0};
  std::uint64_t queue_wait_ns_{0};
  // ...except the post-execution counters, which workers bump lock-free.
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> exec_ns_{0};
};

}  // namespace netsample::util
