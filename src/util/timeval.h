// Fixed-width microsecond timestamps and durations.
//
// Every layer of the library measures time in integer microseconds since an
// arbitrary trace epoch. The paper's measurement infrastructure had a 400 us
// clock; we keep full microsecond resolution in the substrate and apply the
// clock quantization as an explicit trace transform (see trace/quantize.h),
// exactly as the paper applies it to its interarrival analysis.
//
// A dedicated strong type (rather than raw uint64_t or std::chrono) keeps
// the arithmetic explicit at API boundaries, keeps the on-disk pcap mapping
// trivial, and avoids accidental mixing of counts and times.
#pragma once

#include <compare>
#include <cstdint>

namespace netsample {

/// A point in time, in microseconds since the trace epoch.
struct MicroTime {
  std::uint64_t usec{0};

  constexpr MicroTime() = default;
  constexpr explicit MicroTime(std::uint64_t us) : usec(us) {}

  /// Construct from a (seconds, microseconds) pair as stored in pcap headers.
  static constexpr MicroTime from_sec_usec(std::uint64_t sec, std::uint64_t us) {
    return MicroTime{sec * 1'000'000ULL + us};
  }

  [[nodiscard]] constexpr std::uint64_t seconds() const { return usec / 1'000'000ULL; }
  [[nodiscard]] constexpr std::uint64_t subsec_usec() const { return usec % 1'000'000ULL; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(usec) / 1e6;
  }

  friend constexpr auto operator<=>(MicroTime, MicroTime) = default;
};

/// A (signed) span of time in microseconds.
struct MicroDuration {
  std::int64_t usec{0};

  constexpr MicroDuration() = default;
  constexpr explicit MicroDuration(std::int64_t us) : usec(us) {}

  static constexpr MicroDuration from_seconds(double s) {
    return MicroDuration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr MicroDuration from_millis(std::int64_t ms) {
    return MicroDuration{ms * 1000};
  }

  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(usec) / 1e6;
  }

  friend constexpr auto operator<=>(MicroDuration, MicroDuration) = default;
};

constexpr MicroDuration operator-(MicroTime a, MicroTime b) {
  return MicroDuration{static_cast<std::int64_t>(a.usec) - static_cast<std::int64_t>(b.usec)};
}
constexpr MicroTime operator+(MicroTime t, MicroDuration d) {
  return MicroTime{t.usec + static_cast<std::uint64_t>(d.usec)};
}
constexpr MicroTime operator-(MicroTime t, MicroDuration d) {
  return MicroTime{t.usec - static_cast<std::uint64_t>(d.usec)};
}
constexpr MicroDuration operator+(MicroDuration a, MicroDuration b) {
  return MicroDuration{a.usec + b.usec};
}
constexpr MicroDuration operator-(MicroDuration a, MicroDuration b) {
  return MicroDuration{a.usec - b.usec};
}
constexpr MicroDuration operator*(MicroDuration d, std::int64_t k) {
  return MicroDuration{d.usec * k};
}

}  // namespace netsample
