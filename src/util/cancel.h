// Cooperative cancellation and per-task deadlines.
//
// A CancelToken is a thread-safe flag plus an optional wall-clock deadline.
// Long-running work (experiment cells, streaming sampler passes) polls it at
// loop boundaries and unwinds with kCancelled / kDeadlineExceeded instead of
// running to completion. Tokens can be chained: a per-cell token carries the
// cell's watchdog deadline and links to the sweep-wide token, so cancelling
// the sweep cancels every cell while each cell still times out on its own.
//
// Cancellation is *cooperative*: a token never interrupts a thread, it only
// answers check(). That keeps the thread pool simple (no task killing) and
// makes timeout behavior deterministic to test — an already-expired deadline
// fails the very first check.
#pragma once

#include <atomic>
#include <chrono>

#include "util/status.h"

namespace netsample::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  // The atomic flag makes tokens non-copyable; they are shared by pointer.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. Thread-safe, idempotent.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called here or on any linked parent.
  [[nodiscard]] bool cancel_requested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancel_requested();
  }

  /// Arm the watchdog: work holding this token must finish within `seconds`
  /// of the call. Non-positive values disarm the deadline.
  void set_deadline_after(double seconds) {
    if (seconds <= 0) {
      has_deadline_ = false;
      return;
    }
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }

  /// True once the armed deadline has passed (parents are consulted too).
  [[nodiscard]] bool deadline_exceeded() const {
    if (has_deadline_ && Clock::now() >= deadline_) return true;
    return parent_ != nullptr && parent_->deadline_exceeded();
  }

  /// Chain this token under `parent`: cancellation and deadlines of the
  /// parent apply here as well. The parent must outlive this token.
  void link_parent(const CancelToken* parent) { parent_ = parent; }

  /// OK while work may continue; kCancelled / kDeadlineExceeded otherwise.
  [[nodiscard]] Status check() const {
    if (cancel_requested()) {
      return Status(StatusCode::kCancelled, "cancellation requested");
    }
    if (deadline_exceeded()) {
      return Status(StatusCode::kDeadlineExceeded, "deadline exceeded");
    }
    return Status::ok();
  }

  /// Throw StatusError if the token fired (the unwind path for interfaces
  /// that report errors by exception, e.g. run_cell).
  void throw_if_stopped() const {
    const Status s = check();
    if (!s.is_ok()) throw StatusError(s);
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_{false};
  Clock::time_point deadline_{};
  const CancelToken* parent_{nullptr};
};

/// Poll helper for optional tokens threaded through deep loops: no-op when
/// `token` is null, otherwise throws StatusError on cancellation/expiry.
inline void throw_if_stopped(const CancelToken* token) {
  if (token != nullptr) token->throw_if_stopped();
}

/// How many loop iterations to run between throw_if_stopped() polls in
/// per-packet streaming loops — frequent enough that a deadline fires within
/// microseconds of real work, rare enough to cost nothing measurable.
inline constexpr std::size_t kCancelPollStride = 65536;

}  // namespace netsample::util
