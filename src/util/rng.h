// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (synthetic traffic generation,
// stratified/simple random sampling, replication seeds) draw from this one
// generator so that every experiment is exactly reproducible from a single
// 64-bit seed. We implement xoshiro256** (Blackman & Vigna) with SplitMix64
// seeding rather than relying on std::mt19937 so that the bit streams are
// stable across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <limits>

namespace netsample {

/// SplitMix64's finalizer: a full-avalanche 64-bit mixer (every input bit
/// affects every output bit). The building block of derive_seed().
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash an ordered tuple of 64-bit words into one well-mixed seed.
///
/// This is how every parallel component derives per-task RNG seeds: mix the
/// experiment's base seed with the task's logical coordinates (method,
/// granularity, interval index, ...) instead of drawing seeds from a shared
/// sequential generator. Seeds then depend only on *what* the task is, never
/// on which thread runs it or in what order, so results are bit-identical
/// at any --jobs level. The chain absorbs each word with the golden-gamma
/// increment before re-mixing (splitmix-style), so permuted or zero-valued
/// coordinates still land on unrelated streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::initializer_list<std::uint64_t> words) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const std::uint64_t w : words) {
    h = mix64(h + 0x9E3779B97F4A7C15ULL + w);
  }
  return h;
}

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (Vigna's recommended seeding scheme).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  constexpr explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independently-seeded child generator. Used to give each
  /// replication / each flow its own stream without coupling.
  [[nodiscard]] Rng split() { return Rng((*this)()); }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Standard normal deviate (Marsaglia polar method).
  [[nodiscard]] double normal();

  /// Normal deviate with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal deviate parameterized by the *underlying* normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Pareto deviate with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha);

  /// Geometric number of failures before first success, success prob p in (0,1].
  [[nodiscard]] std::uint64_t geometric(double p);

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_{false};
  double cached_normal_{0.0};
};

}  // namespace netsample
