// Multi-series ASCII line charts for the bench binaries.
//
// The paper's figures are log-x line plots (phi vs sampling fraction,
// phi vs elapsed minutes). Rendering them directly in the bench output
// makes the shapes reviewable without a plotting step. Series are plotted
// into a character grid with per-series glyphs and a labeled y-axis.
#pragma once

#include <string>
#include <vector>

namespace netsample {

struct ChartSeries {
  std::string name;
  char glyph{'*'};
  std::vector<double> y;  // one value per x position (NaN-free)
};

struct ChartOptions {
  std::size_t width{64};    // plot columns (one per x when x_count smaller)
  std::size_t height{16};   // plot rows
  bool log_y{false};        // log10 y-axis (all values must be > 0)
  std::string x_label;      // printed under the axis
};

/// Render series (all the same length) into a multi-line string. The x
/// positions are the value indices, spread evenly across the width --
/// appropriate for the exponential ladders the benches sweep, which are
/// uniform in log space. `x_ticks` (same length as the series, may be
/// empty) annotates the first/last columns.
/// Throws std::invalid_argument on empty/ragged input or non-positive
/// values with log_y.
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const std::vector<std::string>& x_ticks,
                                       const ChartOptions& options = {});

}  // namespace netsample
