#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace netsample::util {

std::size_t ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.max_queue_depth = max_queue_depth_;
    s.queue_wait_ns = queue_wait_ns_;
  }
  s.executed = executed_.load(std::memory_order_relaxed);
  s.exec_ns = exec_ns_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push(QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++submitted_;
    max_queue_depth_ = std::max<std::uint64_t>(max_queue_depth_, queue_.size());
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this]() { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // accepted task runs and every submit() future is satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      queue_wait_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - task.enqueued_at)
              .count());
    }
    const auto exec_start = std::chrono::steady_clock::now();
    task.fn();  // packaged_task captures any exception into its future
    exec_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - exec_start)
                .count()),
        std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace netsample::util
