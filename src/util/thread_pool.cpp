#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace netsample::util {

std::size_t ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this]() { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // accepted task runs and every submit() future is satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace netsample::util
