// Minimal command-line argument parser for the CLI tool.
//
// Supports:  prog subcommand [positionals] [--flag value] [--switch]
// Flags may be declared with defaults and help text; unknown flags are
// errors. No external dependencies, deterministic error messages.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace netsample {

class ArgParser {
 public:
  /// Declare flags before parse(). `value_name` empty means boolean switch.
  void add_flag(const std::string& name, const std::string& value_name,
                const std::string& help, std::optional<std::string> def = {});

  /// Parse argv-style input (excluding the program/subcommand tokens).
  /// Returns an error status on unknown flags or missing values.
  [[nodiscard]] Status parse(const std::vector<std::string>& args);

  /// Positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// True if the flag appeared (or has a default).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters. Throw std::invalid_argument if absent (use has()), or
  /// if the value cannot be converted.
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Formatted help text for the declared flags.
  [[nodiscard]] std::string help() const;

 private:
  struct FlagSpec {
    std::string value_name;  // empty -> boolean switch
    std::string help;
    std::optional<std::string> default_value;
  };

  std::map<std::string, FlagSpec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace netsample
