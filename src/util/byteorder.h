// Byte-order conversion helpers for on-the-wire structures.
//
// Network headers are big-endian; the classic pcap file format is written in
// the *host* order of the capturing machine, so the reader must handle both.
// These helpers are branch-free and constexpr so header parsing stays cheap.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace netsample {

constexpr std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

constexpr bool host_is_little_endian() {
  return std::endian::native == std::endian::little;
}

/// Load a big-endian 16-bit value from a byte buffer.
inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | std::uint16_t{p[1]});
}

/// Load a big-endian 32-bit value from a byte buffer.
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// Load a little-endian 16/32-bit value from a byte buffer.
inline std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(std::uint16_t{p[0]} | (std::uint16_t{p[1]} << 8));
}
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

/// Store big-endian values into a byte buffer.
inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// Store little-endian values into a byte buffer.
inline void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace netsample
