#include "util/asciichart.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/format.h"

namespace netsample {

std::string render_chart(const std::vector<ChartSeries>& series,
                         const std::vector<std::string>& x_ticks,
                         const ChartOptions& options) {
  if (series.empty() || series[0].y.empty()) {
    throw std::invalid_argument("render_chart: no data");
  }
  const std::size_t n = series[0].y.size();
  for (const auto& s : series) {
    if (s.y.size() != n) {
      throw std::invalid_argument("render_chart: ragged series");
    }
  }
  if (!x_ticks.empty() && x_ticks.size() != n) {
    throw std::invalid_argument("render_chart: x_ticks length mismatch");
  }

  auto transform = [&](double v) {
    if (!options.log_y) return v;
    if (v <= 0.0) {
      throw std::invalid_argument("render_chart: log axis needs positive data");
    }
    return std::log10(v);
  };

  double lo = transform(series[0].y[0]);
  double hi = lo;
  for (const auto& s : series) {
    for (double v : s.y) {
      const double t = transform(v);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  const std::size_t width = std::max<std::size_t>(options.width, n);
  const std::size_t height = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> grid(height, std::string(width, ' '));

  auto col_of = [&](std::size_t i) {
    if (n == 1) return width / 2;
    return i * (width - 1) / (n - 1);
  };
  auto row_of = [&](double v) {
    const double t = (transform(v) - lo) / (hi - lo);
    const auto r = static_cast<std::size_t>(
        std::lround((1.0 - t) * static_cast<double>(height - 1)));
    return std::min(r, height - 1);
  };

  for (const auto& s : series) {
    for (std::size_t i = 0; i < n; ++i) {
      auto& cell = grid[row_of(s.y[i])][col_of(i)];
      // Overlapping series show 'x' so collisions are visible.
      cell = (cell == ' ' || cell == s.glyph) ? s.glyph : 'x';
    }
  }

  // Assemble with a labeled y-axis (top, middle, bottom values).
  auto untransform = [&](double t) {
    return options.log_y ? std::pow(10.0, t) : t;
  };
  auto label_of = [&](std::size_t row) -> std::string {
    const double t =
        hi - (hi - lo) * static_cast<double>(row) / static_cast<double>(height - 1);
    return fmt_double(untransform(t), 3);
  };

  std::size_t label_width = 0;
  for (std::size_t r : {std::size_t{0}, height / 2, height - 1}) {
    label_width = std::max(label_width, label_of(r).size());
  }

  std::string out;
  for (std::size_t r = 0; r < height; ++r) {
    std::string label;
    if (r == 0 || r == height / 2 || r == height - 1) label = label_of(r);
    label.insert(0, label_width - label.size(), ' ');
    out += label + " |" + grid[r] + "\n";
  }
  out += std::string(label_width + 1, ' ') + '+' + std::string(width, '-') + "\n";
  if (!x_ticks.empty()) {
    std::string ticks(width, ' ');
    const std::string& first = x_ticks.front();
    const std::string& last = x_ticks.back();
    ticks.replace(0, std::min(first.size(), width), first);
    if (last.size() < width) {
      ticks.replace(width - last.size(), last.size(), last);
    }
    out += std::string(label_width + 2, ' ') + ticks + "\n";
  }
  if (!options.x_label.empty()) {
    out += std::string(label_width + 2, ' ') + options.x_label + "\n";
  }
  std::string legend;
  for (const auto& s : series) {
    legend += std::string(1, s.glyph) + " " + s.name + "   ";
  }
  out += std::string(label_width + 2, ' ') + legend + "\n";
  return out;
}

}  // namespace netsample
