// Lightweight status / expected-value types for fallible I/O paths.
//
// Constructor failures and programming errors throw (per the Core
// Guidelines); routine, recoverable failures on the file-parsing paths
// (truncated pcap, malformed header) return StatusOr so callers can keep
// streaming past bad records.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace netsample {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kDataLoss,          // truncated / corrupt input
  kUnimplemented,
  kInternal,
  kCancelled,         // cooperative cancellation observed
  kDeadlineExceeded,  // a watchdog / per-cell deadline expired
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

/// Exception carrying a Status across layers whose interfaces throw (e.g.
/// run_cell). The parallel runner unwraps it back into the cell's Status so
/// cancellation and deadline failures keep their codes instead of collapsing
/// into kInternal.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a value or an error Status. Minimal local stand-in for
/// std::expected (C++23) so the library stays at C++20.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}                    // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {              // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).is_ok()) {
      throw std::logic_error("StatusOr constructed from OK status without value");
    }
  }

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    check();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    check();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    check();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void check() const {
    if (!has_value()) {
      throw std::runtime_error("StatusOr has no value: " +
                               std::get<Status>(rep_).to_string());
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace netsample
