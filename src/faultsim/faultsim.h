// Deterministic measurement-impairment injectors (faultsim).
//
// The paper's parent population came from operational NSFNET statistics
// collection, where the measurement infrastructure itself misbehaves:
// monitors truncate or drop records under load, capture clocks jump, DMA
// engines duplicate. faultsim reproduces those impairments *deterministically*
// — every injector is driven by a seeded Rng, so an impaired capture is as
// reproducible as a clean one. Two layers:
//
//   byte level    operate on a serialized pcap image (framing corruption:
//                 record truncation that desyncs framing, payload bit flips)
//                 — these drive the ingestion salvage/resync machinery;
//   record level  operate on decoded PacketRecords (clock jumps, duplicate
//                 records, drop bursts) — these drive the time-order salvage
//                 policies and the phi-degradation study (netsample impair).
//
// Intensity is a per-record probability in [0, 1]; intensity 0 is always a
// byte-for-byte no-op.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/packet_record.h"
#include "trace/trace.h"
#include "util/status.h"

namespace netsample::faultsim {

enum class Fault {
  // Byte-level (pcap image) impairments.
  kTruncateRecords,  // delete the tail of a record's data without fixing its
                     // header — framing desyncs until the parser resyncs
  kBitFlips,         // flip one random bit in a record's captured bytes
  // Record-level impairments.
  kClockJumpBack,     // a record's timestamp jumps backwards (glitch)
  kClockJumpForward,  // the clock jumps forward and stays shifted
  kDuplicateRecords,  // a record is delivered twice
  kDropBursts,        // a contiguous burst of records is lost
};

[[nodiscard]] const char* fault_name(Fault f);
/// Parse "truncate|bitflip|clock-back|clock-forward|duplicate|drop-burst".
[[nodiscard]] StatusOr<Fault> parse_fault(const std::string& name);
/// All injectable faults, in declaration order.
[[nodiscard]] const std::vector<Fault>& all_faults();

struct ImpairmentSpec {
  Fault fault{Fault::kDropBursts};
  double intensity{0.01};   // per-record probability of being impaired
  std::uint64_t seed{1};    // drives every random choice the injector makes
};

/// What an injector actually did (all counters are exact, so tests can pin
/// salvage counters against them).
struct ImpairmentReport {
  std::size_t affected{0};       // records impaired
  std::size_t bytes_touched{0};  // bytes removed or flipped (byte level)
};

/// Apply a byte-level impairment in place to a serialized pcap image
/// (classic format, as produced by pcap::serialize). Record framing is
/// walked with the same rules as pcap::parse; an unparseable image is
/// returned unchanged. Throws std::invalid_argument for a record-level
/// fault or an intensity outside [0, 1].
[[nodiscard]] ImpairmentReport impair_pcap_bytes(
    std::vector<std::uint8_t>& bytes, const ImpairmentSpec& spec);

/// Apply a record-level impairment to a packet sequence. The result may be
/// non-monotonic in time (clock-back) — feed it through trace::Trace's
/// salvage-policy append or a sort, exactly as a real ingest must. Throws
/// std::invalid_argument for a byte-level fault or a bad intensity.
[[nodiscard]] ImpairmentReport impair_records(
    std::vector<trace::PacketRecord>& records, const ImpairmentSpec& spec);

/// Convenience: impair a trace and rebuild it with the given time policy
/// (clock-back glitches are clamped/quarantined per `policy`; stats count
/// what the rebuild had to fix). The input trace is not modified.
[[nodiscard]] trace::Trace impair_trace(const trace::Trace& t,
                                        const ImpairmentSpec& spec,
                                        trace::TimePolicy policy,
                                        ImpairmentReport* report = nullptr,
                                        trace::AppendStats* stats = nullptr);

}  // namespace netsample::faultsim
