#include "faultsim/netfault.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>

#include "util/rng.h"

namespace netsample::faultsim {

namespace {

/// Handshake/shutdown verbs ride a clean wire (see header).
bool exempt_line(const std::string& line) {
  return line == "STOP" || line.rfind("SPEC ", 0) == 0 ||
         line.rfind("HELLO ", 0) == 0 || line.rfind("BYE ", 0) == 0;
}

enum class LineFault { kNone, kDrop, kDup, kTrunc, kDelay };

std::string fmt_prob(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_prob(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < 0.0 ||
      v > 1.0) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<NetFaultSpec> parse_netfault_spec(const std::string& text) {
  NetFaultSpec spec;
  const auto bad = [&](const std::string& why) {
    return Status(StatusCode::kInvalidArgument,
                  "netfault: " + why + " in \"" + text + "\"");
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (text.empty()) break;
      return bad("empty item");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return bad("expected key=value, got \"" + item + "\"");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    std::uint64_t u = 0;
    if (key == "seed") {
      if (!parse_u64(value, &spec.seed)) return bad("bad seed");
    } else if (key == "drop") {
      if (!parse_prob(value, &spec.drop)) return bad("bad drop probability");
    } else if (key == "dup") {
      if (!parse_prob(value, &spec.dup)) return bad("bad dup probability");
    } else if (key == "trunc") {
      if (!parse_prob(value, &spec.trunc)) return bad("bad trunc probability");
    } else if (key == "delay") {
      if (!parse_prob(value, &spec.delay)) return bad("bad delay probability");
    } else if (key == "delay-ms") {
      if (!parse_u64(value, &u) || u > 60000) return bad("bad delay-ms");
      spec.delay_ms = static_cast<int>(u);
    } else if (key == "disconnect-every") {
      if (!parse_u64(value, &spec.disconnect_every)) {
        return bad("bad disconnect-every");
      }
    } else if (key == "max-faults") {
      if (!parse_u64(value, &spec.max_faults)) return bad("bad max-faults");
    } else {
      return bad("unknown key \"" + key + "\"");
    }
    if (comma == text.size()) break;
  }
  if (spec.drop + spec.dup + spec.trunc + spec.delay > 1.0) {
    return bad("probabilities sum above 1");
  }
  return spec;
}

std::string encode_netfault_spec(const NetFaultSpec& spec) {
  std::string out = "seed=" + std::to_string(spec.seed);
  if (spec.drop > 0) out += ",drop=" + fmt_prob(spec.drop);
  if (spec.dup > 0) out += ",dup=" + fmt_prob(spec.dup);
  if (spec.trunc > 0) out += ",trunc=" + fmt_prob(spec.trunc);
  if (spec.delay > 0) {
    out += ",delay=" + fmt_prob(spec.delay);
    out += ",delay-ms=" + std::to_string(spec.delay_ms);
  }
  if (spec.disconnect_every > 0) {
    out += ",disconnect-every=" + std::to_string(spec.disconnect_every);
  }
  if (spec.max_faults > 0) {
    out += ",max-faults=" + std::to_string(spec.max_faults);
  }
  return out;
}

struct NetFaultTransport::Impl {
  NetFaultSpec spec;
  std::unique_ptr<shard::Transport> inner;
  Rng rng;
  std::uint64_t prob_faults{0};
  std::deque<std::string> pending;  // duplicate deliveries awaiting read

  explicit Impl(const NetFaultSpec& s, std::unique_ptr<shard::Transport> t)
      : spec(s), inner(std::move(t)), rng(s.seed) {}

  /// One decision per impairable line, in wire order. `*disconnect` is the
  /// deterministic every-Nth-line close, applied after delivery.
  LineFault decide(const std::string& line, NetFaultReport* report,
                   bool* disconnect) {
    *disconnect = false;
    if (exempt_line(line)) return LineFault::kNone;
    ++report->lines_seen;
    if (spec.disconnect_every > 0 &&
        report->lines_seen % spec.disconnect_every == 0) {
      *disconnect = true;
    }
    if (spec.max_faults > 0 && prob_faults >= spec.max_faults) {
      return LineFault::kNone;
    }
    const double u = rng.uniform01();
    double edge = spec.drop;
    if (u < edge) {
      ++prob_faults;
      ++report->dropped;
      return LineFault::kDrop;
    }
    edge += spec.dup;
    if (u < edge) {
      ++prob_faults;
      ++report->duplicated;
      return LineFault::kDup;
    }
    edge += spec.trunc;
    if (u < edge) {
      ++prob_faults;
      ++report->truncated;
      return LineFault::kTrunc;
    }
    edge += spec.delay;
    if (u < edge) {
      ++prob_faults;
      ++report->delayed;
      return LineFault::kDelay;
    }
    return LineFault::kNone;
  }

  void sleep_delay() {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
  }
};

NetFaultTransport::NetFaultTransport(const NetFaultSpec& spec,
                                     std::unique_ptr<shard::Transport> inner)
    : impl_(std::make_unique<Impl>(spec, std::move(inner))) {}

NetFaultTransport::~NetFaultTransport() = default;

void NetFaultTransport::rebind(std::unique_ptr<shard::Transport> inner) {
  impl_->inner = std::move(inner);
  impl_->pending.clear();
}

int NetFaultTransport::poll_fd() const {
  return impl_->inner ? impl_->inner->poll_fd() : -1;
}

bool NetFaultTransport::write_line(const std::string& line) {
  auto& inner = impl_->inner;
  if (!inner || inner->is_closed()) return false;
  bool disconnect = false;
  const LineFault f = impl_->decide(line, &report_, &disconnect);
  bool ok = true;
  switch (f) {
    case LineFault::kNone:
      ok = inner->write_line(line);
      break;
    case LineFault::kDrop:
      ok = true;  // swallowed: the sender believes it went out
      break;
    case LineFault::kDup:
      ok = inner->write_line(line) && inner->write_line(line);
      break;
    case LineFault::kTrunc: {
      // Cut inside the payload (two thirds in lands mid-hexfloat for a
      // RESULT line) and kill the wire — a faithful torn write.
      const std::size_t keep = std::max<std::size_t>(1, line.size() * 2 / 3);
      (void)inner->write_bytes(line.substr(0, keep));
      inner->close();
      return false;
    }
    case LineFault::kDelay:
      impl_->sleep_delay();
      ok = inner->write_line(line);
      break;
  }
  if (disconnect) {
    ++report_.disconnects;
    inner->close();
  }
  return ok;
}

bool NetFaultTransport::write_bytes(const std::string& bytes) {
  // Raw bytes are below the line-fault model: pass through.
  return impl_->inner != nullptr && impl_->inner->write_bytes(bytes);
}

shard::ReadResult NetFaultTransport::read_line(std::string* line) {
  if (!impl_->pending.empty()) {
    *line = std::move(impl_->pending.front());
    impl_->pending.pop_front();
    return shard::ReadResult::kLine;
  }
  auto& inner = impl_->inner;
  while (true) {
    if (!inner) return shard::ReadResult::kClosed;
    const shard::ReadResult r = inner->read_line(line);
    if (r != shard::ReadResult::kLine) return r;
    bool disconnect = false;
    const LineFault f = impl_->decide(*line, &report_, &disconnect);
    const auto finish = [&](shard::ReadResult result) {
      if (disconnect) {
        ++report_.disconnects;
        inner->close();
      }
      return result;
    };
    switch (f) {
      case LineFault::kNone:
        return finish(shard::ReadResult::kLine);
      case LineFault::kDrop:
        if (disconnect) {
          ++report_.disconnects;
          inner->close();
          return shard::ReadResult::kClosed;
        }
        continue;  // the line never arrived
      case LineFault::kDup:
        impl_->pending.push_back(*line);
        return finish(shard::ReadResult::kLine);
      case LineFault::kTrunc:
        // Inbound truncation: the tail never arrived and the wire died;
        // strict framing discards the partial line wholesale.
        inner->close();
        return shard::ReadResult::kClosed;
      case LineFault::kDelay:
        impl_->sleep_delay();
        return finish(shard::ReadResult::kLine);
    }
  }
}

shard::ReadResult NetFaultTransport::drain(std::vector<std::string>* lines) {
  auto& inner = impl_->inner;
  bool any = false;
  while (!impl_->pending.empty()) {
    lines->push_back(std::move(impl_->pending.front()));
    impl_->pending.pop_front();
    any = true;
  }
  if (!inner) return any ? shard::ReadResult::kLine : shard::ReadResult::kClosed;
  std::vector<std::string> raw;
  const shard::ReadResult r = inner->drain(&raw);
  for (auto& line : raw) {
    bool disconnect = false;
    const LineFault f = impl_->decide(line, &report_, &disconnect);
    switch (f) {
      case LineFault::kNone:
        lines->push_back(std::move(line));
        any = true;
        break;
      case LineFault::kDrop:
        break;
      case LineFault::kDup:
        lines->push_back(line);
        lines->push_back(std::move(line));
        any = true;
        break;
      case LineFault::kTrunc:
        inner->close();
        return any ? shard::ReadResult::kLine : shard::ReadResult::kClosed;
      case LineFault::kDelay:
        impl_->sleep_delay();
        lines->push_back(std::move(line));
        any = true;
        break;
    }
    if (disconnect) {
      ++report_.disconnects;
      inner->close();
      return any ? shard::ReadResult::kLine : shard::ReadResult::kClosed;
    }
  }
  if (any) return shard::ReadResult::kLine;
  return r;
}

void NetFaultTransport::shutdown_write() {
  if (impl_->inner) impl_->inner->shutdown_write();
}

void NetFaultTransport::close() {
  if (impl_->inner) impl_->inner->close();
  impl_->pending.clear();
}

bool NetFaultTransport::is_closed() const {
  return impl_->inner == nullptr ||
         (impl_->inner->is_closed() && impl_->pending.empty());
}

void NetFaultTransport::append_fds(std::vector<int>* out) const {
  if (impl_->inner) impl_->inner->append_fds(out);
}

}  // namespace netsample::faultsim
