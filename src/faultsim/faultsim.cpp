#include "faultsim/faultsim.h"

#include <stdexcept>

#include "util/byteorder.h"
#include "util/rng.h"

namespace netsample::faultsim {

namespace {

// Classic pcap framing (mirrors pcap.cpp; the format is frozen, so the
// duplication is two integers).
constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;
constexpr std::uint32_t kMagicNative = 0xA1B2C3D4u;
constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1u;

// Clock glitches and jumps are drawn in (1 us, ~2 s] — large enough to
// disturb interarrival statistics, small enough that salvage resync still
// accepts the neighborhood.
constexpr std::uint64_t kMaxJumpUsec = 2'000'000;

// Mean drop-burst length: bursts model a monitor falling behind for a
// stretch, not independent single-record losses.
constexpr double kBurstContinueProb = 1.0 / 8.0;

void validate(const ImpairmentSpec& spec) {
  if (!(spec.intensity >= 0.0 && spec.intensity <= 1.0)) {
    throw std::invalid_argument("faultsim: intensity must be in [0, 1]");
  }
}

bool is_byte_level(Fault f) {
  return f == Fault::kTruncateRecords || f == Fault::kBitFlips;
}

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? load_be32(p) : load_le32(p);
}

}  // namespace

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kTruncateRecords: return "truncate";
    case Fault::kBitFlips: return "bitflip";
    case Fault::kClockJumpBack: return "clock-back";
    case Fault::kClockJumpForward: return "clock-forward";
    case Fault::kDuplicateRecords: return "duplicate";
    case Fault::kDropBursts: return "drop-burst";
  }
  return "unknown";
}

StatusOr<Fault> parse_fault(const std::string& name) {
  for (Fault f : all_faults()) {
    if (name == fault_name(f)) return f;
  }
  return Status(StatusCode::kInvalidArgument,
                "unknown fault '" + name +
                    "' (truncate|bitflip|clock-back|clock-forward|duplicate|"
                    "drop-burst)");
}

const std::vector<Fault>& all_faults() {
  static const std::vector<Fault> kAll = {
      Fault::kTruncateRecords,  Fault::kBitFlips,
      Fault::kClockJumpBack,    Fault::kClockJumpForward,
      Fault::kDuplicateRecords, Fault::kDropBursts,
  };
  return kAll;
}

ImpairmentReport impair_pcap_bytes(std::vector<std::uint8_t>& bytes,
                                   const ImpairmentSpec& spec) {
  validate(spec);
  if (!is_byte_level(spec.fault)) {
    throw std::invalid_argument(
        std::string("faultsim: ") + fault_name(spec.fault) +
        " is a record-level fault; use impair_records");
  }
  ImpairmentReport report;
  if (bytes.size() < kGlobalHeaderSize) return report;
  const std::uint32_t magic_le = load_le32(bytes.data());
  bool swapped;
  if (magic_le == kMagicNative) {
    swapped = false;
  } else if (magic_le == kMagicSwapped) {
    swapped = true;
  } else {
    return report;  // not a classic pcap image; leave untouched
  }
  const std::uint32_t snaplen = read_u32(bytes.data() + 16, swapped);

  // Walk the intact framing first: mutations shift offsets, so decisions are
  // made in record order (deterministic RNG sequence) and byte edits are
  // applied back-to-front against the original offsets.
  struct Edit {
    std::size_t erase_begin{0};  // truncation: byte range to delete
    std::size_t erase_len{0};
    std::size_t flip_at{0};      // bit flip: byte position and mask
    std::uint8_t flip_mask{0};
  };
  std::vector<Edit> edits;
  Rng rng(spec.seed);
  std::size_t off = kGlobalHeaderSize;
  while (off + kRecordHeaderSize <= bytes.size()) {
    const std::uint32_t incl_len = read_u32(bytes.data() + off + 8, swapped);
    if (incl_len > snaplen + 4096 ||
        off + kRecordHeaderSize + incl_len > bytes.size()) {
      break;  // already-corrupt input: stop at the first bad frame
    }
    const std::size_t data_begin = off + kRecordHeaderSize;
    if (incl_len > 0 && rng.bernoulli(spec.intensity)) {
      ++report.affected;
      Edit e;
      if (spec.fault == Fault::kTruncateRecords) {
        const std::uint64_t cut = 1 + rng.uniform_below(incl_len);
        e.erase_begin = data_begin + incl_len - cut;
        e.erase_len = static_cast<std::size_t>(cut);
        report.bytes_touched += e.erase_len;
      } else {  // kBitFlips
        e.flip_at = data_begin + rng.uniform_below(incl_len);
        e.flip_mask = static_cast<std::uint8_t>(1u << rng.uniform_below(8));
        report.bytes_touched += 1;
      }
      edits.push_back(e);
    }
    off = data_begin + incl_len;
  }

  for (auto it = edits.rbegin(); it != edits.rend(); ++it) {
    if (it->erase_len > 0) {
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(it->erase_begin),
                  bytes.begin() + static_cast<std::ptrdiff_t>(it->erase_begin +
                                                              it->erase_len));
    } else {
      bytes[it->flip_at] ^= it->flip_mask;
    }
  }
  return report;
}

ImpairmentReport impair_records(std::vector<trace::PacketRecord>& records,
                                const ImpairmentSpec& spec) {
  validate(spec);
  if (is_byte_level(spec.fault)) {
    throw std::invalid_argument(
        std::string("faultsim: ") + fault_name(spec.fault) +
        " is a byte-level fault; use impair_pcap_bytes");
  }
  ImpairmentReport report;
  Rng rng(spec.seed);
  switch (spec.fault) {
    case Fault::kClockJumpBack:
      for (auto& rec : records) {
        if (!rng.bernoulli(spec.intensity)) continue;
        const std::uint64_t jump = 1 + rng.uniform_below(kMaxJumpUsec);
        rec.timestamp =
            MicroTime{rec.timestamp.usec > jump ? rec.timestamp.usec - jump : 0};
        ++report.affected;
      }
      break;
    case Fault::kClockJumpForward: {
      std::uint64_t shift = 0;
      for (auto& rec : records) {
        if (rng.bernoulli(spec.intensity)) {
          shift += 1 + rng.uniform_below(kMaxJumpUsec);
          ++report.affected;
        }
        rec.timestamp = MicroTime{rec.timestamp.usec + shift};
      }
      break;
    }
    case Fault::kDuplicateRecords: {
      std::vector<trace::PacketRecord> out;
      out.reserve(records.size());
      for (const auto& rec : records) {
        out.push_back(rec);
        if (rng.bernoulli(spec.intensity)) {
          out.push_back(rec);
          ++report.affected;
        }
      }
      records = std::move(out);
      break;
    }
    case Fault::kDropBursts: {
      std::vector<trace::PacketRecord> out;
      out.reserve(records.size());
      std::size_t i = 0;
      while (i < records.size()) {
        if (rng.bernoulli(spec.intensity)) {
          const std::uint64_t burst = 1 + rng.geometric(kBurstContinueProb);
          const std::size_t dropped = static_cast<std::size_t>(
              std::min<std::uint64_t>(burst, records.size() - i));
          report.affected += dropped;
          i += dropped;
        } else {
          out.push_back(records[i]);
          ++i;
        }
      }
      records = std::move(out);
      break;
    }
    case Fault::kTruncateRecords:
    case Fault::kBitFlips:
      break;  // unreachable (validated above)
  }
  return report;
}

trace::Trace impair_trace(const trace::Trace& t, const ImpairmentSpec& spec,
                          trace::TimePolicy policy, ImpairmentReport* report,
                          trace::AppendStats* stats) {
  std::vector<trace::PacketRecord> records(t.packets().begin(),
                                           t.packets().end());
  const ImpairmentReport rep = impair_records(records, spec);
  if (report != nullptr) *report = rep;
  trace::Trace out;
  for (const auto& rec : records) {
    (void)out.append(rec, policy, stats);
  }
  return out;
}

}  // namespace netsample::faultsim
