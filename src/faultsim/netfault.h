// Deterministic wire impairments over a shard::Transport (netfault).
//
// faultsim.h impairs what the *measurement* pipeline sees (pcap bytes,
// packet records); this layer impairs what the *coordination* pipeline
// sees: the lease-protocol lines between coordinator and worker. Same
// philosophy — every impairment is driven by a seeded Rng, so a hostile
// wire is as reproducible as a clean one, and every recovery path in the
// coordinator's failure model (lease expiry, reconnect, torn-write
// rejection) is reachable from a unit test instead of only from a real
// network misbehaving.
//
// Faults are per-line, decided as the line crosses the wrapper in either
// direction:
//
//   drop        the line vanishes (a lost datagram / zeroed ack window)
//   dup         the line is delivered twice (retransmit overlap)
//   trunc       the line's tail is cut mid-byte and the connection closes
//               — a genuinely torn write, the satellite-3 failure
//   delay       the line waits delay-ms before moving (congestion)
//   disconnect  every Nth line closes the connection after delivery
//               (flapping link; deterministic, not probability-driven)
//
// Handshake and shutdown verbs (SPEC, HELLO, STOP, BYE) are exempt: a
// wire that can never complete a handshake tests nothing but the redial
// budget. LEASE, RESULT, FAIL, PING, and PONG are all fair game.
//
// `max-faults` caps the probabilistic impairments so a unit test can
// script "exactly one torn RESULT, then a clean wire" and assert the
// byte-level outcome. The decision sequence is deterministic given the
// seed and the sequence of lines crossing the wrapper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "shard/transport.h"
#include "util/status.h"

namespace netsample::faultsim {

struct NetFaultSpec {
  std::uint64_t seed{1};
  double drop{0.0};   // per-line probabilities; drop+dup+trunc+delay <= 1
  double dup{0.0};
  double trunc{0.0};
  double delay{0.0};
  int delay_ms{5};               // how long a delayed line waits
  std::uint64_t disconnect_every{0};  // close after every Nth line (0 = off)
  std::uint64_t max_faults{0};        // cap on probabilistic faults (0 = inf)
};

/// Parse "seed=7,drop=0.1,dup=0.05,trunc=0.01,delay=0.2,delay-ms=5,
/// disconnect-every=40,max-faults=3" (any subset, any order). Strict:
/// unknown keys, malformed numbers, probabilities outside [0, 1], or a
/// probability sum above 1 are kInvalidArgument.
[[nodiscard]] StatusOr<NetFaultSpec> parse_netfault_spec(
    const std::string& text);

/// Canonical re-encoding (round-trips through parse_netfault_spec).
[[nodiscard]] std::string encode_netfault_spec(const NetFaultSpec& spec);

/// Exact impairment counts, for pinning tests against.
struct NetFaultReport {
  std::uint64_t lines_seen{0};  // impairable lines that crossed the wire
  std::uint64_t dropped{0};
  std::uint64_t duplicated{0};
  std::uint64_t truncated{0};
  std::uint64_t delayed{0};
  std::uint64_t disconnects{0};
};

/// A Transport that forwards to an inner transport through the fault
/// schedule. The schedule (Rng stream, counters, disconnect cadence)
/// outlives any single connection: after a redial, rebind() attaches the
/// new wire and the schedule continues where it left off.
class NetFaultTransport final : public shard::Transport {
 public:
  NetFaultTransport(const NetFaultSpec& spec,
                    std::unique_ptr<shard::Transport> inner);
  ~NetFaultTransport() override;

  /// Attach a fresh inner wire (after a reconnect). Fault state persists.
  void rebind(std::unique_ptr<shard::Transport> inner);

  [[nodiscard]] const NetFaultReport& report() const { return report_; }

  [[nodiscard]] int poll_fd() const override;
  [[nodiscard]] bool write_line(const std::string& line) override;
  [[nodiscard]] bool write_bytes(const std::string& bytes) override;
  [[nodiscard]] shard::ReadResult read_line(std::string* line) override;
  [[nodiscard]] shard::ReadResult drain(
      std::vector<std::string>* lines) override;
  void shutdown_write() override;
  void close() override;
  [[nodiscard]] bool is_closed() const override;
  void append_fds(std::vector<int>* out) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  NetFaultReport report_;
};

}  // namespace netsample::faultsim
