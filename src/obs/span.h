// Scoped timing spans with parent chaining (sweep → ladder → cell → kernel).
//
// A Span is an RAII timer: construction stamps a start time, destruction
// records a SpanRecord into the global Tracer. Parenting works two ways:
//
//   - Same thread: a thread-local "current span" stack chains nested spans
//     automatically (ladder → cell → kernel on the serial path).
//   - Across threads: the sweep span's id is passed explicitly to the cell
//     span constructed on a worker thread, because thread-locals do not
//     follow work through the pool.
//
// Spans measure wall time, so every SpanRecord is nondeterministic by
// definition and the exporter keeps traces out of the maskable-deterministic
// metrics section entirely (spans go to --trace-out, not --metrics-out).
//
// Tracing has its own enable flag, separate from metrics: a --metrics-out
// run should not pay for span bookkeeping it will never export. Disabled
// spans are inert (id 0, no clock reads, no allocation).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netsample::obs {

/// One finished span. start_ns is relative to the Tracer epoch (the first
/// enable), so values are small and self-consistent within a process.
struct SpanRecord {
  std::uint64_t id{0};
  std::uint64_t parent_id{0};  // 0 = root
  std::string name;
  std::uint64_t start_ns{0};
  std::uint64_t duration_ns{0};
};

/// Process-wide collector of finished spans. Record order is completion
/// order (mutex-serialized); the exporter sorts by id for stable output.
class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Copy of all finished spans, sorted by id.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Drop all records and restart ids (test isolation).
  void clear();

  // -- used by Span; not part of the instrumented-code API --
  [[nodiscard]] std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void record(SpanRecord rec);
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII scoped span. Inert (zero work beyond one relaxed load) when the
/// tracer is disabled at construction time.
class Span {
 public:
  /// Parent = the calling thread's innermost live span (0 if none).
  explicit Span(std::string_view name);
  /// Explicit parent id, for chaining across pool threads.
  Span(std::string_view name, std::uint64_t parent_id);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

  /// This span's id (0 when tracing was disabled at construction).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// The calling thread's innermost live span id (0 if none). Pass this
  /// into a task so the worker can parent its spans under the caller's.
  [[nodiscard]] static std::uint64_t current_id();

 private:
  void open(std::string_view name, std::uint64_t parent_id);

  std::uint64_t id_{0};
  std::uint64_t parent_id_{0};
  std::uint64_t saved_current_{0};
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace netsample::obs
