#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace netsample::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  if constexpr (detail::kCompiledIn) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  } else {
    (void)on;
  }
}

HistogramMetric::HistogramMetric(std::string name, Determinism det,
                                 std::vector<double> edges)
    : name_(std::move(name)),
      det_(det),
      layout_(std::move(edges)),
      counts_(layout_.bin_count()) {}

std::vector<std::uint64_t> HistogramMetric::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t HistogramMetric::total() const {
  std::uint64_t t = 0;
  for (const auto& c : counts_) t += c.load(std::memory_order_relaxed);
  return t;
}

void HistogramMetric::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return *instance;
}

MetricsRegistry& registry() { return MetricsRegistry::global(); }

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name, Determinism det) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    it = s.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name), det))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Determinism det) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    it = s.gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name), det))
             .first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::vector<double> edges,
                                            Determinism det) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    it = s.histograms
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(std::string(name), det,
                                                        std::move(edges)))
             .first;
  } else {
    const auto& have = it->second->edges();
    if (!std::equal(have.begin(), have.end(), edges.begin(), edges.end())) {
      throw std::invalid_argument("obs histogram '" + std::string(name) +
                                  "' re-registered with different edges");
    }
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [name, c] : s.counters) {
      snap.counters.push_back({name, c->determinism(), c->value()});
    }
    for (const auto& [name, g] : s.gauges) {
      snap.gauges.push_back({name, g->determinism(), g->value()});
    }
    for (const auto& [name, h] : s.histograms) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.det = h->determinism();
      hs.edges.assign(h->edges().begin(), h->edges().end());
      hs.counts = h->counts();
      hs.total = 0;
      for (std::uint64_t c : hs.counts) hs.total += c;
      snap.histograms.push_back(std::move(hs));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [name, c] : s.counters) c->reset();
    for (auto& [name, g] : s.gauges) g->reset();
    for (auto& [name, h] : s.histograms) h->reset();
  }
}

std::vector<double> phi_bin_edges() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,  0.05,  0.1,    0.25,  0.5};
}

std::vector<double> duration_bin_edges() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
}

}  // namespace netsample::obs
