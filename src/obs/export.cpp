#include "obs/export.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

namespace netsample::obs {

namespace {

/// Round-trip-exact double formatting; non-finite values become null so
/// the document stays valid JSON.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_double_list(const std::vector<double>& vs) {
  std::string out = "[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i != 0) out += ", ";
    out += fmt_double(vs[i]);
  }
  out += "]";
  return out;
}

std::string fmt_u64_list(const std::vector<std::uint64_t>& vs) {
  std::string out = "[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(vs[i]);
  }
  out += "]";
  return out;
}

/// One line per histogram so masking and `netsample stats` can stay
/// line-oriented.
std::string histogram_value(const HistogramSnapshot& h) {
  std::string out = "{\"edges\": ";
  out += fmt_double_list(h.edges);
  out += ", \"counts\": ";
  out += fmt_u64_list(h.counts);
  out += ", \"total\": ";
  out += std::to_string(h.total);
  out += "}";
  return out;
}

/// Emit `"kind": { entries }` with 6-space entry indentation.
void emit_group(std::ostringstream& os, const char* kind,
                const std::vector<std::string>& entries, bool trailing_comma) {
  os << "    \"" << kind << "\": {";
  if (entries.empty()) {
    os << "}";
  } else {
    os << "\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      os << "      " << entries[i];
      if (i + 1 != entries.size()) os << ",";
      os << "\n";
    }
    os << "    }";
  }
  if (trailing_comma) os << ",";
  os << "\n";
}

void emit_section(std::ostringstream& os, const MetricsSnapshot& snap,
                  Determinism det, const char* title, bool trailing_comma) {
  std::vector<std::string> counters, gauges, histograms;
  for (const auto& c : snap.counters) {
    if (c.det != det) continue;
    counters.push_back("\"" + c.name + "\": " + std::to_string(c.value));
  }
  for (const auto& g : snap.gauges) {
    if (g.det != det) continue;
    gauges.push_back("\"" + g.name + "\": " + fmt_double(g.value));
  }
  for (const auto& h : snap.histograms) {
    if (h.det != det) continue;
    histograms.push_back("\"" + h.name + "\": " + histogram_value(h));
  }
  os << "  \"" << title << "\": {\n";
  emit_group(os, "counters", counters, /*trailing_comma=*/true);
  emit_group(os, "gauges", gauges, /*trailing_comma=*/true);
  emit_group(os, "histograms", histograms, /*trailing_comma=*/false);
  os << "  }";
  if (trailing_comma) os << ",";
  os << "\n";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"netsample_metrics_version\": 1,\n";
  emit_section(os, snap, Determinism::kDeterministic, "deterministic",
               /*trailing_comma=*/true);
  emit_section(os, snap, Determinism::kNondeterministic, "nondeterministic",
               /*trailing_comma=*/false);
  os << "}\n";
  return os.str();
}

std::string spans_to_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"netsample_trace_version\": 1,\n";
  os << "  \"spans\": [";
  if (spans.empty()) {
    os << "]\n";
  } else {
    os << "\n";
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      os << "    {\"id\": " << s.id << ", \"parent\": " << s.parent_id
         << ", \"name\": \"" << s.name << "\", \"start_ns\": " << s.start_ns
         << ", \"duration_ns\": " << s.duration_ns << "}";
      if (i + 1 != spans.size()) os << ",";
      os << "\n";
    }
    os << "  ]\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  auto det_note = [&](Determinism det) {
    if (det == Determinism::kNondeterministic) {
      os << "# netsample_determinism nondeterministic\n";
    }
  };
  for (const auto& c : snap.counters) {
    det_note(c.det);
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    det_note(g.det);
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << " " << fmt_double(g.value) << "\n";
  }
  for (const auto& h : snap.histograms) {
    det_note(h.det);
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      os << h.name << "_bucket{le=\"";
      if (b < h.edges.size()) {
        os << fmt_double(h.edges[b]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << h.name << "_count " << h.total << "\n";
  }
  return os.str();
}

std::string masked_json(const std::string& json) {
  const std::string marker = "\"nondeterministic\"";
  const std::size_t pos = json.find(marker);
  if (pos == std::string::npos) return json;
  std::string out = json.substr(0, pos);
  // Drop the indentation of the marker line, trailing whitespace and the
  // comma that separated the sections, then close the object.
  while (!out.empty() &&
         (out.back() == ' ' || out.back() == '\n' || out.back() == '\t')) {
    out.pop_back();
  }
  if (!out.empty() && out.back() == ',') out.pop_back();
  out += "\n}\n";
  return out;
}

std::string pretty_metrics(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream os;
  std::string line;
  std::string section;
  std::string kind;
  auto extract_name = [](const std::string& l) -> std::string {
    const std::size_t q0 = l.find('"');
    if (q0 == std::string::npos) return {};
    const std::size_t q1 = l.find('"', q0 + 1);
    if (q1 == std::string::npos) return {};
    return l.substr(q0 + 1, q1 - q0 - 1);
  };
  while (std::getline(in, line)) {
    if (line.find("\"deterministic\": {") != std::string::npos) {
      section = "deterministic";
      os << "== deterministic (bit-identical across --jobs for a fixed seed) ==\n";
      continue;
    }
    if (line.find("\"nondeterministic\": {") != std::string::npos) {
      section = "nondeterministic";
      os << "== nondeterministic (wall/CPU time, scheduler state) ==\n";
      continue;
    }
    if (section.empty()) continue;
    if (line.find("\"counters\": {") != std::string::npos) {
      kind = "counter";
      continue;
    }
    if (line.find("\"gauges\": {") != std::string::npos) {
      kind = "gauge";
      continue;
    }
    if (line.find("\"histograms\": {") != std::string::npos) {
      kind = "histogram";
      continue;
    }
    const std::string name = extract_name(line);
    if (name.empty() || kind.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ')) value.erase(0, 1);
    while (!value.empty() && (value.back() == ',' || value.back() == ' ')) {
      value.pop_back();
    }
    if (kind == "histogram") {
      // Reduce {"edges": [...], "counts": [...], "total": N} to the parts
      // a human scans for.
      const std::size_t cpos = value.find("\"counts\": ");
      const std::size_t tpos = value.find("\"total\": ");
      std::string counts, total;
      if (cpos != std::string::npos) {
        const std::size_t open = value.find('[', cpos);
        const std::size_t close = value.find(']', cpos);
        if (open != std::string::npos && close != std::string::npos) {
          counts = value.substr(open, close - open + 1);
        }
      }
      if (tpos != std::string::npos) {
        std::size_t end = tpos + 9;
        while (end < value.size() && value[end] != '}' && value[end] != ',') {
          ++end;
        }
        total = value.substr(tpos + 9, end - tpos - 9);
      }
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  %-48s %-10s total=%s", name.c_str(),
                    "histogram", total.c_str());
      os << buf << " counts=" << counts << "\n";
    } else {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  %-48s %-10s %s", name.c_str(),
                    kind.c_str(), value.c_str());
      os << buf << "\n";
    }
  }
  if (section.empty()) {
    os << "(no exporter sections found; is this a netsample metrics JSON?)\n";
  }
  return os.str();
}

bool write_metrics_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (out) out << to_json(registry().snapshot());
  if (!out) {
    std::cerr << "obs: failed to write metrics to " << path << "\n";
    return false;
  }
  return true;
}

bool write_trace_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (out) out << spans_to_json(Tracer::global().snapshot());
  if (!out) {
    std::cerr << "obs: failed to write trace to " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace netsample::obs
