#include "obs/span.h"

#include <algorithm>

namespace netsample::obs {

namespace {
thread_local std::uint64_t t_current_span = 0;
}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never freed
  return *instance;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_id_.store(0, std::memory_order_relaxed);
}

void Tracer::record(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

Span::Span(std::string_view name) { open(name, t_current_span); }

Span::Span(std::string_view name, std::uint64_t parent_id) {
  open(name, parent_id);
}

void Span::open(std::string_view name, std::uint64_t parent_id) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;  // id_ stays 0: inert span
  id_ = tracer.next_id();
  parent_id_ = parent_id;
  name_ = name;
  saved_current_ = t_current_span;
  t_current_span = id_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (id_ == 0) return;
  const auto end = std::chrono::steady_clock::now();
  t_current_span = saved_current_;
  Tracer& tracer = Tracer::global();
  SpanRecord rec;
  rec.id = id_;
  rec.parent_id = parent_id_;
  rec.name = std::move(name_);
  rec.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           tracer.epoch())
          .count());
  rec.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  tracer.record(std::move(rec));
}

std::uint64_t Span::current_id() { return t_current_span; }

}  // namespace netsample::obs
