// Lock-sharded metrics registry: counters, gauges, fixed-bin histograms.
//
// The sweep engine is instrumented with named metrics so that a figure run
// can export *what it actually did* — cells executed, packets scanned,
// RNG draws consumed, φ values observed — alongside the results. Design
// constraints, in order:
//
//   1. Zero overhead when disabled. Every mutator first checks the global
//      `enabled()` flag (one relaxed atomic load, branch-predicted false).
//      Configuring with -DNETSAMPLE_OBS=OFF compiles the flag to a
//      constant `false`, so the optimizer deletes the instrumentation
//      entirely.
//   2. Deterministic exports. Metrics are tagged kDeterministic or
//      kNondeterministic at registration. Deterministic metrics derive
//      only from logical work (seeds, packet counts) and are bit-identical
//      across --jobs levels; wall/CPU durations and scheduler counters are
//      nondeterministic and exported in a separate, maskable section (see
//      docs/OBSERVABILITY.md).
//   3. Cheap concurrent updates. Values are relaxed atomics; the registry
//      map is sharded by name hash so handle lookup never funnels through
//      one mutex. Instrument sites cache the handle in a function-local
//      static, so steady-state cost is a single atomic RMW.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime: entries are never erased (reset() zeroes values but
// keeps the objects).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.h"

namespace netsample::obs {

/// Export-section tag. Deterministic metrics must be bit-identical across
/// --jobs levels for a fixed seed; nondeterministic ones (durations, pool
/// scheduling counters) are exported in a maskable section.
enum class Determinism : std::uint8_t {
  kDeterministic,
  kNondeterministic,
};

namespace detail {
#if defined(NETSAMPLE_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global metrics gate. Off by default; CLI/bench entry points flip it on
/// when --metrics-out / --trace-out is given. With NETSAMPLE_OBS=OFF this
/// folds to `false` and instrumentation compiles away.
[[nodiscard]] inline bool enabled() {
  if constexpr (!detail::kCompiledIn) {
    return false;
  } else {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }
}

/// Enable/disable metric accumulation. No-op when compiled out.
void set_enabled(bool on);

/// Monotonic counter. Mutators are no-ops while obs is disabled.
class Counter {
 public:
  Counter(std::string name, Determinism det)
      : name_(std::move(name)), det_(det) {}

  void add(std::uint64_t delta) {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Determinism determinism() const { return det_; }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  Determinism det_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins double gauge. set()/add() are no-ops while disabled;
/// max() keeps the running maximum (used for queue-depth high-water marks).
class Gauge {
 public:
  Gauge(std::string name, Determinism det)
      : name_(std::move(name)), det_(det) {}

  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void max(double v) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Determinism determinism() const { return det_; }

  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  Determinism det_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bin histogram with atomic per-bin accumulation. Binning delegates
/// to stats::Histogram::bin_index — the same edge semantics as the paper
/// bins and BinnedTraceCache, so there is a single binning truth
/// (tests/test_obs_binning.cpp pins the two implementations together).
class HistogramMetric {
 public:
  HistogramMetric(std::string name, Determinism det,
                  std::vector<double> edges);

  void observe(double x, std::uint64_t weight = 1) {
    if (!enabled()) return;
    counts_[layout_.bin_index(x)].fetch_add(weight,
                                            std::memory_order_relaxed);
  }
  /// Bulk add into a bin by index (used when counts are already binned,
  /// e.g. replayed from BinnedTraceCache prefix tables).
  void add_to_bin(std::size_t bin, std::uint64_t weight) {
    if (!enabled()) return;
    counts_.at(bin).fetch_add(weight, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t bin_count() const { return layout_.bin_count(); }
  [[nodiscard]] std::span<const double> edges() const {
    return layout_.edges();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin).load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Determinism determinism() const { return det_; }

  void reset();

 private:
  std::string name_;
  Determinism det_;
  stats::Histogram layout_;  // counts unused; provides edges + bin_index
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Point-in-time copy of one metric, used by the exporter.
struct CounterSnapshot {
  std::string name;
  Determinism det{Determinism::kDeterministic};
  std::uint64_t value{0};
};
struct GaugeSnapshot {
  std::string name;
  Determinism det{Determinism::kDeterministic};
  double value{0.0};
};
struct HistogramSnapshot {
  std::string name;
  Determinism det{Determinism::kDeterministic};
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t total{0};
};

/// Full registry snapshot; names are sorted so exports are reproducible.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Process-wide metric registry, sharded by name hash. Registration takes
/// one shard mutex; returned references are stable forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Find-or-create. The Determinism/edges arguments only matter on first
  /// registration; later calls with the same name return the original
  /// object (mismatched edges throw std::invalid_argument).
  Counter& counter(std::string_view name,
                   Determinism det = Determinism::kDeterministic);
  Gauge& gauge(std::string_view name,
               Determinism det = Determinism::kDeterministic);
  HistogramMetric& histogram(std::string_view name, std::vector<double> edges,
                             Determinism det = Determinism::kDeterministic);

  /// Sorted point-in-time copy of every registered metric.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every value (objects and handles survive). Test isolation only.
  void reset();

 private:
  MetricsRegistry() = default;

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    // std::map keeps pointers stable and iteration ordered; registration
    // is rare (one lookup per instrument site per process), so the
    // log-time insert is irrelevant.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
        histograms;
  };
  [[nodiscard]] Shard& shard_for(std::string_view name);

  Shard shards_[kShards];
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& registry();

/// φ-distribution bin edges used by the netsample_phi histogram metric:
/// the paper's disparity values live on [0, ~1], log-ish spaced.
std::vector<double> phi_bin_edges();

/// Duration bin edges (seconds) for latency histograms, log spaced
/// 10 µs … 10 s.
std::vector<double> duration_bin_edges();

}  // namespace netsample::obs
