// Deterministic JSON / Prometheus-text exports of a metrics snapshot.
//
// The JSON layout is the determinism contract made concrete:
//
//   {
//     "netsample_metrics_version": 1,
//     "deterministic":    { "counters": {...}, "gauges": {...},
//                           "histograms": {...} },
//     "nondeterministic": { "counters": {...}, "gauges": {...},
//                           "histograms": {...} }
//   }
//
// Keys are sorted, doubles are printed with %.17g (round-trip exact), and
// the nondeterministic section is always LAST, so masking a snapshot for a
// golden comparison is a pure truncation: drop everything from the
// `"nondeterministic"` line on and close the object (masked_json()). With a
// fixed seed the masked form is bit-identical across --jobs levels; ctest
// and CI diff it directly (see docs/OBSERVABILITY.md).
//
// Span traces are wall-clock by nature, so they are exported as a separate
// document (spans_to_json → --trace-out), never mixed into the metrics
// snapshot.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace netsample::obs {

/// Snapshot → deterministic JSON (layout documented above).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

/// Finished spans → JSON {"netsample_trace_version": 1, "spans": [...]}.
[[nodiscard]] std::string spans_to_json(const std::vector<SpanRecord>& spans);

/// Snapshot → Prometheus text exposition. Nondeterministic metrics carry a
/// `# netsample_determinism nondeterministic` comment line.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap);

/// Strip the nondeterministic section from exporter JSON (pure truncation
/// at the `"nondeterministic"` marker; returns the input unchanged when no
/// marker is present). The result is still valid JSON.
[[nodiscard]] std::string masked_json(const std::string& json);

/// Human-readable table of a metrics JSON document (as written by
/// to_json); used by `netsample stats`. Only understands the exporter's
/// own line-oriented layout.
[[nodiscard]] std::string pretty_metrics(const std::string& json);

/// Snapshot the global registry and write to_json() to `path`.
/// Returns false and reports to stderr on IO failure. No-op (true) when
/// path is empty.
bool write_metrics_file(const std::string& path);

/// Snapshot the global tracer and write spans_to_json() to `path`.
bool write_trace_file(const std::string& path);

}  // namespace netsample::obs
