#include "util/format.h"

#include <gtest/gtest.h>

#include <sstream>

namespace netsample {
namespace {

TEST(FmtDouble, TrimsTrailingZeros) {
  EXPECT_EQ(fmt_double(1.5), "1.5");
  EXPECT_EQ(fmt_double(1.5000), "1.5");
  EXPECT_EQ(fmt_double(2.0), "2.0");
  EXPECT_EQ(fmt_double(0.1234, 4), "0.1234");
}

TEST(FmtDouble, RespectsPrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
}

TEST(FmtDouble, NegativeValues) {
  EXPECT_EQ(fmt_double(-1.25, 2), "-1.25");
}

TEST(FmtFraction, Format) {
  EXPECT_EQ(fmt_fraction(50), "1/50");
  EXPECT_EQ(fmt_fraction(32768), "1/32768");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1636000), "1,636,000");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bb"});
  t.add_row({"xxx", "y"});
  t.add_row({"z", "wwww"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("xxx"), std::string::npos);
  EXPECT_NE(out.find("wwww"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

}  // namespace
}  // namespace netsample
