// exper::CheckpointJournal: append-only JSONL checkpointing with exact
// (hexfloat) metric round-trip, torn-line recovery on open, and latest-wins
// duplicate keys — the durability half of kill-and-resume (test_resume.cpp
// covers the sweep half).
#include "exper/journal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exper/runner.h"

namespace netsample::exper {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::DisparityMetrics metrics(double phi) {
  core::DisparityMetrics m;
  m.chi2 = phi * 3.0;
  m.dof = 4.0;
  m.significance = 0.123456789123456789;  // not representable in short decimal
  m.cost = 1000.0;
  m.rcost = 31.25;
  m.x2 = phi / 7.0;
  m.avg_norm_dev = phi * 1.5;
  m.phi = phi;
  m.sample_n = 314;
  m.population_n = 6288;
  return m;
}

void expect_exact(const core::DisparityMetrics& a,
                  const core::DisparityMetrics& b) {
  EXPECT_EQ(a.chi2, b.chi2);
  EXPECT_EQ(a.dof, b.dof);
  EXPECT_EQ(a.significance, b.significance);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.rcost, b.rcost);
  EXPECT_EQ(a.x2, b.x2);
  EXPECT_EQ(a.avg_norm_dev, b.avg_norm_dev);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sample_n, b.sample_n);
  EXPECT_EQ(a.population_n, b.population_n);
}

TEST(CheckpointJournal, RecordThenFindAcrossReopen) {
  const std::string path = temp_path("netsample_journal_roundtrip.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->size(), 0u);
    ASSERT_TRUE(j->record("cell-a", {metrics(0.25), metrics(0.5)}).is_ok());
    ASSERT_TRUE(j->record("cell-b", {metrics(1.0 / 3.0)}).is_ok());
    EXPECT_EQ(j->size(), 2u);
    const auto* found = j->find("cell-a");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->size(), 2u);
  }
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 2u);
  EXPECT_EQ(j->dropped_lines(), 0u);
  const auto* a = j->find("cell-a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  expect_exact((*a)[0], metrics(0.25));
  expect_exact((*a)[1], metrics(0.5));
  const auto* b = j->find("cell-b");
  ASSERT_NE(b, nullptr);
  expect_exact((*b)[0], metrics(1.0 / 3.0));
  EXPECT_EQ(j->find("cell-c"), nullptr);
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, HexfloatSurvivesAwkwardDoubles) {
  const std::string path = temp_path("netsample_journal_doubles.jsonl");
  std::filesystem::remove(path);
  core::DisparityMetrics m = metrics(0.1);  // 0.1 is not exact in binary
  m.chi2 = std::numeric_limits<double>::denorm_min();
  m.dof = -0.0;
  m.significance = std::numeric_limits<double>::infinity();
  m.x2 = std::nextafter(1.0, 2.0);  // 1 + one ulp
  m.avg_norm_dev = std::numeric_limits<double>::quiet_NaN();
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell", {m}).is_ok());
  }
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  const auto* found = j->find("cell");
  ASSERT_NE(found, nullptr);
  const auto& r = (*found)[0];
  EXPECT_EQ(r.chi2, std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.dof, 0.0);
  EXPECT_TRUE(std::signbit(r.dof));
  EXPECT_EQ(r.significance, std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.x2, std::nextafter(1.0, 2.0));
  EXPECT_TRUE(std::isnan(r.avg_norm_dev));
  EXPECT_EQ(r.phi, m.phi);
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, DuplicateKeyKeepsLatest) {
  const std::string path = temp_path("netsample_journal_dup.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell", {metrics(0.25)}).is_ok());
    ASSERT_TRUE(j->record("cell", {metrics(0.75)}).is_ok());
    EXPECT_EQ(j->size(), 1u);
    expect_exact((*j->find("cell"))[0], metrics(0.75));
  }
  // Same winner after replaying the file.
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 1u);
  expect_exact((*j->find("cell"))[0], metrics(0.75));
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, TornTailLineIsDroppedAndCleaned) {
  const std::string path = temp_path("netsample_journal_torn.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell-a", {metrics(0.25)}).is_ok());
    ASSERT_TRUE(j->record("cell-b", {metrics(0.5)}).is_ok());
  }
  // Simulate a kill mid-write: chop the file mid-way through the last line.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 20);

  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 1u);
  EXPECT_EQ(j->dropped_lines(), 1u);
  ASSERT_NE(j->find("cell-a"), nullptr);
  EXPECT_EQ(j->find("cell-b"), nullptr);

  // open() rewrote the clean prefix: a third open sees no damage.
  auto again = CheckpointJournal::open(path);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->size(), 1u);
  EXPECT_EQ(again->dropped_lines(), 0u);
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, GarbageLinesAreCountedNotFatal) {
  const std::string path = temp_path("netsample_journal_garbage.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell-a", {metrics(0.25)}).is_ok());
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "not json at all\n"
        << "{\"key\":\"half\",\"reps\":[{\"chi2\":\"0x1p+0\"\n";
  }
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 1u);
  EXPECT_EQ(j->dropped_lines(), 2u);
  ASSERT_NE(j->find("cell-a"), nullptr);
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, OpenOnUnwritableDirectoryFails) {
  const auto j = CheckpointJournal::open("/nonexistent-dir/journal.jsonl");
  EXPECT_FALSE(j.has_value());
}

TEST(JournalCompaction, LatestWinsAndKeysKeepFirstAppearanceOrder) {
  const std::string path = temp_path("netsample_journal_compact.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell-a", {metrics(0.25)}).is_ok());
    ASSERT_TRUE(j->record("cell-b", {metrics(0.5)}).is_ok());
    ASSERT_TRUE(j->record("cell-a", {metrics(0.75)}).is_ok());  // supersedes
  }
  auto stats = CheckpointJournal::compact_file(path);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
  EXPECT_EQ(stats->lines_before, 3u);
  EXPECT_EQ(stats->duplicate_keys, 1u);
  EXPECT_EQ(stats->dropped_lines, 0u);
  EXPECT_EQ(stats->lines_after, 2u);

  // One line per key, cell-a first (first appearance), latest metrics win.
  {
    std::ifstream in(path);
    std::string first, second, extra;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, first)));
    ASSERT_TRUE(static_cast<bool>(std::getline(in, second)));
    EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
    EXPECT_NE(first.find("cell-a"), std::string::npos);
    EXPECT_NE(second.find("cell-b"), std::string::npos);
  }
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 2u);
  EXPECT_EQ(j->dropped_lines(), 0u);
  expect_exact((*j->find("cell-a"))[0], metrics(0.75));
  expect_exact((*j->find("cell-b"))[0], metrics(0.5));

  // Idempotent: a second pass finds nothing to remove and the bytes stand
  // still (the hexfloat re-encode is exact, not merely value-preserving).
  std::ifstream before(path, std::ios::binary);
  std::stringstream want;
  want << before.rdbuf();
  auto again = CheckpointJournal::compact_file(path);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->duplicate_keys, 0u);
  EXPECT_EQ(again->lines_after, 2u);
  std::ifstream after(path, std::ios::binary);
  std::stringstream got;
  got << after.rdbuf();
  EXPECT_EQ(got.str(), want.str());
  std::filesystem::remove(path);
}

TEST(JournalCompaction, DropsTornTailAndGarbage) {
  const std::string path = temp_path("netsample_journal_compact_torn.jsonl");
  std::filesystem::remove(path);
  {
    auto j = CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    ASSERT_TRUE(j->record("cell-a", {metrics(0.25)}).is_ok());
    ASSERT_TRUE(j->record("cell-b", {metrics(0.5)}).is_ok());
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"torn\",\"reps\":[{\"chi2\":\"0x1p+0\"";  // no newline
  }
  auto stats = CheckpointJournal::compact_file(path);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
  EXPECT_EQ(stats->lines_before, 2u);
  EXPECT_EQ(stats->dropped_lines, 1u);
  EXPECT_EQ(stats->lines_after, 2u);
  auto j = CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->size(), 2u);
  EXPECT_EQ(j->dropped_lines(), 0u);
  ASSERT_NE(j->find("cell-a"), nullptr);
  ASSERT_NE(j->find("cell-b"), nullptr);
  std::filesystem::remove(path);
}

TEST(JournalCompaction, MissingFileFails) {
  const auto stats = CheckpointJournal::compact_file(
      temp_path("netsample_journal_compact_nope.jsonl"));
  EXPECT_FALSE(stats.has_value());
}

TEST(CellJournalKey, EncodesEveryLogicalCoordinate) {
  exper::CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.granularity = 64;
  cfg.replications = 5;
  cfg.base_seed = 42;

  const std::string base = cell_journal_key(cfg, 0);
  EXPECT_EQ(base, cell_journal_key(cfg, 0));  // stable

  EXPECT_NE(base, cell_journal_key(cfg, 1));  // interval index
  exper::CellConfig other = cfg;
  other.granularity = 128;
  EXPECT_NE(base, cell_journal_key(other, 0));
  other = cfg;
  other.method = core::Method::kSimpleRandom;
  EXPECT_NE(base, cell_journal_key(other, 0));
  other = cfg;
  other.target = core::Target::kInterarrivalTime;
  EXPECT_NE(base, cell_journal_key(other, 0));
  other = cfg;
  other.replications = 6;
  EXPECT_NE(base, cell_journal_key(other, 0));
  other = cfg;
  other.base_seed = 43;
  EXPECT_NE(base, cell_journal_key(other, 0));
}

}  // namespace
}  // namespace netsample::exper
