#include "util/timeval.h"

#include <gtest/gtest.h>

namespace netsample {
namespace {

TEST(MicroTime, FromSecUsec) {
  const auto t = MicroTime::from_sec_usec(3, 250000);
  EXPECT_EQ(t.usec, 3250000u);
  EXPECT_EQ(t.seconds(), 3u);
  EXPECT_EQ(t.subsec_usec(), 250000u);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 3.25);
}

TEST(MicroTime, Ordering) {
  EXPECT_LT(MicroTime{1}, MicroTime{2});
  EXPECT_EQ(MicroTime{5}, MicroTime{5});
  EXPECT_GT(MicroTime{9}, MicroTime{2});
}

TEST(MicroDuration, FromSecondsAndMillis) {
  EXPECT_EQ(MicroDuration::from_seconds(1.5).usec, 1500000);
  EXPECT_EQ(MicroDuration::from_millis(20).usec, 20000);
  EXPECT_DOUBLE_EQ(MicroDuration{2500000}.to_seconds(), 2.5);
}

TEST(MicroTime, Arithmetic) {
  const MicroTime a{1000}, b{400};
  EXPECT_EQ((a - b).usec, 600);
  EXPECT_EQ((b - a).usec, -600);  // durations are signed
  EXPECT_EQ((a + MicroDuration{500}).usec, 1500u);
  EXPECT_EQ((a - MicroDuration{500}).usec, 500u);
}

TEST(MicroDuration, Arithmetic) {
  const MicroDuration a{300}, b{200};
  EXPECT_EQ((a + b).usec, 500);
  EXPECT_EQ((a - b).usec, 100);
  EXPECT_EQ((a * 4).usec, 1200);
}

}  // namespace
}  // namespace netsample
