#include "pcap/stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "synth/presets.h"

namespace netsample::pcap {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

trace::Trace small_trace() {
  synth::TraceModel model(synth::sdsc_minutes_config(0.05, 61));
  return model.generate();
}

TEST(StreamReader, MatchesInMemoryParse) {
  const auto path = temp_path("netsample_stream_eq.pcap");
  const auto t = small_trace();
  ASSERT_TRUE(write_trace(path, t, 96).is_ok());

  const auto whole = read_file(path);
  ASSERT_TRUE(whole.has_value());

  StreamReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.link_type(), whole->link_type);
  EXPECT_EQ(reader.snaplen(), whole->snaplen);

  std::size_t i = 0;
  while (auto rec = reader.next()) {
    ASSERT_LT(i, whole->records.size());
    EXPECT_EQ(rec->timestamp, whole->records[i].timestamp);
    EXPECT_EQ(rec->orig_len, whole->records[i].orig_len);
    EXPECT_EQ(rec->data, whole->records[i].data);
    ++i;
  }
  EXPECT_EQ(i, whole->records.size());
  EXPECT_EQ(reader.records_read(), whole->records.size());
  std::remove(path.c_str());
}

TEST(StreamReader, MissingFileReportsStatus) {
  StreamReader reader("/nonexistent/stream.pcap");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StreamReader, TornFileStopsAtPrefix) {
  const auto path = temp_path("netsample_stream_torn.pcap");
  const auto t = small_trace();
  ASSERT_TRUE(write_trace(path, t, 96).is_ok());
  // Truncate the file by a few bytes.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);

  StreamReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::size_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, t.size() - 1);
  std::remove(path.c_str());
}

TEST(StreamWriter, RoundTripsThroughStreamReader) {
  const auto path = temp_path("netsample_stream_writer.pcap");
  const auto t = small_trace();
  {
    StreamWriter writer(path, kLinkTypeRaw, 96);
    ASSERT_TRUE(writer.ok());
    for (const auto& p : t.packets()) {
      ASSERT_TRUE(writer.write_packet(p));
    }
    EXPECT_EQ(writer.records_written(), t.size());
  }
  // The streamed file must decode identically to the batch-encoded one.
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 17) {
    EXPECT_EQ((*loaded)[i], t[i]);
  }
  std::remove(path.c_str());
}

TEST(StreamWriter, SnaplenTruncatesData) {
  const auto path = temp_path("netsample_stream_snap.pcap");
  StreamWriter writer(path, kLinkTypeRaw, 50);
  RawPacket big;
  big.timestamp = MicroTime{1};
  big.orig_len = 200;
  big.data.assign(200, 0xAB);
  ASSERT_TRUE(writer.write(big));
  writer.flush();

  StreamReader reader(path);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 50u);
  EXPECT_EQ(rec->orig_len, 200u);
  std::remove(path.c_str());
}

TEST(StreamWriter, BadPathReportsStatus) {
  StreamWriter writer("/nonexistent/dir/file.pcap");
  EXPECT_FALSE(writer.ok());
  RawPacket rec;
  EXPECT_FALSE(writer.write(rec));
}

TEST(StreamPipeline, FilterWhileStreaming) {
  // The operational pattern: stream-read, sample, stream-write.
  const auto in_path = temp_path("netsample_stream_in.pcap");
  const auto out_path = temp_path("netsample_stream_out.pcap");
  const auto t = small_trace();
  ASSERT_TRUE(write_trace(in_path, t, 96).is_ok());

  StreamReader reader(in_path);
  StreamWriter writer(out_path, kLinkTypeRaw, 96);
  std::uint64_t counter = 0;
  while (auto rec = reader.next()) {
    if (counter++ % 10 == 0) writer.write(*rec);
  }
  writer.flush();
  EXPECT_EQ(writer.records_written(), (t.size() + 9) / 10);

  const auto sampled = read_trace(out_path);
  ASSERT_TRUE(sampled.has_value());
  EXPECT_EQ(sampled->size(), (t.size() + 9) / 10);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace netsample::pcap
