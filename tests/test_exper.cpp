#include "exper/experiment.h"
#include "exper/runner.h"

#include <gtest/gtest.h>

#include <set>

namespace netsample::exper {
namespace {

// A shared 3-minute experiment keeps the suite fast (~75k packets).
class ExperTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new Experiment(23, 3.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static Experiment* ex_;
};

Experiment* ExperTest::ex_ = nullptr;

TEST_F(ExperTest, PopulationStatsAreComputed) {
  EXPECT_GT(ex_->population_size(), 50000u);
  EXPECT_NEAR(ex_->mean_packet_size(), 232.0, 30.0);
  EXPECT_NEAR(ex_->mean_interarrival_usec(), 2358.0, 300.0);
  EXPECT_GT(ex_->stddev_packet_size(), 100.0);
  EXPECT_GT(ex_->stddev_interarrival_usec(), 1000.0);
}

TEST_F(ExperTest, IntervalIsPrefixWindow) {
  const auto w = ex_->interval(60.0);
  ASSERT_FALSE(w.empty());
  EXPECT_LT(w.duration().usec, MicroDuration::from_seconds(60).usec);
  EXPECT_EQ(w.start_time(), ex_->full().start_time());
  EXPECT_LT(w.size(), ex_->population_size());
}

TEST_F(ExperTest, RunCellProducesRequestedReplications) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.granularity = 16;
  cfg.interval = ex_->interval(64.0);
  cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
  cfg.replications = 5;
  const auto r = run_cell(cfg);
  EXPECT_EQ(r.replications.size(), 5u);
  EXPECT_EQ(r.phi_values().size(), 5u);
  EXPECT_GT(r.mean_sample_size(), 0.0);
  // phi of a fine-grained packet sample is near zero.
  EXPECT_LT(r.phi_mean(), 0.05);
}

TEST_F(ExperTest, RunCellValidation) {
  CellConfig cfg;
  cfg.interval = trace::TraceView{};
  EXPECT_THROW((void)run_cell(cfg), std::invalid_argument);
  cfg.interval = ex_->interval(8.0);
  cfg.replications = 0;
  EXPECT_THROW((void)run_cell(cfg), std::invalid_argument);
}

TEST_F(ExperTest, ReplicationSpecsVarySystematicOffsets) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.granularity = 50;
  cfg.interval = ex_->interval(16.0);
  cfg.replications = 5;
  std::set<std::uint64_t> offsets;
  for (int r = 0; r < 5; ++r) offsets.insert(replication_spec(cfg, r).offset);
  EXPECT_EQ(offsets.size(), 5u);
  for (auto o : offsets) EXPECT_LT(o, 50u);
}

TEST_F(ExperTest, ReplicationSpecsVaryTimerPhases) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicTimer;
  cfg.granularity = 50;
  cfg.mean_interarrival_usec = 2358.0;
  cfg.interval = ex_->interval(16.0);
  cfg.replications = 5;
  std::set<std::uint64_t> phases;
  for (int r = 0; r < 5; ++r) {
    phases.insert(replication_spec(cfg, r).timer_phase_usec);
  }
  EXPECT_EQ(phases.size(), 5u);
}

TEST_F(ExperTest, ReplicationSpecsVaryRandomSeeds) {
  CellConfig cfg;
  cfg.method = core::Method::kStratifiedCount;
  cfg.granularity = 50;
  cfg.interval = ex_->interval(16.0);
  cfg.replications = 3;
  std::set<std::uint64_t> seeds;
  for (int r = 0; r < 3; ++r) seeds.insert(replication_spec(cfg, r).seed);
  EXPECT_EQ(seeds.size(), 3u);
}

TEST_F(ExperTest, SweepGranularityReturnsOneCellPerK) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.interval = ex_->interval(64.0);
  cfg.replications = 3;
  const auto ks = std::vector<std::uint64_t>{4, 64, 1024};
  const auto cells = sweep_granularity(cfg, ks);
  ASSERT_EQ(cells.size(), 3u);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(cells[i].config.granularity, ks[i]);
  }
  // Coarser sampling scores worse on average (the paper's Figure 7 trend).
  EXPECT_LT(cells[0].phi_mean(), cells[2].phi_mean());
}

TEST_F(ExperTest, SweepIntervalImprovesWithTime) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.granularity = 256;
  cfg.replications = 5;
  const auto cells =
      sweep_interval(cfg, ex_->full(), {8.0, 32.0, 128.0});
  ASSERT_EQ(cells.size(), 3u);
  // Longer intervals yield larger samples, hence better phi (Figure 10).
  EXPECT_GT(cells[0].config.interval.size(), 0u);
  EXPECT_LT(cells[2].phi_mean(), cells[0].phi_mean() + 0.05);
  EXPECT_GT(cells[2].mean_sample_size(), cells[0].mean_sample_size());
}

TEST_F(ExperTest, RejectionsCountedAtAlpha) {
  CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.granularity = 32;
  cfg.interval = ex_->interval(64.0);
  cfg.replications = 10;
  const auto r = run_cell(cfg);
  const int rej_05 = r.rejections_at(0.05);
  const int rej_all = r.rejections_at(1.1);
  EXPECT_LE(rej_05, 10);
  EXPECT_EQ(rej_all, 10);  // every significance < 1.1
}

TEST(GranularityLadder, PowersOfTwo) {
  const auto l = granularity_ladder(2, 32768);
  ASSERT_EQ(l.size(), 15u);
  EXPECT_EQ(l.front(), 2u);
  EXPECT_EQ(l.back(), 32768u);
  for (std::size_t i = 1; i < l.size(); ++i) EXPECT_EQ(l[i], l[i - 1] * 2);
}

TEST(GranularityLadder, CustomRange) {
  const auto l = granularity_ladder(4, 64);
  EXPECT_EQ(l, (std::vector<std::uint64_t>{4, 8, 16, 32, 64}));
}

TEST(Experiment, FromExistingTrace) {
  std::vector<trace::PacketRecord> v;
  for (int i = 0; i < 100; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{static_cast<std::uint64_t>(i) * 1000};
    p.size = 100;
    v.push_back(p);
  }
  Experiment ex{trace::Trace(std::move(v))};
  EXPECT_EQ(ex.population_size(), 100u);
  EXPECT_DOUBLE_EQ(ex.mean_packet_size(), 100.0);
  EXPECT_DOUBLE_EQ(ex.mean_interarrival_usec(), 1000.0);
}

}  // namespace
}  // namespace netsample::exper
