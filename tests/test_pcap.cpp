#include "pcap/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/headers.h"
#include "util/byteorder.h"

namespace netsample::pcap {
namespace {

trace::PacketRecord rec(std::uint64_t usec, std::uint16_t size,
                        std::uint8_t proto = 6, std::uint16_t sport = 1025,
                        std::uint16_t dport = 23) {
  trace::PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  p.protocol = proto;
  p.src = net::Ipv4Address(132, 249, 1, 5);
  p.dst = net::Ipv4Address(192, 203, 230, 10);
  if (proto == 6 || proto == 17) {
    p.src_port = sport;
    p.dst_port = dport;
  }
  if (proto == 6) p.tcp_flags = 0x18;  // PSH|ACK
  return p;
}

trace::Trace small_trace() {
  return trace::Trace({rec(0, 40), rec(400, 552), rec(1200, 552, 17, 2000, 53),
                       rec(2000, 76), rec(123456789, 1500)});
}

TEST(Pcap, SerializeParseRoundTrip) {
  const auto file = encode(small_trace());
  const auto bytes = serialize(file);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->link_type, kLinkTypeRaw);
  EXPECT_FALSE(parsed->byte_swapped);
  ASSERT_EQ(parsed->records.size(), 5u);
  EXPECT_EQ(parsed->records[0].timestamp.usec, 0u);
  EXPECT_EQ(parsed->records[4].timestamp.usec, 123456789u);
}

TEST(Pcap, EncodeDecodePreservesRecords) {
  const auto original = small_trace();
  const auto decoded = decode(encode(original));
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i], original[i]) << "record " << i;
  }
}

TEST(Pcap, EncodeProducesValidIpChecksums) {
  const auto file = encode(small_trace());
  for (const auto& r : file.records) {
    EXPECT_TRUE(net::ipv4_checksum_ok(r.data));
  }
}

TEST(Pcap, SnaplenTruncatesButPreservesHeaders) {
  const auto file = encode(small_trace(), 64);
  for (const auto& r : file.records) {
    EXPECT_LE(r.data.size(), 64u);
  }
  DecodeStats stats;
  const auto decoded = decode(file, &stats);
  EXPECT_EQ(stats.decoded, 5u);
  // Sizes come from the IP total_length field, not the captured length.
  EXPECT_EQ(decoded[4].size, 1500);
  EXPECT_EQ(decoded[1].dst_port, 23);
}

TEST(Pcap, ParseRejectsGarbage) {
  const std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(parse(junk).has_value());
  std::vector<std::uint8_t> bad_magic(24, 0);
  EXPECT_FALSE(parse(bad_magic).has_value());
}

TEST(Pcap, ParseSurvivesTornTrailingRecord) {
  const auto file = encode(small_trace());
  auto bytes = serialize(file);
  bytes.resize(bytes.size() - 7);  // tear the last record
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records.size(), 4u);
}

TEST(Pcap, ParseByteSwappedFile) {
  // Hand-build a big-endian (swapped relative to LE reader) capture with one
  // raw-IP record.
  const auto wire = net::build_ipv4_packet(
      [] {
        net::Ipv4Header h;
        h.protocol = 1;
        h.src = net::Ipv4Address(1, 2, 3, 4);
        h.dst = net::Ipv4Address(5, 6, 7, 8);
        return h;
      }(),
      std::vector<std::uint8_t>(8, 0));

  std::vector<std::uint8_t> bytes(24 + 16 + wire.size());
  store_be32(bytes.data(), kMagicNative);  // BE writer stores its native magic
  store_be16(bytes.data() + 4, 2);
  store_be16(bytes.data() + 6, 4);
  store_be32(bytes.data() + 16, 65535);           // snaplen
  store_be32(bytes.data() + 20, kLinkTypeRaw);    // linktype
  store_be32(bytes.data() + 24, 12);              // ts_sec
  store_be32(bytes.data() + 28, 500000);          // ts_usec
  store_be32(bytes.data() + 32, static_cast<std::uint32_t>(wire.size()));
  store_be32(bytes.data() + 36, static_cast<std::uint32_t>(wire.size()));
  std::copy(wire.begin(), wire.end(), bytes.begin() + 40);

  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->byte_swapped);
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].timestamp.usec, 12'500'000u);

  const auto t = decode(*parsed);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].protocol, 1);
}

TEST(Pcap, DecodeStripsEthernetFraming) {
  CaptureFile file;
  file.link_type = kLinkTypeEthernet;
  const auto ip = net::build_ipv4_packet(
      [] {
        net::Ipv4Header h;
        h.protocol = 17;
        h.src = net::Ipv4Address(9, 9, 9, 9);
        h.dst = net::Ipv4Address(8, 8, 8, 8);
        return h;
      }(),
      net::build_udp_datagram({.src_port = 2001, .dst_port = 53},
                              net::Ipv4Address(9, 9, 9, 9),
                              net::Ipv4Address(8, 8, 8, 8), {}));
  RawPacket raw;
  raw.timestamp = MicroTime{1000};
  raw.data.assign(14, 0);
  raw.data[12] = 0x08;  // EtherType IPv4
  raw.data[13] = 0x00;
  raw.data.insert(raw.data.end(), ip.begin(), ip.end());
  raw.orig_len = static_cast<std::uint32_t>(raw.data.size());
  file.records.push_back(raw);

  // A non-IPv4 EtherType record should be counted and skipped.
  RawPacket arp = raw;
  arp.data[12] = 0x08;
  arp.data[13] = 0x06;
  file.records.push_back(arp);

  DecodeStats stats;
  const auto t = decode(file, &stats);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(stats.non_ipv4, 1u);
  EXPECT_EQ(t[0].dst_port, 53);
}

TEST(Pcap, DecodeSkipsMalformedRecords) {
  CaptureFile file;
  file.link_type = kLinkTypeRaw;
  RawPacket junk;
  junk.timestamp = MicroTime{0};
  junk.data = {0x45, 0x00};  // truncated IP header
  file.records.push_back(junk);
  DecodeStats stats;
  const auto t = decode(file, &stats);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(stats.malformed, 1u);
}

TEST(Pcap, DecodeSortsOutOfOrderRecords) {
  auto file = encode(small_trace());
  std::swap(file.records[0], file.records[1]);
  DecodeStats stats;
  const auto t = decode(file, &stats);
  EXPECT_EQ(stats.out_of_order, 1u);
  EXPECT_LE(t[0].timestamp.usec, t[1].timestamp.usec);
}

TEST(Pcap, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "netsample_test_roundtrip.pcap").string();
  const auto original = small_trace();
  ASSERT_TRUE(write_trace(path, original).is_ok());

  DecodeStats stats;
  const auto loaded = read_trace(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(stats.decoded, original.size());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]);
  }
  std::remove(path.c_str());
}

TEST(Pcap, ReadMissingFileFails) {
  const auto r = read_file("/nonexistent/definitely/missing.pcap");
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Pcap, FragmentedPacketHasNoPorts) {
  // A non-first fragment must not be parsed for transport headers.
  net::Ipv4Header h;
  h.protocol = 6;
  h.fragment_offset = 100;
  h.src = net::Ipv4Address(1, 1, 1, 1);
  h.dst = net::Ipv4Address(2, 2, 2, 2);
  CaptureFile file;
  file.link_type = kLinkTypeRaw;
  RawPacket raw;
  raw.timestamp = MicroTime{0};
  raw.data = net::build_ipv4_packet(h, std::vector<std::uint8_t>(64, 0xAA));
  raw.orig_len = static_cast<std::uint32_t>(raw.data.size());
  file.records.push_back(raw);

  const auto t = decode(file);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].src_port, 0);
  EXPECT_EQ(t[0].dst_port, 0);
}

}  // namespace
}  // namespace netsample::pcap
