#include "collector/noc.h"

#include <gtest/gtest.h>

namespace netsample::collector {
namespace {

TEST(NocSimulation, ValidatesFleet) {
  NocConfig cfg;
  EXPECT_THROW(NocSimulation{cfg}, std::invalid_argument);
  cfg.nodes.push_back(NodeConfig{"bad", 0.0, 100.0});
  EXPECT_THROW(NocSimulation{cfg}, std::invalid_argument);
  cfg.nodes[0] = NodeConfig{"bad", 1.0, 0.0};
  EXPECT_THROW(NocSimulation{cfg}, std::invalid_argument);
}

TEST(NocSimulation, AggregatesAcrossNodes) {
  const auto cfg = NocSimulation::default_fleet();
  const auto months = NocSimulation(cfg).run();
  ASSERT_EQ(months.size(), static_cast<std::size_t>(cfg.base.months));
  for (const auto& m : months) {
    ASSERT_EQ(m.per_node.size(), cfg.nodes.size());
    double snmp = 0.0, cat = 0.0;
    for (const auto& node : m.per_node) {
      snmp += node.snmp_packets;
      cat += node.categorized_estimate;
    }
    EXPECT_NEAR(m.snmp_total, snmp, 1e-6 * snmp);
    EXPECT_NEAR(m.categorized_total, cat, 1e-6 * std::max(1.0, cat));
  }
}

TEST(NocSimulation, TrafficSharesAreRespected) {
  const auto cfg = NocSimulation::default_fleet();
  const auto months = NocSimulation(cfg).run();
  // Month 0: node offered volumes should be proportional to shares
  // (up to hourly noise, which averages out over 720 hours).
  const auto& m0 = months.front();
  const double big = m0.per_node[0].offered_packets;   // share 3.0
  const double small = m0.per_node.back().offered_packets;  // share 0.3
  EXPECT_NEAR(big / small, 10.0, 1.5);
}

TEST(NocSimulation, BusyNodesSaturateFirst) {
  auto cfg = NocSimulation::default_fleet();
  cfg.base.sampling_deploy_month = -1;  // never deploy: watch saturation
  const auto months = NocSimulation(cfg).run();
  // Mid-simulation, the biggest node should be losing a larger fraction
  // than the smallest node.
  const auto& mid = months[months.size() / 2];
  EXPECT_GT(mid.per_node[0].discrepancy_fraction,
            mid.per_node.back().discrepancy_fraction);
}

TEST(NocSimulation, AggregateGapGrowsThenSamplingCloses) {
  const auto cfg = NocSimulation::default_fleet();
  const auto months = NocSimulation(cfg).run();
  const int deploy = cfg.base.sampling_deploy_month;
  EXPECT_LT(months[2].discrepancy_fraction, 0.05);
  EXPECT_GT(months[static_cast<std::size_t>(deploy) - 1].discrepancy_fraction,
            0.08);
  EXPECT_LT(months[static_cast<std::size_t>(deploy)].discrepancy_fraction,
            0.02);
}

TEST(NocSimulation, DeterministicAcrossRuns) {
  const auto cfg = NocSimulation::default_fleet();
  const auto a = NocSimulation(cfg).run();
  const auto b = NocSimulation(cfg).run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].snmp_total, b[i].snmp_total);
  }
}

TEST(NocSimulation, NodesHaveIndependentNoise) {
  const auto cfg = NocSimulation::default_fleet();
  const auto months = NocSimulation(cfg).run();
  // Two same-share nodes (indices 5 and 6, both 1.0) must not produce
  // identical offered volumes.
  EXPECT_NE(months[0].per_node[5].offered_packets,
            months[0].per_node[6].offered_packets);
}

}  // namespace
}  // namespace netsample::collector
