#include "synth/presets.h"

#include <gtest/gtest.h>

#include <set>

#include "core/targets.h"
#include "trace/summary.h"

namespace netsample::synth {
namespace {

// Calibration tests use a 6-minute slice (~150k packets): statistics are
// stable enough for the tolerances below while keeping the suite fast.
class CalibratedTrace : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TraceModel model(sdsc_minutes_config(6.0, 23));
    trace_ = new trace::Trace(model.generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static trace::Trace* trace_;
};

trace::Trace* CalibratedTrace::trace_ = nullptr;

TEST_F(CalibratedTrace, PacketCountMatchesRate) {
  // ~424 pps * 360 s ~ 153k packets; allow +-15%.
  EXPECT_GT(trace_->size(), 125000u);
  EXPECT_LT(trace_->size(), 180000u);
}

TEST_F(CalibratedTrace, PacketSizeMarginalMatchesTable3) {
  const auto s = trace::summarize_population(trace_->view()).packet_size;
  EXPECT_GE(s.min, 28.0);
  EXPECT_LE(s.max, 1500.0);
  EXPECT_DOUBLE_EQ(s.q1, 40.0);     // paper: 25% = 40
  EXPECT_NEAR(s.median, 76.0, 15);  // paper: 76
  EXPECT_DOUBLE_EQ(s.q3, 552.0);    // paper: 75% = 552
  EXPECT_DOUBLE_EQ(s.p95, 552.0);   // paper: 95% = 552
  EXPECT_NEAR(s.mean, 232.0, 25.0);  // paper: 232
  EXPECT_NEAR(s.stddev, 236.0, 30.0);  // paper: 236
}

TEST_F(CalibratedTrace, InterarrivalMarginalMatchesTable3) {
  const auto s = trace::summarize_population(trace_->view()).interarrival;
  EXPECT_NEAR(s.mean, 2358.0, 240.0);   // paper: 2358
  EXPECT_NEAR(s.stddev, 2734.0, 550.0); // paper: 2734
  EXPECT_DOUBLE_EQ(s.q1, 400.0);        // paper: 25% = 400
  EXPECT_LE(s.p5, 400.0);               // paper: 5% < 400
  EXPECT_NEAR(s.p95, 7600.0, 1600.0);   // paper: 95% = 7600
  EXPECT_GT(s.max, 20000.0);            // paper: max 49600
}

TEST_F(CalibratedTrace, TimestampsAreClockQuantized) {
  for (std::size_t i = 0; i < trace_->size(); i += 97) {
    EXPECT_EQ((*trace_)[i].timestamp.usec % 400, 0u);
  }
}

TEST_F(CalibratedTrace, PerSecondRatesMatchTable2) {
  const auto s = trace::summarize_per_second(trace_->view());
  EXPECT_NEAR(s.packet_rate.mean, 424.0, 60.0);  // paper: 424.2
  EXPECT_NEAR(s.packet_rate.stddev, 85.0, 45.0); // paper: 85.1
  EXPECT_NEAR(s.kilobyte_rate.mean, 98.6, 15.0); // paper: 98.6
  EXPECT_NEAR(s.mean_packet_size.mean, 226.0, 25.0);  // paper: 226.2
}

TEST_F(CalibratedTrace, SizeBinsAreBimodal) {
  const auto h = core::bin_population(trace_->view(), core::Target::kPacketSize);
  const auto p = h.proportions();
  // <41 and >=181 bins each hold a substantial share (ACK mode and data mode).
  EXPECT_GT(p[0], 0.2);
  EXPECT_GT(p[2], 0.25);
  EXPECT_GT(p[1], 0.15);
}

TEST_F(CalibratedTrace, InterarrivalBinsReasonablyEven) {
  const auto h =
      core::bin_population(trace_->view(), core::Target::kInterarrivalTime);
  for (double p : h.proportions()) {
    EXPECT_GT(p, 0.05);  // the paper chose bins for a fairly even spread
    EXPECT_LT(p, 0.50);
  }
}

TEST_F(CalibratedTrace, ProtocolMixIsTcpDominated) {
  std::size_t tcp = 0, udp = 0, icmp = 0;
  for (const auto& p : trace_->packets()) {
    if (p.protocol == 6) ++tcp;
    else if (p.protocol == 17) ++udp;
    else if (p.protocol == 1) ++icmp;
  }
  const double n = static_cast<double>(trace_->size());
  EXPECT_GT(tcp / n, 0.70);
  EXPECT_GT(udp / n, 0.02);
  EXPECT_GT(icmp / n, 0.0);
  EXPECT_LT(icmp / n, 0.05);
}

TEST_F(CalibratedTrace, SourceAddressesAreSdscClassB) {
  for (std::size_t i = 0; i < trace_->size(); i += 199) {
    const auto& p = (*trace_)[i];
    EXPECT_EQ(p.src.octet(0), 132);
    EXPECT_EQ(p.src.octet(1), 249);
  }
}

TEST(TraceModel, DeterministicForSameSeed) {
  TraceModel a(sdsc_minutes_config(0.5, 7));
  TraceModel b(sdsc_minutes_config(0.5, 7));
  const auto ta = a.generate();
  const auto tb = b.generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); i += 13) {
    EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(TraceModel, DifferentSeedsDiffer) {
  const auto ta = TraceModel(sdsc_minutes_config(0.5, 1)).generate();
  const auto tb = TraceModel(sdsc_minutes_config(0.5, 2)).generate();
  EXPECT_NE(ta.size(), tb.size());
}

TEST(TraceModel, ValidatesConfig) {
  auto cfg = sdsc_minutes_config(1.0);
  cfg.flows.clear();
  EXPECT_THROW(TraceModel{cfg}, std::invalid_argument);

  cfg = sdsc_minutes_config(1.0);
  cfg.duration = MicroDuration{0};
  EXPECT_THROW(TraceModel{cfg}, std::invalid_argument);

  cfg = sdsc_minutes_config(1.0);
  cfg.mean_gap_usec = -1.0;
  EXPECT_THROW(TraceModel{cfg}, std::invalid_argument);

  // Within-train gaps exceeding the target mean are infeasible.
  cfg = sdsc_minutes_config(1.0);
  for (auto& f : cfg.flows) f.within_gap_mean_usec = 1e9;
  EXPECT_THROW(TraceModel{cfg}, std::invalid_argument);
}

TEST(TraceModel, BetweenGapDerivation) {
  const TraceModel model(sdsc_minutes_config(1.0));
  // Between-train gaps must exceed the overall mean (they compensate for the
  // tight within-train gaps).
  EXPECT_GT(model.between_gap_mean_usec(), model.config().mean_gap_usec);
}

TEST(Poissonified, PreservesSizeMarginalRemovesBursts) {
  auto bursty_cfg = sdsc_minutes_config(4.0, 5);
  auto poisson_cfg = poissonified(bursty_cfg);
  const auto bursty = TraceModel(bursty_cfg).generate();
  const auto poisson = TraceModel(poisson_cfg).generate();

  // Size marginal preserved (means within a few percent).
  const auto sb = trace::summarize_population(bursty.view()).packet_size;
  const auto sp = trace::summarize_population(poisson.view()).packet_size;
  EXPECT_NEAR(sb.mean, sp.mean, 0.06 * sb.mean);

  // Burstiness removed: the poissonified gap distribution has lower
  // coefficient of variation (quantization keeps it slightly above 1).
  const auto gb = trace::summarize_population(bursty.view()).interarrival;
  const auto gp = trace::summarize_population(poisson.view()).interarrival;
  EXPECT_LT(gp.stddev / gp.mean, gb.stddev / gb.mean);
}

TEST(TraceModel, DisabledModulationFlattensRates) {
  auto cfg = sdsc_minutes_config(4.0, 9);
  cfg.modulation.enabled = false;
  const auto flat = TraceModel(cfg).generate();
  cfg.modulation.enabled = true;
  const auto wavy = TraceModel(cfg).generate();
  const auto sf = trace::summarize_per_second(flat.view()).packet_rate;
  const auto sw = trace::summarize_per_second(wavy.view()).packet_rate;
  EXPECT_LT(sf.stddev, sw.stddev);
}

TEST(FixWest, CalibrationIsPlausibleAndBusier) {
  // The footnote-3 environment: same structural family, higher rate, more
  // bulk traffic.
  const auto sdsc = TraceModel(sdsc_minutes_config(3.0, 29)).generate();
  const auto fixw = TraceModel(fixwest_minutes_config(3.0, 29)).generate();
  EXPECT_GT(fixw.size(), sdsc.size());  // busier aggregate

  const auto s_sdsc = trace::summarize_population(sdsc.view()).packet_size;
  const auto s_fixw = trace::summarize_population(fixw.view()).packet_size;
  // Transit profile carries more bulk -> larger mean packet.
  EXPECT_GT(s_fixw.mean, s_sdsc.mean);
  // Still the era's envelope.
  EXPECT_GE(s_fixw.min, 28.0);
  EXPECT_LE(s_fixw.max, 1500.0);
}

TEST(FixWest, MoreDistinctRemoteNetworks) {
  const auto sdsc = TraceModel(sdsc_minutes_config(2.0, 31)).generate();
  const auto fixw = TraceModel(fixwest_minutes_config(2.0, 31)).generate();
  auto count_nets = [](const trace::Trace& t) {
    std::set<std::uint32_t> nets;
    for (const auto& p : t.packets()) {
      nets.insert(net::NetworkNumber::of(p.dst).prefix());
    }
    return nets.size();
  };
  EXPECT_GT(count_nets(fixw), count_nets(sdsc));
}

TEST(ParetoTrains, DeterministicAndCalibrated) {
  auto cfg = sdsc_minutes_config(2.0, 37);
  cfg.train_length_model = TrainLengthModel::kPareto;
  cfg.pareto_shape = 1.6;
  const auto a = TraceModel(cfg).generate();
  const auto b = TraceModel(cfg).generate();
  ASSERT_EQ(a.size(), b.size());
  // Mean rate stays near the target despite the heavy tail.
  const auto s = trace::summarize_population(a.view()).interarrival;
  EXPECT_NEAR(s.mean, 2358.0, 400.0);
}

TEST(ParetoTrains, InvalidShapeThrows) {
  auto cfg = sdsc_minutes_config(1.0);
  cfg.train_length_model = TrainLengthModel::kPareto;
  cfg.pareto_shape = 1.0;
  EXPECT_THROW(TraceModel{cfg}, std::invalid_argument);
}

TEST(TraceModel, TcpPacketsAreNeverSmallerThanHeaders) {
  // IP(20) + TCP(20): a TCP packet below 40 bytes cannot exist on the wire,
  // and the pcap encoder relies on this invariant to round-trip ports.
  const auto t = TraceModel(sdsc_minutes_config(2.0, 41)).generate();
  for (const auto& p : t.packets()) {
    if (p.protocol == 6) {
      ASSERT_GE(p.size, 40) << "TCP packet smaller than its headers";
    }
    ASSERT_GE(p.size, 28);
  }
}

TEST(TraceModel, ZeroClockTickKeepsMicrosecondResolution) {
  auto cfg = sdsc_minutes_config(0.5, 3);
  cfg.clock_tick = MicroDuration{0};
  const auto t = TraceModel(cfg).generate();
  bool any_unaligned = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].timestamp.usec % 400 != 0) {
      any_unaligned = true;
      break;
    }
  }
  EXPECT_TRUE(any_unaligned);
}

}  // namespace
}  // namespace netsample::synth
