#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.h"

namespace netsample::core {
namespace {

stats::Histogram hist(std::vector<double> edges, std::vector<std::uint64_t> counts) {
  stats::Histogram h(std::move(edges));
  // Fill by adding representative values per bin.
  const auto& e = h.edges();
  for (std::size_t b = 0; b < counts.size(); ++b) {
    double v;
    if (b == 0) {
      v = e.front() - 1.0;
    } else if (b >= e.size()) {
      v = e.back() + 1.0;
    } else {
      v = (e[b - 1] + e[b]) / 2.0;
    }
    if (counts[b] > 0) h.add(v, counts[b]);
  }
  return h;
}

TEST(ScoreCounts, PerfectProportionsGiveZeroPhi) {
  // Sample is an exact 1/10 scale model of the population.
  const std::vector<double> pop = {300, 300, 400};
  const std::vector<double> obs = {30, 30, 40};
  const auto m = score_counts(obs, pop, 0.1);
  EXPECT_DOUBLE_EQ(m.chi2, 0.0);
  EXPECT_DOUBLE_EQ(m.phi, 0.0);
  EXPECT_DOUBLE_EQ(m.cost, 0.0);
  EXPECT_DOUBLE_EQ(m.rcost, 0.0);
  EXPECT_DOUBLE_EQ(m.x2, 0.0);
  EXPECT_DOUBLE_EQ(m.significance, 1.0);
  EXPECT_EQ(m.sample_n, 100u);
  EXPECT_EQ(m.population_n, 1000u);
}

TEST(ScoreCounts, HandComputedChiSquared) {
  // Population proportions 0.5/0.5 over 1000; sample of 100 split 60/40.
  // E = {50, 50}; chi2 = 100/50 + 100/50 = 4.
  const std::vector<double> pop = {500, 500};
  const std::vector<double> obs = {60, 40};
  const auto m = score_counts(obs, pop, 0.1);
  EXPECT_NEAR(m.chi2, 4.0, 1e-12);
  EXPECT_NEAR(m.significance, stats::chi_squared_sf(4.0, 1), 1e-12);
  // phi = sqrt(chi2 / sum(E + O)) = sqrt(4 / 200).
  EXPECT_NEAR(m.phi, std::sqrt(4.0 / 200.0), 1e-12);
  // X2 = 100/2500 + 100/2500 = 0.08; k = sqrt(0.08/2) = 0.2.
  EXPECT_NEAR(m.x2, 0.08, 1e-12);
  EXPECT_NEAR(m.avg_norm_dev, 0.2, 1e-12);
  // cost at population scale: |600-500| + |400-500| = 200; rcost = 20.
  EXPECT_NEAR(m.cost, 200.0, 1e-12);
  EXPECT_NEAR(m.rcost, 20.0, 1e-12);
}

TEST(ScoreCounts, DefaultFractionUsesAchieved) {
  const std::vector<double> pop = {500, 500};
  const std::vector<double> obs = {60, 40};
  // Achieved fraction = 100/1000 = 0.1, same as the explicit test above.
  const auto m = score_counts(obs, pop);
  EXPECT_NEAR(m.cost, 200.0, 1e-12);
  EXPECT_NEAR(m.rcost, 20.0, 1e-12);
}

TEST(ScoreCounts, PhiInsensitiveToSampleSize) {
  // Two samples with identical *proportional* deviation: phi should match
  // closely while chi2 scales with n (the paper's reason for choosing phi).
  const std::vector<double> pop = {500, 500};
  const std::vector<double> small = {60, 40};
  const std::vector<double> large = {600, 400};
  const auto ms = score_counts(small, pop, 0.1);
  const auto ml = score_counts(large, pop, 1.0);
  EXPECT_NEAR(ml.chi2, 10.0 * ms.chi2, 1e-9);
  EXPECT_NEAR(ms.phi, ml.phi, 1e-12);
}

TEST(ScoreCounts, EmptySampleScoresWithoutCrashing) {
  const std::vector<double> pop = {500, 500};
  const std::vector<double> obs = {0, 0};
  const auto m = score_counts(obs, pop, 0.001);
  EXPECT_EQ(m.sample_n, 0u);
  EXPECT_DOUBLE_EQ(m.phi, 0.0);  // no observations, no deviation evidence
  EXPECT_GT(m.cost, 0.0);        // but the provider lost all the traffic
}

TEST(ScoreCounts, ImpossibleBinObservationsExplodePhi) {
  const std::vector<double> pop = {1000, 0};
  const std::vector<double> obs = {90, 10};
  const auto m = score_counts(obs, pop, 0.1);
  EXPECT_GT(m.chi2, 1e10);
  EXPECT_LT(m.significance, 1e-9);
}

TEST(ScoreCounts, Validation) {
  EXPECT_THROW(
      (void)score_counts(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)score_counts(std::vector<double>{1.0, 2.0}, std::vector<double>{0.0, 0.0}),
      std::invalid_argument);
}

TEST(ScoreSample, HistogramInterface) {
  const auto pop = hist({41.0, 181.0}, {300, 300, 400});
  const auto obs = hist({41.0, 181.0}, {30, 30, 40});
  const auto m = score_sample(obs, pop, 0.1);
  EXPECT_DOUBLE_EQ(m.phi, 0.0);
}

TEST(ScoreSample, LayoutMismatchThrows) {
  const auto pop = hist({41.0, 181.0}, {300, 300, 400});
  const auto obs = hist({41.0}, {30, 70});
  EXPECT_THROW((void)score_sample(obs, pop, 0.1), std::invalid_argument);
}

TEST(ScoreCounts, WorseSamplesGetLargerPhi) {
  const std::vector<double> pop = {400, 300, 300};
  const std::vector<double> good = {41, 29, 30};
  const std::vector<double> bad = {70, 20, 10};
  const auto mg = score_counts(good, pop, 0.1);
  const auto mb = score_counts(bad, pop, 0.1);
  EXPECT_LT(mg.phi, mb.phi);
  EXPECT_LT(mg.cost, mb.cost);
  EXPECT_LT(mg.x2, mb.x2);
  EXPECT_GT(mg.significance, mb.significance);
}

/// Parameterized property: for any deviation scale, cost == rcost / fraction
/// and phi stays within [0, ~1].
class MetricScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(MetricScaleTest, InternalConsistency) {
  const double f = GetParam();
  const std::vector<double> pop = {5000, 3000, 2000};
  std::vector<double> obs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    obs[i] = pop[i] * f * (i == 0 ? 1.1 : 0.9);
  }
  const auto m = score_counts(obs, pop, f);
  EXPECT_NEAR(m.rcost, m.cost * f, 1e-9);
  EXPECT_GE(m.phi, 0.0);
  EXPECT_LE(m.phi, 1.0);
  EXPECT_GE(m.significance, 0.0);
  EXPECT_LE(m.significance, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, MetricScaleTest,
                         ::testing::Values(0.5, 0.1, 0.02, 0.004, 0.0005));

}  // namespace
}  // namespace netsample::core
