// Tests for the parallel experiment engine: util::ThreadPool behavior
// (saturation, drain-on-shutdown, exception propagation), deterministic
// per-task seed derivation, and the headline guarantee — an N-thread sweep
// of the full fig06-fig11 grid is bit-identical to the 1-thread sweep.
#include "exper/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exper/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace netsample {
namespace {

// ---------------------------------------------------------------------------
// util::ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(util::ThreadPool::default_thread_count(), 1u);
  util::ThreadPool pool;
  EXPECT_EQ(pool.thread_count(), util::ThreadPool::default_thread_count());
}

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  util::ThreadPool pool(2);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SaturationManyMoreTasksThanThreads) {
  util::ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 200; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&executed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destruction races the queue: most of the 64 tasks are still pending.
  }
  EXPECT_EQ(executed.load(), 64);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  util::ThreadPool pool(2);
  auto ok = pool.submit([]() { return 1; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillWorkers) {
  util::ThreadPool pool(1);
  auto bad = pool.submit([]() { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The single worker survived the throw and still serves tasks.
  auto after = pool.submit([]() { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, ConcurrentSubmitters) {
  util::ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.submit(
            [&sum]() { sum.fetch_add(1, std::memory_order_relaxed); });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 200);
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(DeriveSeed, GoldenValuesPinTheScheme) {
  // Frozen outputs of the splitmix-style chain. If any of these change, the
  // seeding scheme changed and archived experiment outputs are no longer
  // reproducible -- bump them only with a deliberate scheme change.
  EXPECT_EQ(derive_seed({}), 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(derive_seed({0}), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_seed({1}), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(derive_seed({23, 0x5359434eULL, 50, 0}), 0xe074b4da178c28b7ULL);
}

TEST(DeriveSeed, OrderAndValueSensitive) {
  EXPECT_NE(derive_seed({1, 2}), derive_seed({2, 1}));
  EXPECT_NE(derive_seed({0, 0}), derive_seed({0}));
  EXPECT_EQ(derive_seed({5, 6, 7}), derive_seed({5, 6, 7}));
}

TEST(TaskSeed, StablePerCoordinateAndDistinctAcrossCoordinates) {
  const std::uint64_t s =
      exper::task_seed(23, core::Method::kSystematicCount, 64, 3);
  EXPECT_EQ(s, exper::task_seed(23, core::Method::kSystematicCount, 64, 3));

  std::set<std::uint64_t> seeds;
  for (auto m : {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                 core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                 core::Method::kStratifiedTimer}) {
    for (std::uint64_t k : {4ULL, 64ULL, 32768ULL}) {
      for (std::uint64_t i : {0ULL, 1ULL, 7ULL}) {
        seeds.insert(exper::task_seed(23, m, k, i));
        seeds.insert(exper::task_seed(24, m, k, i));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 5u * 3u * 3u * 2u);  // no collisions on the grid
}

TEST(TaskSeed, MethodTagsAreDistinct) {
  std::set<std::uint64_t> tags;
  for (auto m : {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                 core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                 core::Method::kStratifiedTimer}) {
    tags.insert(core::method_seed_tag(m));
  }
  EXPECT_EQ(tags.size(), 5u);
}

// ---------------------------------------------------------------------------
// ParallelRunner determinism
// ---------------------------------------------------------------------------

// A 4-minute synthetic trace keeps the full-grid determinism test tractable
// while preserving every (method, granularity, interval) coordinate of the
// fig06-fig11 grids.
class ParallelRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 4.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }

  /// The union of the paper-figure grids, scaled onto the test trace:
  ///   fig06/07: systematic x ladder(4..32768), min(k,50) replications;
  ///   fig08/09: five methods x ladder(4..16384) x both targets;
  ///   fig10/11: {16,256,4096} x 8 growing intervals x both targets.
  static std::vector<exper::GridTask> figure_grid() {
    std::vector<exper::GridTask> tasks;
    const auto interval = ex_->interval(120.0);
    const double mean_iat = ex_->mean_interarrival_usec();

    exper::CellConfig base;
    base.interval = interval;
    base.mean_interarrival_usec = mean_iat;

    // fig06/07 (identical cells: fig07 plots the means of fig06's boxes).
    for (std::uint64_t k : exper::granularity_ladder(4, 32768)) {
      exper::CellConfig cfg = base;
      cfg.method = core::Method::kSystematicCount;
      cfg.target = core::Target::kPacketSize;
      cfg.granularity = k;
      cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 50));
      tasks.push_back({cfg, 0});
    }

    // fig08/09.
    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (std::uint64_t k : exper::granularity_ladder(4, 16384)) {
        for (auto m :
             {core::Method::kSystematicCount, core::Method::kStratifiedCount,
              core::Method::kSimpleRandom, core::Method::kSystematicTimer,
              core::Method::kStratifiedTimer}) {
          exper::CellConfig cfg = base;
          cfg.method = m;
          cfg.target = target;
          cfg.granularity = k;
          cfg.replications = 5;
          tasks.push_back({cfg, 0});
        }
      }
    }

    // fig10/11: eight growing windows (shortest still > 4096 packets so the
    // coarsest fraction keeps non-empty replications).
    const std::vector<double> seconds = {12, 18, 27, 40, 60, 90, 140, 220};
    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (std::size_t i = 0; i < seconds.size(); ++i) {
        for (std::uint64_t k : {16ULL, 256ULL, 4096ULL}) {
          exper::CellConfig cfg = base;
          cfg.method = core::Method::kSystematicCount;
          cfg.target = target;
          cfg.granularity = k;
          cfg.interval =
              ex_->full().prefix_duration(MicroDuration::from_seconds(seconds[i]));
          cfg.replications = 5;
          tasks.push_back({cfg, static_cast<std::uint64_t>(i)});
        }
      }
    }
    return tasks;
  }

  static void expect_bit_identical(const std::vector<exper::CellResult>& a,
                                   const std::vector<exper::CellResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].replications.size(), b[i].replications.size())
          << "cell " << i;
      EXPECT_EQ(a[i].config.base_seed, b[i].config.base_seed) << "cell " << i;
      for (std::size_t r = 0; r < a[i].replications.size(); ++r) {
        const auto& ma = a[i].replications[r];
        const auto& mb = b[i].replications[r];
        // EXPECT_EQ on doubles is exact equality: the guarantee is
        // bit-identical, not approximately equal.
        EXPECT_EQ(ma.chi2, mb.chi2) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.dof, mb.dof) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.significance, mb.significance) << "cell " << i;
        EXPECT_EQ(ma.cost, mb.cost) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.rcost, mb.rcost) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.x2, mb.x2) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.avg_norm_dev, mb.avg_norm_dev) << "cell " << i;
        EXPECT_EQ(ma.phi, mb.phi) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.sample_n, mb.sample_n) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.population_n, mb.population_n) << "cell " << i;
      }
    }
  }

  static exper::Experiment* ex_;
};

exper::Experiment* ParallelRunnerTest::ex_ = nullptr;

TEST_F(ParallelRunnerTest, FullFigureGridBitIdenticalAcrossThreadCounts) {
  const auto tasks = figure_grid();
  exper::ParallelRunner serial(1);
  exper::ParallelRunner threaded(4);
  ASSERT_EQ(serial.jobs(), 1);
  ASSERT_EQ(threaded.jobs(), 4);
  const auto a = serial.run(tasks, 23);
  const auto b = threaded.run(tasks, 23);
  expect_bit_identical(a, b);
}

TEST_F(ParallelRunnerTest, SweepHelpersMatchAcrossThreadCounts) {
  exper::CellConfig base;
  base.method = core::Method::kStratifiedCount;
  base.target = core::Target::kPacketSize;
  base.interval = ex_->interval(60.0);
  base.mean_interarrival_usec = ex_->mean_interarrival_usec();
  base.replications = 5;
  base.base_seed = 99;

  const std::vector<std::uint64_t> ks = {4, 32, 256};
  exper::ParallelRunner serial(1);
  exper::ParallelRunner threaded(3);
  expect_bit_identical(serial.sweep_granularity(base, ks),
                       threaded.sweep_granularity(base, ks));
  const std::vector<double> secs = {15.0, 60.0, 180.0};
  expect_bit_identical(serial.sweep_interval(base, ex_->full(), secs),
                       threaded.sweep_interval(base, ex_->full(), secs));
}

TEST_F(ParallelRunnerTest, ResultsComeBackInTaskOrder) {
  exper::CellConfig base;
  base.method = core::Method::kSystematicCount;
  base.target = core::Target::kPacketSize;
  base.interval = ex_->interval(60.0);
  base.mean_interarrival_usec = ex_->mean_interarrival_usec();
  base.replications = 3;

  const std::vector<std::uint64_t> ks = {512, 4, 64, 8192, 2};
  exper::ParallelRunner runner(4);
  const auto cells = runner.sweep_granularity(base, ks);
  ASSERT_EQ(cells.size(), ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(cells[i].config.granularity, ks[i]);
  }
}

TEST_F(ParallelRunnerTest, DistinctCellsGetDistinctDerivedSeeds) {
  exper::CellConfig base;
  base.method = core::Method::kStratifiedCount;
  base.target = core::Target::kPacketSize;
  base.interval = ex_->interval(30.0);
  base.mean_interarrival_usec = ex_->mean_interarrival_usec();
  base.replications = 2;

  exper::ParallelRunner runner(2);
  const auto cells = runner.sweep_granularity(base, {4, 8, 16, 32});
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) seeds.insert(c.config.base_seed);
  EXPECT_EQ(seeds.size(), 4u);
}

TEST_F(ParallelRunnerTest, RunCellExceptionPropagates) {
  exper::GridTask bad;  // empty interval -> run_cell throws
  bad.config.method = core::Method::kSystematicCount;
  bad.config.replications = 3;
  exper::ParallelRunner runner(2);
  EXPECT_THROW((void)runner.run({bad}, 1), std::invalid_argument);
  exper::ParallelRunner serial(1);
  EXPECT_THROW((void)serial.run({bad}, 1), std::invalid_argument);
}

TEST(ParallelRunner, ZeroJobsSelectsHardwareConcurrency) {
  exper::ParallelRunner runner(0);
  EXPECT_EQ(runner.jobs(),
            static_cast<int>(util::ThreadPool::default_thread_count()));
}

// ---------------------------------------------------------------------------
// Fault-tolerance policies (abort / skip / retry)
// ---------------------------------------------------------------------------

class ParallelPolicyTest : public ParallelRunnerTest {
 protected:
  /// A small healthy grid; cell index 2 is the one the fault injector
  /// targets in the policy tests.
  static std::vector<exper::GridTask> small_grid() {
    std::vector<exper::GridTask> tasks;
    for (std::uint64_t k : {8ULL, 16ULL, 32ULL, 64ULL, 128ULL}) {
      exper::GridTask t;
      t.config.method = core::Method::kSystematicCount;
      t.config.target = core::Target::kPacketSize;
      t.config.granularity = k;
      t.config.interval = ex_->interval(60.0);
      t.config.mean_interarrival_usec = ex_->mean_interarrival_usec();
      t.config.replications = 3;
      tasks.push_back(t);
    }
    return tasks;
  }
};

TEST_F(ParallelPolicyTest, SkipQuarantinesFailedCellOthersUnchanged) {
  const auto tasks = small_grid();
  exper::ParallelRunner serial(1);
  const auto reference = serial.run(tasks, 23);

  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kSkip;
  opts.fault_injector = [](std::size_t index, int) {
    return index == 2 ? Status(StatusCode::kInternal, "injected")
                      : Status::ok();
  };
  const auto report = serial.run(tasks, 23, opts);
  ASSERT_EQ(report.cells.size(), tasks.size());
  EXPECT_EQ(report.ok_count(), tasks.size() - 1);
  EXPECT_EQ(report.quarantined(), std::vector<std::size_t>{2});
  EXPECT_EQ(report.cells[2].status.code(), StatusCode::kInternal);
  EXPECT_EQ(report.first_failure().code(), StatusCode::kInternal);
  // The healthy cells' numbers are untouched by their neighbor's failure.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i == 2) continue;
    ASSERT_EQ(report.cells[i].result.replications.size(),
              reference[i].replications.size());
    for (std::size_t r = 0; r < reference[i].replications.size(); ++r) {
      EXPECT_EQ(report.cells[i].result.replications[r].phi,
                reference[i].replications[r].phi)
          << "cell " << i << " rep " << r;
    }
  }
}

TEST_F(ParallelPolicyTest, RetryCompletesAllCellsAfterTransientFailure) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kRetry;
  opts.max_attempts = 3;
  // Cell 2 fails its first attempt only — a transient fault.
  opts.fault_injector = [](std::size_t index, int attempt) {
    return index == 2 && attempt == 0
               ? Status(StatusCode::kInternal, "transient")
               : Status::ok();
  };
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.cells[2].attempts, 2);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i != 2) EXPECT_EQ(report.cells[i].attempts, 1) << "cell " << i;
  }
  // The retry ran under a different derived seed than attempt 0 would have.
  const auto reference = serial.run(tasks, 23);
  EXPECT_NE(report.cells[2].result.config.base_seed,
            reference[2].config.base_seed);
}

TEST_F(ParallelPolicyTest, RetryExhaustionQuarantinesWithAttemptCount) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kRetry;
  opts.max_attempts = 3;
  opts.fault_injector = [](std::size_t index, int) {
    return index == 2 ? Status(StatusCode::kInternal, "permanent")
                      : Status::ok();
  };
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  EXPECT_EQ(report.ok_count(), tasks.size() - 1);
  EXPECT_EQ(report.cells[2].attempts, 3);
  EXPECT_EQ(report.cells[2].status.code(), StatusCode::kInternal);
}

TEST_F(ParallelPolicyTest, AttemptLogRecordsEveryAttemptWithSeedAndTiming) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kRetry;
  opts.max_attempts = 3;
  // Cell 2 fails twice, then succeeds on its third attempt.
  opts.fault_injector = [](std::size_t index, int attempt) {
    return index == 2 && attempt < 2
               ? Status(StatusCode::kInternal, "transient")
               : Status::ok();
  };
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  ASSERT_TRUE(report.all_ok());

  const auto& cell = report.cells[2];
  ASSERT_EQ(cell.attempts, 3);
  ASSERT_EQ(cell.attempt_log.size(), 3u)
      << "every executed attempt must be logged, not just the last";
  // Attempt 0 ran with the cell's coordinate seed; retries with per-attempt
  // derived seeds — the log records what each attempt actually used.
  const std::uint64_t cell_seed = exper::task_seed(
      23, tasks[2].config.method, tasks[2].config.granularity, 0);
  EXPECT_EQ(cell.attempt_log[0].seed, cell_seed);
  EXPECT_EQ(cell.attempt_log[1].seed, derive_seed({cell_seed, 1}));
  EXPECT_EQ(cell.attempt_log[2].seed, derive_seed({cell_seed, 2}));
  EXPECT_EQ(cell.attempt_log[0].status.code(), StatusCode::kInternal);
  EXPECT_EQ(cell.attempt_log[1].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(cell.attempt_log[2].status.is_ok());
  for (const auto& rec : cell.attempt_log) {
    EXPECT_GE(rec.wall_seconds, 0.0);
    EXPECT_GE(rec.cpu_seconds, 0.0);
  }
  EXPECT_GT(cell.attempt_log[2].wall_seconds, 0.0)
      << "the successful attempt ran a real cell";

  // Healthy cells log exactly their one successful attempt.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i == 2) continue;
    ASSERT_EQ(report.cells[i].attempt_log.size(), 1u) << "cell " << i;
    EXPECT_TRUE(report.cells[i].attempt_log[0].status.is_ok());
    EXPECT_EQ(report.cells[i].attempt_log[0].status.code(),
              report.cells[i].status.code());
  }
}

TEST_F(ParallelPolicyTest, AttemptLogKeepsFailuresOnExhaustion) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kRetry;
  opts.max_attempts = 3;
  opts.fault_injector = [](std::size_t index, int) {
    return index == 2 ? Status(StatusCode::kInternal, "permanent")
                      : Status::ok();
  };
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  const auto& cell = report.cells[2];
  ASSERT_EQ(cell.attempt_log.size(), 3u);
  for (const auto& rec : cell.attempt_log) {
    EXPECT_EQ(rec.status.code(), StatusCode::kInternal);
  }
  // The last logged attempt is the quarantined status.
  EXPECT_EQ(cell.attempt_log.back().status.code(), cell.status.code());
}

TEST_F(ParallelPolicyTest, RetryAttemptsAreDeterministic) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kRetry;
  opts.fault_injector = [](std::size_t index, int attempt) {
    return index == 2 && attempt == 0
               ? Status(StatusCode::kInternal, "transient")
               : Status::ok();
  };
  exper::ParallelRunner serial(1);
  exper::ParallelRunner threaded(4);
  const auto a = serial.run(tasks, 23, opts);
  const auto b = threaded.run(tasks, 23, opts);
  ASSERT_TRUE(a.all_ok());
  ASSERT_TRUE(b.all_ok());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& ra = a.cells[i].result.replications;
    const auto& rb = b.cells[i].result.replications;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].phi, rb[r].phi) << "cell " << i << " rep " << r;
    }
  }
}

TEST_F(ParallelPolicyTest, AbortCancelsCellsAfterFirstFailureSerially) {
  const auto tasks = small_grid();
  exper::RunOptions opts;  // kAbort default
  opts.fault_injector = [](std::size_t index, int) {
    return index == 2 ? Status(StatusCode::kInternal, "fatal")
                      : Status::ok();
  };
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  EXPECT_TRUE(report.cells[0].status.is_ok());
  EXPECT_TRUE(report.cells[1].status.is_ok());
  EXPECT_EQ(report.cells[2].status.code(), StatusCode::kInternal);
  // Serial execution is ordered, so everything after the failure was
  // cancelled before starting.
  EXPECT_EQ(report.cells[3].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(report.cells[4].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(report.cells[3].attempts, 0);
}

TEST_F(ParallelPolicyTest, ExpiredCellTimeoutReportsDeadlineExceeded) {
  const auto tasks = small_grid();
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kSkip;
  opts.cell_timeout_seconds = 1e-12;  // expired before the first poll
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  EXPECT_EQ(report.ok_count(), 0u);
  for (const auto& c : report.cells) {
    EXPECT_EQ(c.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(ParallelPolicyTest, SweepCancellationShortCircuitsRemainingCells) {
  const auto tasks = small_grid();
  util::CancelToken sweep;
  sweep.cancel();  // cancelled before the sweep even starts
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kSkip;
  opts.cancel = &sweep;
  exper::ParallelRunner serial(1);
  const auto report = serial.run(tasks, 23, opts);
  EXPECT_EQ(report.ok_count(), 0u);
  for (const auto& c : report.cells) {
    EXPECT_EQ(c.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(c.attempts, 0);
  }
}

TEST_F(ParallelPolicyTest, OnCellDoneFiresInTaskOrder) {
  const auto tasks = small_grid();
  std::vector<std::size_t> order;
  exper::RunOptions opts;
  opts.on_cell_done = [&order](std::size_t index, const Status& s) {
    EXPECT_TRUE(s.is_ok());
    order.push_back(index);
  };
  exper::ParallelRunner threaded(4);
  ASSERT_TRUE(threaded.run(tasks, 23, opts).all_ok());
  ASSERT_EQ(order.size(), tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace netsample
