#include "util/args.h"

#include <gtest/gtest.h>

namespace netsample {
namespace {

ArgParser parser() {
  ArgParser p;
  p.add_flag("k", "K", "granularity", "50");
  p.add_flag("out", "FILE", "output path");
  p.add_flag("verbose", "", "chatty mode");
  p.add_flag("rate", "R", "a real number", "1.5");
  return p;
}

TEST(ArgParser, PositionalsAndFlags) {
  auto p = parser();
  ASSERT_TRUE(p.parse({"trace.pcap", "--k", "100", "--verbose"}).is_ok());
  ASSERT_EQ(p.positionals().size(), 1u);
  EXPECT_EQ(p.positionals()[0], "trace.pcap");
  EXPECT_EQ(p.get_int("k"), 100);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, DefaultsApply) {
  auto p = parser();
  ASSERT_TRUE(p.parse({}).is_ok());
  EXPECT_EQ(p.get_int("k"), 50);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_TRUE(p.has("k"));
  EXPECT_FALSE(p.has("out"));
}

TEST(ArgParser, EqualsSyntax) {
  auto p = parser();
  ASSERT_TRUE(p.parse({"--k=128", "--out=x.pcap"}).is_ok());
  EXPECT_EQ(p.get_int("k"), 128);
  EXPECT_EQ(p.get_string("out"), "x.pcap");
}

TEST(ArgParser, UnknownFlagRejected) {
  auto p = parser();
  const auto s = p.parse({"--bogus", "1"});
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ArgParser, MissingValueRejected) {
  auto p = parser();
  EXPECT_FALSE(p.parse({"--out"}).is_ok());
}

TEST(ArgParser, SwitchWithValueRejected) {
  auto p = parser();
  EXPECT_FALSE(p.parse({"--verbose=yes"}).is_ok());
}

TEST(ArgParser, MissingRequiredThrowsOnAccess) {
  auto p = parser();
  ASSERT_TRUE(p.parse({}).is_ok());
  EXPECT_THROW((void)p.get_string("out"), std::invalid_argument);
}

TEST(ArgParser, BadNumberThrows) {
  auto p = parser();
  ASSERT_TRUE(p.parse({"--k", "abc"}).is_ok());
  EXPECT_THROW((void)p.get_int("k"), std::invalid_argument);
  ASSERT_TRUE(p.parse({"--rate", "1.5x"}).is_ok());
  EXPECT_THROW((void)p.get_double("rate"), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbersParse) {
  auto p = parser();
  ASSERT_TRUE(p.parse({"--k", "-3", "--rate", "-0.5"}).is_ok());
  EXPECT_EQ(p.get_int("k"), -3);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), -0.5);
}

TEST(ArgParser, HelpListsFlags) {
  auto p = parser();
  const auto h = p.help();
  EXPECT_NE(h.find("--k"), std::string::npos);
  EXPECT_NE(h.find("default: 50"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
}

TEST(ArgParser, ReparseClearsState) {
  auto p = parser();
  ASSERT_TRUE(p.parse({"a", "--k", "9"}).is_ok());
  ASSERT_TRUE(p.parse({"b"}).is_ok());
  EXPECT_EQ(p.positionals().size(), 1u);
  EXPECT_EQ(p.positionals()[0], "b");
  EXPECT_EQ(p.get_int("k"), 50);  // back to default
}

}  // namespace
}  // namespace netsample
