// Tests for the streaming scorer's SPSC ring: FIFO order, the bounded
// capacity + backpressure contract (lossless blocking push, counted
// try_push rejections), cancellation unwinding, close/drain semantics, and
// a two-thread stress run.
#include "stream/ring.h"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace netsample::stream {
namespace {

TEST(SpscRing, ZeroCapacityThrows) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i);
  ring.close();
  for (int i = 0; i < 5; ++i) {
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.pop().has_value());  // closed and drained
}

TEST(SpscRing, TryPushRefusesWhenFullAndCountsRejections) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.stats().rejected_pushes, 2u);
  EXPECT_EQ(ring.stats().pushes, 2u);
}

TEST(SpscRing, OccupancyNeverExceedsCapacity) {
  SpscRing<int> ring(3);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ring.push(i);
    ring.close();
  });
  int expected = 0;
  while (auto v = ring.pop()) {
    EXPECT_EQ(*v, expected++);
    EXPECT_LE(ring.size(), 3u);
  }
  producer.join();
  EXPECT_EQ(expected, 100);
  EXPECT_LE(ring.stats().occupancy_peak, 3u);
  EXPECT_EQ(ring.stats().pushes, 100u);
  EXPECT_EQ(ring.stats().pops, 100u);
}

TEST(SpscRing, PushBlocksUntilPopMakesRoom) {
  SpscRing<int> ring(1);
  ring.push(1);
  std::thread producer([&] { ring.push(2); });  // blocks: ring is full
  // Give the producer a moment to actually block, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(ring.size(), 1u);
  auto first = ring.pop();
  producer.join();
  auto second = ring.pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*second, 2);
  EXPECT_GE(ring.stats().blocked_pushes, 1u);
}

TEST(SpscRing, CancelledTokenUnblocksPush) {
  SpscRing<int> ring(1);
  ring.push(1);
  util::CancelToken cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.cancel();
  });
  try {
    ring.push(2, &cancel);
    canceller.join();
    FAIL() << "push into a full ring with a cancelled token must throw";
  } catch (const StatusError& e) {
    canceller.join();
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
}

TEST(SpscRing, DeadlineUnblocksPop) {
  SpscRing<int> ring(1);
  util::CancelToken cancel;
  cancel.set_deadline_after(0.05);
  try {
    (void)ring.pop(&cancel);  // empty, never closed: waits until deadline
    FAIL() << "pop from an empty ring must throw once the deadline passes";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(SpscRing, PushAfterCloseIsALogicError) {
  SpscRing<int> ring(4);
  ring.close();
  ring.close();  // idempotent
  EXPECT_TRUE(ring.closed());
  EXPECT_THROW(ring.push(1), std::logic_error);
  EXPECT_THROW((void)ring.try_push(1), std::logic_error);
}

TEST(SpscRing, CloseUnblocksAWaitingConsumer) {
  SpscRing<int> ring(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ring.close();
  });
  EXPECT_FALSE(ring.pop().has_value());
  closer.join();
}

TEST(SpscRing, TwoThreadStressPreservesOrderAndCounts) {
  constexpr int kItems = 20000;
  SpscRing<int> ring(16);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  long long sum = 0;
  int expected = 0;
  while (auto v = ring.pop()) {
    ASSERT_EQ(*v, expected++);
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(s.pops, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(s.rejected_pushes, 0u);
  EXPECT_LE(s.occupancy_peak, 16u);
}

}  // namespace
}  // namespace netsample::stream
