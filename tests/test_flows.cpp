#include "trace/flows.h"

#include <gtest/gtest.h>

#include <set>

#include "synth/presets.h"

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, net::Ipv4Address src, net::Ipv4Address dst,
                 std::uint16_t sport, std::uint16_t dport,
                 std::uint8_t proto = 6, std::uint16_t size = 100,
                 std::uint8_t flags = 0x10) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.protocol = proto;
  p.size = size;
  p.tcp_flags = flags;
  return p;
}

const net::Ipv4Address kA(10, 0, 0, 1);
const net::Ipv4Address kB(10, 0, 0, 2);
const net::Ipv4Address kC(10, 0, 0, 3);

TEST(FlowTable, GroupsByFiveTuple) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(0, kA, kB, 1025, 23));
  table.offer(pkt(1000, kA, kB, 1025, 23, 6, 200));
  table.offer(pkt(2000, kA, kB, 1026, 23));  // different src port
  table.offer(pkt(3000, kA, kC, 1025, 23));  // different dst
  EXPECT_EQ(table.active_flows(), 3u);
  table.flush();
  EXPECT_EQ(table.expired().size(), 3u);

  const auto top = table.top_by_packets(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].packets, 2u);
  EXPECT_EQ(top[0].bytes, 300u);
}

TEST(FlowTable, TracksTimesAndFlags) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(1000, kA, kB, 1025, 23, 6, 40, 0x02));  // SYN
  table.offer(pkt(5000, kA, kB, 1025, 23, 6, 100, 0x18));
  table.offer(pkt(9000, kA, kB, 1025, 23, 6, 40, 0x11));  // FIN|ACK
  table.flush();
  ASSERT_EQ(table.expired().size(), 1u);
  const auto& f = table.expired()[0];
  EXPECT_EQ(f.first_seen.usec, 1000u);
  EXPECT_EQ(f.last_seen.usec, 9000u);
  EXPECT_EQ(f.duration().usec, 8000);
  EXPECT_TRUE(f.saw_syn);
  EXPECT_TRUE(f.saw_fin);
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 60.0);
}

TEST(FlowTable, IdleTimeoutExpiresFlows) {
  FlowTable table(MicroDuration::from_seconds(1));
  table.offer(pkt(0, kA, kB, 1025, 23));
  // 5 seconds later (far beyond timeout + amortization slack).
  table.offer(pkt(5'000'000, kA, kC, 1025, 23));
  EXPECT_EQ(table.expired().size(), 1u);
  EXPECT_EQ(table.active_flows(), 1u);
}

TEST(FlowTable, ContinuingTrafficKeepsFlowAlive) {
  FlowTable table(MicroDuration::from_seconds(1));
  for (int i = 0; i < 100; ++i) {
    table.offer(pkt(static_cast<std::uint64_t>(i) * 500'000, kA, kB, 1025, 23));
  }
  table.flush();
  EXPECT_EQ(table.expired().size(), 1u);
  EXPECT_EQ(table.expired()[0].packets, 100u);
}

TEST(FlowTable, RejectsTimeTravel) {
  FlowTable table(MicroDuration::from_seconds(1));
  table.offer(pkt(1000, kA, kB, 1, 2));
  EXPECT_THROW(table.offer(pkt(500, kA, kB, 1, 2)), std::invalid_argument);
}

TEST(FlowTable, RejectsBadTimeout) {
  EXPECT_THROW(FlowTable(MicroDuration{0}), std::invalid_argument);
  EXPECT_THROW(FlowTable(MicroDuration{-5}), std::invalid_argument);
}

TEST(FlowTable, StatsAggregate) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(0, kA, kB, 1, 2, 6, 100));
  table.offer(pkt(1'000'000, kA, kB, 1, 2, 6, 100));
  table.offer(pkt(2'000'000, kA, kC, 3, 4, 17, 50));
  table.flush();
  const auto s = table.stats();
  EXPECT_EQ(s.flows, 2u);
  EXPECT_EQ(s.packets, 3u);
  EXPECT_EQ(s.bytes, 250u);
  EXPECT_DOUBLE_EQ(s.mean_flow_packets, 1.5);
  EXPECT_NEAR(s.mean_flow_duration_sec, 0.5, 1e-9);
}

TEST(FlowTable, RunDrivesWholeView) {
  // The synthetic workload should decompose into a plausible flow structure:
  // more than one packet per flow on average (trains), flows spanning
  // multiple networks.
  synth::TraceModel model(synth::sdsc_minutes_config(1.0, 77));
  const auto t = model.generate();
  FlowTable table(MicroDuration::from_seconds(30));
  table.run(t.view());
  const auto s = table.stats();
  EXPECT_EQ(s.packets, t.size());
  EXPECT_GT(s.flows, 100u);
  EXPECT_GT(s.mean_flow_packets, 1.5);
  const auto top = table.top_by_packets(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_GE(top[0].packets, top[4].packets);
}

TEST(FlowKeyHash, DistinctKeysRarelyCollide) {
  FlowKeyHash h;
  std::set<std::size_t> hashes;
  int total = 0;
  for (int i = 0; i < 30; ++i) {
    for (std::uint16_t port : {23, 25, 119}) {
      FlowKey k{net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)),
                kB, static_cast<std::uint16_t>(1024 + i), port, 6};
      hashes.insert(h(k));
      ++total;
    }
  }
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(total));
}

// Regression for the mix64-based hash: structured 5-tuple populations —
// exactly what real traffic looks like (sequential client ports, /24
// scans, one busy server) — must spread across buckets like random keys
// would. The earlier multiply-add chain failed this badly: its low output
// bits barely depended on the address words, so power-of-two bucket counts
// collapsed structured populations into a few buckets.
TEST(FlowKeyHash, StructuredPopulationsSpreadAcrossBuckets) {
  FlowKeyHash h;
  const std::size_t kBuckets = 256;  // power of two: uses only low bits

  const auto chi2_ok = [&](const std::vector<FlowKey>& keys) {
    std::vector<int> bucket(kBuckets, 0);
    for (const auto& k : keys) ++bucket[h(k) % kBuckets];
    const double expect =
        static_cast<double>(keys.size()) / static_cast<double>(kBuckets);
    double chi2 = 0.0;
    for (int c : bucket) {
      const double d = static_cast<double>(c) - expect;
      chi2 += d * d / expect;
    }
    // 255 dof: mean 255, sd ~22.6. Anything under mean + 5 sd is healthy;
    // the pre-fix hash scored in the thousands on these populations.
    return chi2 < 255.0 + 5.0 * 22.6;
  };

  // One busy server, sequential ephemeral client ports.
  std::vector<FlowKey> seq_ports;
  for (std::uint16_t port = 1024; port < 1024 + 2048; ++port) {
    seq_ports.push_back({kA, kB, port, 80, 6});
  }
  EXPECT_TRUE(chi2_ok(seq_ports)) << "sequential source ports";

  // A /24 scan: every destination host in one subnet, fixed ports.
  std::vector<FlowKey> scan;
  for (int net = 0; net < 8; ++net) {
    for (int host = 0; host < 256; ++host) {
      scan.push_back({kA,
                      net::Ipv4Address(192, 168, static_cast<std::uint8_t>(net),
                                       static_cast<std::uint8_t>(host)),
                      31337, 443, 6});
    }
  }
  EXPECT_TRUE(chi2_ok(scan)) << "/24 destination scan";

  // Sequential source addresses (DHCP pool), fixed everything else.
  std::vector<FlowKey> pool;
  for (int i = 0; i < 2048; ++i) {
    pool.push_back({net::Ipv4Address(10, 1, static_cast<std::uint8_t>(i / 256),
                                     static_cast<std::uint8_t>(i % 256)),
                    kB, 5000, 25, 17});
  }
  EXPECT_TRUE(chi2_ok(pool)) << "sequential source addresses";
}

// Avalanche: flipping any single input bit must flip close to half the
// output bits on average. The multiply-add chain moved only a handful for
// port-bit flips; the SplitMix64 finalizer is designed for exactly this.
TEST(FlowKeyHash, SingleBitFlipsAvalanche) {
  FlowKeyHash h;
  const FlowKey base{kA, kB, 1024, 80, 6};
  const std::size_t base_hash = h(base);

  double total_flipped = 0.0;
  int flips = 0;
  const auto probe = [&](const FlowKey& k) {
    const std::size_t x = base_hash ^ h(k);
    total_flipped += __builtin_popcountll(x);
    ++flips;
    // Every single-bit change must disturb the hash substantially — at
    // least 16 of 64 bits even in the worst case.
    EXPECT_GE(__builtin_popcountll(x), 16);
  };

  for (int b = 0; b < 16; ++b) {
    FlowKey k = base;
    k.src_port = static_cast<std::uint16_t>(k.src_port ^ (1u << b));
    probe(k);
    k = base;
    k.dst_port = static_cast<std::uint16_t>(k.dst_port ^ (1u << b));
    probe(k);
  }
  for (int b = 0; b < 32; ++b) {
    FlowKey k = base;
    k.src = net::Ipv4Address(k.src.value() ^ (1u << b));
    probe(k);
    k = base;
    k.dst = net::Ipv4Address(k.dst.value() ^ (1u << b));
    probe(k);
  }
  for (int b = 0; b < 8; ++b) {
    FlowKey k = base;
    k.protocol = static_cast<std::uint8_t>(k.protocol ^ (1u << b));
    probe(k);
  }
  // Mean across all flips should hover near 32 bits.
  const double mean = total_flipped / flips;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

}  // namespace
}  // namespace netsample::trace
