#include "trace/flows.h"

#include <gtest/gtest.h>

#include <set>

#include "synth/presets.h"

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, net::Ipv4Address src, net::Ipv4Address dst,
                 std::uint16_t sport, std::uint16_t dport,
                 std::uint8_t proto = 6, std::uint16_t size = 100,
                 std::uint8_t flags = 0x10) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.protocol = proto;
  p.size = size;
  p.tcp_flags = flags;
  return p;
}

const net::Ipv4Address kA(10, 0, 0, 1);
const net::Ipv4Address kB(10, 0, 0, 2);
const net::Ipv4Address kC(10, 0, 0, 3);

TEST(FlowTable, GroupsByFiveTuple) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(0, kA, kB, 1025, 23));
  table.offer(pkt(1000, kA, kB, 1025, 23, 6, 200));
  table.offer(pkt(2000, kA, kB, 1026, 23));  // different src port
  table.offer(pkt(3000, kA, kC, 1025, 23));  // different dst
  EXPECT_EQ(table.active_flows(), 3u);
  table.flush();
  EXPECT_EQ(table.expired().size(), 3u);

  const auto top = table.top_by_packets(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].packets, 2u);
  EXPECT_EQ(top[0].bytes, 300u);
}

TEST(FlowTable, TracksTimesAndFlags) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(1000, kA, kB, 1025, 23, 6, 40, 0x02));  // SYN
  table.offer(pkt(5000, kA, kB, 1025, 23, 6, 100, 0x18));
  table.offer(pkt(9000, kA, kB, 1025, 23, 6, 40, 0x11));  // FIN|ACK
  table.flush();
  ASSERT_EQ(table.expired().size(), 1u);
  const auto& f = table.expired()[0];
  EXPECT_EQ(f.first_seen.usec, 1000u);
  EXPECT_EQ(f.last_seen.usec, 9000u);
  EXPECT_EQ(f.duration().usec, 8000);
  EXPECT_TRUE(f.saw_syn);
  EXPECT_TRUE(f.saw_fin);
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 60.0);
}

TEST(FlowTable, IdleTimeoutExpiresFlows) {
  FlowTable table(MicroDuration::from_seconds(1));
  table.offer(pkt(0, kA, kB, 1025, 23));
  // 5 seconds later (far beyond timeout + amortization slack).
  table.offer(pkt(5'000'000, kA, kC, 1025, 23));
  EXPECT_EQ(table.expired().size(), 1u);
  EXPECT_EQ(table.active_flows(), 1u);
}

TEST(FlowTable, ContinuingTrafficKeepsFlowAlive) {
  FlowTable table(MicroDuration::from_seconds(1));
  for (int i = 0; i < 100; ++i) {
    table.offer(pkt(static_cast<std::uint64_t>(i) * 500'000, kA, kB, 1025, 23));
  }
  table.flush();
  EXPECT_EQ(table.expired().size(), 1u);
  EXPECT_EQ(table.expired()[0].packets, 100u);
}

TEST(FlowTable, RejectsTimeTravel) {
  FlowTable table(MicroDuration::from_seconds(1));
  table.offer(pkt(1000, kA, kB, 1, 2));
  EXPECT_THROW(table.offer(pkt(500, kA, kB, 1, 2)), std::invalid_argument);
}

TEST(FlowTable, RejectsBadTimeout) {
  EXPECT_THROW(FlowTable(MicroDuration{0}), std::invalid_argument);
  EXPECT_THROW(FlowTable(MicroDuration{-5}), std::invalid_argument);
}

TEST(FlowTable, StatsAggregate) {
  FlowTable table(MicroDuration::from_seconds(60));
  table.offer(pkt(0, kA, kB, 1, 2, 6, 100));
  table.offer(pkt(1'000'000, kA, kB, 1, 2, 6, 100));
  table.offer(pkt(2'000'000, kA, kC, 3, 4, 17, 50));
  table.flush();
  const auto s = table.stats();
  EXPECT_EQ(s.flows, 2u);
  EXPECT_EQ(s.packets, 3u);
  EXPECT_EQ(s.bytes, 250u);
  EXPECT_DOUBLE_EQ(s.mean_flow_packets, 1.5);
  EXPECT_NEAR(s.mean_flow_duration_sec, 0.5, 1e-9);
}

TEST(FlowTable, RunDrivesWholeView) {
  // The synthetic workload should decompose into a plausible flow structure:
  // more than one packet per flow on average (trains), flows spanning
  // multiple networks.
  synth::TraceModel model(synth::sdsc_minutes_config(1.0, 77));
  const auto t = model.generate();
  FlowTable table(MicroDuration::from_seconds(30));
  table.run(t.view());
  const auto s = table.stats();
  EXPECT_EQ(s.packets, t.size());
  EXPECT_GT(s.flows, 100u);
  EXPECT_GT(s.mean_flow_packets, 1.5);
  const auto top = table.top_by_packets(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_GE(top[0].packets, top[4].packets);
}

TEST(FlowKeyHash, DistinctKeysRarelyCollide) {
  FlowKeyHash h;
  std::set<std::size_t> hashes;
  int total = 0;
  for (int i = 0; i < 30; ++i) {
    for (std::uint16_t port : {23, 25, 119}) {
      FlowKey k{net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)),
                kB, static_cast<std::uint16_t>(1024 + i), port, 6};
      hashes.insert(h(k));
      ++total;
    }
  }
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(total));
}

}  // namespace
}  // namespace netsample::trace
